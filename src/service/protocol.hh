/**
 * @file
 * The manticored wire protocol: line-oriented requests over a local
 * stream (unix socket or stdio), one scheduler shared by every
 * connection.
 *
 * ## Grammar
 *
 * Requests are single lines of whitespace-separated tokens.  Every
 * reply is zero or more payload lines, each prefixed `"| "`, followed
 * by exactly one status line: `ok [detail...]` or `err <message>`.
 * A client therefore reads lines until the first one that does not
 * start with `"| "` — no length framing, no ambiguity.
 *
 *   hello                          -> ok manticored proto=1 workers=N
 *   engines                        -> | <name> available=0|1 <descr>
 *   designs                        -> | <name> cycles=<horizon>
 *   new <design> <engine> [lanes [horizon]]
 *                                  -> ok <sid>
 *   run <sid> <cycles>             -> ok queued
 *   runto <sid> <cycle>            -> ok queued
 *   poke <sid> <input> <lane|all> <hex>
 *                                  -> ok queued
 *   poll <sid>                     -> ok phase=.. status=.. cycle=..
 *                                        lanes=.. queued=.. executing=..
 *                                        done=.. of=.. canceled=..
 *   wait <sid> [timeout_ms]        -> ok drained | err timeout
 *   probe <sid> <signal> <lane>    -> ok <w>'h<hex>
 *   lanes <sid>                    -> | lane=<i> status=.. cycle=..
 *   log <sid> <lane>               -> | <$display line>
 *   meter <sid>                    -> | <stat name> <value>
 *   cancel <sid>                   -> ok
 *   save <sid> <path>              -> ok <path>
 *     (with a configured save dir, <path> must be a plain filename
 *      and lands inside that directory; I/O failures are err replies)
 *   detach <sid>                   -> ok   (survives this connection)
 *   destroy <sid>                  -> ok
 *   stats                          -> | <stat name> <value>
 *   shutdown                       -> ok   (stops the whole server)
 *   quit                           -> ok bye (ends this connection)
 *
 * Sessions created on a connection die with it unless `detach`ed —
 * the same ownership rule as service::SessionHandle.  `<design>` is a
 * name from the built-in catalog (the nine Fig. 6 benchmarks plus the
 * ctr32/fifo/ram micros); tenants name designs, they do not upload
 * netlists, so every input is validated server-side and a bad request
 * is an `err` line, never a dead server.
 *
 * ## Pieces
 *
 *  - designCatalog(): named buildable designs for `new`.
 *  - bitsToHex()/hexToBits(): the value encoding (plain hex digits,
 *    MSB first, exactly ceil(width/4) of them accepted).
 *  - Server: serves connections against a shared Scheduler.
 *  - Client: blocking request/reply with typed helpers (used by
 *    manticore-client and the protocol tests).
 */

#ifndef MANTICORE_SERVICE_PROTOCOL_HH
#define MANTICORE_SERVICE_PROTOCOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "service/scheduler.hh"

namespace manticore::service {

constexpr unsigned kProtocolVersion = 1;

/** One named design tenants can instantiate with `new`. */
struct DesignEntry
{
    std::string name;
    /// Build the netlist with the given self-check horizon.
    std::function<netlist::Netlist(uint64_t)> build;
    /// Default horizon (the design's self-check cycle count).
    uint64_t defaultCycles;
};

/** The servable designs: the nine Fig. 6 benchmarks (Table 3 order)
 *  plus the ctr32 counter and the small FIFO/RAM micros. */
const std::vector<DesignEntry> &designCatalog();

const DesignEntry *findDesign(const std::string &name);

/** MSB-first plain hex digits, exactly ceil(width/4) of them. */
std::string bitsToHex(const BitVector &value);

/** Parse `hex` as a `width`-bit value.  False on non-hex characters,
 *  wrong digit count, or set bits above `width`. */
bool hexToBits(const std::string &hex, unsigned width, BitVector *out);

/** Format/parse the probe-reply value token ("<w>'h<hex>"). */
std::string formatValue(const BitVector &value);
bool parseValue(const std::string &token, BitVector *out);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

class Server
{
  public:
    /** Serve `scheduler` to protocol clients.  `stop`, when non-null,
     *  is polled by the accept loop and set by the `shutdown`
     *  command. */
    explicit Server(Scheduler &scheduler,
                    std::atomic<bool> *stop = nullptr)
        : _scheduler(scheduler), _stop(stop)
    {}

    /** Serve one established connection (socketpair end, accepted
     *  socket, ...) until EOF/`quit`/`shutdown`.  Owns and closes
     *  `fd`.  Non-detached sessions of the connection are destroyed
     *  on return.  Safe to call from many threads at once. */
    void serveConnection(int fd);

    /** Serve stdin/stdout as one connection (the --stdio daemon
     *  mode); does not close the stdio descriptors. */
    void serveStdio();

    /** Bind a unix-domain listening socket at `path` (unlinking any
     *  stale one), then accept connections — one service thread each
     *  — until `stop` is set or the `shutdown` command arrives.
     *  Finished connection threads are reaped as the loop runs.
     *  Returns false (+ a warning) when the socket cannot be bound. */
    bool serveUnixSocket(const std::string &path);

    /** Confine tenant `save` paths: when set, the `save` argument
     *  must be a plain filename (no '/' components), written inside
     *  `dir`.  Unset (the default), tenants name arbitrary paths —
     *  acceptable for a local single-user daemon, not for one shared
     *  across trust domains. */
    void setSaveDir(std::string dir) { _saveDir = std::move(dir); }
    const std::string &saveDir() const { return _saveDir; }

    Scheduler &scheduler() { return _scheduler; }

  private:
    struct Connection; // per-connection state (owned sessions, buffer)

    /** Execute one request line; returns false when the connection
     *  should close (quit/shutdown). */
    bool handleLine(Connection &conn, const std::string &line);

    Scheduler &_scheduler;
    std::atomic<bool> *_stop = nullptr;
    std::string _saveDir; ///< tenant `save` confinement (see above)
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a manticored unix socket.  False + error on
     *  failure. */
    bool connectTo(const std::string &path,
                   std::string *error = nullptr);
    /** Adopt an already-connected stream fd (socketpair tests). */
    void adopt(int fd);

    bool connected() const { return _fd >= 0; }
    void close();

    struct Reply
    {
        bool ok = false;
        std::string detail; ///< status line after "ok "/"err "
        std::vector<std::string> lines; ///< "| " payload, unprefixed
    };

    /** One blocking request/reply round-trip.  An I/O failure (server
     *  gone) returns ok=false with detail "connection closed". */
    Reply request(const std::string &line);

    // ---- typed helpers --------------------------------------------
    bool hello(std::string *detail = nullptr);
    SessionId newSession(const std::string &design,
                         const std::string &engine, unsigned lanes = 1,
                         uint64_t horizon = 0,
                         std::string *error = nullptr);
    bool run(SessionId id, uint64_t cycles,
             std::string *error = nullptr);
    bool poke(SessionId id, const std::string &input, unsigned lane,
              const BitVector &value, std::string *error = nullptr);
    /** poll key=value fields, parsed. */
    struct Poll
    {
        bool ok = false;
        std::string phase;
        std::string status;
        uint64_t cycle = 0;
        unsigned lanes = 1;
        uint64_t queued = 0;
        bool executing = false;
        uint64_t done = 0; ///< completed runs
        uint64_t of = 0;   ///< submitted runs
    };
    Poll poll(SessionId id);
    bool wait(SessionId id, uint64_t timeout_ms = 0);
    bool probe(SessionId id, const std::string &signal, unsigned lane,
               BitVector *out, std::string *error = nullptr);
    std::vector<std::string> displayLog(SessionId id, unsigned lane);
    std::vector<std::pair<std::string, uint64_t>> meter(SessionId id);
    std::vector<std::pair<std::string, uint64_t>> serviceStats();
    bool cancel(SessionId id);
    bool detach(SessionId id);
    bool destroy(SessionId id);
    bool shutdownServer();

  private:
    bool readLine(std::string *line);
    bool writeAll(const std::string &data);

    int _fd = -1;
    std::string _buf; ///< readLine carry-over
};

} // namespace manticore::service

#endif // MANTICORE_SERVICE_PROTOCOL_HH
