#include "service/scheduler.hh"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "engine/snapshot.hh"
#include "engine/snapshot_io.hh"
#include "support/logging.hh"
#include "support/namelist.hh"

namespace fs = std::filesystem;

namespace manticore::service {

namespace {

void
setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

} // namespace

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Creating: return "creating";
      case Phase::Ready: return "ready";
      case Phase::Broken: return "broken";
    }
    return "?";
}

Scheduler::Scheduler(SchedulerOptions options) : _opts(std::move(options))
{
    unsigned hw = std::thread::hardware_concurrency();
    _numWorkers =
        _opts.numWorkers != 0 ? _opts.numWorkers : std::max(1u, hw);
    if (_opts.quantumCycles == 0)
        _opts.quantumCycles = 1;
    if (_opts.maxSessions == 0)
        _opts.maxSessions = 1;
    if (_opts.maxQueuedPerSession == 0)
        _opts.maxQueuedPerSession = 1;
    if (_opts.checkpointEveryCycles != 0 && _opts.checkpointDir.empty())
        MANTICORE_FATAL("SchedulerOptions::checkpointEveryCycles needs "
                        "a checkpointDir");
    if (!_opts.checkpointDir.empty()) {
        std::error_code ec;
        fs::create_directories(_opts.checkpointDir, ec);
        if (ec)
            MANTICORE_FATAL("cannot create checkpoint directory ",
                            _opts.checkpointDir, ": ", ec.message());
    }
    for (unsigned i = 0; i < _numWorkers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    {
        std::lock_guard<std::mutex> lk(_mx);
        _shutdown = true;
    }
    _workCv.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

// ---------------------------------------------------------------------------
// Session lifecycle
// ---------------------------------------------------------------------------

SessionId
Scheduler::createSession(const std::string &engine_name,
                         netlist::Netlist netlist,
                         engine::CreateOptions options, std::string *error)
{
    // Pre-validate everything engine::create() would fatal() on: a
    // tenant's bad request must be a rejected request, never a dead
    // server.  engine::find/list are thread-safe (see registry.cc).
    const engine::EngineInfo *info = engine::find(engine_name);
    if (!info) {
        setError(error,
                 detail::formatAll("no such engine: ", engine_name,
                                   " (registered engines: ",
                                   formatNameList(engine::names()), ")"));
        return 0;
    }
    if (!info->available) {
        setError(error, detail::formatAll("engine ", engine_name,
                                          " unavailable on this host (",
                                          info->availabilityNote, ")"));
        return 0;
    }
    unsigned lanes =
        options.lanes != 1 ? options.lanes : options.eval.lanes;
    if (lanes == 0) {
        setError(error, "lanes must be >= 1");
        return 0;
    }
    if (lanes != 1 && !(info->caps & engine::cap::kEnsemble)) {
        setError(error, detail::formatAll("engine ", engine_name,
                                          " has no ensemble mode (lanes=",
                                          lanes, ")"));
        return 0;
    }
    if (lanes > 16 && !info->netlistLevel) {
        setError(error, detail::formatAll("engine ", engine_name,
                                          " ensembles cap at 16 lanes "
                                          "(asked for ",
                                          lanes, ")"));
        return 0;
    }
    if (!(info->caps & engine::cap::kInputs)) {
        // Engines without input support fatal() in their compiler on
        // an open design — admission is where that becomes a polite
        // rejection instead of a dead server.
        std::vector<std::string> open = netlist.inputNames();
        if (!open.empty()) {
            setError(error,
                     detail::formatAll("engine ", engine_name,
                                       " cannot simulate open designs "
                                       "(free input '",
                                       open.front(), "')"));
            return 0;
        }
    }
    // The ownership inversion: session engines never spawn their own
    // worker pool — they execute on whichever scheduler worker holds
    // the session's claim (numThreads=1 keeps netlist.parallel's
    // owned pool empty, see ParallelCompiledEvaluator::ownedThreads).
    options.lanes = lanes;
    options.eval.lanes = lanes;
    options.eval.numThreads = 1;

    std::lock_guard<std::mutex> lk(_mx);
    if (_sessions.size() >= _opts.maxSessions) {
        ++_rejectedSessions;
        setError(error, detail::formatAll(
                            "admission control: session limit reached (",
                            _opts.maxSessions, ")"));
        return 0;
    }
    SessionId id = _nextId++;
    auto s = std::make_shared<Session>();
    s->id = id;
    s->engineName = engine_name;
    s->netlist = std::move(netlist);
    s->createOptions = std::move(options);
    s->infoCaps = info->caps;
    s->requestedLanes = lanes;
    s->pubLanes = lanes;
    _sessions.emplace(id, s);
    ++_createdSessions;
    enqueueReady(s); // engine construction is the first quantum
    return id;
}

bool
Scheduler::destroySession(SessionId id)
{
    std::lock_guard<std::mutex> lk(_mx);
    auto it = _sessions.find(id);
    if (it == _sessions.end())
        return false;
    SessionPtr s = it->second;
    // A worker mid-quantum holds its own shared_ptr and checks
    // `closing` at the boundary, so detaching while running is safe:
    // the engine is released as soon as the quantum returns.
    s->closing = true;
    s->queue.clear();
    _sessions.erase(it);
    _idleCv.notify_all();
    return true;
}

// ---------------------------------------------------------------------------
// Asynchronous submits
// ---------------------------------------------------------------------------

bool
Scheduler::submitCommand(SessionId id, Command cmd, std::string *error)
{
    std::lock_guard<std::mutex> lk(_mx);
    auto it = _sessions.find(id);
    if (it == _sessions.end()) {
        setError(error, detail::formatAll("no such session: ", id));
        return false;
    }
    SessionPtr s = it->second;
    if (s->phase == Phase::Broken) {
        setError(error, detail::formatAll("session ", id,
                                          " engine failed to construct: ",
                                          s->error));
        return false;
    }
    if (s->queue.size() >= _opts.maxQueuedPerSession) {
        ++s->rejected;
        ++_rejectedSubmits;
        setError(error,
                 detail::formatAll("backpressure: session ", id,
                                   " queue full (",
                                   _opts.maxQueuedPerSession, ")"));
        return false;
    }
    cmd.seq = s->nextSeq++;
    if (cmd.kind == Command::Kind::Run)
        ++s->submittedRuns;
    s->queue.push_back(std::move(cmd));
    enqueueReady(s);
    return true;
}

bool
Scheduler::submitRun(SessionId id, uint64_t cycles, std::string *error)
{
    Command cmd;
    cmd.kind = Command::Kind::Run;
    cmd.cycles = cycles;
    cmd.absolute = false;
    return submitCommand(id, std::move(cmd), error);
}

bool
Scheduler::submitRunTo(SessionId id, uint64_t target_cycle,
                       std::string *error)
{
    Command cmd;
    cmd.kind = Command::Kind::Run;
    cmd.cycles = target_cycle;
    cmd.absolute = true;
    return submitCommand(id, std::move(cmd), error);
}

bool
Scheduler::submitPoke(SessionId id, const std::string &input,
                      unsigned lane, const BitVector &value,
                      std::string *error)
{
    // Validate against the session's netlist up front so the worker
    // can bindInput/drive without any fatal() path left.
    {
        std::lock_guard<std::mutex> lk(_mx);
        auto it = _sessions.find(id);
        if (it == _sessions.end()) {
            setError(error, detail::formatAll("no such session: ", id));
            return false;
        }
        SessionPtr s = it->second;
        if (!(s->infoCaps & engine::cap::kInputs)) {
            setError(error,
                     detail::formatAll("engine ", s->engineName,
                                       " has no free inputs to poke"));
            return false;
        }
        netlist::NodeId node = s->netlist.findInput(input);
        if (node == netlist::kInvalidNode) {
            setError(error,
                     detail::formatAll(
                         "no such input '", input, "' (inputs: ",
                         formatNameList(s->netlist.inputNames()), ")"));
            return false;
        }
        unsigned width = s->netlist.node(node).width;
        if (width != value.width()) {
            setError(error, detail::formatAll(
                                "input '", input, "' is ", width,
                                " bit(s), poked ", value.width()));
            return false;
        }
        if (lane != kAllLanes && lane >= s->requestedLanes) {
            setError(error,
                     detail::formatAll("lane ", lane,
                                       " out of range (session has ",
                                       s->requestedLanes, " lane(s))"));
            return false;
        }
    }
    Command cmd;
    cmd.kind = Command::Kind::Poke;
    cmd.inputName = input;
    cmd.lane = lane;
    cmd.value = value;
    return submitCommand(id, std::move(cmd), error);
}

// ---------------------------------------------------------------------------
// Poll / wait / cancel
// ---------------------------------------------------------------------------

Scheduler::SessionPtr
Scheduler::findSession(SessionId id) const
{
    auto it = _sessions.find(id);
    return it == _sessions.end() ? nullptr : it->second;
}

PollResult
Scheduler::poll(SessionId id) const
{
    std::lock_guard<std::mutex> lk(_mx);
    PollResult r;
    SessionPtr s = findSession(id);
    if (!s)
        return r;
    r.exists = true;
    r.phase = s->phase;
    r.status = s->pubStatus;
    r.cycle = s->pubCycle;
    r.lanes = s->pubLanes;
    r.queued = s->queue.size();
    r.executing = s->executing;
    r.submittedRuns = s->submittedRuns;
    r.completedRuns = s->completedRuns;
    r.canceledRuns = s->canceledRuns;
    r.failureMessage = s->pubFailure;
    r.error = s->error;
    return r;
}

unsigned
Scheduler::inputWidth(SessionId id, const std::string &input,
                      std::string *error) const
{
    std::lock_guard<std::mutex> lk(_mx);
    SessionPtr s = findSession(id);
    if (!s) {
        setError(error, detail::formatAll("no such session: ", id));
        return 0;
    }
    netlist::NodeId node = s->netlist.findInput(input);
    if (node == netlist::kInvalidNode) {
        setError(error,
                 detail::formatAll("no such input '", input,
                                   "' (inputs: ",
                                   formatNameList(s->netlist.inputNames()),
                                   ")"));
        return 0;
    }
    return s->netlist.node(node).width;
}

bool
Scheduler::wait(SessionId id, uint64_t timeout_ms)
{
    std::unique_lock<std::mutex> lk(_mx);
    auto drained = [&]() -> bool {
        SessionPtr s = findSession(id);
        if (!s)
            return true; // destroyed: nothing left to wait for
        return s->phase != Phase::Creating && !s->executing &&
               !s->inReady && s->queue.empty();
    };
    if (timeout_ms == 0) {
        _idleCv.wait(lk, drained);
    } else {
        if (!_idleCv.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                              drained))
            return false;
    }
    return findSession(id) != nullptr;
}

bool
Scheduler::cancel(SessionId id)
{
    std::lock_guard<std::mutex> lk(_mx);
    SessionPtr s = findSession(id);
    if (!s)
        return false;
    for (const Command &cmd : s->queue)
        if (cmd.kind == Command::Kind::Run)
            ++s->canceledRuns;
    s->queue.clear();
    if (s->executing)
        s->canceled = true; // drop the in-flight run at the boundary
    _idleCv.notify_all();
    return true;
}

// ---------------------------------------------------------------------------
// Synchronous reads (drain + claim)
// ---------------------------------------------------------------------------

Scheduler::SessionPtr
Scheduler::claimDrained(SessionId id, std::string *error)
{
    std::unique_lock<std::mutex> lk(_mx);
    for (;;) {
        SessionPtr s = findSession(id);
        if (!s) {
            setError(error, detail::formatAll("no such session: ", id));
            return nullptr;
        }
        if (s->phase == Phase::Broken) {
            setError(error,
                     detail::formatAll("session ", id,
                                       " engine failed to construct: ",
                                       s->error));
            return nullptr;
        }
        if (s->phase == Phase::Ready && !s->executing && !s->inReady &&
            s->queue.empty()) {
            // Claim exactly as a worker would: no worker touches a
            // session outside the ready queue, and submits arriving
            // during the claim see `executing` and park in the queue.
            s->executing = true;
            return s;
        }
        _idleCv.wait(lk);
    }
}

void
Scheduler::releaseClaim(const SessionPtr &s)
{
    std::lock_guard<std::mutex> lk(_mx);
    s->executing = false;
    enqueueReady(s); // submits that arrived during the claim
    _idleCv.notify_all();
}

bool
Scheduler::readProbe(SessionId id, const std::string &signal,
                     unsigned lane, BitVector *out, std::string *error)
{
    SessionPtr s = claimDrained(id, error);
    if (!s)
        return false;
    engine::Engine &eng = *s->engine;
    bool ok = false;
    size_t n = eng.has(engine::cap::kProbes) ? eng.numProbes() : 0;
    engine::ProbeHandle handle = 0;
    for (engine::ProbeHandle h = 0; h < n; ++h) {
        if (eng.probeName(h) == signal) {
            handle = h;
            ok = true;
            break;
        }
    }
    if (!ok) {
        setError(error, detail::formatAll("no such signal '", signal,
                                          "' on engine ", eng.name()));
    } else if (lane >= eng.lanes()) {
        setError(error,
                 detail::formatAll("lane ", lane,
                                   " out of range (session has ",
                                   eng.lanes(), " lane(s))"));
        ok = false;
    } else if (out) {
        *out = eng.readLane(handle, lane);
    }
    releaseClaim(s);
    return ok;
}

std::vector<engine::Stat>
Scheduler::meter(SessionId id)
{
    std::lock_guard<std::mutex> lk(_mx);
    std::vector<engine::Stat> out;
    SessionPtr s = findSession(id);
    if (!s)
        return out;
    out.push_back({"service.quanta", s->quanta});
    out.push_back({"service.cycles", s->simCycles});
    out.push_back({"service.submitted_runs", s->submittedRuns});
    out.push_back({"service.completed_runs", s->completedRuns});
    out.push_back({"service.canceled_runs", s->canceledRuns});
    out.push_back({"service.rejected", s->rejected});
    out.push_back({"service.queued", s->queue.size()});
    out.push_back({"service.checkpoints", s->checkpoints});
    // The engine's own named counters, as published at the last
    // quantum boundary (so metering never waits on the engine).
    out.insert(out.end(), s->pubStats.begin(), s->pubStats.end());
    return out;
}

std::vector<LaneView>
Scheduler::laneViews(SessionId id) const
{
    std::lock_guard<std::mutex> lk(_mx);
    SessionPtr s = findSession(id);
    return s ? s->pubLaneViews : std::vector<LaneView>{};
}

std::vector<std::string>
Scheduler::displayLog(SessionId id, unsigned lane)
{
    SessionPtr s = claimDrained(id, nullptr);
    if (!s)
        return {};
    std::vector<std::string> out;
    engine::Engine &eng = *s->engine;
    if (eng.has(engine::cap::kDisplayLog) && lane < eng.lanes())
        out = eng.laneDisplayLog(lane);
    releaseClaim(s);
    return out;
}

bool
Scheduler::saveCheckpoint(SessionId id, const std::string &path,
                          std::string *error)
{
    SessionPtr s = claimDrained(id, error);
    if (!s)
        return false;
    engine::Engine &eng = *s->engine;
    bool ok = false;
    if (!eng.has(engine::cap::kSnapshot)) {
        setError(error,
                 detail::formatAll("engine ", eng.name(),
                                   " has no checkpoint support "
                                   "(cap::kSnapshot)"));
    } else {
        engine::Snapshot snap;
        eng.save(snap);
        // The tenant names the path, so write failures (bad directory,
        // no permission, disk full) must be err replies, never a
        // fatal(): one bad request must not kill the daemon.
        std::string io_error;
        if (engine::tryWriteSnapshotFile(snap, path, &io_error)) {
            std::lock_guard<std::mutex> lk(_mx);
            ++s->checkpoints;
            ok = true;
        } else {
            setError(error, io_error);
        }
    }
    releaseClaim(s);
    return ok;
}

std::vector<engine::Stat>
Scheduler::serviceStats() const
{
    std::lock_guard<std::mutex> lk(_mx);
    return {
        {"sessions", _sessions.size()},
        {"ready", _ready.size()},
        {"workers", _numWorkers},
        {"created_sessions", _createdSessions},
        {"rejected_sessions", _rejectedSessions},
        {"rejected_submits", _rejectedSubmits},
        {"quanta", _totalQuanta},
        {"cycles", _totalCycles},
    };
}

size_t
Scheduler::numSessions() const
{
    std::lock_guard<std::mutex> lk(_mx);
    return _sessions.size();
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void
Scheduler::enqueueReady(const SessionPtr &s)
{
    if (s->inReady || s->executing || s->closing)
        return;
    if (s->queue.empty() && s->phase != Phase::Creating)
        return; // nothing to do: idle sessions stay off the queue
    s->inReady = true;
    _ready.push_back(s);
    _workCv.notify_one();
}

void
Scheduler::workerLoop()
{
    // The WaitPolicy::Block shape from the parallel evaluator's
    // rendezvous: workers park on a condvar whenever the ready queue
    // is empty, so an idle service burns zero CPU.
    std::unique_lock<std::mutex> lk(_mx);
    for (;;) {
        _workCv.wait(lk, [&] { return _shutdown || !_ready.empty(); });
        if (_shutdown)
            return;
        SessionPtr s = _ready.front();
        _ready.pop_front();
        s->inReady = false;
        if (s->closing) {
            _idleCv.notify_all();
            continue;
        }
        s->executing = true;
        executeQuantum(lk, *s);
        s->executing = false;
        ++_totalQuanta;
        ++s->quanta;
        if (_opts.quantumTrace)
            _opts.quantumTrace(s->id);
        // Fair round-robin: unfinished sessions go to the TAIL, so
        // with R runnable sessions none waits more than R quanta.
        if (!s->closing && !s->queue.empty())
            enqueueReady(s);
        else
            _idleCv.notify_all();
    }
}

void
Scheduler::constructEngine(std::unique_lock<std::mutex> &lk, Session &s)
{
    std::string name = s.engineName;
    engine::CreateOptions opts = s.createOptions;
    lk.unlock();
    // The claim makes s.netlist safe to read unlocked: it is never
    // written after createSession.  All fatal() paths were
    // pre-validated; what remains (bad_alloc, toolchain loss) is
    // reported as a broken session, not a dead server.
    std::unique_ptr<engine::Engine> eng;
    std::string err;
    try {
        eng = engine::create(name, s.netlist, opts);
    } catch (const std::exception &e) {
        err = e.what();
    } catch (...) {
        err = "engine construction failed";
    }
    lk.lock();
    if (!eng) {
        s.phase = Phase::Broken;
        s.error = err.empty() ? "engine construction failed" : err;
        s.queue.clear();
        return;
    }
    s.engine = std::move(eng);
    s.phase = Phase::Ready;
    s.checkpointDue = _opts.checkpointEveryCycles;
    publish(s);
}

void
Scheduler::publish(Session &s)
{
    engine::Engine &eng = *s.engine;
    s.pubStatus = eng.status();
    s.pubCycle = eng.cycle();
    s.pubLanes = eng.lanes();
    s.pubFailure = eng.failureMessage();
    s.pubLaneViews.resize(s.pubLanes);
    for (unsigned l = 0; l < s.pubLanes; ++l) {
        s.pubLaneViews[l].status = eng.laneStatus(l);
        s.pubLaneViews[l].cycle = eng.laneCycle(l);
        s.pubLaneViews[l].failureMessage = eng.laneFailureMessage(l);
    }
    s.pubStats = eng.stats();
}

bool
Scheduler::maybeCheckpoint(Session &s, std::string *error)
{
    // Called with the claim held and _mx UNLOCKED (file I/O).
    // `checkpointDue` is claim-protected; `checkpoints` is read by
    // meter() under _mx, so the caller increments it after relocking.
    if (_opts.checkpointEveryCycles == 0)
        return false;
    engine::Engine &eng = *s.engine;
    if (!eng.has(engine::cap::kSnapshot))
        return false;
    if (eng.cycle() < s.checkpointDue)
        return false;
    // Either way the next attempt is a full interval out: a dead
    // checkpoint directory must degrade to a warning per interval,
    // not a write failure per quantum — and never a dead daemon.
    s.checkpointDue = eng.cycle() + _opts.checkpointEveryCycles;
    engine::Snapshot snap;
    eng.save(snap);
    std::string path = _opts.checkpointDir + "/session-" +
                       std::to_string(s.id) + ".mtsnap";
    std::string io_error;
    if (!engine::tryWriteSnapshotFile(snap, path, &io_error)) {
        MANTICORE_WARN("session ", s.id, ": periodic checkpoint "
                       "failed: ", io_error);
        setError(error, std::move(io_error));
        return false;
    }
    return true;
}

void
Scheduler::executeQuantum(std::unique_lock<std::mutex> &lk, Session &s)
{
    if (s.phase == Phase::Creating) {
        constructEngine(lk, s);
        return;
    }
    if (s.phase == Phase::Broken) {
        s.queue.clear();
        return;
    }
    engine::Engine *eng = s.engine.get();

    // Drain leading pokes: cheap, and keeping them ahead of the next
    // run slice preserves strict submit order.
    while (!s.queue.empty() &&
           s.queue.front().kind == Command::Kind::Poke) {
        Command cmd = std::move(s.queue.front());
        s.queue.pop_front();
        lk.unlock();
        // Same discipline as the step() quantum below: an engine
        // exception (bad_alloc, an edge case submit-time validation
        // missed) is recorded on the session, never allowed to
        // propagate out of workerLoop and terminate the daemon.
        std::string poke_err;
        try {
            auto it = s.inputHandles.find(cmd.inputName);
            if (it == s.inputHandles.end())
                it = s.inputHandles
                         .emplace(cmd.inputName,
                                  eng->bindInput(cmd.inputName))
                         .first;
            if (cmd.lane == kAllLanes)
                eng->setInput(it->second, cmd.value);
            else
                engine::driveLane(*eng, it->second, cmd.lane,
                                  cmd.value);
        } catch (const std::exception &e) {
            poke_err = e.what();
        } catch (...) {
            poke_err = "engine exception during poke";
        }
        lk.lock();
        if (!poke_err.empty())
            s.error = std::move(poke_err);
        if (s.canceled) {
            s.canceled = false; // queue already cleared by cancel()
            publish(s);
            return;
        }
    }
    if (s.queue.empty() || s.queue.front().kind != Command::Kind::Run) {
        publish(s);
        return;
    }

    // One time-slice of the head run command.
    const Command &front = s.queue.front();
    uint64_t front_seq = front.seq;
    uint64_t remaining =
        front.absolute
            ? (front.cycles > eng->cycle() ? front.cycles - eng->cycle()
                                           : 0)
            : front.cycles;
    uint64_t slice = std::min(remaining, _opts.quantumCycles);
    lk.unlock();
    engine::RunResult rr;
    std::string err;
    try {
        if (slice != 0)
            rr = eng->step(slice);
    } catch (const std::exception &e) {
        err = e.what();
    } catch (...) {
        err = "engine exception during quantum";
    }
    std::string checkpoint_err;
    bool checkpointed =
        err.empty() && maybeCheckpoint(s, &checkpoint_err);
    lk.lock();
    if (checkpointed)
        ++s.checkpoints;
    // A failed periodic checkpoint degrades: the session keeps
    // running (the run is NOT aborted like an engine error below),
    // but the failure is visible through poll()'s error field.
    if (!checkpoint_err.empty())
        s.error = std::move(checkpoint_err);
    publish(s);
    uint64_t delivered =
        rr.cycles * std::max<uint64_t>(1, rr.lanes);
    s.simCycles += delivered;
    _totalCycles += delivered;
    if (!err.empty())
        s.error = err;
    if (s.canceled) {
        // cancel() cleared the queue while this slice was in flight;
        // its cycles stand (the quantum is the cancel granularity)
        // but the rest of the run is dropped.  The accounting already
        // happened in cancel(): the in-flight run was still at the
        // queue front there, so it was counted with the rest —
        // counting it here again would double it.  Anything in the
        // queue now was submitted after the cancel and proceeds.
        s.canceled = false;
        return;
    }
    if (!s.queue.empty() && s.queue.front().seq == front_seq) {
        Command &f = s.queue.front();
        bool done;
        if (f.absolute) {
            done = s.pubCycle >= f.cycles;
        } else {
            f.cycles = f.cycles > rr.cycles ? f.cycles - rr.cycles : 0;
            done = f.cycles == 0;
        }
        bool terminal = s.pubStatus != engine::Status::Running;
        // slice == 0 covers an already-satisfied runto and a run
        // submitted to a terminal engine: both complete immediately.
        if (done || terminal || slice == 0 || !err.empty()) {
            s.queue.pop_front();
            ++s.completedRuns;
        }
    }
}

} // namespace manticore::service
