/**
 * @file
 * The multi-tenant simulation scheduler: N concurrent sessions
 * multiplexed over ONE fixed worker pool.
 *
 * Everywhere else in the repository a simulation owns its execution
 * resources: an engine::Session holds its engine, and the
 * partition-parallel evaluator holds its own worker threads.  That is
 * the right shape for one user at one terminal — and exactly the
 * wrong shape for a regression farm, where M independent jobs on one
 * host each spin up their own pool and fight for the same cores (the
 * lock-file, one-job-at-a-time artifact-server workflow).  The
 * Scheduler inverts the ownership:
 *
 *  - ONE pool of `numWorkers` threads is created up front and never
 *    grows.  Session engines are created with their thread budget
 *    clamped to zero owned threads (EvalOptions::numThreads = 1, so
 *    netlist.parallel spawns an empty pool — see
 *    ParallelCompiledEvaluator::ownedThreads()); every engine
 *    executes on whichever scheduler worker picks its session up.
 *
 *  - Work is TIME-SLICED: a session's pending `run` advances in
 *    quanta of at most `quantumCycles` batched step(n) cycles, after
 *    which the session goes to the tail of the ready queue.  With R
 *    runnable sessions and one worker, any runnable session runs
 *    again within R quanta — the fairness bound the stress test pins.
 *
 *  - Admission control and backpressure are explicit: at most
 *    `maxSessions` live sessions (createSession rejects beyond it)
 *    and at most `maxQueuedPerSession` queued commands per session
 *    (submit returns false instead of queueing unboundedly).
 *
 *  - Idle costs nothing: workers park on a condition variable when
 *    the ready queue is empty (the same blocked rendezvous the
 *    parallel evaluator's WaitPolicy::Block uses), and a session with
 *    no pending work is simply absent from the ready queue.  A
 *    thousand idle sessions consume memory, not CPU.
 *
 * Threading contract: a session's engine is touched ONLY by the
 * worker currently holding the session's `executing` claim.  Client
 * threads never touch engines — asynchronous calls (submit*, poll,
 * cancel, destroySession) work on the scheduler's bookkeeping under
 * one mutex, and the synchronous reads (readProbe, meter, displayLog,
 * saveCheckpoint) take the same claim a worker would, after waiting
 * for the session to drain.  `poll` is wait-free in the sense that it
 * only reads state published at the last quantum boundary.
 *
 * See src/service/README.md for the full architecture discussion and
 * tools/manticored.cc for the line-protocol daemon hosting this.
 */

#ifndef MANTICORE_SERVICE_SCHEDULER_HH
#define MANTICORE_SERVICE_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/registry.hh"
#include "netlist/netlist.hh"

namespace manticore::service {

/** Tenant session identifier; 0 is never a valid id. */
using SessionId = uint64_t;

/** Poke lane wildcard: broadcast the value to every lane. */
constexpr unsigned kAllLanes = ~0u;

struct SchedulerOptions
{
    /// Fixed worker-pool size; 0 means hardware_concurrency.
    unsigned numWorkers = 0;
    /// Cycles per scheduling quantum: one batched step(n) between
    /// visits to the ready queue.  Larger amortises scheduling
    /// overhead; smaller tightens the fairness/cancel latency bound.
    uint64_t quantumCycles = 4096;
    /// Admission control: live-session cap (createSession rejects).
    size_t maxSessions = 1024;
    /// Backpressure: queued-command cap per session (submit rejects).
    size_t maxQueuedPerSession = 64;
    /// Crash recovery: when non-zero, sessions whose engine supports
    /// cap::kSnapshot are checkpointed to `checkpointDir/
    /// session-<id>.mtsnap` (engine::writeSnapshotFile) every this
    /// many simulated cycles, at the next quantum boundary.
    uint64_t checkpointEveryCycles = 0;
    std::string checkpointDir;
    /// Test hook: called with the session id at every completed
    /// quantum, under the scheduler lock (must not call back into
    /// the scheduler).  Used to pin the fairness bound.
    std::function<void(SessionId)> quantumTrace;
};

/** Session lifecycle phase (engine construction itself runs on a
 *  worker, so a freshly created session is not immediately ready). */
enum class Phase
{
    Creating, ///< engine::create queued or in flight on a worker
    Ready,    ///< engine constructed; commands execute
    Broken,   ///< engine construction failed (see PollResult::error)
};

const char *phaseName(Phase phase);

/** Published (quantum-boundary) view of a session; reading it never
 *  waits on the session's engine. */
struct PollResult
{
    bool exists = false;
    Phase phase = Phase::Creating;
    engine::Status status = engine::Status::Running;
    uint64_t cycle = 0;
    unsigned lanes = 1;
    /// Commands still queued (an in-progress run counts until done).
    size_t queued = 0;
    /// A worker is executing on the session right now.
    bool executing = false;
    uint64_t submittedRuns = 0;
    uint64_t completedRuns = 0;
    uint64_t canceledRuns = 0;
    std::string failureMessage;
    /// Creation or command failure detail ("" when healthy).
    std::string error;
};

/** Published per-lane view (ensemble sessions). */
struct LaneView
{
    engine::Status status = engine::Status::Running;
    uint64_t cycle = 0;
    std::string failureMessage;
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions options = {});
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    // ---- session lifecycle ----------------------------------------

    /** Admit a new session: the engine (registry `engine_name` over
     *  `netlist`, ensemble width from `options`) is constructed
     *  asynchronously on a worker.  Returns 0 and sets `error` when
     *  admission fails (session cap, unknown/unavailable engine,
     *  lanes unsupported) — never fatal()s on tenant input.  The
     *  engine's own thread budget is clamped: session engines run on
     *  borrowed scheduler workers and never spawn their own pool. */
    SessionId createSession(const std::string &engine_name,
                            netlist::Netlist netlist,
                            engine::CreateOptions options = {},
                            std::string *error = nullptr);

    /** Destroy a session immediately: queued work is dropped, the
     *  entry disappears from the table, and the engine is released
     *  as soon as any in-flight quantum returns (a worker mid-quantum
     *  keeps the storage alive until it is done with it — detaching
     *  while running is safe).  Returns false on unknown id. */
    bool destroySession(SessionId id);

    // ---- asynchronous submit/poll/cancel --------------------------

    /** Queue `cycles` more simulated cycles, executed as time-sliced
     *  quanta.  False + `error` on unknown session or backpressure
     *  (queue full). */
    bool submitRun(SessionId id, uint64_t cycles,
                   std::string *error = nullptr);
    /** Queue a run up to absolute engine cycle `target_cycle`. */
    bool submitRunTo(SessionId id, uint64_t target_cycle,
                     std::string *error = nullptr);
    /** Queue an input poke (applies in submit order, i.e. after any
     *  run queued before it finishes).  The input name, lane and
     *  width are validated here against the session's netlist, so a
     *  bad poke is a rejected submit, not a server fatal(). */
    bool submitPoke(SessionId id, const std::string &input,
                    unsigned lane, const BitVector &value,
                    std::string *error = nullptr);

    /** Published state as of the last quantum boundary; never blocks
     *  on the engine. */
    PollResult poll(SessionId id) const;

    /** Declared width of a free input of the session's design (0 +
     *  `error` on unknown session or input).  The protocol layer uses
     *  this to size hex-encoded poke values. */
    unsigned inputWidth(SessionId id, const std::string &input,
                        std::string *error = nullptr) const;

    /** Block until the session has drained (no queued commands, no
     *  in-flight quantum) or `timeout_ms` elapsed (0 = wait forever).
     *  Returns false on timeout or if the session is gone. */
    bool wait(SessionId id, uint64_t timeout_ms = 0);

    /** Drop every queued command; an in-flight quantum finishes (its
     *  cycles are kept — a quantum is the cancellation granularity)
     *  and the interrupted run is dropped at the boundary.  Returns
     *  false on unknown id. */
    bool cancel(SessionId id);

    // ---- synchronous reads (wait for drain, then claim) -----------

    /** Read a probed signal by name on a drained session.  False +
     *  `error` on unknown session/signal/lane (never fatal()s). */
    bool readProbe(SessionId id, const std::string &signal,
                   unsigned lane, BitVector *out,
                   std::string *error = nullptr);

    /** Per-tenant metering: service counters (service.quanta,
     *  service.cycles, service.rejected, ...) followed by the
     *  engine's own named Stat counters. */
    std::vector<engine::Stat> meter(SessionId id);

    /** Per-lane published status/cycle/failure (empty on unknown). */
    std::vector<LaneView> laneViews(SessionId id) const;

    /** One lane's $display transcript (copy; empty on unknown). */
    std::vector<std::string> displayLog(SessionId id, unsigned lane);

    /** Checkpoint a drained session to `path` in the MTSNAP on-disk
     *  format (engine must support cap::kSnapshot).  False + `error`
     *  on unknown session or unsupported engine. */
    bool saveCheckpoint(SessionId id, const std::string &path,
                        std::string *error = nullptr);

    // ---- service-level introspection ------------------------------

    /** Aggregate counters: sessions, workers, quanta, cycles,
     *  admission/backpressure rejections. */
    std::vector<engine::Stat> serviceStats() const;

    unsigned numWorkers() const { return _numWorkers; }
    size_t numSessions() const;
    const SchedulerOptions &options() const { return _opts; }

  private:
    struct Command
    {
        enum class Kind
        {
            Poke,
            Run
        };
        Kind kind = Kind::Run;
        uint64_t seq = 0; ///< per-session submit sequence
        // Poke (name validated against the session netlist at submit;
        // kAllLanes broadcasts)
        std::string inputName;
        unsigned lane = 0;
        BitVector value;
        // Run: remaining relative cycles, or the absolute target.
        uint64_t cycles = 0;
        bool absolute = false;
    };

    struct Session
    {
        SessionId id = 0;
        std::string engineName;
        netlist::Netlist netlist;
        engine::CreateOptions createOptions;

        std::unique_ptr<engine::Engine> engine;
        /// Static caps of the registry engine (pre-creation checks).
        uint32_t infoCaps = 0;
        /// Requested ensemble width (known before the engine exists).
        unsigned requestedLanes = 1;
        /// Cached bindInput handles (resolved once per input name;
        /// touched only under the executing claim).
        std::unordered_map<std::string, engine::InputHandle>
            inputHandles;

        std::deque<Command> queue;
        uint64_t nextSeq = 1;
        bool inReady = false;   ///< sitting in the ready queue
        bool executing = false; ///< claimed by a worker / sync reader
        bool closing = false;   ///< destroySession() called
        bool canceled = false;  ///< cancel() raced an in-flight quantum

        Phase phase = Phase::Creating;
        std::string error;

        // Published at quantum boundaries (poll reads these).
        engine::Status pubStatus = engine::Status::Running;
        uint64_t pubCycle = 0;
        unsigned pubLanes = 1;
        std::string pubFailure;
        std::vector<LaneView> pubLaneViews;
        std::vector<engine::Stat> pubStats;

        // Per-tenant metering.
        uint64_t submittedRuns = 0;
        uint64_t completedRuns = 0;
        uint64_t canceledRuns = 0;
        uint64_t quanta = 0;
        uint64_t simCycles = 0; ///< cycles x lanes delivered
        uint64_t rejected = 0;  ///< backpressured submits
        uint64_t checkpoints = 0;
        uint64_t checkpointDue = 0;
    };

    using SessionPtr = std::shared_ptr<Session>;

    void workerLoop();
    /** Execute one quantum on a claimed session; `lk` is held on
     *  entry and exit, dropped around engine work. */
    void executeQuantum(std::unique_lock<std::mutex> &lk, Session &s);
    void constructEngine(std::unique_lock<std::mutex> &lk, Session &s);
    void publish(Session &s);
    void enqueueReady(const SessionPtr &s);
    SessionPtr findSession(SessionId id) const;
    bool submitCommand(SessionId id, Command cmd, std::string *error);
    /** Wait until `id` is drained, then claim it (executing = true).
     *  Returns nullptr (+error) if the session vanished or its
     *  engine never constructed. */
    SessionPtr claimDrained(SessionId id, std::string *error);
    void releaseClaim(const SessionPtr &s);
    /** Periodic checkpoint (claim held, _mx unlocked: file I/O).
     *  Returns true when a checkpoint file was written — the caller
     *  bumps Session::checkpoints under the lock.  A write failure
     *  (checkpoint directory gone, disk full) warns, fills `error`
     *  for the caller to record on the session, and backs off one
     *  full interval; it never kills the daemon. */
    bool maybeCheckpoint(Session &s, std::string *error);

    SchedulerOptions _opts;
    unsigned _numWorkers = 1;

    mutable std::mutex _mx;
    std::condition_variable _workCv; ///< workers park here when idle
    std::condition_variable _idleCv; ///< wait()/sync reads park here
    bool _shutdown = false;

    std::unordered_map<SessionId, SessionPtr> _sessions;
    std::deque<SessionPtr> _ready;
    SessionId _nextId = 1;

    // Service-level metering (under _mx).
    uint64_t _createdSessions = 0;
    uint64_t _rejectedSessions = 0;
    uint64_t _rejectedSubmits = 0;
    uint64_t _totalQuanta = 0;
    uint64_t _totalCycles = 0;

    std::vector<std::thread> _workers;
};

} // namespace manticore::service

#endif // MANTICORE_SERVICE_SCHEDULER_HH
