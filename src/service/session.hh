/**
 * @file
 * SessionHandle: the client-side RAII view of one scheduler tenant.
 *
 * A handle owns its session's lifetime — destruction destroys the
 * session (queued work dropped, engine released at the next quantum
 * boundary) unless `detach()` was called, after which the session
 * lives on in the scheduler and the id is the only way back to it.
 * Everything else forwards to the Scheduler's async submit/poll/
 * cancel and synchronous-read API; the handle adds no locking of its
 * own, so one handle may be shared the way a SessionId may be shared
 * (the scheduler's contract covers concurrent calls on one id;
 * detach()/release() themselves are owner-only).
 *
 * @code
 * service::Scheduler sched;
 * auto h = service::SessionHandle::create(sched, "netlist.compiled",
 *                                         design, {.lanes = 4});
 * h.submitRun(100'000);
 * h.wait();
 * BitVector v;
 * h.readProbe("state", 0, &v);
 * @endcode
 */

#ifndef MANTICORE_SERVICE_SESSION_HH
#define MANTICORE_SERVICE_SESSION_HH

#include <utility>

#include "service/scheduler.hh"

namespace manticore::service {

class SessionHandle
{
  public:
    /** Admit a session (see Scheduler::createSession).  The returned
     *  handle is empty — `!valid()` — when admission was rejected,
     *  with the reason in `error`. */
    static SessionHandle
    create(Scheduler &scheduler, const std::string &engine_name,
           netlist::Netlist netlist,
           engine::CreateOptions options = {},
           std::string *error = nullptr)
    {
        SessionId id = scheduler.createSession(
            engine_name, std::move(netlist), std::move(options), error);
        return SessionHandle(scheduler, id);
    }

    /** Re-attach to a detached session by id (no existence check —
     *  the first poll()/submit reports unknown ids). */
    SessionHandle(Scheduler &scheduler, SessionId id)
        : _scheduler(&scheduler), _id(id)
    {}

    SessionHandle() = default;

    ~SessionHandle()
    {
        if (_scheduler && _id != 0)
            _scheduler->destroySession(_id);
    }

    SessionHandle(SessionHandle &&other) noexcept
        : _scheduler(other._scheduler), _id(other._id)
    {
        other._scheduler = nullptr;
        other._id = 0;
    }

    SessionHandle &
    operator=(SessionHandle &&other) noexcept
    {
        if (this != &other) {
            if (_scheduler && _id != 0)
                _scheduler->destroySession(_id);
            _scheduler = other._scheduler;
            _id = other._id;
            other._scheduler = nullptr;
            other._id = 0;
        }
        return *this;
    }

    SessionHandle(const SessionHandle &) = delete;
    SessionHandle &operator=(const SessionHandle &) = delete;

    bool valid() const { return _scheduler != nullptr && _id != 0; }
    SessionId id() const { return _id; }

    /** Give up ownership: the session keeps running in the scheduler
     *  after this handle dies.  Returns the id for later re-attach. */
    SessionId
    detach()
    {
        SessionId id = _id;
        _scheduler = nullptr;
        _id = 0;
        return id;
    }

    // ---- forwarders (see Scheduler for semantics) ------------------

    bool
    submitRun(uint64_t cycles, std::string *error = nullptr)
    {
        return _scheduler->submitRun(_id, cycles, error);
    }
    bool
    submitRunTo(uint64_t target_cycle, std::string *error = nullptr)
    {
        return _scheduler->submitRunTo(_id, target_cycle, error);
    }
    bool
    submitPoke(const std::string &input, unsigned lane,
               const BitVector &value, std::string *error = nullptr)
    {
        return _scheduler->submitPoke(_id, input, lane, value, error);
    }
    PollResult poll() const { return _scheduler->poll(_id); }
    bool
    wait(uint64_t timeout_ms = 0)
    {
        return _scheduler->wait(_id, timeout_ms);
    }
    bool cancel() { return _scheduler->cancel(_id); }
    bool
    readProbe(const std::string &signal, unsigned lane, BitVector *out,
              std::string *error = nullptr)
    {
        return _scheduler->readProbe(_id, signal, lane, out, error);
    }
    std::vector<engine::Stat> meter() { return _scheduler->meter(_id); }
    std::vector<LaneView> laneViews() const
    {
        return _scheduler->laneViews(_id);
    }
    std::vector<std::string>
    displayLog(unsigned lane = 0)
    {
        return _scheduler->displayLog(_id, lane);
    }
    bool
    saveCheckpoint(const std::string &path, std::string *error = nullptr)
    {
        return _scheduler->saveCheckpoint(_id, path, error);
    }

  private:
    Scheduler *_scheduler = nullptr;
    SessionId _id = 0;
};

} // namespace manticore::service

#endif // MANTICORE_SERVICE_SESSION_HH
