#include "service/protocol.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "designs/designs.hh"
#include "netlist/builder.hh"
#include "support/logging.hh"

namespace manticore::service {

// ---------------------------------------------------------------------------
// Design catalog
// ---------------------------------------------------------------------------

namespace {

/** ctr32: the smallest closed design — a free-running 32-bit counter
 *  that $finishes at the horizon.  The service bench/tests tenant. */
netlist::Netlist
buildCtr32(uint64_t check_cycles)
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() == b.lit(32, check_cycles));
    return b.build();
}

/** acc8: an 8-bit accumulator over a free input — the poke/probe
 *  exercise design (never finishes on its own). */
netlist::Netlist
buildAcc8(uint64_t /*check_cycles*/)
{
    netlist::CircuitBuilder b("acc8");
    auto in = b.input("in", 8);
    auto acc = b.reg("acc", 8);
    b.next(acc, acc.read() + in);
    return b.build();
}

} // namespace

const std::vector<DesignEntry> &
designCatalog()
{
    static const std::vector<DesignEntry> kCatalog = [] {
        std::vector<DesignEntry> out;
        for (const designs::Benchmark &bm : designs::allBenchmarks())
            out.push_back({bm.name, bm.build, bm.defaultCheckCycles});
        out.push_back({"ctr32", buildCtr32, 1u << 20});
        out.push_back({"acc8", buildAcc8, 1u << 20});
        out.push_back({"fifo1", [](uint64_t c) {
                           return designs::buildFifoMicro(1, c);
                       },
                       4096});
        out.push_back({"ram1", [](uint64_t c) {
                           return designs::buildRamMicro(1, c);
                       },
                       4096});
        return out;
    }();
    return kCatalog;
}

const DesignEntry *
findDesign(const std::string &name)
{
    for (const DesignEntry &d : designCatalog())
        if (d.name == name)
            return &d;
    return nullptr;
}

// ---------------------------------------------------------------------------
// Value encoding
// ---------------------------------------------------------------------------

std::string
bitsToHex(const BitVector &value)
{
    unsigned digits = (value.width() + 3) / 4;
    std::string out(digits, '0');
    static const char kHex[] = "0123456789abcdef";
    const std::vector<uint64_t> &limbs = value.limbs();
    for (unsigned d = 0; d < digits; ++d) {
        unsigned bit = 4 * (digits - 1 - d);
        unsigned limb = bit / 64, shift = bit % 64;
        uint64_t nib =
            limb < limbs.size() ? (limbs[limb] >> shift) & 0xf : 0;
        // A nibble straddling a limb boundary picks up the high bits
        // from the next limb.
        if (shift > 60 && limb + 1 < limbs.size())
            nib |= (limbs[limb + 1] << (64 - shift)) & 0xf;
        out[d] = kHex[nib];
    }
    return out;
}

bool
hexToBits(const std::string &hex, unsigned width, BitVector *out)
{
    unsigned digits = (width + 3) / 4;
    if (width == 0 || hex.size() != digits)
        return false;
    std::vector<uint64_t> limbs((width + 63) / 64, 0);
    for (unsigned d = 0; d < digits; ++d) {
        char c = hex[d];
        uint64_t nib;
        if (c >= '0' && c <= '9')
            nib = c - '0';
        else if (c >= 'a' && c <= 'f')
            nib = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            nib = c - 'A' + 10;
        else
            return false;
        unsigned bit = 4 * (digits - 1 - d);
        limbs[bit / 64] |= nib << (bit % 64);
        if (bit % 64 > 60 && bit / 64 + 1 < limbs.size())
            limbs[bit / 64 + 1] |= nib >> (64 - bit % 64);
    }
    BitVector parsed = BitVector::fromLimbs(width, limbs);
    // fromLimbs truncates; reject values whose set bits exceeded the
    // declared width instead of silently masking tenant input.
    if (bitsToHex(parsed) != [&] {
            std::string lower = hex;
            for (char &c : lower)
                c = static_cast<char>(std::tolower(c));
            return lower;
        }())
        return false;
    *out = parsed;
    return true;
}

std::string
formatValue(const BitVector &value)
{
    return std::to_string(value.width()) + "'h" + bitsToHex(value);
}

bool
parseValue(const std::string &token, BitVector *out)
{
    size_t sep = token.find("'h");
    if (sep == std::string::npos)
        return false;
    char *end = nullptr;
    unsigned long width = std::strtoul(token.c_str(), &end, 10);
    if (end != token.c_str() + sep || width == 0)
        return false;
    return hexToBits(token.substr(sep + 2),
                     static_cast<unsigned>(width), out);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok)
        out.push_back(tok);
    return out;
}

bool
parseU64(const std::string &tok, uint64_t *out)
{
    // strtoull accepts "-1" (wrapping to 2^64-1), "+1", and leading
    // whitespace; a wire token must be plain digits only.
    if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (errno != 0 || end != tok.c_str() + tok.size())
        return false;
    *out = v;
    return true;
}

/** A concrete lane index: fits in unsigned and is not the kAllLanes
 *  wildcard (4294967295 must be rejected, not alias a broadcast). */
bool
parseLane(const std::string &tok, unsigned *out)
{
    uint64_t v;
    if (!parseU64(tok, &v) || v >= kAllLanes)
        return false;
    *out = static_cast<unsigned>(v);
    return true;
}

bool
writeAllFd(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

struct Server::Connection
{
    int fd = -1;
    std::string inbuf;
    /// Sessions created here and not yet detached/destroyed: they die
    /// with the connection (SessionHandle's ownership rule).
    std::vector<SessionId> owned;
    std::string outbuf; ///< reply being assembled for one request

    void
    payload(const std::string &line)
    {
        outbuf += "| ";
        outbuf += line;
        outbuf += '\n';
    }
    void
    ok(const std::string &detail = "")
    {
        outbuf += detail.empty() ? "ok" : "ok " + detail;
        outbuf += '\n';
    }
    void
    err(const std::string &message)
    {
        outbuf += "err ";
        outbuf += message;
        outbuf += '\n';
    }
    void
    disown(SessionId id)
    {
        for (size_t i = 0; i < owned.size(); ++i)
            if (owned[i] == id) {
                owned.erase(owned.begin() + i);
                return;
            }
    }

    bool
    readLine(std::string *line)
    {
        for (;;) {
            size_t nl = inbuf.find('\n');
            if (nl != std::string::npos) {
                *line = inbuf.substr(0, nl);
                inbuf.erase(0, nl + 1);
                if (!line->empty() && line->back() == '\r')
                    line->pop_back();
                return true;
            }
            char buf[4096];
            ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            inbuf.append(buf, static_cast<size_t>(n));
        }
    }
};

bool
Server::handleLine(Connection &conn, const std::string &line)
{
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty())
        return true; // blank keep-alive
    const std::string &cmd = tok[0];
    std::string error;

    // Commands addressing a session parse the id first.
    auto sessionArg = [&](size_t index, SessionId *id) -> bool {
        uint64_t v;
        if (tok.size() <= index || !parseU64(tok[index], &v) || v == 0) {
            conn.err("expected a session id");
            return false;
        }
        *id = v;
        return true;
    };

    if (cmd == "hello") {
        conn.ok("manticored proto=" + std::to_string(kProtocolVersion) +
                " workers=" + std::to_string(_scheduler.numWorkers()));
    } else if (cmd == "engines") {
        for (const engine::EngineInfo &info : engine::list())
            conn.payload(std::string(info.name) +
                         " available=" + (info.available ? "1" : "0") +
                         " " + info.description);
        conn.ok(std::to_string(engine::list().size()));
    } else if (cmd == "designs") {
        for (const DesignEntry &d : designCatalog())
            conn.payload(d.name +
                         " cycles=" + std::to_string(d.defaultCycles));
        conn.ok(std::to_string(designCatalog().size()));
    } else if (cmd == "new") {
        if (tok.size() < 3) {
            conn.err("usage: new <design> <engine> [lanes [horizon]]");
            return true;
        }
        const DesignEntry *design = findDesign(tok[1]);
        if (!design) {
            conn.err("no such design: " + tok[1]);
            return true;
        }
        uint64_t lanes = 1, horizon = design->defaultCycles;
        if (tok.size() > 3 &&
            (!parseU64(tok[3], &lanes) || lanes == 0 ||
             lanes > 0xFFFFFFFFull)) {
            // The range check guards the narrowing below: 2^32+1
            // must be an err, not silently one lane.
            conn.err("bad lane count: " + tok[3]);
            return true;
        }
        if (tok.size() > 4 && !parseU64(tok[4], &horizon)) {
            conn.err("bad horizon: " + tok[4]);
            return true;
        }
        engine::CreateOptions options;
        options.lanes = static_cast<unsigned>(lanes);
        SessionId id = _scheduler.createSession(
            tok[2], design->build(horizon), options, &error);
        if (id == 0) {
            conn.err(error);
            return true;
        }
        conn.owned.push_back(id);
        conn.ok(std::to_string(id));
    } else if (cmd == "run" || cmd == "runto") {
        SessionId id;
        uint64_t cycles;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() < 3 || !parseU64(tok[2], &cycles)) {
            conn.err("expected a cycle count");
            return true;
        }
        bool ok = cmd == "run"
                      ? _scheduler.submitRun(id, cycles, &error)
                      : _scheduler.submitRunTo(id, cycles, &error);
        ok ? conn.ok("queued") : conn.err(error);
    } else if (cmd == "poke") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() < 5) {
            conn.err("usage: poke <sid> <input> <lane|all> <hex>");
            return true;
        }
        unsigned lane = kAllLanes;
        if (tok[3] != "all" && !parseLane(tok[3], &lane)) {
            conn.err("bad lane: " + tok[3]);
            return true;
        }
        unsigned width = _scheduler.inputWidth(id, tok[2], &error);
        if (width == 0) {
            conn.err(error);
            return true;
        }
        BitVector value;
        if (!hexToBits(tok[4], width, &value)) {
            conn.err("bad value '" + tok[4] + "' for " +
                     std::to_string(width) + "-bit input " + tok[2] +
                     " (want " + std::to_string((width + 3) / 4) +
                     " hex digit(s))");
            return true;
        }
        _scheduler.submitPoke(id, tok[2], lane, value, &error)
            ? conn.ok("queued")
            : conn.err(error);
    } else if (cmd == "poll") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        PollResult r = _scheduler.poll(id);
        if (!r.exists) {
            conn.err("no such session: " + std::to_string(id));
            return true;
        }
        std::string detail =
            std::string("phase=") + phaseName(r.phase) +
            " status=" + engine::statusName(r.status) +
            " cycle=" + std::to_string(r.cycle) +
            " lanes=" + std::to_string(r.lanes) +
            " queued=" + std::to_string(r.queued) +
            " executing=" + (r.executing ? "1" : "0") +
            " done=" + std::to_string(r.completedRuns) +
            " of=" + std::to_string(r.submittedRuns) +
            " canceled=" + std::to_string(r.canceledRuns);
        if (!r.error.empty())
            conn.err(r.error + " (" + detail + ")");
        else
            conn.ok(detail);
    } else if (cmd == "wait") {
        SessionId id;
        uint64_t timeout = 0;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() > 2 && !parseU64(tok[2], &timeout)) {
            conn.err("bad timeout: " + tok[2]);
            return true;
        }
        // Slice the scheduler wait so a daemon shutdown (a signal, or
        // `shutdown` arriving on another connection) interrupts a
        // parked wait instead of leaving this connection thread — and
        // the join that reaps it — hung on a huge run.
        constexpr uint64_t kWaitSliceMs = 200;
        uint64_t left = timeout; // 0 = wait forever
        for (;;) {
            uint64_t slice = timeout == 0
                                 ? kWaitSliceMs
                                 : std::min(kWaitSliceMs, left);
            if (_scheduler.wait(id, slice)) {
                conn.ok("drained");
                break;
            }
            if (!_scheduler.poll(id).exists) {
                conn.err("no such session: " + std::to_string(id));
                break;
            }
            if (_stop && _stop->load()) {
                conn.err("server shutting down");
                break;
            }
            if (timeout != 0) {
                left -= slice;
                if (left == 0) {
                    conn.err("timeout");
                    break;
                }
            }
        }
    } else if (cmd == "probe") {
        SessionId id;
        unsigned lane;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() < 4 || !parseLane(tok[3], &lane)) {
            conn.err("usage: probe <sid> <signal> <lane>");
            return true;
        }
        BitVector value;
        if (!_scheduler.readProbe(id, tok[2], lane, &value,
                                  &error)) {
            conn.err(error);
            return true;
        }
        conn.ok(formatValue(value));
    } else if (cmd == "lanes") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        std::vector<LaneView> lanes = _scheduler.laneViews(id);
        for (size_t l = 0; l < lanes.size(); ++l) {
            std::string row =
                "lane=" + std::to_string(l) +
                " status=" + engine::statusName(lanes[l].status) +
                " cycle=" + std::to_string(lanes[l].cycle);
            if (!lanes[l].failureMessage.empty())
                row += " fail=" + lanes[l].failureMessage;
            conn.payload(row);
        }
        conn.ok(std::to_string(lanes.size()));
    } else if (cmd == "log") {
        SessionId id;
        unsigned lane = 0;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() > 2 && !parseLane(tok[2], &lane)) {
            conn.err("bad lane: " + tok[2]);
            return true;
        }
        for (const std::string &l : _scheduler.displayLog(id, lane))
            conn.payload(l);
        conn.ok();
    } else if (cmd == "meter") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        for (const engine::Stat &s : _scheduler.meter(id))
            conn.payload(s.name + " " + std::to_string(s.value));
        conn.ok();
    } else if (cmd == "cancel") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        _scheduler.cancel(id)
            ? conn.ok()
            : conn.err("no such session: " + std::to_string(id));
    } else if (cmd == "save") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        if (tok.size() < 3) {
            conn.err("usage: save <sid> <path>");
            return true;
        }
        std::string path = tok[2];
        if (!_saveDir.empty()) {
            // Confined mode: tenants name files, not paths — no
            // directory components, so a tenant cannot point the
            // daemon's write at an arbitrary server-side location.
            if (path.empty() || path == "." || path == ".." ||
                path.find('/') != std::string::npos) {
                conn.err("save is restricted to plain filenames "
                         "under the configured save dir (got '" +
                         path + "')");
                return true;
            }
            path = _saveDir + "/" + path;
        }
        _scheduler.saveCheckpoint(id, path, &error)
            ? conn.ok(path)
            : conn.err(error);
    } else if (cmd == "detach") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        conn.disown(id);
        conn.ok();
    } else if (cmd == "destroy") {
        SessionId id;
        if (!sessionArg(1, &id))
            return true;
        conn.disown(id);
        _scheduler.destroySession(id)
            ? conn.ok()
            : conn.err("no such session: " + std::to_string(id));
    } else if (cmd == "stats") {
        for (const engine::Stat &s : _scheduler.serviceStats())
            conn.payload(s.name + " " + std::to_string(s.value));
        conn.ok();
    } else if (cmd == "shutdown") {
        if (_stop)
            _stop->store(true);
        conn.ok(_stop ? "stopping" : "no server loop to stop");
        return false;
    } else if (cmd == "quit") {
        conn.ok("bye");
        return false;
    } else {
        conn.err("unknown command: " + cmd);
    }
    return true;
}

void
Server::serveConnection(int fd)
{
    Connection conn;
    conn.fd = fd;
    std::string line;
    bool more = true;
    while (more && conn.readLine(&line)) {
        conn.outbuf.clear();
        more = handleLine(conn, line);
        if (!writeAllFd(fd, conn.outbuf))
            break; // client went away mid-reply
    }
    for (SessionId id : conn.owned)
        _scheduler.destroySession(id);
    ::close(fd);
}

void
Server::serveStdio()
{
    // One connection over the stdio pipe pair; dup so the Connection
    // teardown close() does not close the process's stdin.
    int in = ::dup(0);
    Connection conn;
    conn.fd = in;
    std::string line;
    bool more = true;
    while (more && conn.readLine(&line)) {
        conn.outbuf.clear();
        more = handleLine(conn, line);
        if (!writeAllFd(1, conn.outbuf))
            break;
    }
    for (SessionId id : conn.owned)
        _scheduler.destroySession(id);
    ::close(in);
}

bool
Server::serveUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        MANTICORE_WARN("socket path too long: ", path);
        return false;
    }
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        MANTICORE_WARN("cannot create socket: ", std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 64) < 0) {
        MANTICORE_WARN("cannot bind ", path, ": ",
                       std::strerror(errno));
        ::close(listener);
        return false;
    }

    // One thread per live connection, reaped as connections finish:
    // a long-running daemon must not accumulate a joinable thread
    // (stack + handle) per client that ever came and went.
    struct ConnThread
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::vector<ConnThread> connections;
    auto reap = [&](bool all) {
        for (size_t i = 0; i < connections.size();) {
            if (all || connections[i].done->load()) {
                connections[i].thread.join();
                connections.erase(connections.begin() + i);
            } else {
                ++i;
            }
        }
    };
    while (!_stop || !_stop->load()) {
        // Poll with a timeout so the shutdown command (which a
        // connection thread handles) can stop the accept loop.
        pollfd pfd{listener, POLLIN, 0};
        int pr = ::poll(&pfd, 1, 200);
        reap(false);
        if (pr < 0 && errno != EINTR)
            break;
        if (pr <= 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread([this, fd, done] {
            serveConnection(fd);
            done->store(true);
        });
        connections.push_back({std::move(thread), std::move(done)});
    }
    reap(true);
    ::close(listener);
    ::unlink(path.c_str());
    return true;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::~Client() { close(); }

void
Client::close()
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
    _buf.clear();
}

bool
Client::connectTo(const std::string &path, std::string *error)
{
    close();
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error)
            *error = path + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    _fd = fd;
    return true;
}

void
Client::adopt(int fd)
{
    close();
    _fd = fd;
}

bool
Client::writeAll(const std::string &data)
{
    return _fd >= 0 && writeAllFd(_fd, data);
}

bool
Client::readLine(std::string *line)
{
    for (;;) {
        size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            *line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        ssize_t n = ::read(_fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        _buf.append(buf, static_cast<size_t>(n));
    }
}

Client::Reply
Client::request(const std::string &line)
{
    Reply reply;
    if (!writeAll(line + "\n")) {
        reply.detail = "connection closed";
        return reply;
    }
    std::string got;
    for (;;) {
        if (!readLine(&got)) {
            reply.lines.clear();
            reply.detail = "connection closed";
            return reply;
        }
        if (got.rfind("| ", 0) == 0) {
            reply.lines.push_back(got.substr(2));
            continue;
        }
        if (got == "ok" || got.rfind("ok ", 0) == 0) {
            reply.ok = true;
            reply.detail = got.size() > 3 ? got.substr(3) : "";
        } else if (got.rfind("err ", 0) == 0) {
            reply.detail = got.substr(4);
        } else {
            reply.detail = "malformed reply: " + got;
        }
        return reply;
    }
}

bool
Client::hello(std::string *detail)
{
    Reply r = request("hello");
    if (detail)
        *detail = r.detail;
    return r.ok;
}

SessionId
Client::newSession(const std::string &design, const std::string &engine,
                   unsigned lanes, uint64_t horizon, std::string *error)
{
    std::string req = "new " + design + " " + engine + " " +
                      std::to_string(lanes);
    if (horizon != 0)
        req += " " + std::to_string(horizon);
    Reply r = request(req);
    uint64_t id = 0;
    if (r.ok && parseU64(r.detail, &id))
        return id;
    if (error)
        *error = r.detail;
    return 0;
}

bool
Client::run(SessionId id, uint64_t cycles, std::string *error)
{
    Reply r = request("run " + std::to_string(id) + " " +
                      std::to_string(cycles));
    if (!r.ok && error)
        *error = r.detail;
    return r.ok;
}

bool
Client::poke(SessionId id, const std::string &input, unsigned lane,
             const BitVector &value, std::string *error)
{
    std::string lane_tok =
        lane == kAllLanes ? "all" : std::to_string(lane);
    Reply r = request("poke " + std::to_string(id) + " " + input + " " +
                      lane_tok + " " + bitsToHex(value));
    if (!r.ok && error)
        *error = r.detail;
    return r.ok;
}

Client::Poll
Client::poll(SessionId id)
{
    Poll p;
    Reply r = request("poll " + std::to_string(id));
    if (!r.ok)
        return p;
    p.ok = true;
    for (const std::string &tok : tokenize(r.detail)) {
        size_t eq = tok.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        uint64_t num = 0;
        parseU64(val, &num);
        if (key == "phase")
            p.phase = val;
        else if (key == "status")
            p.status = val;
        else if (key == "cycle")
            p.cycle = num;
        else if (key == "lanes")
            p.lanes = static_cast<unsigned>(num);
        else if (key == "queued")
            p.queued = num;
        else if (key == "executing")
            p.executing = num != 0;
        else if (key == "done")
            p.done = num;
        else if (key == "of")
            p.of = num;
    }
    return p;
}

bool
Client::wait(SessionId id, uint64_t timeout_ms)
{
    std::string req = "wait " + std::to_string(id);
    if (timeout_ms != 0)
        req += " " + std::to_string(timeout_ms);
    return request(req).ok;
}

bool
Client::probe(SessionId id, const std::string &signal, unsigned lane,
              BitVector *out, std::string *error)
{
    Reply r = request("probe " + std::to_string(id) + " " + signal +
                      " " + std::to_string(lane));
    if (!r.ok) {
        if (error)
            *error = r.detail;
        return false;
    }
    if (!parseValue(r.detail, out)) {
        if (error)
            *error = "malformed value: " + r.detail;
        return false;
    }
    return true;
}

std::vector<std::string>
Client::displayLog(SessionId id, unsigned lane)
{
    return request("log " + std::to_string(id) + " " +
                   std::to_string(lane))
        .lines;
}

namespace {

std::vector<std::pair<std::string, uint64_t>>
parseStatLines(const std::vector<std::string> &lines)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const std::string &l : lines) {
        size_t sp = l.rfind(' ');
        if (sp == std::string::npos)
            continue;
        uint64_t v = 0;
        if (!parseU64(l.substr(sp + 1), &v))
            continue;
        out.emplace_back(l.substr(0, sp), v);
    }
    return out;
}

} // namespace

std::vector<std::pair<std::string, uint64_t>>
Client::meter(SessionId id)
{
    return parseStatLines(request("meter " + std::to_string(id)).lines);
}

std::vector<std::pair<std::string, uint64_t>>
Client::serviceStats()
{
    return parseStatLines(request("stats").lines);
}

bool
Client::cancel(SessionId id)
{
    return request("cancel " + std::to_string(id)).ok;
}

bool
Client::detach(SessionId id)
{
    return request("detach " + std::to_string(id)).ok;
}

bool
Client::destroy(SessionId id)
{
    return request("destroy " + std::to_string(id)).ok;
}

bool
Client::shutdownServer()
{
    return request("shutdown").ok;
}

} // namespace manticore::service
