/**
 * @file
 * Parallelisation (§6.1 of the paper): split the monolithic lowered
 * process into a maximal set of tiny processes (one backward cone per
 * sink, with node duplication), then merge them down to the core
 * count.
 *
 * Splitting constraints mirror the paper: all instructions touching
 * the same memory stay together, all privileged instructions stay
 * together, and register-commit MOVs are owned by exactly one process.
 * Cross-process dataflow is therefore restricted to end-of-Vcycle
 * register updates, which materialise as SEND instructions.
 *
 * Two merge strategies are provided: the communication-aware balanced
 * heuristic (B) the paper contributes, and the communication-oblivious
 * longest-processing-time-first baseline (L) it compares against
 * (§7.8.1 / Fig. 9 / Table 4).
 */

#ifndef MANTICORE_COMPILER_PARTITION_HH
#define MANTICORE_COMPILER_PARTITION_HH

#include <cstdint>
#include <vector>

#include "compiler/lowered.hh"
#include "support/mergealgo.hh"

namespace manticore::compiler {

/// Merge strategy (B / L); the enum is shared with the netlist-level
/// partitioner (netlist/partition.hh) so harnesses sweep one knob.
using MergeAlgo = ::manticore::MergeAlgo;

struct PartitionStats
{
    /// Split-graph size before merging (Table 8's |V| and |E|).
    size_t splitProcesses = 0;
    size_t splitEdges = 0;
    /// After merging.
    size_t mergedProcesses = 0;
    /// Estimated SEND count of the final partition (Table 4).
    size_t estimatedSends = 0;
    /// Estimated cost (instructions + sends) of the straggler.
    size_t estimatedMaxCost = 0;
};

struct Partition
{
    /// Per final process: sorted indices into LoweredProgram::body.
    /// Free instructions may appear in several processes (duplication).
    std::vector<std::vector<uint32_t>> processes;
    /// Index of the process holding privileged instructions (-1 when
    /// the design has none).
    int privileged = -1;
    PartitionStats stats;
};

/** Split and merge; num_cores bounds the final process count. */
Partition partition(const LoweredProgram &program, unsigned num_cores,
                    MergeAlgo algo);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_PARTITION_HH
