/**
 * @file
 * The monolithic lower-assembly program produced by the lowering pass
 * (§6, step 3 of the paper): a single SSA process whose 16-bit
 * instructions match Manticore's datapath, plus the metadata the later
 * passes (optimisation, partitioning, scheduling, register allocation)
 * need: constant pool, RTL-register chunk bookkeeping, memory
 * allocations, and per-instruction memory/privilege tags.
 */

#ifndef MANTICORE_COMPILER_LOWERED_HH
#define MANTICORE_COMPILER_LOWERED_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/isa.hh"
#include "netlist/netlist.hh"

namespace manticore::compiler {

/** Scratchpad or DRAM allocation of one netlist memory. */
struct MemAlloc
{
    netlist::MemId mem = 0;
    /// When the memory does not fit the on-chip scratchpad budget it
    /// lowers to privileged GLD/GST through the cache (§5.3, §7.7).
    bool global = false;
    /// Scratch-resident: boot-constant register holding the base; its
    /// value is assigned after partitioning fixes per-core layouts.
    isa::Reg baseReg = isa::kNoReg;
    /// DRAM-resident: the fixed global word base.
    uint64_t globalBase = 0;
    /// 16-bit words per element (ceil(width/16)).
    unsigned wordsPerElement = 0;
    /// Total words (depth * wordsPerElement).
    uint64_t words = 0;
    /// Initial contents, chunked little-endian.
    std::vector<uint16_t> image;
};

/** One 16-bit chunk of an RTL register: its stable current-value
 *  register, the SSA next value, and the MOV that commits it. */
struct RegChunkInfo
{
    isa::Reg current = isa::kNoReg;
    isa::Reg next = isa::kNoReg;
    /// Index of the committing MOV in LoweredProgram::body.
    uint32_t movIndex = 0;
};

struct LoweredProgram
{
    /// Topologically ordered instruction sequence (virtual registers).
    std::vector<isa::Instruction> body;
    /// Per-instruction netlist memory id, or -1: instructions tagged
    /// with the same memory must live in the same process (§6.1).
    std::vector<int> memGroup;
    /// Per-instruction privileged flag (GLD/GST/EXPECT and the PREDs
    /// guarding privileged stores).
    std::vector<bool> privileged;

    /// Boot-time register constants: the constant pool, RTL register
    /// initial values, and (placeholder) memory base registers.
    std::unordered_map<isa::Reg, uint16_t> init;
    /// The subset of init registers that are true compile-time
    /// constants (eligible for folding into CFU truth tables).
    std::unordered_set<isa::Reg> constRegs;

    std::vector<MemAlloc> memAllocs;
    /// Per netlist register: chunk bookkeeping (index parallels
    /// netlist::Netlist::registers()).
    std::vector<std::vector<RegChunkInfo>> rtlRegs;

    isa::ExceptionTable exceptions;
    uint64_t globalWordsReserved = 0;
    /// Boot image of DRAM-resident memories.
    std::vector<std::pair<uint64_t, uint16_t>> globalInit;

    /// First virtual register id not yet used.
    isa::Reg nextVirtualReg = 0;

    /// Instruction count excluding NOPs (there are none here, so the
    /// body size; kept for symmetry with later stages).
    size_t instructionCount() const { return body.size(); }
};

/** Lower a validated netlist into a monolithic process.  The netlist
 *  must be closed (no free Input nodes) and memory depths must be
 *  powers of two (addresses are masked, matching the reference
 *  evaluator's modulo semantics).  Memories larger than
 *  scratch_budget words are placed in DRAM behind the privileged
 *  core's cache instead of a scratchpad. */
LoweredProgram lower(const netlist::Netlist &netlist,
                     unsigned scratch_budget = 16384);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_LOWERED_HH
