/**
 * @file
 * Backend optimisations on the monolithic lowered program (§6 step 4):
 * constant folding, algebraic simplification, common-subexpression
 * elimination, and dead-code elimination.  Run before partitioning so
 * the parallelisation cost model sees the real instruction counts.
 */

#ifndef MANTICORE_COMPILER_OPT_HH
#define MANTICORE_COMPILER_OPT_HH

#include "compiler/lowered.hh"

namespace manticore::compiler {

struct OptStats
{
    size_t instructionsBefore = 0;
    size_t instructionsAfter = 0;
    size_t folded = 0;
    size_t csed = 0;
    size_t deadRemoved = 0;
};

/** Run constant folding + CSE to a fixpoint, then DCE, in place. */
OptStats optimize(LoweredProgram &program);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_OPT_HH
