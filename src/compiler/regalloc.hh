/**
 * @file
 * Linear-scan register allocation onto the 2048-entry register file
 * (§6.3 of the paper).  Boot-initialised registers (constants, RTL
 * current values, memory bases) are persistent; SSA temporaries are
 * allocated by interval.  The paper's current/next coalescing is
 * applied: when every reader of an RTL register's current value issues
 * before the next value's writeback, both share one machine register
 * and the committing MOV degenerates to a NOP (its slot is kept to
 * preserve the schedule).
 */

#ifndef MANTICORE_COMPILER_REGALLOC_HH
#define MANTICORE_COMPILER_REGALLOC_HH

#include "compiler/draft.hh"
#include "isa/config.hh"

namespace manticore::compiler {

struct RegAllocStats
{
    unsigned maxMachineRegs = 0; ///< peak over all processes
    unsigned coalescedMovs = 0;
    unsigned persistentRegs = 0; ///< peak boot-register count
};

/** Rewrite the scheduled draft from virtual to machine registers
 *  (including SEND targets, which name registers in the receiving
 *  core).  fatal() when a process exceeds the register file. */
RegAllocStats allocateRegisters(ProgramDraft &draft,
                                const isa::MachineConfig &config);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_REGALLOC_HH
