/**
 * @file
 * Static scheduling, placement, and NoC routing (§6.3 of the paper).
 *
 * The scheduler performs an abstract cycle-accurate simulation of one
 * Vcycle: every process advances one slot per machine cycle; an
 * instruction issues when its data dependencies have cleared the
 * pipeline (operand-to-result latency) and its ordering chains
 * (memory read-before-write, PRED/store/privileged serialisation,
 * current-value WAR before the committing MOV) are satisfied.  SENDs
 * additionally reserve every link of their dimension-ordered route on
 * the unidirectional torus; a SEND that would collide is delayed —
 * this is what guarantees the bufferless switches never drop messages
 * (§5.2).  Unissuable slots become NOPs.
 *
 * The resulting Vcycle length (VCPL: max body+epilogue, bounded below
 * by the latest message arrival, plus a drain window for writeback) is
 * the figure of merit the paper reports throughout §7.
 */

#ifndef MANTICORE_COMPILER_SCHEDULE_HH
#define MANTICORE_COMPILER_SCHEDULE_HH

#include "compiler/draft.hh"
#include "isa/config.hh"

namespace manticore::compiler {

struct ScheduleStats
{
    unsigned vcpl = 0;
    unsigned maxBodyLength = 0;
    uint64_t totalInstructions = 0; ///< non-NOP over all cores
    uint64_t totalSends = 0;
    uint64_t totalNops = 0;         ///< padding NOPs over all cores
    /// Straggler (the core that defines the VCPL) breakdown (Fig. 9).
    uint32_t stragglerPid = 0;
    unsigned stragglerCompute = 0;
    unsigned stragglerSend = 0;
    unsigned stragglerNop = 0;
    unsigned stragglerCust = 0;     ///< CUSTs within compute (Fig. 10)
    unsigned latestArrival = 0;
};

/** Schedule the draft in place: pads bodies with NOPs, fills
 *  placement, epilogue lengths, and Program::vcpl.
 *
 *  enforce_imem_limit=false produces VCPL *predictions* for
 *  configurations whose bodies exceed the instruction memory — the
 *  paper does exactly this for Fig. 7's single-core baselines, which
 *  cannot run on the prototype. */
ScheduleStats scheduleProgram(ProgramDraft &draft,
                              const isa::MachineConfig &config,
                              bool enforce_imem_limit = true);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_SCHEDULE_HH
