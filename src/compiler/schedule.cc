#include "compiler/schedule.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

namespace {

constexpr uint32_t kUnscheduled = 0xffffffffu;

struct Edge
{
    uint32_t to;
    unsigned latency; ///< pipeline latency for data, 1 for ordering
};

bool
isStoreChain(Opcode op)
{
    // Ordering chain shared by predication state and global-stall
    // order: PRED, predicated stores, and privileged instructions all
    // serialise in body order.
    return op == Opcode::Pred || op == Opcode::Lst || op == Opcode::Gst ||
           op == Opcode::Gld || op == Opcode::Expect;
}

/** Per-process dependence graph + scheduling state. */
struct ProcSched
{
    std::vector<std::vector<Edge>> succs;
    std::vector<unsigned> indegree;
    std::vector<uint64_t> readyAt; ///< earliest issue cycle
    std::vector<uint64_t> height;  ///< critical-path priority
    std::vector<uint32_t> slotOf;  ///< issue slot per instruction
    /// Ready instructions (indices), kept sorted by priority lazily.
    std::vector<uint32_t> ready;
    size_t scheduledCount = 0;
    std::vector<Instruction> out; ///< padded body
};

/** Dimension-ordered route on the unidirectional torus: +X to the
 *  target column, then +Y to the target row.  Returns link ids. */
std::vector<uint32_t>
routeLinks(unsigned x1, unsigned y1, unsigned x2, unsigned y2,
           unsigned grid_x, unsigned grid_y)
{
    std::vector<uint32_t> links;
    unsigned x = x1, y = y1;
    while (x != x2) {
        links.push_back((y * grid_x + x) * 2 + 0);
        x = (x + 1) % grid_x;
    }
    while (y != y2) {
        links.push_back((y * grid_x + x) * 2 + 1);
        y = (y + 1) % grid_y;
    }
    return links;
}

} // namespace

ScheduleStats
scheduleProgram(ProgramDraft &draft, const isa::MachineConfig &config,
                bool enforce_imem_limit)
{
    isa::Program &program = draft.program;
    size_t np = program.processes.size();
    MANTICORE_ASSERT(np <= config.numCores(), "more processes than cores");
    unsigned latency = config.pipelineLatency;

    // --- Placement: privileged process at (0,0), the rest row-major.
    program.placement.assign(np, {0, 0});
    {
        unsigned x = 0, y = 0;
        auto advance = [&]() {
            if (++x == config.gridX) {
                x = 0;
                ++y;
            }
        };
        advance(); // (0,0) is reserved for process 0
        for (size_t p = 0; p < np; ++p) {
            if (p == 0)
                continue;
            program.placement[p] = {x, y};
            advance();
        }
    }

    // --- Build per-process dependence graphs.
    std::vector<ProcSched> sched(np);
    for (size_t p = 0; p < np; ++p) {
        const isa::Process &proc = program.processes[p];
        size_t n = proc.body.size();
        ProcSched &ps = sched[p];
        ps.succs.resize(n);
        ps.indegree.assign(n, 0);
        ps.readyAt.assign(n, 0);
        ps.slotOf.assign(n, kUnscheduled);

        auto add_edge = [&](uint32_t from, uint32_t to, unsigned lat) {
            ps.succs[from].push_back({to, lat});
            ps.indegree[to]++;
        };

        // Data edges.  MOV destinations (current values) are excluded
        // from the def map: their readers consume the previous
        // Vcycle's value, modelled as WAR edges below.
        std::unordered_map<Reg, uint32_t> def;
        for (size_t i = 0; i < n; ++i) {
            const Instruction &inst = proc.body[i];
            Reg d = inst.opcode == Opcode::Send ? kNoReg
                                                : inst.destination();
            if (d != kNoReg && inst.opcode != Opcode::Mov)
                def[d] = static_cast<uint32_t>(i);
        }
        std::unordered_map<Reg, std::vector<uint32_t>> current_readers;
        for (size_t i = 0; i < n; ++i) {
            const Instruction &inst = proc.body[i];
            for (Reg s : inst.sources()) {
                auto it = def.find(s);
                if (it != def.end() && it->second != i)
                    add_edge(it->second, static_cast<uint32_t>(i),
                             latency);
                if (draft.currentRegs.count(s))
                    current_readers[s].push_back(
                        static_cast<uint32_t>(i));
            }
        }

        // WAR: the committing MOV of a current value issues after all
        // of its in-process readers.
        for (size_t i = 0; i < n; ++i) {
            const Instruction &inst = proc.body[i];
            if (inst.opcode != Opcode::Mov)
                continue;
            auto it = current_readers.find(inst.rd);
            if (it == current_readers.end())
                continue;
            for (uint32_t reader : it->second)
                if (reader != i)
                    add_edge(reader, static_cast<uint32_t>(i), 1);
        }

        // Store/privilege chain, and RTL memory read-before-write.
        uint32_t prev_chain = kUnscheduled;
        std::unordered_map<int, uint32_t> first_store_of_mem;
        std::unordered_map<int, std::vector<uint32_t>> loads_of_mem;
        for (size_t i = 0; i < n; ++i) {
            const Instruction &inst = proc.body[i];
            if (isStoreChain(inst.opcode)) {
                if (prev_chain != kUnscheduled)
                    add_edge(prev_chain, static_cast<uint32_t>(i), 1);
                prev_chain = static_cast<uint32_t>(i);
            }
            int m = draft.meta[p].memGroup[i];
            if (inst.opcode == Opcode::Lld && m >= 0)
                loads_of_mem[m].push_back(static_cast<uint32_t>(i));
            if (inst.opcode == Opcode::Lst && m >= 0 &&
                !first_store_of_mem.count(m))
                first_store_of_mem[m] = static_cast<uint32_t>(i);
        }
        for (auto &[m, first_store] : first_store_of_mem)
            for (uint32_t load : loads_of_mem[m])
                add_edge(load, first_store, 1);

        // Priorities: longest path to any sink (edges are forward in
        // body order, so a reverse sweep is a topological order).
        ps.height.assign(n, 0);
        for (size_t i = n; i-- > 0;) {
            for (const Edge &e : ps.succs[i])
                ps.height[i] = std::max(ps.height[i],
                                        ps.height[e.to] + e.latency);
        }

        for (size_t i = 0; i < n; ++i)
            if (ps.indegree[i] == 0)
                ps.ready.push_back(static_cast<uint32_t>(i));
    }

    // --- Global abstract simulation with NoC link reservations.
    std::unordered_set<uint64_t> link_busy; // linkId << 32 | cycle
    ScheduleStats stats;

    uint64_t cycle = 0;
    size_t done = 0;
    std::vector<size_t> remaining(np);
    for (size_t p = 0; p < np; ++p) {
        remaining[p] = program.processes[p].body.size();
        if (remaining[p] == 0)
            ++done;
    }

    while (done < np) {
        MANTICORE_ASSERT(cycle < 50'000'000, "scheduler livelock");
        for (size_t p = 0; p < np; ++p) {
            if (remaining[p] == 0)
                continue;
            ProcSched &ps = sched[p];
            const isa::Process &proc = program.processes[p];

            // Pick the ready instruction with the greatest height whose
            // readyAt has passed; SENDs must also reserve their route.
            int best = -1;
            uint64_t best_height = 0;
            for (size_t k = 0; k < ps.ready.size(); ++k) {
                uint32_t i = ps.ready[k];
                if (ps.readyAt[i] > cycle)
                    continue;
                if (best != -1 && ps.height[i] <= best_height)
                    continue;
                const Instruction &inst = proc.body[i];
                if (inst.opcode == Opcode::Send) {
                    auto [sx, sy] = program.placement[p];
                    auto [tx, ty] = program.placement[inst.target];
                    std::vector<uint32_t> links = routeLinks(
                        sx, sy, tx, ty, config.gridX, config.gridY);
                    uint64_t entry = cycle + config.sendInjectLatency;
                    bool free = true;
                    for (size_t h = 0; h < links.size(); ++h) {
                        uint64_t key =
                            (static_cast<uint64_t>(links[h]) << 32) |
                            (entry + h * config.hopLatency);
                        if (link_busy.count(key)) {
                            free = false;
                            break;
                        }
                    }
                    if (!free)
                        continue;
                }
                best = static_cast<int>(k);
                best_height = ps.height[i];
            }

            uint32_t slot = static_cast<uint32_t>(ps.out.size());
            if (best == -1) {
                ps.out.push_back(Instruction{}); // NOP
                continue;
            }

            uint32_t i = ps.ready[best];
            ps.ready.erase(ps.ready.begin() + best);
            const Instruction &inst = proc.body[i];
            ps.slotOf[i] = slot;
            ps.out.push_back(inst);
            --remaining[p];
            if (remaining[p] == 0)
                ++done;

            if (inst.opcode == Opcode::Send) {
                auto [sx, sy] = program.placement[p];
                auto [tx, ty] = program.placement[inst.target];
                std::vector<uint32_t> links =
                    routeLinks(sx, sy, tx, ty, config.gridX,
                               config.gridY);
                uint64_t entry = cycle + config.sendInjectLatency;
                for (size_t h = 0; h < links.size(); ++h)
                    link_busy.insert(
                        (static_cast<uint64_t>(links[h]) << 32) |
                        (entry + h * config.hopLatency));
                unsigned arrival = static_cast<unsigned>(
                    entry + links.size() * config.hopLatency);
                stats.latestArrival =
                    std::max(stats.latestArrival, arrival);
            }

            for (const Edge &e : ps.succs[i]) {
                ps.readyAt[e.to] = std::max(
                    ps.readyAt[e.to],
                    static_cast<uint64_t>(slot) + e.latency);
                if (--ps.indegree[e.to] == 0)
                    ps.ready.push_back(e.to);
            }
        }
        ++cycle;
    }

    // --- Assemble padded bodies, compute the VCPL.
    unsigned vcpl = 0;
    uint32_t straggler = 0;
    for (size_t p = 0; p < np; ++p) {
        // Trim trailing NOPs: they are subsumed by the sleep window.
        auto &out = sched[p].out;
        while (!out.empty() && out.back().opcode == Opcode::Nop)
            out.pop_back();
        unsigned len = static_cast<unsigned>(out.size()) +
                       program.processes[p].epilogueLength;
        if (enforce_imem_limit) {
            MANTICORE_ASSERT(len <= config.imemSize,
                             "process ", p, " needs ", len,
                             " instruction slots (imem is ",
                             config.imemSize, ")");
        }
        if (len > vcpl) {
            vcpl = len;
            straggler = static_cast<uint32_t>(p);
        }
    }
    vcpl = std::max(vcpl, stats.latestArrival + 1);
    vcpl += latency; // drain/sleep window so all writebacks commit

    for (size_t p = 0; p < np; ++p) {
        program.processes[p].body = std::move(sched[p].out);
        for (const Instruction &inst : program.processes[p].body) {
            if (inst.opcode == Opcode::Nop)
                ++stats.totalNops;
            else
                ++stats.totalInstructions;
            if (inst.opcode == Opcode::Send)
                ++stats.totalSends;
        }
        stats.maxBodyLength = std::max(
            stats.maxBodyLength,
            static_cast<unsigned>(program.processes[p].body.size()));
    }

    program.vcpl = vcpl;
    stats.vcpl = vcpl;
    stats.stragglerPid = straggler;
    for (const Instruction &inst : program.processes[straggler].body) {
        if (inst.opcode == Opcode::Nop)
            continue;
        if (inst.opcode == Opcode::Send)
            ++stats.stragglerSend;
        else
            ++stats.stragglerCompute;
        if (inst.opcode == Opcode::Cust)
            ++stats.stragglerCust;
    }
    stats.stragglerNop =
        vcpl - stats.stragglerSend - stats.stragglerCompute;
    return stats;
}

} // namespace manticore::compiler
