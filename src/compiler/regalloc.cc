#include "compiler/regalloc.hh"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

namespace {

struct ProcAlloc
{
    std::unordered_map<Reg, Reg> map; ///< virtual -> machine
    unsigned used = 0;
};

} // namespace

RegAllocStats
allocateRegisters(ProgramDraft &draft, const isa::MachineConfig &config)
{
    RegAllocStats stats;
    isa::Program &program = draft.program;
    std::vector<ProcAlloc> allocs(program.processes.size());

    for (size_t p = 0; p < program.processes.size(); ++p) {
        isa::Process &proc = program.processes[p];
        ProcAlloc &pa = allocs[p];

        // 1. Persistent boot registers, in sorted order for
        //    determinism.
        std::vector<Reg> boot;
        for (const auto &[reg, v] : proc.init)
            boot.push_back(reg);
        std::sort(boot.begin(), boot.end());
        Reg next_machine = 0;
        for (Reg r : boot)
            pa.map[r] = next_machine++;
        stats.persistentRegs =
            std::max(stats.persistentRegs, next_machine);

        // 2. Definition and last-use slots of SSA temporaries
        //    (slot == body index after scheduling).
        std::unordered_map<Reg, uint32_t> def_slot;
        std::unordered_map<Reg, uint32_t> last_use;
        std::unordered_map<Reg, std::vector<uint32_t>> current_reads;
        for (size_t i = 0; i < proc.body.size(); ++i) {
            const Instruction &inst = proc.body[i];
            for (Reg s : inst.sources()) {
                last_use[s] = static_cast<uint32_t>(i);
                if (draft.currentRegs.count(s))
                    current_reads[s].push_back(static_cast<uint32_t>(i));
            }
            Reg d = inst.opcode == Opcode::Send ? kNoReg
                                                : inst.destination();
            if (d != kNoReg && inst.opcode != Opcode::Mov &&
                !proc.init.count(d))
                def_slot.emplace(d, static_cast<uint32_t>(i));
        }

        // 3. Current/next coalescing: MOV rd (current) and rs1 (next)
        //    share a register when all current readers issue before the
        //    next value's writeback commits.
        std::unordered_map<Reg, Reg> coalesced; // next -> machine reg
        for (size_t i = 0; i < proc.body.size(); ++i) {
            Instruction &inst = proc.body[i];
            if (inst.opcode != Opcode::Mov)
                continue;
            Reg current = inst.rd;
            Reg next = inst.rs1;
            if (proc.init.count(next) || coalesced.count(next))
                continue; // constant next, or already aliased
            auto ds = def_slot.find(next);
            if (ds == def_slot.end())
                continue;
            // Every reader of the current value must issue before the
            // next value is even defined.  (The hardware would allow
            // readers up to def+latency — the writeback window — but
            // the in-order functional interpreter would observe the
            // new value there, so we keep the engines equivalent.)
            bool ok = true;
            auto cr = current_reads.find(current);
            if (cr != current_reads.end())
                for (uint32_t reader : cr->second)
                    ok &= reader < ds->second;
            if (!ok)
                continue;
            coalesced[next] = pa.map.at(current);
            ++stats.coalescedMovs;
            inst = Instruction{}; // NOP; slot preserved
        }
        for (auto &[next, machine] : coalesced) {
            pa.map[next] = machine;
            def_slot.erase(next);
        }

        // 4. Linear scan over remaining temporaries in slot order.
        std::vector<std::pair<uint32_t, Reg>> defs;
        for (auto &[reg, slot] : def_slot)
            defs.emplace_back(slot, reg);
        std::sort(defs.begin(), defs.end());

        // Active intervals ordered by expiry (last use).
        std::priority_queue<std::pair<uint32_t, Reg>,
                            std::vector<std::pair<uint32_t, Reg>>,
                            std::greater<>>
            active;
        std::vector<Reg> free_pool;
        unsigned high_water = next_machine;

        for (auto [slot, reg] : defs) {
            while (!active.empty() && active.top().first <= slot) {
                free_pool.push_back(active.top().second);
                active.pop();
            }
            Reg machine;
            if (!free_pool.empty()) {
                machine = free_pool.back();
                free_pool.pop_back();
            } else {
                machine = high_water++;
            }
            pa.map[reg] = machine;
            auto lu = last_use.find(reg);
            uint32_t expiry = lu == last_use.end() ? slot : lu->second;
            active.emplace(expiry, machine);
        }
        pa.used = high_water;
        stats.maxMachineRegs = std::max(stats.maxMachineRegs, high_water);
        if (high_water > config.regFileSize)
            MANTICORE_FATAL("process ", p, " needs ", high_water,
                            " machine registers (register file has ",
                            config.regFileSize, ")");
    }

    // Rewrite the observation map to machine registers.
    for (auto &chunks : draft.regChunkHome)
        for (auto &home : chunks)
            home.reg = allocs[home.process].map.at(home.reg);

    // 5. Rewrite operands; SEND destinations use the *target*
    //    process's mapping.
    for (size_t p = 0; p < program.processes.size(); ++p) {
        isa::Process &proc = program.processes[p];
        ProcAlloc &pa = allocs[p];
        auto remap = [&](Reg &r, const ProcAlloc &alloc) {
            if (r == kNoReg)
                return;
            auto it = alloc.map.find(r);
            MANTICORE_ASSERT(it != alloc.map.end(),
                             "unmapped register $r", r, " in process ",
                             p);
            r = it->second;
        };
        for (Instruction &inst : proc.body) {
            if (inst.opcode == Opcode::Nop)
                continue;
            remap(inst.rs1, pa);
            remap(inst.rs2, pa);
            remap(inst.rs3, pa);
            remap(inst.rs4, pa);
            if (inst.opcode == Opcode::Send)
                remap(inst.rd, allocs[inst.target]);
            else if (inst.rd != kNoReg)
                remap(inst.rd, pa);
        }
        // Boot constants move to machine names.
        std::unordered_map<Reg, uint16_t> new_init;
        for (const auto &[reg, v] : proc.init)
            new_init[pa.map.at(reg)] = v;
        proc.init = std::move(new_init);
    }

    return stats;
}

} // namespace manticore::compiler
