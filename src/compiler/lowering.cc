/**
 * @file
 * The lowering pass: word-level netlist -> monolithic 16-bit lower
 * assembly (§6 step 3).  Arbitrary-width operations become chunked
 * sequences over the 16-bit datapath: adds/subs ripple through the
 * register file's carry bit (ADDC/SUBB), multiplies expand into
 * schoolbook partial products, comparisons into chunk chains of
 * SEQ/SLTU plus logic, constant shifts into slice/shift/or assemblies,
 * dynamic shifts into mux trees, memories into scratchpad LLD/LST with
 * PRED-guarded stores, and $display/$finish/assertions into predicated
 * global stores plus EXPECT exceptions.
 */

#include "compiler/lowered.hh"

#include <algorithm>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::OpKind;

namespace {

unsigned
chunksOf(unsigned width)
{
    return (width + 15) / 16;
}

/** Logical bit count of the top chunk. */
unsigned
topBits(unsigned width)
{
    unsigned rem = width % 16;
    return rem == 0 ? 16 : rem;
}

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

class Lowerer
{
  public:
    Lowerer(const Netlist &nl, unsigned scratch_budget)
        : _nl(nl), _scratchBudget(scratch_budget)
    {}

    LoweredProgram run();

  private:
    Reg newReg() { return _out.nextVirtualReg++; }

    Reg
    constReg(uint16_t value)
    {
        auto it = _constPool.find(value);
        if (it != _constPool.end())
            return it->second;
        Reg r = newReg();
        _out.init[r] = value;
        _out.constRegs.insert(r);
        _constPool[value] = r;
        return r;
    }

    /** Append an instruction producing a fresh register. */
    Reg
    emit(Opcode op, Reg rs1 = kNoReg, Reg rs2 = kNoReg, Reg rs3 = kNoReg,
         Reg rs4 = kNoReg, uint16_t imm = 0)
    {
        Instruction inst;
        inst.opcode = op;
        inst.rd = newReg();
        inst.rs1 = rs1;
        inst.rs2 = rs2;
        inst.rs3 = rs3;
        inst.rs4 = rs4;
        inst.imm = imm;
        _out.body.push_back(inst);
        _out.memGroup.push_back(_memTag);
        _out.privileged.push_back(_privTag);
        return inst.rd;
    }

    /** Append an instruction with no (fresh) destination. */
    void
    emitRaw(Instruction inst)
    {
        _out.body.push_back(inst);
        _out.memGroup.push_back(_memTag);
        _out.privileged.push_back(_privTag);
    }

    std::vector<Reg>
    constChunks(const BitVector &value)
    {
        unsigned n = chunksOf(value.width());
        std::vector<Reg> regs(n);
        for (unsigned c = 0; c < n; ++c) {
            unsigned len = std::min(16u, value.width() - 16 * c);
            regs[c] = constReg(
                static_cast<uint16_t>(value.slice(16 * c, len).toUint64()));
        }
        return regs;
    }

    /** AND the top chunk with the width mask if it has garbage room. */
    void
    maskTop(std::vector<Reg> &chunks, unsigned width)
    {
        unsigned tb = topBits(width);
        if (tb < 16) {
            uint16_t mask = static_cast<uint16_t>((1u << tb) - 1);
            chunks.back() =
                emit(Opcode::And, chunks.back(), constReg(mask));
        }
    }

    std::vector<Reg> lowerAdd(const std::vector<Reg> &a,
                              const std::vector<Reg> &b, unsigned width,
                              bool subtract);
    std::vector<Reg> lowerMul(const std::vector<Reg> &a,
                              const std::vector<Reg> &b, unsigned width);
    Reg wideEq(const std::vector<Reg> &a, const std::vector<Reg> &b);
    Reg wideUlt(const std::vector<Reg> &a, const std::vector<Reg> &b);

    /** Chunks of src << amt, width-preserving over out_width bits,
     *  zero-extending src as needed.  Emits no code for pure chunk
     *  remaps. */
    std::vector<Reg> shiftLeftConst(const std::vector<Reg> &src,
                                    unsigned out_width, unsigned amt);
    /** Chunks of src >> amt over the source width (caller truncates). */
    std::vector<Reg> shiftRightConst(const std::vector<Reg> &src,
                                     unsigned src_width, unsigned amt);

    std::vector<Reg> lowerDynShift(NodeId node, bool left);

    void lowerNode(NodeId id);
    void lowerMemWrites();
    void lowerSideEffects();
    void lowerRegisterCommits();

    /** Scratch-resident memories: register holding base + scaled
     *  element offset (single 16-bit address). */
    Reg memElementAddr(netlist::MemId mem, NodeId addr_node);

    /** DRAM-resident memories: (lo, hi) register pair holding the
     *  32-bit global word address of the element. */
    std::pair<Reg, Reg> memElementAddrGlobal(netlist::MemId mem,
                                             NodeId addr_node);

    const Netlist &_nl;
    unsigned _scratchBudget;
    LoweredProgram _out;
    std::vector<std::vector<Reg>> _chunks;
    std::unordered_map<uint16_t, Reg> _constPool;
    int _memTag = -1;
    bool _privTag = false;
};

std::vector<Reg>
Lowerer::lowerAdd(const std::vector<Reg> &a, const std::vector<Reg> &b,
                  unsigned width, bool subtract)
{
    std::vector<Reg> out(a.size());
    Reg carry_src = kNoReg;
    for (size_t c = 0; c < a.size(); ++c) {
        Opcode op;
        if (c == 0)
            op = subtract ? Opcode::Sub : Opcode::Add;
        else
            op = subtract ? Opcode::Subb : Opcode::Addc;
        out[c] = emit(op, a[c], b[c], carry_src);
        carry_src = out[c];
    }
    maskTop(out, width);
    return out;
}

std::vector<Reg>
Lowerer::lowerMul(const std::vector<Reg> &a, const std::vector<Reg> &b,
                  unsigned width)
{
    size_t n = a.size();
    Reg zero = constReg(0);
    std::vector<Reg> acc(n, zero);

    // Accumulate a partial product into acc[k] and ripple the carry.
    auto accumulate = [&](size_t k, Reg value) {
        Reg sum = emit(Opcode::Add, acc[k], value);
        acc[k] = sum;
        Reg carry = sum;
        for (size_t kk = k + 1; kk < n; ++kk) {
            Reg s = emit(Opcode::Addc, acc[kk], zero, carry);
            acc[kk] = s;
            carry = s;
        }
    };

    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; i + j < n; ++j) {
            Reg lo = emit(Opcode::Mul, a[i], b[j]);
            accumulate(i + j, lo);
            if (i + j + 1 < n) {
                Reg hi = emit(Opcode::Mulh, a[i], b[j]);
                accumulate(i + j + 1, hi);
            }
        }
    }
    maskTop(acc, width);
    return acc;
}

Reg
Lowerer::wideEq(const std::vector<Reg> &a, const std::vector<Reg> &b)
{
    Reg acc = kNoReg;
    for (size_t c = 0; c < a.size(); ++c) {
        Reg eq = emit(Opcode::Seq, a[c], b[c]);
        acc = (acc == kNoReg) ? eq : emit(Opcode::And, acc, eq);
    }
    return acc;
}

Reg
Lowerer::wideUlt(const std::vector<Reg> &a, const std::vector<Reg> &b)
{
    // lt = lt_k | (eq_k & lt_{k-1}), scanning low to high chunks.
    Reg lt = emit(Opcode::Sltu, a[0], b[0]);
    for (size_t c = 1; c < a.size(); ++c) {
        Reg lt_k = emit(Opcode::Sltu, a[c], b[c]);
        Reg eq_k = emit(Opcode::Seq, a[c], b[c]);
        Reg keep = emit(Opcode::And, eq_k, lt);
        lt = emit(Opcode::Or, lt_k, keep);
    }
    return lt;
}

std::vector<Reg>
Lowerer::shiftLeftConst(const std::vector<Reg> &src, unsigned out_width,
                        unsigned amt)
{
    unsigned n = chunksOf(out_width);
    unsigned cs = amt / 16;
    unsigned bs = amt % 16;
    Reg zero = constReg(0);
    std::vector<Reg> out(n, zero);
    for (unsigned k = 0; k < n; ++k) {
        Reg low = kNoReg;  // src[k - cs] << bs
        Reg high = kNoReg; // src[k - cs - 1] >> (16 - bs)
        if (k >= cs && k - cs < src.size()) {
            Reg s = src[k - cs];
            low = bs == 0 ? s : emit(Opcode::Sll, s, constReg(bs));
        }
        if (bs != 0 && k >= cs + 1 && k - cs - 1 < src.size()) {
            high = emit(Opcode::Slice, src[k - cs - 1], kNoReg, kNoReg,
                        kNoReg, Instruction::packSlice(16 - bs, bs));
        }
        if (low != kNoReg && high != kNoReg)
            out[k] = emit(Opcode::Or, low, high);
        else if (low != kNoReg)
            out[k] = low;
        else if (high != kNoReg)
            out[k] = high;
    }
    maskTop(out, out_width);
    return out;
}

std::vector<Reg>
Lowerer::shiftRightConst(const std::vector<Reg> &src, unsigned src_width,
                         unsigned amt)
{
    unsigned n = chunksOf(src_width);
    unsigned cs = amt / 16;
    unsigned bs = amt % 16;
    Reg zero = constReg(0);
    std::vector<Reg> out(n, zero);
    for (unsigned k = 0; k < n; ++k) {
        Reg low = kNoReg;  // src[k + cs] >> bs
        Reg high = kNoReg; // src[k + cs + 1] << (16 - bs)
        if (k + cs < src.size()) {
            Reg s = src[k + cs];
            low = bs == 0 ? s
                          : emit(Opcode::Slice, s, kNoReg, kNoReg, kNoReg,
                                 Instruction::packSlice(bs, 16 - bs));
        }
        if (bs != 0 && k + cs + 1 < src.size()) {
            high = emit(Opcode::Sll, src[k + cs + 1], constReg(16 - bs));
        }
        if (low != kNoReg && high != kNoReg)
            out[k] = emit(Opcode::Or, low, high);
        else if (low != kNoReg)
            out[k] = low;
        else if (high != kNoReg)
            out[k] = high;
    }
    return out;
}

std::vector<Reg>
Lowerer::lowerDynShift(NodeId id, bool left)
{
    const Node &n = _nl.node(id);
    unsigned width = n.width;
    const std::vector<Reg> &val = _chunks[n.operands[0]];
    const Node &amt_node = _nl.node(n.operands[1]);
    const std::vector<Reg> &amt = _chunks[n.operands[1]];

    // Mux tree over the amount bits that matter: stage k conditionally
    // shifts by 2^k.
    unsigned stages = 0;
    while ((1u << stages) < width)
        ++stages;

    std::vector<Reg> cur = val;
    for (unsigned k = 0; k < stages; ++k) {
        if (k >= amt_node.width)
            break;
        // Amount bit k as a 1-bit value.
        Reg amt_chunk = amt[k / 16];
        Reg bit = emit(Opcode::Slice, amt_chunk, kNoReg, kNoReg, kNoReg,
                       Instruction::packSlice(k % 16, 1));
        std::vector<Reg> shifted =
            left ? shiftLeftConst(cur, width, 1u << k)
                 : shiftRightConst(cur, width, 1u << k);
        shifted.resize(cur.size(), constReg(0));
        std::vector<Reg> next(cur.size());
        for (size_t c = 0; c < cur.size(); ++c)
            next[c] = emit(Opcode::Mux, bit, shifted[c], cur[c]);
        cur = next;
    }

    // Amounts >= width (including high amount bits) yield zero.
    Reg oversize = kNoReg;
    for (unsigned b = stages; b < amt_node.width; ++b) {
        Reg chunk = amt[b / 16];
        Reg bit = emit(Opcode::Slice, chunk, kNoReg, kNoReg, kNoReg,
                       Instruction::packSlice(b % 16, 1));
        oversize =
            oversize == kNoReg ? bit : emit(Opcode::Or, oversize, bit);
    }
    // Low bits can also encode an amount >= width when width is not a
    // power of two.
    if (!isPowerOfTwo(width)) {
        unsigned low_bits = std::min(stages, amt_node.width);
        if (low_bits > 0) {
            Reg low = amt[0];
            if (low_bits < 16)
                low = emit(Opcode::Slice, amt[0], kNoReg, kNoReg, kNoReg,
                           Instruction::packSlice(0, low_bits));
            Reg ge = emit(Opcode::Sltu, low, constReg(
                static_cast<uint16_t>(std::min(width, 0xffffu))));
            Reg too_big = emit(Opcode::Xor, ge, constReg(1));
            oversize = oversize == kNoReg
                           ? too_big
                           : emit(Opcode::Or, oversize, too_big);
        }
    }
    if (oversize != kNoReg) {
        Reg zero = constReg(0);
        for (size_t c = 0; c < cur.size(); ++c)
            cur[c] = emit(Opcode::Mux, oversize, zero, cur[c]);
    }
    return cur;
}

Reg
Lowerer::memElementAddr(netlist::MemId mem, NodeId addr_node)
{
    const netlist::Memory &m = _nl.memory(mem);
    MANTICORE_ASSERT(isPowerOfTwo(m.depth),
                     "memory ", m.name, " depth must be a power of two");
    const MemAlloc &alloc = _out.memAllocs[mem];
    Reg idx = _chunks[addr_node][0];
    Reg masked = emit(Opcode::And, idx,
                      constReg(static_cast<uint16_t>(m.depth - 1)));
    Reg scaled = masked;
    if (alloc.wordsPerElement > 1)
        scaled = emit(Opcode::Mul, masked,
                      constReg(static_cast<uint16_t>(
                          alloc.wordsPerElement)));
    return emit(Opcode::Add, alloc.baseReg, scaled);
}

std::pair<Reg, Reg>
Lowerer::memElementAddrGlobal(netlist::MemId mem, NodeId addr_node)
{
    const netlist::Memory &m = _nl.memory(mem);
    MANTICORE_ASSERT(isPowerOfTwo(m.depth),
                     "memory ", m.name, " depth must be a power of two");
    const MemAlloc &alloc = _out.memAllocs[mem];
    const auto &idx_chunks = _chunks[addr_node];
    Reg zero = constReg(0);

    // Mask the element index to depth-1, chunk-wise (32-bit support).
    uint32_t depth_mask = m.depth - 1;
    Reg i0 = emit(Opcode::And, idx_chunks[0],
                  constReg(static_cast<uint16_t>(depth_mask & 0xffff)));
    Reg i1 = zero;
    if (idx_chunks.size() > 1 && (depth_mask >> 16) != 0)
        i1 = emit(Opcode::And, idx_chunks[1],
                  constReg(static_cast<uint16_t>(depth_mask >> 16)));

    // Scale by words-per-element: 32-bit = 16x16 partial products.
    Reg lo = i0;
    Reg hi = i1;
    if (alloc.wordsPerElement > 1) {
        Reg w = constReg(static_cast<uint16_t>(alloc.wordsPerElement));
        lo = emit(Opcode::Mul, i0, w);
        Reg mid = emit(Opcode::Mulh, i0, w);
        Reg top = emit(Opcode::Mul, i1, w);
        hi = emit(Opcode::Add, mid, top);
    }

    // Add the DRAM base with carry.
    Reg base_lo =
        constReg(static_cast<uint16_t>(alloc.globalBase & 0xffff));
    Reg base_hi =
        constReg(static_cast<uint16_t>((alloc.globalBase >> 16) &
                                       0xffff));
    Reg addr_lo = emit(Opcode::Add, lo, base_lo);
    Reg addr_hi = emit(Opcode::Addc, hi, base_hi, addr_lo);
    return {addr_lo, addr_hi};
}

void
Lowerer::lowerNode(NodeId id)
{
    const Node &n = _nl.node(id);
    auto &out = _chunks[id];
    auto ops = [&](unsigned k) -> const std::vector<Reg> & {
        return _chunks[n.operands[k]];
    };

    switch (n.kind) {
      case OpKind::Const:
        out = constChunks(n.value);
        break;
      case OpKind::Input:
        MANTICORE_FATAL("cannot compile open design: free input '",
                        n.name, "' (drive it or make it a register)");
        break;
      case OpKind::RegRead: {
        const auto &info = _out.rtlRegs[n.regId];
        out.resize(info.size());
        for (size_t c = 0; c < info.size(); ++c)
            out[c] = info[c].current;
        break;
      }
      case OpKind::MemRead: {
        int saved = _memTag;
        _memTag = static_cast<int>(n.memId);
        unsigned nc = chunksOf(n.width);
        out.resize(nc);
        if (_out.memAllocs[n.memId].global) {
            bool saved_priv = _privTag;
            _privTag = true;
            auto [lo, hi] = memElementAddrGlobal(n.memId, n.operands[0]);
            for (unsigned c = 0; c < nc; ++c) {
                Instruction inst;
                inst.opcode = Opcode::Gld;
                inst.rd = newReg();
                inst.rs1 = lo;
                inst.rs2 = hi;
                inst.imm = static_cast<uint16_t>(c);
                out[c] = inst.rd;
                emitRaw(inst);
            }
            _privTag = saved_priv;
        } else {
            Reg addr = memElementAddr(n.memId, n.operands[0]);
            for (unsigned c = 0; c < nc; ++c) {
                Instruction inst;
                inst.opcode = Opcode::Lld;
                inst.rd = newReg();
                inst.rs1 = addr;
                inst.imm = static_cast<uint16_t>(c);
                out[c] = inst.rd;
                emitRaw(inst);
            }
        }
        _memTag = saved;
        break;
      }
      case OpKind::Add:
        out = lowerAdd(ops(0), ops(1), n.width, false);
        break;
      case OpKind::Sub:
        out = lowerAdd(ops(0), ops(1), n.width, true);
        break;
      case OpKind::Mul:
        out = lowerMul(ops(0), ops(1), n.width);
        break;
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Xor: {
        Opcode op = n.kind == OpKind::And
                        ? Opcode::And
                        : (n.kind == OpKind::Or ? Opcode::Or : Opcode::Xor);
        out.resize(ops(0).size());
        for (size_t c = 0; c < out.size(); ++c)
            out[c] = emit(op, ops(0)[c], ops(1)[c]);
        break;
      }
      case OpKind::Not: {
        out.resize(ops(0).size());
        for (size_t c = 0; c < out.size(); ++c) {
            unsigned len = std::min(16u, n.width - 16 * unsigned(c));
            uint16_t mask = len >= 16
                                ? 0xffff
                                : static_cast<uint16_t>((1u << len) - 1);
            out[c] = emit(Opcode::Xor, ops(0)[c], constReg(mask));
        }
        break;
      }
      case OpKind::Shl:
      case OpKind::Lshr: {
        const Node &amt = _nl.node(n.operands[1]);
        bool left = n.kind == OpKind::Shl;
        if (amt.kind == OpKind::Const) {
            uint64_t a = amt.value.fitsUint64() ? amt.value.toUint64()
                                                : n.width;
            if (a >= n.width) {
                out.assign(chunksOf(n.width), constReg(0));
            } else if (left) {
                out = shiftLeftConst(ops(0), n.width,
                                     static_cast<unsigned>(a));
            } else {
                out = shiftRightConst(ops(0), n.width,
                                      static_cast<unsigned>(a));
            }
        } else {
            out = lowerDynShift(id, left);
        }
        break;
      }
      case OpKind::Eq:
        out = {wideEq(ops(0), ops(1))};
        break;
      case OpKind::Ult:
        out = {wideUlt(ops(0), ops(1))};
        break;
      case OpKind::Slt: {
        unsigned w = _nl.node(n.operands[0]).width;
        if (w == 16) {
            out = {emit(Opcode::Slts, ops(0)[0], ops(1)[0])};
        } else {
            unsigned tb = topBits(w);
            Reg sa = emit(Opcode::Slice, ops(0).back(), kNoReg, kNoReg,
                          kNoReg, Instruction::packSlice(tb - 1, 1));
            Reg sb = emit(Opcode::Slice, ops(1).back(), kNoReg, kNoReg,
                          kNoReg, Instruction::packSlice(tb - 1, 1));
            Reg ult = wideUlt(ops(0), ops(1));
            Reg diff = emit(Opcode::Xor, sa, sb);
            out = {emit(Opcode::Mux, diff, sa, ult)};
        }
        break;
      }
      case OpKind::Mux: {
        Reg sel = ops(0)[0];
        out.resize(ops(1).size());
        for (size_t c = 0; c < out.size(); ++c)
            out[c] = emit(Opcode::Mux, sel, ops(1)[c], ops(2)[c]);
        break;
      }
      case OpKind::Slice: {
        unsigned src_width = _nl.node(n.operands[0]).width;
        std::vector<Reg> shifted =
            n.lo == 0 ? ops(0) : shiftRightConst(ops(0), src_width, n.lo);
        shifted.resize(chunksOf(n.width), constReg(0));
        out = shifted;
        out.resize(chunksOf(n.width));
        maskTop(out, n.width);
        break;
      }
      case OpKind::Concat: {
        unsigned lo_width = _nl.node(n.operands[1]).width;
        const auto &lo = ops(1);
        std::vector<Reg> hi_shifted =
            shiftLeftConst(ops(0), n.width, lo_width);
        out.resize(chunksOf(n.width));
        for (size_t c = 0; c < out.size(); ++c) {
            if (16 * (c + 1) <= lo_width) {
                // Fully within lo; hi contributes nothing here.
                out[c] = lo[c];
            } else if (16 * c < lo_width) {
                // Straddles the seam: low bits from lo's (masked) top
                // chunk, high bits from the shifted hi vector.
                out[c] = emit(Opcode::Or, lo[c], hi_shifted[c]);
            } else {
                out[c] = hi_shifted[c];
            }
        }
        break;
      }
      case OpKind::ZExt: {
        out = ops(0);
        out.resize(chunksOf(n.width), constReg(0));
        break;
      }
      case OpKind::SExt: {
        unsigned src_width = _nl.node(n.operands[0]).width;
        unsigned tb = topBits(src_width);
        Reg sign = emit(Opcode::Slice, ops(0).back(), kNoReg, kNoReg,
                        kNoReg, Instruction::packSlice(tb - 1, 1));
        Reg fill = emit(Opcode::Sub, constReg(0), sign); // 0 or 0xffff
        out = ops(0);
        if (tb < 16) {
            Reg ext = emit(Opcode::Sll, fill, constReg(tb));
            out.back() = emit(Opcode::Or, out.back(), ext);
        }
        out.resize(chunksOf(n.width), fill);
        maskTop(out, n.width);
        break;
      }
      case OpKind::RedOr: {
        Reg acc = ops(0)[0];
        for (size_t c = 1; c < ops(0).size(); ++c)
            acc = emit(Opcode::Or, acc, ops(0)[c]);
        out = {emit(Opcode::Sltu, constReg(0), acc)};
        break;
      }
      case OpKind::RedAnd: {
        unsigned w = _nl.node(n.operands[0]).width;
        Reg acc = kNoReg;
        for (size_t c = 0; c < ops(0).size(); ++c) {
            unsigned len = std::min(16u, w - 16 * unsigned(c));
            uint16_t full = len >= 16
                                ? 0xffff
                                : static_cast<uint16_t>((1u << len) - 1);
            Reg eq = emit(Opcode::Seq, ops(0)[c], constReg(full));
            acc = acc == kNoReg ? eq : emit(Opcode::And, acc, eq);
        }
        out = {acc};
        break;
      }
      case OpKind::RedXor: {
        Reg acc = ops(0)[0];
        for (size_t c = 1; c < ops(0).size(); ++c)
            acc = emit(Opcode::Xor, acc, ops(0)[c]);
        for (unsigned step : {8u, 4u, 2u, 1u}) {
            Reg part = emit(Opcode::Slice, acc, kNoReg, kNoReg, kNoReg,
                            Instruction::packSlice(step, 16 - step));
            acc = emit(Opcode::Xor, acc, part);
        }
        out = {emit(Opcode::And, acc, constReg(1))};
        break;
      }
    }

    MANTICORE_ASSERT(!out.empty() || n.kind == OpKind::Input,
                     "node not lowered");
    MANTICORE_ASSERT(out.size() == chunksOf(n.width),
                     "chunk count mismatch lowering ",
                     netlist::opKindName(n.kind));
}

void
Lowerer::lowerMemWrites()
{
    for (const netlist::MemWrite &w : _nl.memWrites()) {
        int saved = _memTag;
        _memTag = static_cast<int>(w.mem);
        Reg enable = _chunks[w.enable][0];
        const auto &data = _chunks[w.data];

        if (_out.memAllocs[w.mem].global) {
            bool saved_priv = _privTag;
            _privTag = true;
            auto [lo, hi] = memElementAddrGlobal(w.mem, w.addr);
            Instruction pred;
            pred.opcode = Opcode::Pred;
            pred.rs1 = enable;
            emitRaw(pred);
            for (size_t c = 0; c < data.size(); ++c) {
                Instruction st;
                st.opcode = Opcode::Gst;
                st.rs1 = lo;
                st.rs2 = hi;
                st.rs3 = data[c];
                st.imm = static_cast<uint16_t>(c);
                emitRaw(st);
            }
            _privTag = saved_priv;
        } else {
            Reg addr = memElementAddr(w.mem, w.addr);
            Instruction pred;
            pred.opcode = Opcode::Pred;
            pred.rs1 = enable;
            emitRaw(pred);
            for (size_t c = 0; c < data.size(); ++c) {
                Instruction st;
                st.opcode = Opcode::Lst;
                st.rs1 = addr;
                st.rs2 = data[c];
                st.imm = static_cast<uint16_t>(c);
                emitRaw(st);
            }
        }
        _memTag = saved;
    }
}

void
Lowerer::lowerSideEffects()
{
    _privTag = true;
    Reg zero = constReg(0);
    Reg one = constReg(1);

    for (const netlist::Display &d : _nl.displays()) {
        isa::ExceptionInfo info;
        info.kind = isa::ExceptionKind::Display;
        info.format = d.format;

        Reg enable = _chunks[d.enable][0];
        Instruction pred;
        pred.opcode = Opcode::Pred;
        pred.rs1 = enable;
        emitRaw(pred);

        for (NodeId arg : d.args) {
            const auto &chunks = _chunks[arg];
            info.argWidths.push_back(_nl.node(arg).width);
            std::vector<uint64_t> addrs;
            for (Reg chunk : chunks) {
                uint64_t addr = _out.globalWordsReserved++;
                addrs.push_back(addr);
                Instruction st;
                st.opcode = Opcode::Gst;
                st.rs1 = constReg(static_cast<uint16_t>(addr & 0xffff));
                st.rs2 = constReg(static_cast<uint16_t>(addr >> 16));
                st.rs3 = chunk;
                emitRaw(st);
            }
            info.argChunkAddrs.push_back(std::move(addrs));
        }

        uint16_t eid = _out.exceptions.add(std::move(info));
        Instruction exp;
        exp.opcode = Opcode::Expect;
        exp.rs1 = enable;
        exp.rs2 = zero;
        exp.imm = eid;
        emitRaw(exp);
    }

    for (const netlist::Assert &a : _nl.asserts()) {
        isa::ExceptionInfo info;
        info.kind = isa::ExceptionKind::AssertFail;
        info.format = a.message;
        uint16_t eid = _out.exceptions.add(std::move(info));

        // Raise when enable && !cond, i.e. when (enable & (cond ^ 1))
        // differs from zero.
        _privTag = false;
        Reg not_cond = emit(Opcode::Xor, _chunks[a.cond][0], one);
        Reg bad = emit(Opcode::And, _chunks[a.enable][0], not_cond);
        _privTag = true;
        Instruction exp;
        exp.opcode = Opcode::Expect;
        exp.rs1 = bad;
        exp.rs2 = zero;
        exp.imm = eid;
        emitRaw(exp);
    }

    for (const netlist::Finish &f : _nl.finishes()) {
        isa::ExceptionInfo info;
        info.kind = isa::ExceptionKind::Finish;
        info.format = "$finish";
        uint16_t eid = _out.exceptions.add(std::move(info));
        Instruction exp;
        exp.opcode = Opcode::Expect;
        exp.rs1 = _chunks[f.enable][0];
        exp.rs2 = zero;
        exp.imm = eid;
        emitRaw(exp);
    }
    _privTag = false;
}

void
Lowerer::lowerRegisterCommits()
{
    for (size_t r = 0; r < _nl.numRegisters(); ++r) {
        const netlist::Register &reg = _nl.reg(static_cast<uint32_t>(r));
        auto &info = _out.rtlRegs[r];
        const auto &next_chunks = _chunks[reg.next];
        for (size_t c = 0; c < info.size(); ++c) {
            info[c].next = next_chunks[c];
            info[c].movIndex = static_cast<uint32_t>(_out.body.size());
            Instruction mov;
            mov.opcode = Opcode::Mov;
            mov.rd = info[c].current;
            mov.rs1 = next_chunks[c];
            emitRaw(mov);
        }
    }
}

LoweredProgram
Lowerer::run()
{
    _nl.validate();
    _chunks.resize(_nl.numNodes());

    // RTL register current values: persistent boot-initialised regs.
    _out.rtlRegs.resize(_nl.numRegisters());
    for (size_t r = 0; r < _nl.numRegisters(); ++r) {
        const netlist::Register &reg = _nl.reg(static_cast<uint32_t>(r));
        unsigned nc = chunksOf(reg.width);
        auto &info = _out.rtlRegs[r];
        info.resize(nc);
        for (unsigned c = 0; c < nc; ++c) {
            Reg cur = newReg();
            unsigned len = std::min(16u, reg.width - 16 * c);
            _out.init[cur] = static_cast<uint16_t>(
                reg.init.slice(16 * c, len).toUint64());
            info[c].current = cur;
        }
    }

    // Memory allocations: scratch-resident memories get symbolic base
    // registers (patched after partitioning); memories over the
    // scratch budget live in DRAM behind the privileged cache.
    for (size_t m = 0; m < _nl.numMemories(); ++m) {
        const netlist::Memory &mem = _nl.memory(static_cast<uint32_t>(m));
        MemAlloc alloc;
        alloc.mem = static_cast<netlist::MemId>(m);
        alloc.wordsPerElement = chunksOf(mem.width);
        alloc.words =
            static_cast<uint64_t>(mem.depth) * alloc.wordsPerElement;
        alloc.global = alloc.words > _scratchBudget;
        for (const BitVector &elem : mem.init) {
            for (unsigned c = 0; c < alloc.wordsPerElement; ++c) {
                unsigned len = std::min(16u, mem.width - 16 * c);
                alloc.image.push_back(static_cast<uint16_t>(
                    elem.slice(16 * c, len).toUint64()));
            }
        }
        if (alloc.global) {
            alloc.globalBase = _out.globalWordsReserved;
            _out.globalWordsReserved += alloc.words;
            for (size_t w = 0; w < alloc.image.size(); ++w)
                if (alloc.image[w] != 0)
                    _out.globalInit.emplace_back(alloc.globalBase + w,
                                                 alloc.image[w]);
        } else {
            alloc.baseReg = newReg();
            _out.init[alloc.baseReg] = 0; // patched after partitioning
        }
        _out.memAllocs.push_back(std::move(alloc));
    }

    for (NodeId id : _nl.topologicalOrder())
        lowerNode(id);

    lowerMemWrites();
    lowerSideEffects();
    lowerRegisterCommits();

    return std::move(_out);
}

} // namespace

LoweredProgram
lower(const Netlist &netlist, unsigned scratch_budget)
{
    return Lowerer(netlist, scratch_budget).run();
}

} // namespace manticore::compiler
