#include "compiler/opt.hh"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

namespace {

bool
isPure(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Pred:
      case Opcode::Lst:
      case Opcode::Gld:
      case Opcode::Gst:
      case Opcode::Expect:
      case Opcode::Send:
      case Opcode::Nop:
      case Opcode::Set:
        return false;
      default:
        return true;
    }
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::Mulh:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Seq:
        return true;
      default:
        return false;
    }
}

/** Evaluate a pure ALU op over constant operands (carry-in zero). */
uint16_t
foldOp(const Instruction &inst, uint16_t a, uint16_t b, uint16_t c)
{
    switch (inst.opcode) {
      case Opcode::Add: return static_cast<uint16_t>(a + b);
      // A constant rs3 carries no overflow bit, so carry-in is zero.
      case Opcode::Addc: return static_cast<uint16_t>(a + b);
      case Opcode::Sub: return static_cast<uint16_t>(a - b);
      // A constant rs3 carries no borrow bit, so borrow-in is zero.
      case Opcode::Subb: return static_cast<uint16_t>(a - b);
      case Opcode::Mul:
        return static_cast<uint16_t>(static_cast<uint32_t>(a) * b);
      case Opcode::Mulh:
        return static_cast<uint16_t>((static_cast<uint32_t>(a) * b) >> 16);
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Sll: return b >= 16 ? 0 : static_cast<uint16_t>(a << b);
      case Opcode::Srl: return b >= 16 ? 0 : static_cast<uint16_t>(a >> b);
      case Opcode::Seq: return a == b ? 1 : 0;
      case Opcode::Sltu: return a < b ? 1 : 0;
      case Opcode::Slts:
        return static_cast<int16_t>(a) < static_cast<int16_t>(b) ? 1 : 0;
      case Opcode::Mux: return (a & 1) ? b : c;
      case Opcode::Slice: {
        unsigned lo = inst.sliceLo();
        unsigned len = inst.sliceLen();
        uint16_t mask =
            len >= 16 ? 0xffff : static_cast<uint16_t>((1u << len) - 1);
        return static_cast<uint16_t>((a >> lo) & mask);
      }
      default:
        MANTICORE_PANIC("unfoldable opcode");
    }
}

struct CseKey
{
    Opcode opcode;
    Reg rs1, rs2, rs3, rs4;
    uint16_t imm;

    bool
    operator==(const CseKey &o) const
    {
        return opcode == o.opcode && rs1 == o.rs1 && rs2 == o.rs2 &&
               rs3 == o.rs3 && rs4 == o.rs4 && imm == o.imm;
    }
};

struct CseKeyHash
{
    size_t
    operator()(const CseKey &k) const
    {
        size_t h = static_cast<size_t>(k.opcode);
        auto mix = [&](size_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(k.rs1);
        mix(k.rs2);
        mix(k.rs3);
        mix(k.rs4);
        mix(k.imm);
        return h;
    }
};

class Optimizer
{
  public:
    explicit Optimizer(LoweredProgram &prog) : _prog(prog)
    {
        for (Reg r : prog.constRegs)
            _pool.emplace(prog.init.at(r), r);
    }

    OptStats
    run()
    {
        _stats.instructionsBefore = _prog.body.size();
        // Registers whose carry bit is consumed: folding them away
        // would lose the carry, so they are exempt.
        for (const Instruction &inst : _prog.body)
            if (inst.readsCarry() && inst.rs3 != kNoReg)
                _carryRead.insert(inst.rs3);

        foldAndCse();
        dce();
        rebuildRegChunkIndices();

        _stats.instructionsAfter = _prog.body.size();
        return _stats;
    }

  private:
    Reg
    canon(Reg r) const
    {
        auto it = _replace.find(r);
        return it == _replace.end() ? r : it->second;
    }

    bool isConst(Reg r) const { return _prog.constRegs.count(r) != 0; }
    uint16_t constVal(Reg r) const { return _prog.init.at(r); }

    Reg
    makeConst(uint16_t v)
    {
        auto it = _pool.find(v);
        if (it != _pool.end())
            return it->second;
        Reg r = _prog.nextVirtualReg++;
        _prog.init[r] = v;
        _prog.constRegs.insert(r);
        _pool[v] = r;
        return r;
    }

    /** Algebraic simplification; returns the replacement register or
     *  kNoReg when the instruction must stay. */
    Reg
    simplify(const Instruction &inst)
    {
        bool carry_used = _carryRead.count(inst.rd) != 0;
        auto cv = [&](Reg r) { return constVal(r); };

        switch (inst.opcode) {
          case Opcode::Mux:
            if (isConst(inst.rs1))
                return (cv(inst.rs1) & 1) ? inst.rs2 : inst.rs3;
            if (inst.rs2 == inst.rs3)
                return inst.rs2;
            break;
          case Opcode::And:
            if (isConst(inst.rs2)) {
                if (cv(inst.rs2) == 0)
                    return makeConst(0);
                if (cv(inst.rs2) == 0xffff)
                    return inst.rs1;
            }
            if (isConst(inst.rs1)) {
                if (cv(inst.rs1) == 0)
                    return makeConst(0);
                if (cv(inst.rs1) == 0xffff)
                    return inst.rs2;
            }
            if (inst.rs1 == inst.rs2)
                return inst.rs1;
            break;
          case Opcode::Or:
          case Opcode::Xor:
            if (isConst(inst.rs2) && cv(inst.rs2) == 0)
                return inst.rs1;
            if (isConst(inst.rs1) && cv(inst.rs1) == 0)
                return inst.rs2;
            if (inst.opcode == Opcode::Or && inst.rs1 == inst.rs2)
                return inst.rs1;
            break;
          case Opcode::Add:
            if (carry_used)
                break;
            if (isConst(inst.rs2) && cv(inst.rs2) == 0)
                return inst.rs1;
            if (isConst(inst.rs1) && cv(inst.rs1) == 0)
                return inst.rs2;
            break;
          case Opcode::Sub:
            if (carry_used)
                break;
            if (isConst(inst.rs2) && cv(inst.rs2) == 0)
                return inst.rs1;
            break;
          case Opcode::Mul:
            if (isConst(inst.rs2) && cv(inst.rs2) == 1)
                return inst.rs1;
            if (isConst(inst.rs1) && cv(inst.rs1) == 1)
                return inst.rs2;
            if ((isConst(inst.rs1) && cv(inst.rs1) == 0) ||
                (isConst(inst.rs2) && cv(inst.rs2) == 0))
                return makeConst(0);
            break;
          case Opcode::Slice:
            if (inst.sliceLo() == 0 && inst.sliceLen() >= 16)
                return inst.rs1;
            break;
          default:
            break;
        }
        return kNoReg;
    }

    void
    foldAndCse()
    {
        std::vector<Instruction> new_body;
        std::vector<int> new_mem;
        std::vector<bool> new_priv;
        std::unordered_map<CseKey, Reg, CseKeyHash> table;

        for (size_t i = 0; i < _prog.body.size(); ++i) {
            Instruction inst = _prog.body[i];
            if (inst.rs1 != kNoReg)
                inst.rs1 = canon(inst.rs1);
            if (inst.rs2 != kNoReg)
                inst.rs2 = canon(inst.rs2);
            if (inst.rs3 != kNoReg)
                inst.rs3 = canon(inst.rs3);
            if (inst.rs4 != kNoReg)
                inst.rs4 = canon(inst.rs4);

            if (!isPure(inst.opcode)) {
                new_body.push_back(inst);
                new_mem.push_back(_prog.memGroup[i]);
                new_priv.push_back(_prog.privileged[i]);
                continue;
            }

            // Full constant folding (carry consumers exempt; ADDC with
            // a constant rs3 has carry-in 0 by definition).
            bool all_const = true;
            for (Reg s : inst.sources())
                all_const &= isConst(s);
            bool carry_used = _carryRead.count(inst.rd) != 0;
            if (all_const && !carry_used && inst.opcode != Opcode::Lld &&
                inst.opcode != Opcode::Cust) {
                uint16_t a = inst.rs1 != kNoReg ? constVal(inst.rs1) : 0;
                uint16_t b = inst.rs2 != kNoReg ? constVal(inst.rs2) : 0;
                uint16_t c = inst.rs3 != kNoReg ? constVal(inst.rs3) : 0;
                _replace[inst.rd] = makeConst(foldOp(inst, a, b, c));
                ++_stats.folded;
                continue;
            }

            if (!carry_used) {
                Reg simple = simplify(inst);
                if (simple != kNoReg) {
                    _replace[inst.rd] = simple;
                    ++_stats.folded;
                    continue;
                }
            }

            CseKey key{inst.opcode, inst.rs1, inst.rs2, inst.rs3,
                       inst.rs4, inst.imm};
            if (isCommutative(inst.opcode) && key.rs2 < key.rs1)
                std::swap(key.rs1, key.rs2);
            auto it = table.find(key);
            if (it != table.end()) {
                _replace[inst.rd] = it->second;
                ++_stats.csed;
                continue;
            }
            table.emplace(key, inst.rd);
            new_body.push_back(inst);
            new_mem.push_back(_prog.memGroup[i]);
            new_priv.push_back(_prog.privileged[i]);
        }

        _prog.body = std::move(new_body);
        _prog.memGroup = std::move(new_mem);
        _prog.privileged = std::move(new_priv);

        // Remap bookkeeping that refers to SSA values.
        for (auto &chunks : _prog.rtlRegs)
            for (auto &c : chunks)
                c.next = canon(c.next);
    }

    void
    dce()
    {
        std::unordered_map<Reg, size_t> def;
        for (size_t i = 0; i < _prog.body.size(); ++i) {
            Reg d = _prog.body[i].destination();
            if (d != kNoReg)
                def[d] = i;
        }

        std::vector<bool> live(_prog.body.size(), false);
        std::vector<size_t> work;
        for (size_t i = 0; i < _prog.body.size(); ++i) {
            Opcode op = _prog.body[i].opcode;
            if (!isPure(op)) {
                live[i] = true;
                work.push_back(i);
            }
        }
        while (!work.empty()) {
            size_t i = work.back();
            work.pop_back();
            for (Reg s : _prog.body[i].sources()) {
                auto it = def.find(s);
                if (it != def.end() && !live[it->second]) {
                    live[it->second] = true;
                    work.push_back(it->second);
                }
            }
        }

        std::vector<Instruction> new_body;
        std::vector<int> new_mem;
        std::vector<bool> new_priv;
        for (size_t i = 0; i < _prog.body.size(); ++i) {
            if (!live[i]) {
                ++_stats.deadRemoved;
                continue;
            }
            new_body.push_back(_prog.body[i]);
            new_mem.push_back(_prog.memGroup[i]);
            new_priv.push_back(_prog.privileged[i]);
        }
        _prog.body = std::move(new_body);
        _prog.memGroup = std::move(new_mem);
        _prog.privileged = std::move(new_priv);
    }

    void
    rebuildRegChunkIndices()
    {
        std::unordered_map<Reg, uint32_t> mov_of;
        for (size_t i = 0; i < _prog.body.size(); ++i)
            if (_prog.body[i].opcode == Opcode::Mov)
                mov_of[_prog.body[i].rd] = static_cast<uint32_t>(i);
        for (auto &chunks : _prog.rtlRegs) {
            for (auto &c : chunks) {
                auto it = mov_of.find(c.current);
                MANTICORE_ASSERT(it != mov_of.end(),
                                 "register commit MOV lost in opt");
                c.movIndex = it->second;
            }
        }
    }

    LoweredProgram &_prog;
    OptStats _stats;
    std::unordered_map<Reg, Reg> _replace;
    std::unordered_map<uint16_t, Reg> _pool;
    std::unordered_set<Reg> _carryRead;
};

} // namespace

OptStats
optimize(LoweredProgram &program)
{
    // Seed the constant pool with existing constants so folding reuses
    // them instead of minting duplicates.
    Optimizer opt(program);
    return opt.run();
}

} // namespace manticore::compiler
