#include "compiler/partition.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

namespace {

/** Union-find over seed ids. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : _parent(n)
    {
        for (size_t i = 0; i < n; ++i)
            _parent[i] = static_cast<int>(i);
    }

    int
    find(int x)
    {
        while (_parent[x] != x) {
            _parent[x] = _parent[_parent[x]];
            x = _parent[x];
        }
        return x;
    }

    bool
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        _parent[b] = a;
        return true;
    }

  private:
    std::vector<int> _parent;
};

std::vector<uint32_t>
sortedUnion(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

size_t
unionSize(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    size_t i = 0, j = 0, n = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
        ++n;
    }
    return n + (a.size() - i) + (b.size() - j);
}

/** The splitter: seeds, anchored-union fixpoint, cones. */
class Splitter
{
  public:
    explicit Splitter(const LoweredProgram &prog) : _prog(prog) {}

    struct Result
    {
        std::vector<std::vector<uint32_t>> cones;
        int privileged = -1;
    };

    Result
    run()
    {
        buildSeeds();
        buildDefMap();
        closeOverAnchors();
        return collect();
    }

  private:
    void
    buildSeeds()
    {
        size_t n = _prog.body.size();
        _anchor.assign(n, -1);

        // One seed per RTL register (all chunk MOVs together: the
        // paper splits per sink register).
        for (const auto &chunks : _prog.rtlRegs) {
            int seed = static_cast<int>(_seedMembers.size());
            _seedMembers.emplace_back();
            for (const auto &c : chunks) {
                _seedMembers.back().push_back(c.movIndex);
                _anchor[c.movIndex] = seed;
            }
        }

        // One seed per memory: every instruction tagged with it.
        std::unordered_map<int, int> mem_seed;
        for (size_t i = 0; i < n; ++i) {
            int m = _prog.memGroup[i];
            if (m < 0)
                continue;
            auto it = mem_seed.find(m);
            int seed;
            if (it == mem_seed.end()) {
                seed = static_cast<int>(_seedMembers.size());
                _seedMembers.emplace_back();
                mem_seed[m] = seed;
            } else {
                seed = it->second;
            }
            _seedMembers[seed].push_back(static_cast<uint32_t>(i));
            MANTICORE_ASSERT(_anchor[i] == -1, "doubly anchored instr");
            _anchor[i] = seed;
        }

        // One seed for all privileged instructions.  DRAM-resident
        // memory accesses are both memory-anchored and privileged; the
        // memory seed keeps the instruction and the two seeds are
        // united before the closure fixpoint.
        int priv_seed = -1;
        for (size_t i = 0; i < n; ++i) {
            if (!_prog.privileged[i])
                continue;
            if (priv_seed == -1) {
                priv_seed = static_cast<int>(_seedMembers.size());
                _seedMembers.emplace_back();
            }
            if (_anchor[i] != -1) {
                _pendingUnions.emplace_back(_anchor[i], priv_seed);
                continue;
            }
            _seedMembers[priv_seed].push_back(static_cast<uint32_t>(i));
            _anchor[i] = priv_seed;
        }
        _privSeed = priv_seed;
    }

    void
    buildDefMap()
    {
        for (size_t i = 0; i < _prog.body.size(); ++i) {
            Reg d = _prog.body[i].destination();
            if (d != kNoReg && _prog.body[i].opcode != Opcode::Mov)
                _def[d] = static_cast<uint32_t>(i);
        }
        // MOV destinations are the persistent current-value registers;
        // readers of those must NOT pull the MOV into their cone (the
        // value crosses the Vcycle boundary via SEND instead), so MOVs
        // are deliberately absent from the def map.
    }

    /** Backward closure of one root's members; records anchor unions.
     *  Returns true if any union was performed. */
    bool
    closeRoot(UnionFind &uf, int root, std::vector<uint32_t> *out)
    {
        bool changed = false;
        std::vector<char> visited(_prog.body.size(), 0);
        std::vector<uint32_t> stack;
        for (size_t s = 0; s < _seedMembers.size(); ++s) {
            if (uf.find(static_cast<int>(s)) != root)
                continue;
            for (uint32_t idx : _seedMembers[s]) {
                if (!visited[idx]) {
                    visited[idx] = 1;
                    stack.push_back(idx);
                }
            }
        }
        std::vector<uint32_t> cone;
        while (!stack.empty()) {
            uint32_t idx = stack.back();
            stack.pop_back();
            cone.push_back(idx);
            if (_anchor[idx] != -1 &&
                uf.find(_anchor[idx]) != root) {
                changed |= uf.unite(root, _anchor[idx]);
                // Its members join on the next fixpoint iteration.
            }
            for (Reg s : _prog.body[idx].sources()) {
                auto it = _def.find(s);
                if (it == _def.end())
                    continue; // init register (constant/current/base)
                uint32_t d = it->second;
                if (!visited[d]) {
                    visited[d] = 1;
                    stack.push_back(d);
                }
            }
        }
        if (out) {
            std::sort(cone.begin(), cone.end());
            *out = std::move(cone);
        }
        return changed;
    }

    void
    closeOverAnchors()
    {
        _uf = std::make_unique<UnionFind>(_seedMembers.size());
        for (auto [a, b] : _pendingUnions)
            _uf->unite(a, b);
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t s = 0; s < _seedMembers.size(); ++s) {
                int root = _uf->find(static_cast<int>(s));
                if (root != static_cast<int>(s))
                    continue;
                changed |= closeRoot(*_uf, root, nullptr);
            }
        }
    }

    Result
    collect()
    {
        Result res;
        std::unordered_map<int, int> root_to_proc;
        for (size_t s = 0; s < _seedMembers.size(); ++s) {
            int root = _uf->find(static_cast<int>(s));
            if (root != static_cast<int>(s))
                continue;
            std::vector<uint32_t> cone;
            closeRoot(*_uf, root, &cone);
            root_to_proc[root] = static_cast<int>(res.cones.size());
            res.cones.push_back(std::move(cone));
        }
        if (_privSeed != -1)
            res.privileged = root_to_proc.at(_uf->find(_privSeed));
        return res;
    }

    const LoweredProgram &_prog;
    std::vector<std::vector<uint32_t>> _seedMembers;
    std::vector<int> _anchor;
    std::vector<std::pair<int, int>> _pendingUnions;
    std::unordered_map<Reg, uint32_t> _def;
    std::unique_ptr<UnionFind> _uf;
    int _privSeed = -1;
};

/** Merging machinery shared by both algorithms. */
class Merger
{
  public:
    Merger(const LoweredProgram &prog, Splitter::Result split)
        : _prog(prog)
    {
        _instrs = std::move(split.cones);
        _alive.assign(_instrs.size(), true);
        _privProc = split.privileged;
        buildCommunication();
    }

    size_t splitEdges() const { return _splitEdges; }

    /** Cost model: instructions + sends (§6.1; NOPs excluded because
     *  scheduling has not happened yet). */
    size_t
    cost(int p) const
    {
        return _instrs[p].size() + sends(p);
    }

    size_t
    sends(int p) const
    {
        size_t n = 0;
        for (uint32_t chunk : _ownedChunks[p])
            for (int r : _readers[chunk])
                if (r != p)
                    ++n;
        return n;
    }

    size_t
    mergedCost(int a, int b) const
    {
        size_t instrs = unionSize(_instrs[a], _instrs[b]);
        size_t s = 0;
        for (int p : {a, b})
            for (uint32_t chunk : _ownedChunks[p])
                for (int r : _readers[chunk])
                    if (r != a && r != b)
                        ++s;
        return instrs + s;
    }

    void
    merge(int a, int b)
    {
        MANTICORE_ASSERT(a != b && _alive[a] && _alive[b], "bad merge");
        _instrs[a] = sortedUnion(_instrs[a], _instrs[b]);
        for (uint32_t chunk : _ownedChunks[b])
            _ownedChunks[a].push_back(chunk);
        _ownedChunks[b].clear();
        // Re-point b's readership at a.
        for (uint32_t chunk : _readChunks[b]) {
            auto &rd = _readers[chunk];
            rd.erase(std::remove(rd.begin(), rd.end(), b), rd.end());
            if (std::find(rd.begin(), rd.end(), a) == rd.end())
                rd.push_back(a);
        }
        _readChunks[a].insert(_readChunks[a].end(),
                              _readChunks[b].begin(),
                              _readChunks[b].end());
        std::sort(_readChunks[a].begin(), _readChunks[a].end());
        _readChunks[a].erase(std::unique(_readChunks[a].begin(),
                                         _readChunks[a].end()),
                             _readChunks[a].end());
        _readChunks[b].clear();
        for (int n : _neighbors[b]) {
            auto &nn = _neighbors[n];
            nn.erase(b);
            if (n != a) {
                nn.insert(a);
                _neighbors[a].insert(n);
            }
        }
        _neighbors[a].erase(a);
        _neighbors[b].clear();
        _alive[b] = false;
        if (_privProc == b)
            _privProc = a;
        --_aliveCount;
    }

    size_t aliveCount() const { return _aliveCount; }
    bool alive(int p) const { return _alive[p]; }
    size_t numProcs() const { return _instrs.size(); }
    const std::unordered_set<int> &neighbors(int p) const
    {
        return _neighbors[p];
    }
    int privileged() const { return _privProc; }

    Partition
    finish(MergeAlgo, size_t split_count)
    {
        Partition part;
        part.stats.splitProcesses = split_count;
        part.stats.splitEdges = _splitEdges;
        std::unordered_map<int, int> remap;
        for (size_t p = 0; p < _instrs.size(); ++p) {
            if (!_alive[p])
                continue;
            remap[static_cast<int>(p)] =
                static_cast<int>(part.processes.size());
            part.processes.push_back(std::move(_instrs[p]));
            size_t c = part.processes.back().size() +
                       sends(static_cast<int>(p));
            part.stats.estimatedMaxCost =
                std::max(part.stats.estimatedMaxCost, c);
            part.stats.estimatedSends += sends(static_cast<int>(p));
        }
        part.stats.mergedProcesses = part.processes.size();
        if (_privProc != -1)
            part.privileged = remap.at(_privProc);
        return part;
    }

  private:
    void
    buildCommunication()
    {
        // Chunk k (dense id) = RTL register chunk; owner = process
        // containing its MOV; readers = processes reading `current`.
        std::unordered_map<Reg, uint32_t> chunk_of_current;
        std::unordered_map<uint32_t, uint32_t> chunk_of_mov;
        uint32_t next_chunk = 0;
        for (const auto &chunks : _prog.rtlRegs) {
            for (const auto &c : chunks) {
                chunk_of_current[c.current] = next_chunk;
                chunk_of_mov[c.movIndex] = next_chunk;
                ++next_chunk;
            }
        }
        _readers.assign(next_chunk, {});
        _ownedChunks.assign(_instrs.size(), {});
        _readChunks.assign(_instrs.size(), {});
        _neighbors.assign(_instrs.size(), {});
        std::vector<int> owner(next_chunk, -1);

        for (size_t p = 0; p < _instrs.size(); ++p) {
            for (uint32_t idx : _instrs[p]) {
                auto mv = chunk_of_mov.find(idx);
                if (mv != chunk_of_mov.end() &&
                    _prog.body[idx].opcode == Opcode::Mov)
                    owner[mv->second] = static_cast<int>(p);
                for (Reg s : _prog.body[idx].sources()) {
                    auto it = chunk_of_current.find(s);
                    if (it != chunk_of_current.end()) {
                        auto &rd = _readers[it->second];
                        if (std::find(rd.begin(), rd.end(),
                                      static_cast<int>(p)) == rd.end()) {
                            rd.push_back(static_cast<int>(p));
                            _readChunks[p].push_back(it->second);
                        }
                    }
                }
            }
        }

        for (uint32_t c = 0; c < next_chunk; ++c) {
            MANTICORE_ASSERT(owner[c] != -1, "chunk without owner");
            _ownedChunks[owner[c]].push_back(c);
            for (int r : _readers[c]) {
                if (r != owner[c]) {
                    _neighbors[owner[c]].insert(r);
                    _neighbors[r].insert(owner[c]);
                    ++_splitEdges;
                }
            }
        }
        _aliveCount = _instrs.size();
    }

    const LoweredProgram &_prog;
    std::vector<std::vector<uint32_t>> _instrs;
    std::vector<bool> _alive;
    size_t _aliveCount = 0;
    int _privProc = -1;
    /// Per dense chunk id: reader process ids.
    std::vector<std::vector<int>> _readers;
    /// Per process: chunks it owns / chunks it reads.
    std::vector<std::vector<uint32_t>> _ownedChunks;
    std::vector<std::vector<uint32_t>> _readChunks;
    std::vector<std::unordered_set<int>> _neighbors;
    size_t _splitEdges = 0;
};

void
mergeBalanced(Merger &m, unsigned num_cores)
{
    while (m.aliveCount() > 1) {
        // Pick the cheapest alive process.
        int best_p = -1;
        size_t best_cost = 0;
        size_t max_cost = 0;
        for (size_t p = 0; p < m.numProcs(); ++p) {
            if (!m.alive(static_cast<int>(p)))
                continue;
            size_t c = m.cost(static_cast<int>(p));
            max_cost = std::max(max_cost, c);
            if (best_p == -1 || c < best_cost) {
                best_p = static_cast<int>(p);
                best_cost = c;
            }
        }

        // Candidate partners: communicating neighbours, plus the
        // smallest non-neighbour.  Communication-aware merging wants
        // neighbours (shared values stop being SENDs), but in
        // hub-and-spoke designs a process's only neighbour can be a
        // huge hub; offering one cheap outsider lets the cost model
        // avoid accreting everything onto the hub.
        int best_q = -1;
        size_t best_merged = 0;
        auto consider = [&](int q) {
            if (q == best_p || !m.alive(q))
                return;
            size_t c = m.mergedCost(best_p, q);
            if (best_q == -1 || c < best_merged) {
                best_q = q;
                best_merged = c;
            }
        };
        for (int q : m.neighbors(best_p))
            consider(q);
        int smallest_other = -1;
        size_t smallest_cost = 0;
        for (size_t q = 0; q < m.numProcs(); ++q) {
            int qi = static_cast<int>(q);
            if (qi == best_p || !m.alive(qi) ||
                m.neighbors(best_p).count(qi))
                continue;
            size_t c = m.cost(qi);
            if (smallest_other == -1 || c < smallest_cost) {
                smallest_other = qi;
                smallest_cost = c;
            }
        }
        if (smallest_other != -1)
            consider(smallest_other);
        if (best_q == -1)
            break;

        if (m.aliveCount() > num_cores) {
            m.merge(best_p, best_q);
        } else if (best_merged <= max_cost) {
            // Past the core budget, keep merging only while it cannot
            // create a new straggler (§6.1: merging can continue when
            // it reduces execution time).
            m.merge(best_p, best_q);
        } else {
            break;
        }
    }
}

void
mergeLpt(Merger &m, unsigned num_cores)
{
    // Longest-processing-time-first bin packing, oblivious to
    // communication: repeatedly place the largest un-binned process
    // into the least-loaded bin (a bin is represented by the first
    // process merged into it).
    std::vector<int> order;
    for (size_t p = 0; p < m.numProcs(); ++p)
        if (m.alive(static_cast<int>(p)))
            order.push_back(static_cast<int>(p));
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return m.cost(a) > m.cost(b);
    });

    size_t bins = std::min<size_t>(num_cores, order.size());
    std::vector<int> bin_repr;
    std::vector<size_t> bin_load;
    for (int p : order) {
        if (bin_repr.size() < bins) {
            bin_repr.push_back(p);
            bin_load.push_back(m.cost(p));
            continue;
        }
        size_t best = 0;
        for (size_t b = 1; b < bin_repr.size(); ++b)
            if (bin_load[b] < bin_load[best])
                best = b;
        // LPT uses the linear cost estimate when packing.
        bin_load[best] += m.cost(p);
        m.merge(bin_repr[best], p);
    }
}

} // namespace

Partition
partition(const LoweredProgram &program, unsigned num_cores,
          MergeAlgo algo)
{
    MANTICORE_ASSERT(num_cores >= 1, "need at least one core");
    Splitter splitter(program);
    Splitter::Result split = splitter.run();
    MANTICORE_ASSERT(!split.cones.empty(), "design has no sinks");
    size_t split_count = split.cones.size();

    Merger merger(program, std::move(split));
    if (algo == MergeAlgo::Balanced)
        mergeBalanced(merger, num_cores);
    else
        mergeLpt(merger, num_cores);

    Partition part = merger.finish(algo, split_count);
    MANTICORE_ASSERT(part.processes.size() <= num_cores,
                     "merge produced too many processes");
    return part;
}

} // namespace manticore::compiler
