/**
 * @file
 * Custom function synthesis (§6.2 of the paper): collapse chains of
 * bitwise logic instructions (AND/OR/XOR, with constants folded into
 * the truth tables) into single CUST instructions evaluated by the
 * per-core custom function units.
 *
 * Pipeline per process: prune the dependence graph to logic-only
 * connected components, enumerate all 4-input cuts, keep the
 * maximum-fanout-free cones (MFFCs), group cones computing the same
 * function by truth-table signature, then select a maximum-saving set
 * of non-overlapping cones with a 0/1 ILP (branch-and-bound), and
 * rewrite the body.  A built-in differential self-check validates
 * every rewritten cone against its original on random vectors.
 */

#ifndef MANTICORE_COMPILER_CFU_HH
#define MANTICORE_COMPILER_CFU_HH

#include "compiler/draft.hh"
#include "isa/config.hh"

namespace manticore::compiler {

struct CfuStats
{
    size_t candidates = 0;
    size_t selected = 0;
    size_t distinctFunctions = 0;
    size_t instructionsRemoved = 0; ///< net (removed minus CUSTs added)
    bool ilpOptimal = true;
};

/** Run custom-function synthesis on every process of the draft. */
CfuStats synthesizeCustomFunctions(ProgramDraft &draft,
                                   const isa::MachineConfig &config);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_CFU_HH
