/**
 * @file
 * Manticore compiler driver (§6, Fig. 4): netlist -> lower assembly ->
 * optimisation -> parallelisation (split + merge) -> custom function
 * synthesis -> scheduling/routing -> register allocation -> binary
 * program.  Collects per-phase wall-clock times (Fig. 13 / Table 8)
 * and the statistics every evaluation experiment consumes.
 */

#ifndef MANTICORE_COMPILER_COMPILER_HH
#define MANTICORE_COMPILER_COMPILER_HH

#include <map>
#include <string>

#include "compiler/cfu.hh"
#include "compiler/opt.hh"
#include "compiler/partition.hh"
#include "compiler/regalloc.hh"
#include "compiler/schedule.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"

namespace manticore::compiler {

struct CompileOptions
{
    isa::MachineConfig config;
    MergeAlgo mergeAlgo = MergeAlgo::Balanced;
    bool enableCustomFunctions = true;
    bool enableOptimizations = true;
    /// Allow bodies larger than the instruction memory, producing a
    /// VCPL prediction for configurations that cannot actually boot
    /// (used for Fig. 7's small-grid baselines, as in the paper).
    bool enforceImemLimit = true;
};

struct CompileResult
{
    isa::Program program;

    /// Per netlist register, per 16-bit chunk: (process id, machine
    /// register) holding the authoritative current value — the host's
    /// observation hook into design state.
    std::vector<std::vector<RegChunkHome>> regChunkHome;

    OptStats opt;
    PartitionStats partition;
    CfuStats cfu;
    ScheduleStats schedule;
    RegAllocStats regalloc;

    /// Lowered (pre-partition) instruction count.
    size_t loweredInstructions = 0;
    /// Wall-clock seconds per phase, keyed "lower"/"opt"/"prl"/"cf"/
    /// "sch"/"otr" (Fig. 13 nomenclature).
    std::map<std::string, double> phaseSeconds;
    double totalSeconds = 0.0;

    /// Simulation rate in kHz for a given compute clock (§7.6:
    /// rate = clock / VCPL).
    double
    simulationRateKhz(double clock_khz) const
    {
        return clock_khz / program.vcpl;
    }
};

/** Compile a closed netlist for the configured grid. */
CompileResult compile(const netlist::Netlist &netlist,
                      const CompileOptions &options);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_COMPILER_HH
