#include "compiler/cfu.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "support/ilp.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace manticore::compiler {

using isa::CustomFunction;
using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

namespace {

bool
isLogic(Opcode op)
{
    return op == Opcode::And || op == Opcode::Or || op == Opcode::Xor;
}

struct Candidate
{
    size_t root;                 ///< body index of the cone root
    std::vector<Reg> leaves;     ///< variable inputs (<= 4)
    std::vector<size_t> nodes;   ///< body indices replaced (incl. root)
    CustomFunction function;
    size_t savings() const { return nodes.size() - 1; }
};

class ProcessCfu
{
  public:
    ProcessCfu(isa::Process &proc, ProcessMeta &meta,
               const std::unordered_set<Reg> &const_regs,
               const std::unordered_map<Reg, uint16_t> &init,
               const isa::MachineConfig &config, CfuStats &stats)
        : _proc(proc), _meta(meta), _constRegs(const_regs), _init(init),
          _config(config), _stats(stats)
    {}

    void
    run()
    {
        index();
        enumerateCandidates();
        if (_candidates.empty())
            return;
        select();
        rewrite();
    }

  private:
    void
    index()
    {
        for (size_t i = 0; i < _proc.body.size(); ++i) {
            const Instruction &inst = _proc.body[i];
            Reg d = inst.opcode == Opcode::Send ? kNoReg
                                                : inst.destination();
            if (d != kNoReg)
                _def[d] = i;
            for (Reg s : inst.sources())
                _users[s].push_back(i);
            // Carry consumers pin their producer: fusing an
            // instruction whose carry bit is read would lose it.
            if (inst.readsCarry() && inst.rs3 != kNoReg)
                _carryRead.insert(inst.rs3);
        }
    }

    bool
    isConst(Reg r) const
    {
        return _constRegs.count(r) != 0;
    }

    /** Logic-instruction body index defining r, or SIZE_MAX. */
    size_t
    logicDef(Reg r) const
    {
        if (isConst(r))
            return SIZE_MAX;
        auto it = _def.find(r);
        if (it == _def.end())
            return SIZE_MAX;
        return isLogic(_proc.body[it->second].opcode) ? it->second
                                                      : SIZE_MAX;
    }

    /** Cuts of the value r: sets of <= 4 variable leaves.  Constants
     *  contribute no leaves.  Non-logic values are themselves leaves. */
    const std::vector<std::vector<Reg>> &
    cutsOf(Reg r)
    {
        auto it = _cuts.find(r);
        if (it != _cuts.end())
            return it->second;
        std::vector<std::vector<Reg>> cuts;
        if (isConst(r)) {
            cuts.push_back({});
        } else if (logicDef(r) == SIZE_MAX) {
            cuts.push_back({r});
        } else {
            const Instruction &inst = _proc.body[logicDef(r)];
            const auto &ca = cutsOf(inst.rs1);
            const auto &cb = cutsOf(inst.rs2);
            // The trivial cut: the value itself is a leaf.
            cuts.push_back({r});
            for (const auto &a : ca) {
                for (const auto &b : cb) {
                    std::vector<Reg> merged;
                    std::set_union(a.begin(), a.end(), b.begin(),
                                   b.end(), std::back_inserter(merged));
                    if (merged.size() > 4)
                        continue;
                    if (std::find(cuts.begin(), cuts.end(), merged) ==
                        cuts.end())
                        cuts.push_back(merged);
                    if (cuts.size() >= kMaxCutsPerNode)
                        break;
                }
                if (cuts.size() >= kMaxCutsPerNode)
                    break;
            }
        }
        return _cuts.emplace(r, std::move(cuts)).first->second;
    }

    /** Collect the cone of `root` stopping at `leaves`; returns false
     *  when the cone is not a valid fusion target. */
    bool
    collectCone(size_t root, const std::vector<Reg> &leaves,
                std::vector<size_t> &nodes) const
    {
        std::vector<Reg> stack = {_proc.body[root].rd};
        std::unordered_set<Reg> visited;
        while (!stack.empty()) {
            Reg r = stack.back();
            stack.pop_back();
            if (visited.count(r))
                continue;
            visited.insert(r);
            size_t d = logicDef(r);
            MANTICORE_ASSERT(d != SIZE_MAX, "cone hit a non-logic def");
            nodes.push_back(d);
            if (_carryRead.count(r))
                return false;
            const Instruction &inst = _proc.body[d];
            for (Reg s : {inst.rs1, inst.rs2}) {
                if (isConst(s))
                    continue;
                if (std::find(leaves.begin(), leaves.end(), s) !=
                    leaves.end())
                    continue;
                if (logicDef(s) == SIZE_MAX)
                    return false; // leaf not in the cut
                stack.push_back(s);
            }
        }
        std::sort(nodes.begin(), nodes.end());
        nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
        return true;
    }

    /** MFFC test: every non-root cone node is used only inside. */
    bool
    isMffc(size_t root, const std::vector<size_t> &nodes) const
    {
        std::unordered_set<size_t> in_cone(nodes.begin(), nodes.end());
        for (size_t n : nodes) {
            if (n == root)
                continue;
            auto it = _users.find(_proc.body[n].rd);
            if (it == _users.end())
                return false;
            for (size_t user : it->second)
                if (!in_cone.count(user))
                    return false;
        }
        return true;
    }

    /** Evaluate one bit lane of the cone for one leaf-value combo. */
    bool
    evalCone(size_t root, const std::vector<Reg> &leaves, unsigned lane,
             unsigned combo,
             std::unordered_map<Reg, bool> &memo) const
    {
        Reg r = _proc.body[root].rd;
        std::function<bool(Reg)> eval = [&](Reg v) -> bool {
            auto it = memo.find(v);
            if (it != memo.end())
                return it->second;
            bool result;
            auto leaf = std::find(leaves.begin(), leaves.end(), v);
            if (leaf != leaves.end()) {
                result = (combo >> (leaf - leaves.begin())) & 1;
            } else if (isConst(v)) {
                result = (_init.at(v) >> lane) & 1;
            } else {
                size_t d = logicDef(v);
                MANTICORE_ASSERT(d != SIZE_MAX, "eval outside cone");
                const Instruction &inst = _proc.body[d];
                bool a = eval(inst.rs1);
                bool b = eval(inst.rs2);
                switch (inst.opcode) {
                  case Opcode::And: result = a && b; break;
                  case Opcode::Or: result = a || b; break;
                  case Opcode::Xor: result = a != b; break;
                  default: MANTICORE_PANIC("non-logic in cone");
                }
            }
            memo[v] = result;
            return result;
        };
        return eval(r);
    }

    CustomFunction
    coneFunction(size_t root, const std::vector<Reg> &leaves) const
    {
        CustomFunction f;
        for (unsigned lane = 0; lane < 16; ++lane) {
            uint16_t table = 0;
            for (unsigned combo = 0; combo < 16; ++combo) {
                std::unordered_map<Reg, bool> memo;
                if (evalCone(root, leaves, lane, combo, memo))
                    table |= static_cast<uint16_t>(1u << combo);
            }
            f.lut[lane] = table;
        }
        return f;
    }

    void
    enumerateCandidates()
    {
        for (size_t i = 0; i < _proc.body.size(); ++i) {
            if (!isLogic(_proc.body[i].opcode))
                continue;
            for (const auto &cut : cutsOf(_proc.body[i].rd)) {
                if (cut.size() == 1 && cut[0] == _proc.body[i].rd)
                    continue; // trivial cut
                std::vector<size_t> nodes;
                if (!collectCone(i, cut, nodes))
                    continue;
                if (nodes.size() < 2)
                    continue; // no saving from a single instruction
                if (!isMffc(i, nodes))
                    continue;
                Candidate c;
                c.root = i;
                c.leaves = cut;
                c.nodes = std::move(nodes);
                c.function = coneFunction(i, cut);
                _candidates.push_back(std::move(c));
            }
        }
        _stats.candidates += _candidates.size();
    }

    void
    select()
    {
        // ILP: maximise saved instructions subject to each body
        // instruction being covered by at most one selected cone.
        IlpProblem ilp;
        for (const Candidate &c : _candidates)
            ilp.addVariable(static_cast<double>(c.savings()));
        std::unordered_map<size_t, std::vector<int>> covering;
        for (size_t v = 0; v < _candidates.size(); ++v)
            for (size_t n : _candidates[v].nodes)
                covering[n].push_back(static_cast<int>(v));
        for (auto &[node, vars] : covering)
            if (vars.size() > 1)
                ilp.addAtMostOne(vars);

        IlpSolver solver(500'000);
        IlpSolution sol = solver.solve(ilp);
        _stats.ilpOptimal = _stats.ilpOptimal && sol.provenOptimal;

        for (size_t v = 0; v < _candidates.size(); ++v)
            if (sol.assignment[v])
                _selected.push_back(v);

        // Respect the CFU slot budget: group by exact truth table and
        // keep the highest-saving function groups.
        std::map<std::array<uint16_t, 16>, std::vector<size_t>> groups;
        for (size_t v : _selected)
            groups[_candidates[v].function.lut].push_back(v);
        if (groups.size() > _config.custSlots) {
            std::vector<std::pair<size_t, std::array<uint16_t, 16>>> rank;
            for (auto &[lut, vars] : groups) {
                size_t total = 0;
                for (size_t v : vars)
                    total += _candidates[v].savings();
                rank.emplace_back(total, lut);
            }
            std::sort(rank.begin(), rank.end(),
                      [](const auto &a, const auto &b) {
                          return a.first > b.first;
                      });
            std::set<std::array<uint16_t, 16>> keep;
            for (size_t k = 0; k < _config.custSlots; ++k)
                keep.insert(rank[k].second);
            std::vector<size_t> filtered;
            for (size_t v : _selected)
                if (keep.count(_candidates[v].function.lut))
                    filtered.push_back(v);
            _selected = std::move(filtered);
        }
        _stats.selected += _selected.size();
    }

    void
    rewrite()
    {
        if (_selected.empty())
            return;

        // Assign function slots (shared across cones with equal LUTs).
        std::map<std::array<uint16_t, 16>, uint16_t> slot_of;
        for (size_t v : _selected) {
            const auto &lut = _candidates[v].function.lut;
            if (!slot_of.count(lut)) {
                slot_of[lut] =
                    static_cast<uint16_t>(_proc.functions.size());
                _proc.functions.push_back(_candidates[v].function);
            }
        }
        _stats.distinctFunctions = std::max(_stats.distinctFunctions,
                                            _proc.functions.size());

        std::unordered_map<size_t, size_t> cust_at; // root -> candidate
        std::unordered_set<size_t> removed;
        for (size_t v : _selected) {
            const Candidate &c = _candidates[v];
            cust_at[c.root] = v;
            for (size_t n : c.nodes)
                if (n != c.root)
                    removed.insert(n);
            _stats.instructionsRemoved += c.savings();
        }

        selfCheck();

        std::vector<Instruction> new_body;
        std::vector<int> new_mem;
        for (size_t i = 0; i < _proc.body.size(); ++i) {
            if (removed.count(i))
                continue;
            auto it = cust_at.find(i);
            if (it == cust_at.end()) {
                new_body.push_back(_proc.body[i]);
                new_mem.push_back(_meta.memGroup[i]);
                continue;
            }
            const Candidate &c = _candidates[it->second];
            Instruction cust;
            cust.opcode = Opcode::Cust;
            cust.rd = _proc.body[i].rd;
            Reg pads[4];
            for (unsigned k = 0; k < 4; ++k)
                pads[k] = k < c.leaves.size() ? c.leaves[k]
                                              : c.leaves[0];
            cust.rs1 = pads[0];
            cust.rs2 = pads[1];
            cust.rs3 = pads[2];
            cust.rs4 = pads[3];
            cust.imm = slot_of.at(c.function.lut);
            new_body.push_back(cust);
            new_mem.push_back(-1);
        }
        _proc.body = std::move(new_body);
        _meta.memGroup = std::move(new_mem);
    }

    /** Differential check: each selected cone's LUT must reproduce the
     *  original logic on random 16-bit vectors. */
    void
    selfCheck() const
    {
        Rng rng(0xcf05eedull ^ _proc.id);
        for (size_t v : _selected) {
            const Candidate &c = _candidates[v];
            for (int trial = 0; trial < 8; ++trial) {
                std::unordered_map<Reg, uint16_t> values;
                for (Reg leaf : c.leaves)
                    values[leaf] = static_cast<uint16_t>(rng.next());
                // Evaluate the original cone word-wise.
                std::function<uint16_t(Reg)> eval =
                    [&](Reg r) -> uint16_t {
                    auto it = values.find(r);
                    if (it != values.end())
                        return it->second;
                    if (isConst(r))
                        return _init.at(r);
                    size_t d = logicDef(r);
                    const Instruction &inst = _proc.body[d];
                    uint16_t a = eval(inst.rs1);
                    uint16_t b = eval(inst.rs2);
                    switch (inst.opcode) {
                      case Opcode::And: return a & b;
                      case Opcode::Or: return a | b;
                      case Opcode::Xor: return a ^ b;
                      default: MANTICORE_PANIC("non-logic in cone");
                    }
                };
                uint16_t expect = eval(_proc.body[c.root].rd);
                uint16_t ins[4];
                for (unsigned k = 0; k < 4; ++k)
                    ins[k] = k < c.leaves.size() ? values[c.leaves[k]]
                                                 : values[c.leaves[0]];
                uint16_t got = c.function.apply(ins[0], ins[1], ins[2],
                                                ins[3]);
                MANTICORE_ASSERT(got == expect,
                                 "CFU self-check failed in process ",
                                 _proc.id);
            }
        }
    }

    static constexpr size_t kMaxCutsPerNode = 12;

    isa::Process &_proc;
    ProcessMeta &_meta;
    const std::unordered_set<Reg> &_constRegs;
    const std::unordered_map<Reg, uint16_t> &_init;
    const isa::MachineConfig &_config;
    CfuStats &_stats;

    std::unordered_map<Reg, size_t> _def;
    std::unordered_map<Reg, std::vector<size_t>> _users;
    std::unordered_set<Reg> _carryRead;
    std::unordered_map<Reg, std::vector<std::vector<Reg>>> _cuts;
    std::vector<Candidate> _candidates;
    std::vector<size_t> _selected;
};

} // namespace

CfuStats
synthesizeCustomFunctions(ProgramDraft &draft,
                          const isa::MachineConfig &config)
{
    CfuStats stats;
    for (size_t p = 0; p < draft.program.processes.size(); ++p) {
        isa::Process &proc = draft.program.processes[p];
        ProcessCfu cfu(proc, draft.meta[p], draft.constRegs, proc.init,
                       config, stats);
        cfu.run();
    }
    return stats;
}

} // namespace manticore::compiler
