#include "compiler/draft.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"

namespace manticore::compiler {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::kNoReg;

ProgramDraft
materialize(const LoweredProgram &lowered, const Partition &partition)
{
    ProgramDraft draft;
    draft.constRegs = lowered.constRegs;
    draft.program.exceptions = lowered.exceptions;
    draft.program.globalWordsReserved = lowered.globalWordsReserved;
    draft.program.globalInit = lowered.globalInit;

    // Process order: privileged first so it lands on core 0 at (0,0).
    std::vector<int> order;
    if (partition.privileged != -1)
        order.push_back(partition.privileged);
    for (size_t p = 0; p < partition.processes.size(); ++p)
        if (static_cast<int>(p) != partition.privileged)
            order.push_back(static_cast<int>(p));

    size_t np = order.size();
    draft.program.processes.resize(np);
    draft.meta.resize(np);

    // Copy bodies and build ownership/readership of RTL chunks.
    struct ChunkUse
    {
        int owner = -1;
        Reg next = kNoReg;
        std::vector<int> readers;
    };
    std::unordered_map<Reg, ChunkUse> chunks; // keyed by current reg
    for (const auto &reg_chunks : lowered.rtlRegs) {
        for (const auto &c : reg_chunks) {
            draft.currentRegs.insert(c.current);
            chunks[c.current].next = c.next;
        }
    }

    for (size_t slot = 0; slot < np; ++slot) {
        const auto &indices = partition.processes[order[slot]];
        isa::Process &proc = draft.program.processes[slot];
        proc.id = static_cast<uint32_t>(slot);
        proc.privileged =
            partition.privileged != -1 && order[slot] == partition.privileged;
        for (uint32_t idx : indices) {
            proc.body.push_back(lowered.body[idx]);
            draft.meta[slot].memGroup.push_back(lowered.memGroup[idx]);
            const Instruction &inst = lowered.body[idx];
            if (inst.opcode == Opcode::Mov) {
                auto it = chunks.find(inst.rd);
                MANTICORE_ASSERT(it != chunks.end(),
                                 "MOV to non-current register");
                MANTICORE_ASSERT(it->second.owner == -1,
                                 "chunk owned twice");
                it->second.owner = static_cast<int>(slot);
            }
        }
    }

    // Readership: any process whose body reads a current register.
    for (size_t slot = 0; slot < np; ++slot) {
        std::unordered_set<Reg> seen;
        for (const Instruction &inst : draft.program.processes[slot].body) {
            for (Reg s : inst.sources()) {
                if (!draft.currentRegs.count(s) || seen.count(s))
                    continue;
                seen.insert(s);
                chunks[s].readers.push_back(static_cast<int>(slot));
            }
        }
    }

    // Owner-to-reader SENDs; reader epilogue counts.
    for (auto &[current, use] : chunks) {
        MANTICORE_ASSERT(use.owner != -1, "chunk has no owner process");
        for (int reader : use.readers) {
            if (reader == use.owner)
                continue;
            Instruction send;
            send.opcode = Opcode::Send;
            send.target = static_cast<uint32_t>(reader);
            send.rd = current;     // register in the *target* process
            send.rs1 = use.next;   // freshly computed value
            draft.program.processes[use.owner].body.push_back(send);
            draft.meta[use.owner].memGroup.push_back(-1);
            draft.program.processes[reader].epilogueLength += 1;
        }
    }

    // Boot constants: every source with no in-process definition must
    // be a boot-initialised register.
    for (size_t slot = 0; slot < np; ++slot) {
        isa::Process &proc = draft.program.processes[slot];
        std::unordered_set<Reg> defined;
        for (const Instruction &inst : proc.body) {
            Reg d = inst.opcode == Opcode::Send ? kNoReg
                                                : inst.destination();
            if (d != kNoReg)
                defined.insert(d);
        }
        auto need_init = [&](Reg r) {
            auto it = lowered.init.find(r);
            if (it != lowered.init.end()) {
                proc.init.emplace(r, it->second);
                return true;
            }
            return false;
        };
        for (const Instruction &inst : proc.body) {
            if (inst.opcode == Opcode::Mov)
                need_init(inst.rd); // current value needs a boot value
            for (Reg s : inst.sources()) {
                if (defined.count(s))
                    continue;
                // Received current values are boot-initialised too.
                if (!need_init(s))
                    MANTICORE_PANIC("process ", slot,
                                    " reads undefined register $r", s,
                                    " (split leaked a combinational "
                                    "value across processes)");
            }
        }
        // SEND target registers live in the reader; give the reader a
        // boot value for them as well (done above via readers loop
        // because readers always read the register).
    }

    // Observation map: per RTL register chunk, the owning process and
    // the (virtual, for now) register holding the current value.
    draft.regChunkHome.resize(lowered.rtlRegs.size());
    for (size_t r = 0; r < lowered.rtlRegs.size(); ++r) {
        for (const auto &c : lowered.rtlRegs[r]) {
            const ChunkUse &use = chunks.at(c.current);
            draft.regChunkHome[r].push_back(
                {static_cast<uint32_t>(use.owner), c.current});
        }
    }

    // Scratchpad layout: each memory lives in the unique process that
    // touches it.
    std::unordered_map<int, int> mem_owner; // mem id -> slot
    for (size_t slot = 0; slot < np; ++slot)
        for (int m : draft.meta[slot].memGroup)
            if (m >= 0)
                mem_owner.emplace(m, static_cast<int>(slot));
    std::vector<uint32_t> scratch_top(np, 0);
    for (const MemAlloc &alloc : lowered.memAllocs) {
        if (alloc.global)
            continue; // DRAM-resident: base folded in as a constant
        auto it = mem_owner.find(static_cast<int>(alloc.mem));
        if (it == mem_owner.end())
            continue; // memory optimised away entirely
        isa::Process &proc = draft.program.processes[it->second];
        uint32_t base = scratch_top[it->second];
        scratch_top[it->second] = base + alloc.words;
        proc.init[alloc.baseReg] = static_cast<uint16_t>(base);
        if (proc.scratchInit.size() < base + alloc.image.size())
            proc.scratchInit.resize(base + alloc.image.size(), 0);
        std::copy(alloc.image.begin(), alloc.image.end(),
                  proc.scratchInit.begin() + base);
    }

    return draft;
}

} // namespace manticore::compiler
