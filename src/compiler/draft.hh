/**
 * @file
 * ProgramDraft: the compiler's working representation between
 * partitioning and final code emission — an isa::Program still in
 * virtual (SSA) registers, plus the side metadata that scheduling,
 * CFU synthesis, and register allocation need.
 */

#ifndef MANTICORE_COMPILER_DRAFT_HH
#define MANTICORE_COMPILER_DRAFT_HH

#include <unordered_set>
#include <vector>

#include "compiler/lowered.hh"
#include "compiler/partition.hh"
#include "isa/isa.hh"

namespace manticore::compiler {

struct ProcessMeta
{
    /// Per instruction: netlist memory id or -1 (parallel to body).
    std::vector<int> memGroup;
};

/** Where an RTL register chunk's authoritative current value lives. */
struct RegChunkHome
{
    uint32_t process = 0;
    isa::Reg reg = isa::kNoReg; ///< virtual until regalloc, then machine
};

struct ProgramDraft
{
    isa::Program program;
    std::vector<ProcessMeta> meta;
    /// Virtual registers that are RTL-register current values
    /// (persistent; MOV/SEND targets).
    std::unordered_set<isa::Reg> currentRegs;
    /// Virtual registers that are compile-time constants.
    std::unordered_set<isa::Reg> constRegs;
    /// Per netlist register, per 16-bit chunk: the owning core and the
    /// register holding its current value.  This is the observation
    /// hook the host uses to inspect design state (and the anchor for
    /// the differential tests).
    std::vector<std::vector<RegChunkHome>> regChunkHome;
};

/** Instantiate the final processes: copy each partition's instruction
 *  subset, insert owner-to-reader SENDs for every RTL register chunk,
 *  build per-process boot constants, and lay out memories in the
 *  owning core's scratchpad. */
ProgramDraft materialize(const LoweredProgram &lowered,
                         const Partition &partition);

} // namespace manticore::compiler

#endif // MANTICORE_COMPILER_DRAFT_HH
