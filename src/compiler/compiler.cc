#include "compiler/compiler.hh"

#include <chrono>

#include "netlist/optimize.hh"
#include "support/logging.hh"

namespace manticore::compiler {

namespace {

class PhaseTimer
{
  public:
    PhaseTimer(CompileResult &result, const char *name)
        : _result(result), _name(name),
          _start(std::chrono::steady_clock::now())
    {}

    ~PhaseTimer()
    {
        auto end = std::chrono::steady_clock::now();
        double sec =
            std::chrono::duration<double>(end - _start).count();
        _result.phaseSeconds[_name] += sec;
        _result.totalSeconds += sec;
    }

  private:
    CompileResult &_result;
    const char *_name;
    std::chrono::steady_clock::time_point _start;
};

} // namespace

CompileResult
compile(const netlist::Netlist &netlist, const CompileOptions &options)
{
    CompileResult result;

    // Frontend optimisation on the netlist itself (fold/CSE/DCE),
    // mirroring the Yosys-side cleanups of §6.
    netlist::Netlist optimized("unused");
    const netlist::Netlist *source = &netlist;
    if (options.enableOptimizations) {
        PhaseTimer t(result, "opt");
        optimized = netlist::optimizeNetlist(netlist);
        source = &optimized;
    }

    LoweredProgram lowered;
    {
        PhaseTimer t(result, "lower");
        lowered = lower(*source, options.config.scratchSize);
    }

    if (options.enableOptimizations) {
        PhaseTimer t(result, "opt");
        result.opt = optimize(lowered);
    }
    result.loweredInstructions = lowered.body.size();

    Partition part;
    {
        PhaseTimer t(result, "prl");
        part = partition(lowered, options.config.numCores(),
                         options.mergeAlgo);
    }
    result.partition = part.stats;

    ProgramDraft draft;
    {
        PhaseTimer t(result, "prl");
        draft = materialize(lowered, part);
    }

    if (options.enableCustomFunctions) {
        PhaseTimer t(result, "cf");
        result.cfu = synthesizeCustomFunctions(draft, options.config);
    }

    {
        PhaseTimer t(result, "sch");
        result.schedule = scheduleProgram(draft, options.config,
                                          options.enforceImemLimit);
    }

    {
        PhaseTimer t(result, "otr");
        result.regalloc = allocateRegisters(draft, options.config);
        result.program = std::move(draft.program);
        result.regChunkHome = std::move(draft.regChunkHome);
        isa::validate(result.program, options.config);
    }

    return result;
}

} // namespace manticore::compiler
