#include "runtime/host.hh"

#include "netlist/evaluator.hh"
#include "support/bitvector.hh"

namespace manticore::runtime {

isa::HostAction
Host::service(uint32_t pid, uint16_t eid)
{
    (void)pid;
    const isa::ExceptionInfo &info = _program.exceptions.info(eid);
    switch (info.kind) {
      case isa::ExceptionKind::Display: {
        // Reassemble each argument from its 16-bit chunks in DRAM.
        std::vector<BitVector> args;
        for (size_t a = 0; a < info.argChunkAddrs.size(); ++a) {
            BitVector value(info.argWidths[a]);
            const auto &addrs = info.argChunkAddrs[a];
            for (size_t c = 0; c < addrs.size(); ++c) {
                uint16_t word = _global.read(addrs[c]);
                for (unsigned b = 0; b < 16; ++b) {
                    unsigned bit = static_cast<unsigned>(c) * 16 + b;
                    if (bit < value.width() && ((word >> b) & 1))
                        value.setBit(bit, true);
                }
            }
            args.push_back(std::move(value));
        }
        std::string line =
            netlist::Evaluator::formatDisplay(info.format, args);
        _displayLog.push_back(line);
        if (onDisplay)
            onDisplay(line);
        return isa::HostAction::Continue;
      }
      case isa::ExceptionKind::Finish:
        _finished = true;
        return isa::HostAction::Finish;
      case isa::ExceptionKind::AssertFail:
        _failureMessage = "assertion failed: " + info.format;
        return isa::HostAction::Fail;
    }
    return isa::HostAction::Fail;
}

} // namespace manticore::runtime
