/**
 * @file
 * Simulation: the library's top-level convenience API.  Give it a
 * netlist and a machine configuration; it compiles the design, boots
 * the cycle-level machine, wires up the host runtime, and exposes
 * run / rate / log accessors.  This is the entry point the examples
 * and benchmarks use — the "three lines to simulate your design"
 * experience of the README quickstart.
 *
 * runCrossChecked() additionally locksteps the machine against a
 * golden-model netlist evaluator.  The engine is selectable via
 * EvalMode (reference / compiled / parallel) instead of hard-coding
 * the reference evaluator, so long cross-checked runs can use the
 * fast engines (see README.md §engines).
 *
 * runIsaCrossChecked() locksteps the machine against a functional ISA
 * interpreter on the same compiled program (selectable via
 * isa::ExecMode, defaulting to the fast tape engine), catching
 * machine-model timing bugs without needing the netlist golden model.
 */

#ifndef MANTICORE_RUNTIME_SIMULATION_HH
#define MANTICORE_RUNTIME_SIMULATION_HH

#include <memory>
#include <optional>
#include <string>

#include "compiler/compiler.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "runtime/host.hh"

namespace manticore::runtime {

class Simulation
{
  public:
    /** Plain simulation: no golden model is kept, so the netlist is
     *  not copied. */
    Simulation(const netlist::Netlist &netlist,
               const compiler::CompileOptions &options = {});

    /** Cross-checkable simulation: keeps a copy of the netlist and
     *  builds a golden-model evaluator of the given mode lazily on
     *  the first runCrossChecked call.
     *  @param golden_options engine options (thread count / merge
     *  algorithm for EvalMode::Parallel). */
    Simulation(const netlist::Netlist &netlist,
               const compiler::CompileOptions &options,
               netlist::EvalMode golden_mode,
               const netlist::EvalOptions &golden_options = {});

    /** Simulate up to max_vcycles RTL cycles. */
    isa::RunStatus run(uint64_t max_vcycles);

    /** Simulate up to max_vcycles RTL cycles with the machine and the
     *  golden-model evaluator in lockstep, comparing engine status
     *  and every RTL register at each Vcycle boundary.  Returns
     *  Failed (with divergence() set) at the first mismatch.
     *  Requires construction with a golden EvalMode. */
    isa::RunStatus runCrossChecked(uint64_t max_vcycles);

    /** Simulate up to max_vcycles RTL cycles with the machine and a
     *  functional ISA interpreter (built by isa::makeInterpreter on
     *  the compiled program) in lockstep, comparing engine status and
     *  every RTL register chunk home at each Vcycle boundary.
     *  Available on any Simulation (no netlist copy needed). */
    isa::RunStatus
    runIsaCrossChecked(uint64_t max_vcycles,
                       isa::ExecMode mode = isa::ExecMode::Tape);

    /** Description of the first cross-check mismatch; empty if none. */
    const std::string &divergence() const { return _divergence; }

    /** Engine configured for cross-checks; meaningless (Reference)
     *  when constructed without one. */
    netlist::EvalMode goldenMode() const { return _goldenMode; }

    isa::RunStatus status() const { return _machine->status(); }
    uint64_t vcycles() const { return _machine->perf().vcycles; }

    /** Effective simulation rate (kHz) at the configured compute
     *  clock, accounting for global stalls. */
    double effectiveRateKhz() const;

    const compiler::CompileResult &compileResult() const
    {
        return _compiled;
    }
    machine::Machine &machine() { return *_machine; }
    Host &host() { return *_host; }
    const std::vector<std::string> &displayLog() const
    {
        return _host->displayLog();
    }

  private:
    /// Netlist copy for golden-model construction; engaged only by
    /// the cross-checkable constructor.
    std::optional<netlist::Netlist> _netlist;
    compiler::CompileResult _compiled;
    isa::MachineConfig _config;
    netlist::EvalMode _goldenMode = netlist::EvalMode::Reference;
    netlist::EvalOptions _goldenOptions;
    std::unique_ptr<machine::Machine> _machine;
    std::unique_ptr<Host> _host;
    std::unique_ptr<netlist::EvaluatorBase> _golden;
    /// ISA-level golden interpreter (runIsaCrossChecked), with its own
    /// host so $display/$finish are serviced identically.
    std::unique_ptr<isa::InterpreterBase> _isaGolden;
    std::unique_ptr<Host> _isaGoldenHost;
    isa::ExecMode _isaGoldenMode = isa::ExecMode::Tape;
    std::string _divergence;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_SIMULATION_HH
