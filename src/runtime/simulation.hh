/**
 * @file
 * Simulation: the library's top-level convenience API.  Give it a
 * netlist and a machine configuration; it compiles the design, boots
 * the cycle-level machine, wires up the host runtime, and exposes
 * run / rate / log accessors.  This is the entry point the examples
 * and benchmarks use — the "three lines to simulate your design"
 * experience of the README quickstart.
 */

#ifndef MANTICORE_RUNTIME_SIMULATION_HH
#define MANTICORE_RUNTIME_SIMULATION_HH

#include <memory>

#include "compiler/compiler.hh"
#include "machine/machine.hh"
#include "netlist/netlist.hh"
#include "runtime/host.hh"

namespace manticore::runtime {

class Simulation
{
  public:
    Simulation(const netlist::Netlist &netlist,
               const compiler::CompileOptions &options = {});

    /** Simulate up to max_vcycles RTL cycles. */
    isa::RunStatus run(uint64_t max_vcycles);

    isa::RunStatus status() const { return _machine->status(); }
    uint64_t vcycles() const { return _machine->perf().vcycles; }

    /** Effective simulation rate (kHz) at the configured compute
     *  clock, accounting for global stalls. */
    double effectiveRateKhz() const;

    const compiler::CompileResult &compileResult() const
    {
        return _compiled;
    }
    machine::Machine &machine() { return *_machine; }
    Host &host() { return *_host; }
    const std::vector<std::string> &displayLog() const
    {
        return _host->displayLog();
    }

  private:
    compiler::CompileResult _compiled;
    isa::MachineConfig _config;
    std::unique_ptr<machine::Machine> _machine;
    std::unique_ptr<Host> _host;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_SIMULATION_HH
