/**
 * @file
 * Simulation: the library's top-level convenience API.  Give it a
 * netlist and a machine configuration; it compiles the design, boots
 * the cycle-level machine, wires up the host runtime, and exposes
 * run / rate / log accessors.  This is the entry point the examples
 * and benchmarks use — the "three lines to simulate your design"
 * experience of the README quickstart.  (For engine-agnostic
 * harnesses, engine::Session + engine::create is the more general
 * spelling; Simulation remains the machine-centric facade.)
 *
 * runCrossChecked() locksteps the machine against a golden-model
 * netlist evaluator, runIsaCrossChecked() against a functional ISA
 * interpreter on the same compiled program.  Both are thin wrappers
 * over the generic engine::CrossCheck harness — the machine is the
 * subject engine, the golden engine is selectable (EvalMode /
 * ExecMode), and the first mismatch is reported with its cycle and
 * signal through divergence().
 */

#ifndef MANTICORE_RUNTIME_SIMULATION_HH
#define MANTICORE_RUNTIME_SIMULATION_HH

#include <memory>
#include <optional>
#include <string>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "engine/crosscheck.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "runtime/host.hh"

namespace manticore::runtime {

class Simulation
{
  public:
    /** Plain simulation: no golden model is kept, so the netlist is
     *  not copied. */
    Simulation(const netlist::Netlist &netlist,
               const compiler::CompileOptions &options = {});

    /** Cross-checkable simulation: keeps a copy of the netlist and
     *  builds a golden-model evaluator of the given mode lazily on
     *  the first runCrossChecked call.
     *  @param golden_options engine options (thread count / merge
     *  algorithm for EvalMode::Parallel). */
    Simulation(const netlist::Netlist &netlist,
               const compiler::CompileOptions &options,
               netlist::EvalMode golden_mode,
               const netlist::EvalOptions &golden_options = {});

    /** Simulate up to max_vcycles RTL cycles. */
    isa::RunStatus run(uint64_t max_vcycles);

    /** Simulate up to max_vcycles RTL cycles with the machine and the
     *  golden-model evaluator in lockstep (engine::CrossCheck),
     *  comparing engine status and every RTL register at each Vcycle
     *  boundary.  Returns Failed (with divergence() set) at the first
     *  mismatch.  Requires construction with a golden EvalMode. */
    isa::RunStatus runCrossChecked(uint64_t max_vcycles);

    /** Simulate up to max_vcycles RTL cycles with the machine and a
     *  functional ISA interpreter (on the same compiled program) in
     *  lockstep.  Available on any Simulation (no netlist copy
     *  needed). */
    isa::RunStatus
    runIsaCrossChecked(uint64_t max_vcycles,
                       isa::ExecMode mode = isa::ExecMode::Tape);

    /** Validate an N-lane ensemble engine of this design: build
     *  `subject_engine` ("netlist.parallel" or "netlist.compiled")
     *  with `lanes` lanes plus `lanes` independent scalar golden
     *  runs of the configured golden EvalMode, drive each lane's
     *  stimulus through `stimulus` (optional; closed designs
     *  self-drive), and lockstep-compare every lane — status, cycle
     *  counts, failure messages and every RTL register — including
     *  divergent per-lane finish/assert cycles
     *  (engine::EnsembleCrossCheck).  Returns Failed with
     *  divergence() set at the first mismatch.  Requires
     *  construction with a golden EvalMode. */
    isa::RunStatus runEnsembleCrossChecked(
        uint64_t max_vcycles, unsigned lanes,
        const engine::LaneStimulus &stimulus = {},
        const std::string &subject_engine = "netlist.parallel");

    /** Description of the first cross-check mismatch; empty if none. */
    const std::string &divergence() const { return _divergence; }

    /** Engine configured for cross-checks; meaningless (Reference)
     *  when constructed without one. */
    netlist::EvalMode goldenMode() const { return _goldenMode; }

    isa::RunStatus status() const { return _machine->status(); }
    uint64_t vcycles() const { return _machine->perf().vcycles; }

    /** Effective simulation rate (kHz) at the configured compute
     *  clock, accounting for global stalls. */
    double effectiveRateKhz() const;

    const compiler::CompileResult &compileResult() const
    {
        return _compiled;
    }
    machine::Machine &machine() { return *_machine; }
    /** The machine as an engine::Engine (probes wired to the
     *  compiler's observation map). */
    engine::Engine &machineEngine() { return *_machineEngine; }
    Host &host() { return *_host; }
    const std::vector<std::string> &displayLog() const
    {
        return _host->displayLog();
    }

  private:
    isa::RunStatus crossCheckAgainst(engine::Engine &golden,
                                     uint64_t max_vcycles);

    /// Netlist copy for golden-model construction; engaged only by
    /// the cross-checkable constructor.
    std::optional<netlist::Netlist> _netlist;
    compiler::CompileResult _compiled;
    isa::MachineConfig _config;
    netlist::EvalMode _goldenMode = netlist::EvalMode::Reference;
    netlist::EvalOptions _goldenOptions;
    std::unique_ptr<machine::Machine> _machine;
    /// RTL register observation table (names / widths / chunk homes).
    std::vector<engine::RtlSignal> _signals;
    /// Engine view of *_machine: the cross-check subject.
    std::unique_ptr<engine::MachineEngine> _machineEngine;
    std::unique_ptr<Host> _host;
    /// Lazily-created golden engines (netlist- and ISA-level).
    std::unique_ptr<engine::Engine> _golden;
    std::unique_ptr<engine::Engine> _isaGolden;
    isa::ExecMode _isaGoldenMode = isa::ExecMode::Tape;
    std::string _divergence;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_SIMULATION_HH
