#include "runtime/simulation.hh"

#include "runtime/waveform.hh"
#include "support/logging.hh"

namespace manticore::runtime {

namespace {

const char *
runStatusName(isa::RunStatus status)
{
    switch (status) {
      case isa::RunStatus::Running: return "running";
      case isa::RunStatus::Finished: return "finished";
      case isa::RunStatus::Failed: return "failed";
    }
    return "?";
}

/** The machine status a golden evaluator status corresponds to. */
isa::RunStatus
expectedMachineStatus(netlist::SimStatus status)
{
    switch (status) {
      case netlist::SimStatus::Ok: return isa::RunStatus::Running;
      case netlist::SimStatus::Finished: return isa::RunStatus::Finished;
      case netlist::SimStatus::AssertFailed:
        return isa::RunStatus::Failed;
    }
    return isa::RunStatus::Failed;
}

} // namespace

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options)
    : _compiled(compiler::compile(netlist, options)),
      _config(options.config)
{
    _machine = std::make_unique<machine::Machine>(_compiled.program,
                                                  _config);
    _host = std::make_unique<Host>(_compiled.program,
                                   _machine->globalMemory());
    _host->attach(*_machine);
}

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options,
                       netlist::EvalMode golden_mode,
                       const netlist::EvalOptions &golden_options)
    : Simulation(netlist, options)
{
    _netlist = netlist;
    _goldenMode = golden_mode;
    _goldenOptions = golden_options;
}

isa::RunStatus
Simulation::run(uint64_t max_vcycles)
{
    return _machine->run(max_vcycles);
}

isa::RunStatus
Simulation::runCrossChecked(uint64_t max_vcycles)
{
    MANTICORE_ASSERT(_netlist.has_value(),
                     "runCrossChecked requires constructing Simulation "
                     "with a golden EvalMode");
    if (!_golden)
        _golden = netlist::makeEvaluator(*_netlist, _goldenMode,
                                         _goldenOptions);
    // The machine may have advanced via run() — before this call or
    // between cross-checked calls.  The designs are closed
    // (self-driving), so stepping the golden model up to the
    // machine's Vcycle keeps the lockstep honest instead of
    // reporting a phantom divergence.
    while (_golden->cycle() < vcycles() &&
           _golden->status() == netlist::SimStatus::Ok)
        _golden->step();
    for (uint64_t v = 0; v < max_vcycles; ++v) {
        if (_machine->status() != isa::RunStatus::Running)
            return _machine->status();
        isa::RunStatus st = _machine->runVcycle();
        netlist::SimStatus gst = _golden->step();

        // Status agreement first: on a terminal cycle the engines'
        // commit timing differs by design (the golden model skips the
        // commit after a failed assert), so register comparison is
        // only meaningful while both agree the run continues.
        if (st != expectedMachineStatus(gst)) {
            _divergence = "vcycle " + std::to_string(vcycles()) +
                          ": machine status " + runStatusName(st) +
                          " vs " + netlist::evalModeName(_goldenMode) +
                          " evaluator status " +
                          runStatusName(expectedMachineStatus(gst)) +
                          (gst == netlist::SimStatus::AssertFailed
                               ? " (" + _golden->failureMessage() + ")"
                               : "");
            return isa::RunStatus::Failed;
        }
        if (st != isa::RunStatus::Running)
            return st;

        for (size_t r = 0; r < _netlist->numRegisters(); ++r) {
            const netlist::Register &reg =
                _netlist->reg(static_cast<uint32_t>(r));
            BitVector hw = readMachineRegister(
                *_machine, _compiled.regChunkHome[r], reg.width);
            BitVector gold =
                _golden->regValue(static_cast<uint32_t>(r));
            if (hw != gold) {
                _divergence =
                    "vcycle " + std::to_string(vcycles()) +
                    ": register " +
                    (reg.name.empty() ? "#" + std::to_string(r)
                                      : reg.name) +
                    ": machine " + hw.toString() + " vs " +
                    netlist::evalModeName(_goldenMode) + " evaluator " +
                    gold.toString();
                return isa::RunStatus::Failed;
            }
        }
    }
    return _machine->status();
}

isa::RunStatus
Simulation::runIsaCrossChecked(uint64_t max_vcycles, isa::ExecMode mode)
{
    if (!_isaGolden || _isaGoldenMode != mode) {
        _isaGoldenMode = mode;
        _isaGolden =
            isa::makeInterpreter(_compiled.program, _config, mode);
        _isaGoldenHost = std::make_unique<Host>(
            _compiled.program, _isaGolden->globalMemory());
        _isaGoldenHost->attach(*_isaGolden);
    }
    // Catch up if the machine advanced via run() before this call;
    // the designs are closed, so replaying keeps the lockstep honest.
    while (_isaGolden->vcycle() < vcycles() &&
           _isaGolden->status() == isa::RunStatus::Running)
        _isaGolden->stepVcycle();
    for (uint64_t v = 0; v < max_vcycles; ++v) {
        if (_machine->status() != isa::RunStatus::Running)
            return _machine->status();
        isa::RunStatus st = _machine->runVcycle();
        isa::RunStatus gst = _isaGolden->stepVcycle();

        if (st != gst) {
            _divergence = "vcycle " + std::to_string(vcycles()) +
                          ": machine status " + runStatusName(st) +
                          " vs " + isa::execModeName(_isaGoldenMode) +
                          " interpreter status " + runStatusName(gst);
            return isa::RunStatus::Failed;
        }
        if (st != isa::RunStatus::Running)
            return st;

        for (size_t r = 0; r < _compiled.regChunkHome.size(); ++r) {
            const auto &homes = _compiled.regChunkHome[r];
            for (size_t c = 0; c < homes.size(); ++c) {
                uint16_t hw =
                    _machine->regValue(homes[c].process, homes[c].reg);
                uint16_t gold = _isaGolden->regValue(homes[c].process,
                                                     homes[c].reg);
                if (hw != gold) {
                    _divergence =
                        "vcycle " + std::to_string(vcycles()) +
                        ": register #" + std::to_string(r) + " chunk " +
                        std::to_string(c) + ": machine " +
                        std::to_string(hw) + " vs " +
                        isa::execModeName(_isaGoldenMode) +
                        " interpreter " + std::to_string(gold);
                    return isa::RunStatus::Failed;
                }
            }
        }
    }
    return _machine->status();
}

double
Simulation::effectiveRateKhz() const
{
    const machine::PerfCounters &perf = _machine->perf();
    if (perf.totalCycles() == 0)
        return 0.0;
    return _config.clockKhz * static_cast<double>(perf.vcycles) /
           static_cast<double>(perf.totalCycles());
}

} // namespace manticore::runtime
