#include "runtime/simulation.hh"

namespace manticore::runtime {

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options)
    : _compiled(compiler::compile(netlist, options)),
      _config(options.config)
{
    _machine = std::make_unique<machine::Machine>(_compiled.program,
                                                  _config);
    _host = std::make_unique<Host>(_compiled.program,
                                   _machine->globalMemory());
    _host->attach(*_machine);
}

isa::RunStatus
Simulation::run(uint64_t max_vcycles)
{
    return _machine->run(max_vcycles);
}

double
Simulation::effectiveRateKhz() const
{
    const machine::PerfCounters &perf = _machine->perf();
    if (perf.totalCycles() == 0)
        return 0.0;
    return _config.clockKhz * static_cast<double>(perf.vcycles) /
           static_cast<double>(perf.totalCycles());
}

} // namespace manticore::runtime
