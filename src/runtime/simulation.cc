#include "runtime/simulation.hh"

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "support/logging.hh"

namespace manticore::runtime {

namespace {

isa::RunStatus
toRunStatus(engine::Status status)
{
    switch (status) {
      case engine::Status::Running: return isa::RunStatus::Running;
      case engine::Status::Finished: return isa::RunStatus::Finished;
      case engine::Status::Failed: return isa::RunStatus::Failed;
    }
    return isa::RunStatus::Failed;
}

} // namespace

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options)
    : _compiled(compiler::compile(netlist, options)),
      _config(options.config)
{
    _machine = std::make_unique<machine::Machine>(_compiled.program,
                                                  _config);
    _signals = engine::rtlSignals(netlist, _compiled);
    _machineEngine =
        std::make_unique<engine::MachineEngine>(*_machine, _signals);
    _host = std::make_unique<Host>(_compiled.program,
                                   _machine->globalMemory());
    _host->attach(*_machineEngine);
}

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options,
                       netlist::EvalMode golden_mode,
                       const netlist::EvalOptions &golden_options)
    : Simulation(netlist, options)
{
    _netlist = netlist;
    _goldenMode = golden_mode;
    _goldenOptions = golden_options;
}

isa::RunStatus
Simulation::run(uint64_t max_vcycles)
{
    return _machine->run(max_vcycles);
}

isa::RunStatus
Simulation::crossCheckAgainst(engine::Engine &golden,
                              uint64_t max_vcycles)
{
    engine::CrossCheck harness(golden, *_machineEngine);
    engine::RunResult result = harness.run(max_vcycles);
    _divergence = harness.divergence();
    return toRunStatus(result.status);
}

isa::RunStatus
Simulation::runCrossChecked(uint64_t max_vcycles)
{
    MANTICORE_ASSERT(_netlist.has_value(),
                     "runCrossChecked requires constructing Simulation "
                     "with a golden EvalMode");
    if (!_golden) {
        engine::CreateOptions options;
        options.eval = _goldenOptions;
        _golden = engine::create(
            std::string("netlist.") + netlist::evalModeName(_goldenMode),
            *_netlist, options);
    }
    return crossCheckAgainst(*_golden, max_vcycles);
}

isa::RunStatus
Simulation::runIsaCrossChecked(uint64_t max_vcycles, isa::ExecMode mode)
{
    if (!_isaGolden || _isaGoldenMode != mode) {
        _isaGoldenMode = mode;
        _isaGolden = engine::create(
            std::string("isa.") + isa::execModeName(mode),
            _compiled.program, _config, _signals);
    }
    return crossCheckAgainst(*_isaGolden, max_vcycles);
}

isa::RunStatus
Simulation::runEnsembleCrossChecked(uint64_t max_vcycles, unsigned lanes,
                                    const engine::LaneStimulus &stimulus,
                                    const std::string &subject_engine)
{
    MANTICORE_ASSERT(_netlist.has_value(),
                     "runEnsembleCrossChecked requires constructing "
                     "Simulation with a golden EvalMode");
    engine::CreateOptions subject_options;
    subject_options.lanes = lanes;
    subject_options.eval = _goldenOptions;
    subject_options.eval.lanes = lanes;
    std::unique_ptr<engine::Engine> subject =
        engine::create(subject_engine, *_netlist, subject_options);

    // One independent scalar golden run per lane, in the configured
    // golden mode.
    engine::CreateOptions golden_options;
    golden_options.eval = _goldenOptions;
    golden_options.eval.lanes = 1; // goldens are scalar by definition
    std::vector<std::unique_ptr<engine::Engine>> goldens;
    std::vector<engine::Engine *> golden_ptrs;
    for (unsigned l = 0; l < lanes; ++l) {
        goldens.push_back(engine::create(
            std::string("netlist.") + netlist::evalModeName(_goldenMode),
            *_netlist, golden_options));
        golden_ptrs.push_back(goldens.back().get());
    }

    engine::EnsembleCrossCheck harness(golden_ptrs, *subject);
    if (stimulus)
        harness.setStimulus(stimulus);
    engine::RunResult result = harness.run(max_vcycles);
    _divergence = harness.divergence();
    return toRunStatus(result.status);
}

double
Simulation::effectiveRateKhz() const
{
    const machine::PerfCounters &perf = _machine->perf();
    if (perf.totalCycles() == 0)
        return 0.0;
    return _config.clockKhz * static_cast<double>(perf.vcycles) /
           static_cast<double>(perf.totalCycles());
}

} // namespace manticore::runtime
