#include "runtime/simulation.hh"

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "support/logging.hh"

namespace manticore::runtime {

namespace {

isa::RunStatus
toRunStatus(engine::Status status)
{
    switch (status) {
      case engine::Status::Running: return isa::RunStatus::Running;
      case engine::Status::Finished: return isa::RunStatus::Finished;
      case engine::Status::Failed: return isa::RunStatus::Failed;
    }
    return isa::RunStatus::Failed;
}

} // namespace

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options)
    : _compiled(compiler::compile(netlist, options)),
      _config(options.config)
{
    _machine = std::make_unique<machine::Machine>(_compiled.program,
                                                  _config);
    _signals = engine::rtlSignals(netlist, _compiled);
    _machineEngine =
        std::make_unique<engine::MachineEngine>(*_machine, _signals);
    _host = std::make_unique<Host>(_compiled.program,
                                   _machine->globalMemory());
    _host->attach(*_machineEngine);
}

Simulation::Simulation(const netlist::Netlist &netlist,
                       const compiler::CompileOptions &options,
                       netlist::EvalMode golden_mode,
                       const netlist::EvalOptions &golden_options)
    : Simulation(netlist, options)
{
    _netlist = netlist;
    _goldenMode = golden_mode;
    _goldenOptions = golden_options;
}

isa::RunStatus
Simulation::run(uint64_t max_vcycles)
{
    return _machine->run(max_vcycles);
}

isa::RunStatus
Simulation::crossCheckAgainst(engine::Engine &golden,
                              uint64_t max_vcycles)
{
    engine::CrossCheck harness(golden, *_machineEngine);
    engine::RunResult result = harness.run(max_vcycles);
    _divergence = harness.divergence();
    return toRunStatus(result.status);
}

isa::RunStatus
Simulation::runCrossChecked(uint64_t max_vcycles)
{
    MANTICORE_ASSERT(_netlist.has_value(),
                     "runCrossChecked requires constructing Simulation "
                     "with a golden EvalMode");
    if (!_golden) {
        engine::CreateOptions options;
        options.eval = _goldenOptions;
        _golden = engine::create(
            std::string("netlist.") + netlist::evalModeName(_goldenMode),
            *_netlist, options);
    }
    return crossCheckAgainst(*_golden, max_vcycles);
}

isa::RunStatus
Simulation::runIsaCrossChecked(uint64_t max_vcycles, isa::ExecMode mode)
{
    if (!_isaGolden || _isaGoldenMode != mode) {
        _isaGoldenMode = mode;
        _isaGolden = engine::create(
            std::string("isa.") + isa::execModeName(mode),
            _compiled.program, _config, _signals);
    }
    return crossCheckAgainst(*_isaGolden, max_vcycles);
}

double
Simulation::effectiveRateKhz() const
{
    const machine::PerfCounters &perf = _machine->perf();
    if (perf.totalCycles() == 0)
        return 0.0;
    return _config.clockKhz * static_cast<double>(perf.vcycles) /
           static_cast<double>(perf.totalCycles());
}

} // namespace manticore::runtime
