/**
 * @file
 * One-file byte-exact regression tests from failures: the recorded-
 * stimulus replay format and its runner.
 *
 * A replay artifact is a small text file that captures everything
 * needed to reproduce an engine failure in a fresh process:
 *
 *   manticore-replay v1
 *   design builtin mm 256          # how to rebuild the netlist
 *   hash 1f2e3d4c5b6a7988          # engine::designHash (0.. = unknown)
 *   engine netlist.parallel        # engine that failed (informational)
 *   lanes 2
 *   note lane 1 cycle 40: ...      # freeform context lines
 *   poke 7 1 stop 1 1              # cycle lane input width hex-value
 *   run 64                         # cycles to advance
 *   expect 0 finished 64 9c0ffee...# lane status cycle probe-digest
 *   expect 1 failed 40 abad1dea...
 *   end
 *
 * Design identity is by *recipe* (a builtin benchmark name + driver
 * horizon, the open counter fixture, or a random-circuit seed) plus
 * the structural design hash, so a drifted design fails loudly
 * instead of silently replaying a different circuit.  Expectations
 * pin the terminal (status, cycle) of every lane and a digest over
 * all RTL probes, so a replay that reproduces the failure byte-exact
 * passes and anything else names what moved.
 *
 * Artifacts are written automatically by the CrossCheck /
 * EnsembleCrossCheck differential harnesses on divergence (attach a
 * ReplayRecorder) and by tools/fuzz_differential on its first
 * divergence; tools/replay_runner and tests/test_replay.cc re-execute
 * every artifact in tests/replay_corpus/ against all available
 * engines.  See src/runtime/README.md for the format grammar.
 */

#ifndef MANTICORE_RUNTIME_REPLAY_HH
#define MANTICORE_RUNTIME_REPLAY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "netlist/netlist.hh"

namespace manticore::runtime {

/** One recorded input drive: before stepping past `cycle`, lane
 *  `lane`'s input `input` is driven with `value`. */
struct ReplayPoke
{
    uint64_t cycle = 0;
    unsigned lane = 0;
    std::string input;
    BitVector value;
};

/** Expected terminal state of one lane after the run. */
struct ReplayExpect
{
    unsigned lane = 0;
    engine::Status status = engine::Status::Running;
    uint64_t cycle = 0;
    uint64_t digest = 0; ///< probeDigest over all RTL signals
};

/** A parsed replay artifact (see the file-format comment above). */
struct ReplayTrace
{
    static constexpr const char *kMagic = "manticore-replay v1";

    /// Design recipe: "builtin" (arg = benchmark name, param = the
    /// driver's check_cycles), "openctr" (arg = counter width, param
    /// = finish limit), or "random" (arg = random-circuit seed;
    /// rebuilt through the caller's hook, see buildReplayDesign).
    std::string designKind;
    std::string designArg;
    uint64_t designParam = 0;
    /// engine::designHash of the netlist; 0 = unknown (check skipped).
    uint64_t designHash = 0;
    /// Registry name of the engine that failed (informational).
    std::string engine;
    unsigned lanes = 1;
    std::vector<std::string> notes;
    std::vector<ReplayPoke> pokes; ///< sorted by cycle on parse
    uint64_t runCycles = 0;
    std::vector<ReplayExpect> expectations;

    std::string serialize() const;
    /** Parse artifact text; malformed input is a user-facing
     *  fatal() naming the offending line. */
    static ReplayTrace parse(const std::string &text);
    static ReplayTrace load(const std::string &path);
    void writeFile(const std::string &path) const;
};

/** The probe table a digest runs over: every RTL register of the
 *  design, sorted by (unique) probe name, at its RTL width. */
struct ProbeSignal
{
    std::string name;
    unsigned width = 0;
};

std::vector<ProbeSignal> probeSignals(const netlist::Netlist &netlist);

/** FNV-1a digest over one lane's value of every signal in the table
 *  (values masked to the RTL width, so the chunk-padded ISA probes
 *  digest equal to the netlist engines'). */
uint64_t probeDigest(engine::Engine &engine, unsigned lane,
                     const std::vector<ProbeSignal> &signals);

/** Rebuilds "random"-kind designs from their seed (the generator
 *  lives in tests/random_circuit.hh, above this library — harnesses
 *  that record random designs pass their builder through). */
using RandomDesignBuilder =
    std::function<netlist::Netlist(uint64_t seed)>;

/** The open-input replay fixture: a `width`-bit counter with free
 *  1-bit inputs `stop` (freezes the count) and `fault` (fails the
 *  assertion that cycle); $finishes when the count reaches `limit`.
 *  Poking stop/fault per lane makes divergent per-lane terminations
 *  reproducible on-demand. */
netlist::Netlist buildOpenCtr(unsigned width, uint64_t limit);

/** Rebuild a trace's design from its recipe.  "random" requires
 *  `random_builder` (a loud fatal() otherwise); the recipe's design
 *  hash is re-checked against the rebuilt netlist when known. */
netlist::Netlist
buildReplayDesign(const ReplayTrace &trace,
                  const RandomDesignBuilder &random_builder = {});

/** Outcome of replaying one artifact on one engine. */
struct ReplayResult
{
    bool ran = false;        ///< false => skipped, see skipReason
    std::string skipReason;  ///< why the engine was skipped
    bool passed = false;     ///< every expectation reproduced
    std::string detail;      ///< first mismatch, human-readable
};

/** Re-execute a trace on one registry engine over the (already
 *  rebuilt) design.  Engines that cannot run the artifact are
 *  SKIPPED, not fataled: unavailable engines (netlist.aot without a
 *  toolchain), multi-lane traces on engines without an ensemble
 *  mode, and poke-carrying traces on engines without free inputs
 *  (the ISA-level engines compile inputs away). */
ReplayResult replayOn(const ReplayTrace &trace,
                      const netlist::Netlist &netlist,
                      const std::string &engine_name);

/** Builds up a ReplayTrace during a differential run and writes it
 *  on failure.  The harness sets the design recipe and records its
 *  pokes as it drives them; the crosscheck (or the harness) fills
 *  the expectations from the golden engines and calls write(). */
class ReplayRecorder
{
  public:
    ReplayTrace trace;
    /// Digest table of the design under test (probeSignals()).
    std::vector<ProbeSignal> signals;
    /// Output directory; "" resolves to $MANTICORE_REPLAY_DIR, else
    /// "replay-artifacts" under the current directory.
    std::string dir;
    /// Artifact filename stem ("<stem>-<contenthash>.replay").
    std::string stem = "failure";

    /** Record one input drive (the harness calls this right where it
     *  drives the engine, so the artifact IS the stimulus). */
    void poke(uint64_t cycle, unsigned lane, const std::string &input,
              const BitVector &value);

    /** Append an expectation pinned to `golden`'s current state:
     *  status, per-lane cycle, and the probe digest. */
    void expectFrom(engine::Engine &golden, unsigned engine_lane,
                    unsigned artifact_lane);

    /** Serialize and write the artifact; returns its path. */
    std::string write() const;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_REPLAY_HH
