#include "runtime/replay.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "designs/designs.hh"
#include "engine/adapters.hh"
#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "netlist/builder.hh"
#include "support/hashing.hh"
#include "support/logging.hh"

namespace manticore::runtime {

namespace {

// ---- hex (de)serialization of BitVector values ----------------------

std::string
hexOf(const BitVector &value)
{
    // Fixed width: ceil(width/4) digits, MSB first, so the artifact
    // is byte-stable for a given (width, value).
    static const char digits[] = "0123456789abcdef";
    unsigned ndigits = (value.width() + 3) / 4;
    if (ndigits == 0)
        ndigits = 1;
    std::string out(ndigits, '0');
    const std::vector<uint64_t> &limbs = value.limbs();
    for (unsigned d = 0; d < ndigits; ++d) {
        unsigned bit = d * 4;
        unsigned limb = bit / 64;
        uint64_t nib =
            limb < limbs.size() ? (limbs[limb] >> (bit % 64)) & 0xf : 0;
        out[ndigits - 1 - d] = digits[nib];
    }
    return out;
}

BitVector
valueFromHex(unsigned width, const std::string &hex)
{
    std::vector<uint64_t> limbs((width + 63) / 64, 0);
    unsigned bit = 0;
    for (size_t i = hex.size(); i-- > 0 && bit < width; bit += 4) {
        char c = hex[i];
        uint64_t nib;
        if (c >= '0' && c <= '9')
            nib = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nib = static_cast<uint64_t>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            nib = static_cast<uint64_t>(c - 'A') + 10;
        else
            MANTICORE_FATAL("replay: bad hex digit '", c, "' in \"",
                            hex, "\"");
        limbs[bit / 64] |= nib << (bit % 64);
    }
    return BitVector::fromLimbs(width, limbs);
}

uint64_t
parseHex64(const std::string &hex)
{
    uint64_t v = 0;
    for (char c : hex) {
        uint64_t nib;
        if (c >= '0' && c <= '9')
            nib = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nib = static_cast<uint64_t>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            nib = static_cast<uint64_t>(c - 'A') + 10;
        else
            MANTICORE_FATAL("replay: bad hex digit '", c, "' in \"",
                            hex, "\"");
        v = (v << 4) | nib;
    }
    return v;
}

engine::Status
parseStatus(const std::string &name)
{
    if (name == "running")
        return engine::Status::Running;
    if (name == "finished")
        return engine::Status::Finished;
    if (name == "failed")
        return engine::Status::Failed;
    MANTICORE_FATAL("replay: bad status \"", name,
                    "\" (running/finished/failed)");
}

} // namespace

// ---- ReplayTrace ----------------------------------------------------

std::string
ReplayTrace::serialize() const
{
    std::ostringstream out;
    out << kMagic << "\n";
    out << "design " << designKind << " " << designArg << " "
        << designParam << "\n";
    out << "hash " << hashHex(designHash) << "\n";
    if (!engine.empty())
        out << "engine " << engine << "\n";
    out << "lanes " << lanes << "\n";
    for (const std::string &n : notes)
        out << "note " << n << "\n";
    for (const ReplayPoke &p : pokes)
        out << "poke " << p.cycle << " " << p.lane << " " << p.input
            << " " << p.value.width() << " " << hexOf(p.value) << "\n";
    out << "run " << runCycles << "\n";
    for (const ReplayExpect &e : expectations)
        out << "expect " << e.lane << " "
            << engine::statusName(e.status) << " " << e.cycle << " "
            << hashHex(e.digest) << "\n";
    out << "end\n";
    return out.str();
}

ReplayTrace
ReplayTrace::parse(const std::string &text)
{
    ReplayTrace trace;
    std::istringstream in(text);
    std::string line;
    bool saw_magic = false, saw_end = false;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Trim trailing CR (corpus files may cross platforms).
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_magic) {
            if (line != kMagic)
                MANTICORE_FATAL("replay: line ", lineno,
                                ": expected \"", kMagic, "\", got \"",
                                line, "\"");
            saw_magic = true;
            continue;
        }
        if (saw_end)
            MANTICORE_FATAL("replay: line ", lineno,
                            ": content after \"end\"");
        std::istringstream t(line);
        std::string key;
        t >> key;
        auto need = [&](bool ok) {
            if (!ok || t.fail())
                MANTICORE_FATAL("replay: line ", lineno,
                                ": malformed \"", line, "\"");
        };
        if (key == "design") {
            t >> trace.designKind >> trace.designArg >>
                trace.designParam;
            need(!trace.designKind.empty());
        } else if (key == "hash") {
            std::string hex;
            t >> hex;
            need(!hex.empty());
            trace.designHash = parseHex64(hex);
        } else if (key == "engine") {
            t >> trace.engine;
            need(!trace.engine.empty());
        } else if (key == "lanes") {
            t >> trace.lanes;
            need(trace.lanes >= 1);
        } else if (key == "note") {
            std::string rest;
            std::getline(t, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            trace.notes.push_back(rest);
        } else if (key == "poke") {
            ReplayPoke p;
            unsigned width = 0;
            std::string hex;
            t >> p.cycle >> p.lane >> p.input >> width >> hex;
            need(!p.input.empty() && width > 0 && !hex.empty());
            p.value = valueFromHex(width, hex);
            trace.pokes.push_back(std::move(p));
        } else if (key == "run") {
            t >> trace.runCycles;
            need(true);
        } else if (key == "expect") {
            ReplayExpect e;
            std::string status, hex;
            t >> e.lane >> status >> e.cycle >> hex;
            need(!status.empty() && !hex.empty());
            e.status = parseStatus(status);
            e.digest = parseHex64(hex);
            trace.expectations.push_back(e);
        } else if (key == "end") {
            saw_end = true;
        } else {
            MANTICORE_FATAL("replay: line ", lineno,
                            ": unknown directive \"", key, "\"");
        }
    }
    if (!saw_magic)
        MANTICORE_FATAL("replay: not a replay artifact (missing \"",
                        kMagic, "\" header)");
    if (!saw_end)
        MANTICORE_FATAL("replay: truncated artifact (missing \"end\")");
    // The runner applies pokes front-to-back as cycles advance.
    std::stable_sort(trace.pokes.begin(), trace.pokes.end(),
                     [](const ReplayPoke &a, const ReplayPoke &b) {
                         return a.cycle < b.cycle;
                     });
    return trace;
}

ReplayTrace
ReplayTrace::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        MANTICORE_FATAL("replay: cannot open ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

void
ReplayTrace::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        MANTICORE_FATAL("replay: cannot write ", path);
    out << serialize();
}

// ---- probe digests --------------------------------------------------

std::vector<ProbeSignal>
probeSignals(const netlist::Netlist &netlist)
{
    std::vector<std::string> names = engine::rtlRegisterNames(netlist);
    std::vector<ProbeSignal> signals(names.size());
    for (size_t r = 0; r < names.size(); ++r) {
        signals[r].name = std::move(names[r]);
        signals[r].width =
            netlist.reg(static_cast<netlist::RegId>(r)).width;
    }
    // Digest order is by probe name, not register id, so the digest
    // only depends on what is observable.
    std::sort(signals.begin(), signals.end(),
              [](const ProbeSignal &a, const ProbeSignal &b) {
                  return a.name < b.name;
              });
    return signals;
}

uint64_t
probeDigest(engine::Engine &engine, unsigned lane,
            const std::vector<ProbeSignal> &signals)
{
    uint64_t h = fnv1a64("manticore-probe-digest-v1");
    for (const ProbeSignal &s : signals) {
        engine::ProbeHandle handle = engine.probe(s.name);
        // Mask to the RTL width: ISA-level probes are chunk-padded.
        BitVector value = engine.readLane(handle, lane).resize(s.width);
        h = fnv1a64(s.name, h);
        uint64_t w = s.width;
        h = fnv1a64(&w, sizeof(w), h);
        for (uint64_t limb : value.limbs())
            h = fnv1a64(&limb, sizeof(limb), h);
    }
    return h;
}

// ---- design recipes -------------------------------------------------

netlist::Netlist
buildOpenCtr(unsigned width, uint64_t limit)
{
    MANTICORE_ASSERT(width >= 1 && width <= 64,
                     "openctr width must be 1..64, got ", width);
    netlist::CircuitBuilder b("openctr");
    netlist::Signal stop = b.input("stop", 1);
    netlist::Signal fault = b.input("fault", 1);
    netlist::RegHandle ctr = b.reg("ctr", width, 0);
    netlist::Signal one = b.lit(width, 1);
    b.next(ctr, b.mux(stop, ctr.read(), ctr.read() + one));
    b.assertAlways(b.lit(1, 1), !fault, "openctr: fault injected");
    b.finish(ctr.read() == b.lit(width, limit));
    return b.build();
}

netlist::Netlist
buildReplayDesign(const ReplayTrace &trace,
                  const RandomDesignBuilder &random_builder)
{
    netlist::Netlist netlist("empty");
    if (trace.designKind == "builtin") {
        const designs::Benchmark *found = nullptr;
        for (const designs::Benchmark &b : designs::allBenchmarks())
            if (b.name == trace.designArg)
                found = &b;
        if (!found)
            MANTICORE_FATAL("replay: unknown builtin design \"",
                            trace.designArg, "\"");
        uint64_t check = trace.designParam ? trace.designParam
                                           : found->defaultCheckCycles;
        netlist = found->build(check);
    } else if (trace.designKind == "openctr") {
        unsigned width =
            static_cast<unsigned>(std::stoul(trace.designArg));
        netlist = buildOpenCtr(width, trace.designParam);
    } else if (trace.designKind == "random") {
        if (!random_builder)
            MANTICORE_FATAL("replay: design kind \"random\" needs a "
                            "random-circuit builder (re-run through "
                            "replay_runner or a harness that links "
                            "tests/random_circuit.hh)");
        netlist = random_builder(std::stoull(trace.designArg));
    } else {
        MANTICORE_FATAL("replay: unknown design kind \"",
                        trace.designKind, "\"");
    }
    if (trace.designHash != 0) {
        uint64_t rebuilt = engine::designHash(netlist);
        if (rebuilt != trace.designHash)
            MANTICORE_FATAL(
                "replay: design drift — artifact was recorded against "
                "design hash ", hashHex(trace.designHash),
                ", the rebuilt \"", trace.designKind, " ",
                trace.designArg, "\" hashes ", hashHex(rebuilt),
                " (the artifact no longer reproduces this design)");
    }
    return netlist;
}

// ---- the runner -----------------------------------------------------

ReplayResult
replayOn(const ReplayTrace &trace, const netlist::Netlist &netlist,
         const std::string &engine_name)
{
    ReplayResult result;
    const engine::EngineInfo *info = engine::find(engine_name);
    if (!info) {
        result.skipReason = "unknown engine";
        return result;
    }
    if (!info->available) {
        result.skipReason =
            "unavailable: " + info->availabilityNote;
        return result;
    }
    if (trace.lanes > 1 && !(info->caps & engine::cap::kEnsemble)) {
        result.skipReason = "no ensemble mode (trace has " +
                            std::to_string(trace.lanes) + " lanes)";
        return result;
    }
    if (!(info->caps & engine::cap::kInputs)) {
        // The ISA-level engines compile free inputs away, so any open
        // design (poked or not — an artifact may pin the behavior of
        // inputs left at their default) is out of reach for them.
        bool open = false;
        for (size_t i = 0; i < netlist.numNodes(); ++i)
            if (netlist.node(static_cast<netlist::NodeId>(i)).kind ==
                netlist::OpKind::Input)
                open = true;
        if (open) {
            result.skipReason =
                "no free inputs (design has open inputs)";
            return result;
        }
    }

    engine::CreateOptions options;
    options.lanes = trace.lanes;
    std::unique_ptr<engine::Engine> eng =
        engine::create(engine_name, netlist, options);

    // Resolve every poked input once.
    std::vector<engine::InputHandle> handles(trace.pokes.size());
    for (size_t i = 0; i < trace.pokes.size(); ++i)
        handles[i] = eng->bindInput(trace.pokes[i].input);

    // Advance cycle by cycle, applying each cycle's pokes before the
    // step that consumes them (pokes are sorted by cycle).
    size_t next_poke = 0;
    while (eng->cycle() < trace.runCycles) {
        uint64_t c = eng->cycle();
        while (next_poke < trace.pokes.size() &&
               trace.pokes[next_poke].cycle <= c) {
            const ReplayPoke &p = trace.pokes[next_poke];
            engine::driveLane(*eng, handles[next_poke], p.lane,
                              p.value);
            ++next_poke;
        }
        if (eng->step(1).cycles == 0)
            break; // every lane terminal
    }

    result.ran = true;
    std::vector<ProbeSignal> signals = probeSignals(netlist);
    std::ostringstream detail;
    for (const ReplayExpect &e : trace.expectations) {
        if (e.lane >= eng->lanes()) {
            detail << "lane " << e.lane << ": engine has only "
                   << eng->lanes() << " lane(s); ";
            continue;
        }
        engine::Status status = eng->laneStatus(e.lane);
        uint64_t cycle = eng->laneCycle(e.lane);
        uint64_t digest = probeDigest(*eng, e.lane, signals);
        if (status != e.status)
            detail << "lane " << e.lane << ": status "
                   << engine::statusName(status) << ", expected "
                   << engine::statusName(e.status) << "; ";
        if (cycle != e.cycle)
            detail << "lane " << e.lane << ": cycle " << cycle
                   << ", expected " << e.cycle << "; ";
        if (digest != e.digest)
            detail << "lane " << e.lane << ": probe digest "
                   << hashHex(digest) << ", expected "
                   << hashHex(e.digest) << "; ";
    }
    result.detail = detail.str();
    result.passed = result.detail.empty();
    return result;
}

// ---- ReplayRecorder -------------------------------------------------

void
ReplayRecorder::poke(uint64_t cycle, unsigned lane,
                     const std::string &input, const BitVector &value)
{
    trace.pokes.push_back({cycle, lane, input, value});
}

void
ReplayRecorder::expectFrom(engine::Engine &golden, unsigned engine_lane,
                           unsigned artifact_lane)
{
    ReplayExpect e;
    e.lane = artifact_lane;
    e.status = golden.laneStatus(engine_lane);
    e.cycle = golden.laneCycle(engine_lane);
    e.digest = probeDigest(golden, engine_lane, signals);
    trace.expectations.push_back(e);
}

std::string
ReplayRecorder::write() const
{
    std::string out_dir = dir;
    if (out_dir.empty()) {
        if (const char *env = std::getenv("MANTICORE_REPLAY_DIR"))
            out_dir = env;
        else
            out_dir = "replay-artifacts";
    }
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
        MANTICORE_FATAL("replay: cannot create artifact directory ",
                        out_dir, ": ", ec.message());
    std::string text = trace.serialize();
    std::string path = out_dir + "/" + stem + "-" +
                       hashHex(fnv1a64(text)).substr(0, 8) + ".replay";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        MANTICORE_FATAL("replay: cannot write ", path);
    f << text;
    return path;
}

} // namespace manticore::runtime
