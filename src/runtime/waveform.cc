#include "runtime/waveform.hh"

#include "engine/adapters.hh"
#include "engine/engine.hh"
#include "support/logging.hh"

namespace manticore::runtime {

WaveformRecorder::WaveformRecorder(const netlist::Netlist &netlist,
                                   const compiler::CompileResult &result)
    : _homes(result.regChunkHome)
{
    MANTICORE_ASSERT(netlist.numRegisters() == _homes.size(),
                     "netlist/compile mismatch");
    for (size_t r = 0; r < netlist.numRegisters(); ++r) {
        const netlist::Register &reg =
            netlist.reg(static_cast<uint32_t>(r));
        _names.push_back(reg.name.empty() ? "reg" + std::to_string(r)
                                          : reg.name);
        _widths.push_back(reg.width);
        _last.emplace_back(0);
    }
}

WaveformRecorder::WaveformRecorder(const netlist::Netlist &netlist)
{
    for (size_t r = 0; r < netlist.numRegisters(); ++r) {
        const netlist::Register &reg =
            netlist.reg(static_cast<uint32_t>(r));
        _names.push_back(reg.name.empty() ? "reg" + std::to_string(r)
                                          : reg.name);
        _widths.push_back(reg.width);
        _last.emplace_back(0);
    }
}

BitVector
readMachineRegister(const machine::Machine &machine,
                    const std::vector<compiler::RegChunkHome> &homes,
                    unsigned width)
{
    return engine::assembleRtlValue(
        width, homes, [&machine](uint32_t pid, isa::Reg reg) {
            return machine.regValue(pid, reg);
        });
}

BitVector
WaveformRecorder::read(const machine::Machine &machine, size_t reg) const
{
    return readMachineRegister(machine, _homes[reg], _widths[reg]);
}

void
WaveformRecorder::record(size_t reg, BitVector now, uint64_t vcycle)
{
    if (_last[reg].width() == 0 || now != _last[reg]) {
        _changes.push_back({vcycle, static_cast<uint32_t>(reg), now});
        _last[reg] = std::move(now);
    }
}

void
WaveformRecorder::sample(const machine::Machine &machine, uint64_t vcycle)
{
    for (size_t r = 0; r < _homes.size(); ++r)
        record(r, read(machine, r), vcycle);
}

void
WaveformRecorder::sample(const netlist::EvaluatorBase &eval,
                         uint64_t vcycle)
{
    for (size_t r = 0; r < _names.size(); ++r)
        record(r, eval.regValue(static_cast<uint32_t>(r)), vcycle);
}

void
WaveformRecorder::sample(const netlist::EvaluatorBase &eval,
                         unsigned lane, uint64_t vcycle)
{
    MANTICORE_ASSERT(lane < eval.lanes(), "waveform: lane ", lane,
                     " out of range (", eval.lanes(), " lanes)");
    for (size_t r = 0; r < _names.size(); ++r)
        record(r, eval.regValueLane(lane, static_cast<uint32_t>(r)),
               vcycle);
}

void
WaveformRecorder::sample(const engine::Engine &engine, unsigned lane,
                         uint64_t vcycle)
{
    MANTICORE_ASSERT(engine.numProbes() == _names.size(),
                     "waveform: engine probe table (",
                     engine.numProbes(), ") does not match the design's "
                     "register table (", _names.size(), ")");
    const bool scalar = engine.lanes() == 1 && lane == 0;
    for (size_t r = 0; r < _names.size(); ++r) {
        auto h = static_cast<engine::ProbeHandle>(r);
        record(r, scalar ? engine.read(h) : engine.readLane(h, lane),
               vcycle);
    }
}

void
WaveformRecorder::writeVcd(std::ostream &os) const
{
    os << "$timescale 1ns $end\n";
    os << "$scope module " << "manticore" << " $end\n";
    auto ident = [](uint32_t r) {
        // Printable VCD identifier codes: base-94 over '!'..'~'.
        std::string id;
        do {
            id.push_back(static_cast<char>('!' + r % 94));
            r /= 94;
        } while (r != 0);
        return id;
    };
    for (size_t r = 0; r < _names.size(); ++r) {
        os << "$var wire " << _widths[r] << " "
           << ident(static_cast<uint32_t>(r)) << " " << _names[r]
           << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    uint64_t current = ~0ull;
    for (const Change &c : _changes) {
        if (c.vcycle != current) {
            os << "#" << c.vcycle << "\n";
            current = c.vcycle;
        }
        if (_widths[c.reg] == 1) {
            os << (c.value.isZero() ? "0" : "1") << ident(c.reg)
               << "\n";
        } else {
            os << "b";
            for (unsigned b = _widths[c.reg]; b-- > 0;)
                os << (c.value.bit(b) ? '1' : '0');
            os << " " << ident(c.reg) << "\n";
        }
    }
}

} // namespace manticore::runtime
