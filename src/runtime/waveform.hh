/**
 * @file
 * Out-of-band waveform collection (§8 of the paper sketches hardware
 * support for this as future work; here the host implements it using
 * the compiler's observation map).  The recorder samples every RTL
 * register's current value from the machine at each Vcycle boundary
 * and emits a standard VCD (value change dump) readable by GTKWave
 * and friends.
 */

#ifndef MANTICORE_RUNTIME_WAVEFORM_HH
#define MANTICORE_RUNTIME_WAVEFORM_HH

#include <ostream>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"

namespace manticore::engine {
class Engine;
}

namespace manticore::runtime {

/** Reassemble one RTL register's current value from its machine
 *  chunk homes (the compiler's observation map) — shared by the
 *  waveform recorder and Simulation's golden-model cross-check. */
BitVector readMachineRegister(
    const machine::Machine &machine,
    const std::vector<compiler::RegChunkHome> &homes, unsigned width);

class WaveformRecorder
{
  public:
    /** @param netlist the source design (for register names/widths)
     *  @param result its compilation (for the observation map). */
    WaveformRecorder(const netlist::Netlist &netlist,
                     const compiler::CompileResult &result);

    /** Evaluator-backed recorder (no compilation needed): samples come
     *  from a netlist::EvaluatorBase (reference or compiled) instead
     *  of the machine's observation map. */
    explicit WaveformRecorder(const netlist::Netlist &netlist);

    /** Sample all registers from the machine at the current Vcycle.
     *  Call once after every Machine::runVcycle(). */
    void sample(const machine::Machine &machine, uint64_t vcycle);

    /** Sample all registers from an evaluator (either engine).  Call
     *  once after every EvaluatorBase::step(). */
    void sample(const netlist::EvaluatorBase &eval, uint64_t vcycle);

    /** Sample ONE lane of an ensemble evaluator: the recorder then
     *  holds that lane's waveform only, so a failing lane can be
     *  dumped without the N-1 healthy ones.  Lane 0 of a scalar
     *  evaluator is the plain sample() above. */
    void sample(const netlist::EvaluatorBase &eval, unsigned lane,
                uint64_t vcycle);

    /** Same, over an engine adapter's probe table (the netlist-family
     *  engines expose exactly the RTL registers, in RegId order —
     *  asserted).  This is what fuzz_differential wires to dump the
     *  diverging engine's waveform. */
    void sample(const engine::Engine &engine, unsigned lane,
                uint64_t vcycle);

    /** Write the collected changes as a VCD document. */
    void writeVcd(std::ostream &os) const;

    size_t changesRecorded() const { return _changes.size(); }

  private:
    struct Change
    {
        uint64_t vcycle;
        uint32_t reg;
        BitVector value;
    };

    BitVector read(const machine::Machine &machine, size_t reg) const;
    void record(size_t reg, BitVector now, uint64_t vcycle);

    std::vector<std::string> _names;
    std::vector<unsigned> _widths;
    std::vector<std::vector<compiler::RegChunkHome>> _homes;
    std::vector<BitVector> _last;
    std::vector<Change> _changes;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_WAVEFORM_HH
