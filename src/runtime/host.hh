/**
 * @file
 * Host-side runtime (§A.3 of the paper): services the EXPECT
 * exceptions raised by a running program.  On a $display exception it
 * reads the argument chunks the program stored to global memory
 * (conceptually after flushing the cache), formats, and logs the line;
 * $finish stops the run; a failed assertion stops it with an error.
 *
 * The Host is engine-agnostic: attach() wires it to any
 * engine::Engine with the exception capability (the functional ISA
 * interpreters and the cycle-level machine; wrap a concrete engine
 * with engine::wrap).  Engines created through the registry come with
 * a Host already attached.
 */

#ifndef MANTICORE_RUNTIME_HOST_HH
#define MANTICORE_RUNTIME_HOST_HH

#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "isa/interpreter.hh"
#include "isa/isa.hh"

namespace manticore::runtime {

class Host
{
  public:
    Host(const isa::Program &program, isa::GlobalMemory &global)
        : _program(program), _global(global)
    {}

    /** Service one exception; returns what the engine should do. */
    isa::HostAction service(uint32_t pid, uint16_t eid);

    /** Wire this host into an execution engine.  The one attach for
     *  every engine family: the engine must have cap::kExceptions
     *  (the ISA-level engines; a fatal() otherwise).  The handler
     *  lands on the underlying engine, so a temporary wrap() adapter
     *  may be passed. */
    void
    attach(engine::Engine &e)
    {
        e.setExceptionHandler([this](uint32_t pid, uint16_t eid) {
            return service(pid, eid);
        });
    }

    void
    attach(engine::Engine &&e)
    {
        attach(e);
    }

    const std::vector<std::string> &displayLog() const
    {
        return _displayLog;
    }
    const std::string &failureMessage() const { return _failureMessage; }
    bool finished() const { return _finished; }

    /** Optional live sink for $display lines. */
    std::function<void(const std::string &)> onDisplay;

  private:
    const isa::Program &_program;
    isa::GlobalMemory &_global;
    std::vector<std::string> _displayLog;
    std::string _failureMessage;
    bool _finished = false;
};

} // namespace manticore::runtime

#endif // MANTICORE_RUNTIME_HOST_HH
