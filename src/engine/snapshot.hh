/**
 * @file
 * Engine checkpoints (cap::kSnapshot) and lane forking.
 *
 * A Snapshot is an engine-portable serialization of *architectural*
 * state — the state that carries across a cycle boundary — plus a
 * validated header.  It deliberately does NOT dump raw engine storage
 * (arena offsets depend on the lane count, ISA register files on the
 * engine's layout); instead each engine family defines one canonical
 * per-section byte format:
 *
 *  - family "netlist": one section per lane — current input drive,
 *    register file, memory images, and the lane's run state (cycle,
 *    status, failure message, display transcript).  Portable between
 *    netlist.reference / netlist.compiled / netlist.parallel /
 *    netlist.aot and across lane counts (that is what forkLanes
 *    exploits).
 *
 *  - family "isa": one section per lane — per-process register files
 *    (16-bit value + carry), scratchpads, predicate flags, the global
 *    memory pages, pending message buffer, and the run counters.
 *    Portable between isa.reference and isa.tape (both size their
 *    register files through exec::registerFileSizes) and across lane
 *    counts (a lane section from an isa.tape ensemble restores on a
 *    scalar engine and vice versa — forkLanes works here too).
 *
 * The header carries a format version, the saving engine's registry
 * name, the lane count, and a structural hash of the design, so a
 * restore against the wrong design, family, or format fails loudly
 * instead of resuming garbage (see Engine::restore in engine.hh).
 */

#ifndef MANTICORE_ENGINE_SNAPSHOT_HH
#define MANTICORE_ENGINE_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "netlist/netlist.hh"

namespace manticore::engine {

struct Snapshot
{
    /// Bumped whenever a section byte format changes; restore rejects
    /// any other version.
    static constexpr uint32_t kVersion = 1;

    uint32_t version = kVersion;
    /// Engine family that defines the section format: "netlist" or
    /// "isa".  Restore rejects a family mismatch.
    std::string family;
    /// Registry name of the saving engine (informational: snapshots
    /// are portable within a family, so restore does not require it
    /// to match — it only makes mismatch diagnostics actionable).
    std::string engine;
    /// Structural hash of the design (engine::designHash); 0 when the
    /// saving engine did not know it (bare wrap() adapters).  Restore
    /// rejects two differing non-zero hashes.
    uint64_t designHash = 0;
    /// Number of sections (== the saving engine's lane count).
    unsigned lanes = 1;
    /// Engine-level cycle (most-advanced lane) at save time.
    uint64_t cycle = 0;
    /// Per-lane serialized architectural state.
    std::vector<std::vector<uint8_t>> sections;

    /** Drop contents but keep every section's capacity, so repeated
     *  save()s into one Snapshot do not allocate (the bench_snapshot
     *  hot path). */
    void
    reset(unsigned nsections)
    {
        if (sections.size() != nsections)
            sections.resize(nsections);
        for (auto &s : sections)
            s.clear();
    }
};

/** Structural hash of a netlist (FNV-1a over nodes, registers,
 *  memories, effects and names).  This is the design identity a
 *  Snapshot and a replay artifact carry: two structurally identical
 *  builds hash equal, any drift in the design fails the restore. */
uint64_t designHash(const netlist::Netlist &netlist);

/** Per-lane stimulus applied after a fork (drive lane-divergent
 *  inputs before the next step). */
using ForkStimulus = std::function<void(Engine &engine, unsigned lane)>;

/** Seed every lane of `target` from one section of a checkpoint: the
 *  warmup runs once, then N lanes explore divergent stimuli from the
 *  same deep state.  `target` must support cap::kSnapshot and the
 *  snapshot's family; `src_lane` selects the checkpointed lane.  The
 *  optional stimulus hook is called once per target lane after the
 *  restore so the caller can drive the divergent inputs.  Works on
 *  scalar targets too (plain restore of the one lane). */
void forkLanes(Engine &target, const Snapshot &snapshot,
               unsigned src_lane = 0, const ForkStimulus &stimuli = {});

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_SNAPSHOT_HH
