#include "engine/snapshot_io.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h> // getpid: unique temp-file suffix

#include "support/bytestream.hh"
#include "support/hashing.hh"
#include "support/logging.hh"

namespace fs = std::filesystem;

namespace manticore::engine {

namespace {

constexpr char kMagic[7] = {'M', 'T', 'S', 'N', 'A', 'P', '\0'};

} // namespace

bool
tryWriteSnapshotFile(const Snapshot &snapshot, const std::string &path,
                     std::string *error)
{
    auto fail = [&](std::string msg) -> bool {
        if (error)
            *error = std::move(msg);
        return false;
    };

    std::vector<uint8_t> buf;
    buf.reserve(64);
    support::ByteWriter w(buf);
    w.bytes(kMagic, sizeof(kMagic));
    w.u8(kSnapshotFileVersion);
    w.u32(snapshot.version);
    w.str(snapshot.family);
    w.str(snapshot.engine);
    w.u64(snapshot.designHash);
    w.u32(snapshot.lanes);
    w.u64(snapshot.cycle);
    w.u32(static_cast<uint32_t>(snapshot.sections.size()));
    for (const std::vector<uint8_t> &section : snapshot.sections) {
        w.u64(section.size());
        w.bytes(section.data(), section.size());
    }
    w.u64(fnv1a64(buf.data(), buf.size()));

    // Temp file in the destination directory + rename: the final name
    // either holds the complete old file or the complete new one,
    // never a torn write (same discipline as the AOT object cache).
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return fail("cannot write checkpoint " + tmp);
        out.write(reinterpret_cast<const char *>(buf.data()),
                  static_cast<std::streamsize>(buf.size()));
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return fail("short write on checkpoint " + tmp);
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::string msg = "cannot move checkpoint into place at " +
                          path + ": " + ec.message();
        fs::remove(tmp, ec);
        return fail(std::move(msg));
    }
    return true;
}

void
writeSnapshotFile(const Snapshot &snapshot, const std::string &path)
{
    std::string error;
    if (!tryWriteSnapshotFile(snapshot, path, &error))
        MANTICORE_FATAL(error);
}

Snapshot
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        MANTICORE_FATAL("cannot open checkpoint ", path);
    std::vector<uint8_t> buf((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    if (buf.size() < sizeof(kMagic) + 1 + sizeof(uint64_t))
        MANTICORE_FATAL("checkpoint ", path, " truncated (", buf.size(),
                        " byte(s))");

    // Checksum first: it covers everything, so one check catches
    // truncation and corruption anywhere in the body.
    size_t body = buf.size() - sizeof(uint64_t);
    uint64_t want;
    std::memcpy(&want, buf.data() + body, sizeof(want));
    uint64_t got = fnv1a64(buf.data(), body);
    if (got != want)
        MANTICORE_FATAL("checkpoint ", path, " corrupt: checksum ",
                        hashHex(got), " != recorded ", hashHex(want));

    support::ByteReader r(buf.data(), body);
    char magic[sizeof(kMagic)];
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        MANTICORE_FATAL("not a manticore checkpoint: ", path);
    uint8_t file_version = r.u8();
    if (file_version != kSnapshotFileVersion)
        MANTICORE_FATAL("checkpoint ", path, " has container version ",
                        unsigned(file_version), "; this build reads ",
                        unsigned(kSnapshotFileVersion));

    Snapshot snap;
    snap.version = r.u32();
    snap.family = r.str();
    snap.engine = r.str();
    snap.designHash = r.u64();
    snap.lanes = r.u32();
    snap.cycle = r.u64();
    uint32_t nsections = r.u32();
    if (nsections != snap.lanes)
        MANTICORE_FATAL("checkpoint ", path, " malformed: ", nsections,
                        " section(s) for ", snap.lanes, " lane(s)");
    snap.sections.resize(nsections);
    for (std::vector<uint8_t> &section : snap.sections) {
        uint64_t len = r.u64();
        if (len > r.remaining())
            MANTICORE_FATAL("checkpoint ", path,
                            " truncated: section of ", len,
                            " byte(s) with ", r.remaining(), " left");
        section.resize(len);
        r.bytes(section.data(), len);
    }
    if (!r.done())
        MANTICORE_FATAL("checkpoint ", path, " malformed: ",
                        r.remaining(), " trailing byte(s)");
    return snap;
}

} // namespace manticore::engine
