/**
 * @file
 * On-disk container for engine checkpoints (engine::Snapshot).
 *
 * The in-memory Snapshot (snapshot.hh) is the canonical format — one
 * validated header plus per-lane architectural sections.  This file
 * adds the versioned FILE container around it ("MTSNAP"): magic,
 * container version, the header fields, length-prefixed sections, and
 * a trailing FNV-1a checksum over everything before it, so a
 * truncated or bit-flipped checkpoint fails loudly at load instead of
 * resuming garbage.  Writes go through a temp file + atomic rename
 * (same discipline as the AOT object cache), so a crash mid-write —
 * the whole point of service-run checkpointing — can never leave a
 * half-written file under the final name.
 *
 * Layout (all little-endian, see support/bytestream.hh):
 *
 *   "MTSNAP\0" (7 bytes)  file magic
 *   u8   container version        (kSnapshotFileVersion)
 *   u32  Snapshot::version        (section-format version)
 *   str  family                   ("netlist" | "isa")
 *   str  engine                   (saving engine's registry name)
 *   u64  designHash
 *   u32  lanes
 *   u64  cycle
 *   u32  section count
 *   [u64 length + raw bytes] x section count
 *   u64  FNV-1a 64 of every preceding byte
 *
 * Restore-side identity checks (family, design hash, lane count,
 * section version) stay where they are — in Engine::restore — so the
 * file layer only vets container integrity.
 */

#ifndef MANTICORE_ENGINE_SNAPSHOT_IO_HH
#define MANTICORE_ENGINE_SNAPSHOT_IO_HH

#include <string>

#include "engine/snapshot.hh"

namespace manticore::engine {

/// Bumped when the FILE layout above changes (independent of
/// Snapshot::kVersion, which versions the section byte formats).
constexpr uint8_t kSnapshotFileVersion = 1;

/** Serialize `snapshot` into the MTSNAP container at `path`,
 *  atomically (temp file in the same directory + rename).  Returns
 *  false and fills `error` on any I/O failure (unwritable directory,
 *  disk full, ...) — the caller decides whether that is fatal.  The
 *  multi-tenant service uses this so one tenant's bad path is an
 *  `err` reply, never a dead server. */
bool tryWriteSnapshotFile(const Snapshot &snapshot,
                          const std::string &path,
                          std::string *error = nullptr);

/** tryWriteSnapshotFile, with any I/O failure a loud user-facing
 *  fatal() (the single-user CLI-tool behavior). */
void writeSnapshotFile(const Snapshot &snapshot, const std::string &path);

/** Load an MTSNAP container.  Bad magic, unknown container version,
 *  truncation, and checksum mismatch are loud user-facing fatal()s —
 *  a damaged checkpoint must never half-restore. */
Snapshot readSnapshotFile(const std::string &path);

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_SNAPSHOT_IO_HH
