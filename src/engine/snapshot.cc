#include "engine/snapshot.hh"

#include "support/hashing.hh"
#include "support/logging.hh"

namespace manticore::engine {

namespace {

uint64_t
foldU64(uint64_t v, uint64_t h)
{
    return fnv1a64(&v, sizeof(v), h);
}

uint64_t
foldBits(const BitVector &v, uint64_t h)
{
    h = foldU64(v.width(), h);
    for (uint64_t limb : v.limbs())
        h = foldU64(limb, h);
    return h;
}

uint64_t
foldStr(const std::string &s, uint64_t h)
{
    h = foldU64(s.size(), h);
    return fnv1a64(s, h);
}

} // namespace

uint64_t
designHash(const netlist::Netlist &nl)
{
    uint64_t h = foldStr(nl.name(), fnv1a64("manticore-design-v1"));
    h = foldU64(nl.numNodes(), h);
    for (const netlist::Node &n : nl.nodes()) {
        h = foldU64(static_cast<uint64_t>(n.kind), h);
        h = foldU64(n.width, h);
        h = foldU64(n.lo, h);
        h = foldU64(n.regId, h);
        h = foldU64(n.memId, h);
        h = foldU64(n.operands.size(), h);
        for (netlist::NodeId op : n.operands)
            h = foldU64(op, h);
        if (n.kind == netlist::OpKind::Const)
            h = foldBits(n.value, h);
        h = foldStr(n.name, h);
    }
    h = foldU64(nl.numRegisters(), h);
    for (const netlist::Register &r : nl.registers()) {
        h = foldStr(r.name, h);
        h = foldU64(r.width, h);
        h = foldBits(r.init, h);
        h = foldU64(r.current, h);
        h = foldU64(r.next, h);
    }
    h = foldU64(nl.numMemories(), h);
    for (const netlist::Memory &m : nl.memories()) {
        h = foldStr(m.name, h);
        h = foldU64(m.width, h);
        h = foldU64(m.depth, h);
        h = foldU64(m.init.size(), h);
        for (const BitVector &v : m.init)
            h = foldBits(v, h);
    }
    h = foldU64(nl.memWrites().size(), h);
    for (const netlist::MemWrite &w : nl.memWrites()) {
        h = foldU64(w.mem, h);
        h = foldU64(w.addr, h);
        h = foldU64(w.data, h);
        h = foldU64(w.enable, h);
    }
    h = foldU64(nl.displays().size(), h);
    for (const netlist::Display &d : nl.displays()) {
        h = foldU64(d.enable, h);
        h = foldStr(d.format, h);
        h = foldU64(d.args.size(), h);
        for (netlist::NodeId a : d.args)
            h = foldU64(a, h);
    }
    h = foldU64(nl.finishes().size(), h);
    for (const netlist::Finish &f : nl.finishes())
        h = foldU64(f.enable, h);
    h = foldU64(nl.asserts().size(), h);
    for (const netlist::Assert &a : nl.asserts()) {
        h = foldU64(a.enable, h);
        h = foldU64(a.cond, h);
        h = foldStr(a.message, h);
    }
    return h;
}

void
forkLanes(Engine &target, const Snapshot &snapshot, unsigned src_lane,
          const ForkStimulus &stimuli)
{
    if (!target.has(cap::kSnapshot))
        MANTICORE_FATAL("engine ", target.name(),
                        " does not support snapshots (cap::kSnapshot); "
                        "cannot fork lanes into it");
    if (src_lane >= snapshot.sections.size())
        MANTICORE_FATAL("forkLanes: source lane ", src_lane,
                        " out of range (snapshot has ",
                        snapshot.sections.size(), " section(s))");

    // Replicate the chosen section across the target's lanes and
    // restore through the normal validated path.  forkLanes is a
    // setup-time operation, so the copies are acceptable.
    Snapshot forked;
    forked.version = snapshot.version;
    forked.family = snapshot.family;
    forked.engine = snapshot.engine;
    forked.designHash = snapshot.designHash;
    forked.lanes = target.lanes();
    forked.cycle = snapshot.cycle;
    forked.sections.assign(forked.lanes,
                           snapshot.sections[src_lane]);
    target.restore(forked);

    if (stimuli)
        for (unsigned lane = 0; lane < target.lanes(); ++lane)
            stimuli(target, lane);
}

} // namespace manticore::engine
