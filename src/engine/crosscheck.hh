/**
 * @file
 * Generic differential harness: lockstep ANY golden engine against
 * ANY subject engine, comparing run status and every common RTL
 * register probe at each cycle boundary.  This one class replaces the
 * per-family cross-check loops runtime::Simulation used to hand-roll
 * (netlist evaluator vs machine, ISA interpreter vs machine) and
 * extends them to every pairing — netlist vs netlist, netlist vs
 * ISA, ISA vs machine, ... — because all engines observe RTL
 * registers through the same probe interface.
 *
 *   auto golden  = engine::create("netlist.reference", nl);
 *   auto subject = engine::create("machine", nl, opts);
 *   engine::CrossCheck cc(*golden, *subject);
 *   auto res = cc.run(100'000);
 *   if (cc.diverged()) report(cc.divergence());
 *
 * The first mismatch produces a report naming the diverging cycle and
 * signal (or the disagreeing statuses) and stops the run.  Engines at
 * different cycles are resynchronised first by stepping the laggard
 * (the designs are closed / self-driving), so a cross-checked run can
 * follow plain run() segments.
 */

#ifndef MANTICORE_ENGINE_CROSSCHECK_HH
#define MANTICORE_ENGINE_CROSSCHECK_HH

#include <string>
#include <vector>

#include "engine/engine.hh"

namespace manticore::engine {

class CrossCheck
{
  public:
    /** Pairs up the probes of the two engines by name (both must have
     *  cap::kProbes and at least one name in common — a fatal()
     *  otherwise, since a signal-free cross-check checks nothing). */
    CrossCheck(Engine &golden, Engine &subject);

    /** Advance both engines in lockstep up to max_cycles, comparing
     *  status and every paired probe after each cycle.  Returns the
     *  agreed status — or Status::Failed with divergence() set at the
     *  first mismatch.  Both engines reaching the same terminal
     *  status (e.g. both failing one assertion) is agreement, not
     *  divergence. */
    RunResult run(uint64_t max_cycles);

    bool diverged() const { return !_divergence.empty(); }
    /** "cycle N: signal x: <subject> 5 vs <golden> 7"; empty if the
     *  engines agreed everywhere so far. */
    const std::string &divergence() const { return _divergence; }

    size_t numPairedSignals() const { return _pairs.size(); }

  private:
    struct Pair
    {
        ProbeHandle golden;
        ProbeHandle subject;
    };

    Engine &_golden;
    Engine &_subject;
    std::vector<Pair> _pairs;
    std::string _divergence;
};

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_CROSSCHECK_HH
