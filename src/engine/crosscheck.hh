/**
 * @file
 * Generic differential harness: lockstep ANY golden engine against
 * ANY subject engine, comparing run status and every common RTL
 * register probe at each cycle boundary.  This one class replaces the
 * per-family cross-check loops runtime::Simulation used to hand-roll
 * (netlist evaluator vs machine, ISA interpreter vs machine) and
 * extends them to every pairing — netlist vs netlist, netlist vs
 * ISA, ISA vs machine, ... — because all engines observe RTL
 * registers through the same probe interface.
 *
 *   auto golden  = engine::create("netlist.reference", nl);
 *   auto subject = engine::create("machine", nl, opts);
 *   engine::CrossCheck cc(*golden, *subject);
 *   auto res = cc.run(100'000);
 *   if (cc.diverged()) report(cc.divergence());
 *
 * The first mismatch produces a report naming the diverging cycle and
 * signal (or the disagreeing statuses) and stops the run.  Engines at
 * different cycles are resynchronised first by stepping the laggard
 * (the designs are closed / self-driving), so a cross-checked run can
 * follow plain run() segments.
 */

#ifndef MANTICORE_ENGINE_CROSSCHECK_HH
#define MANTICORE_ENGINE_CROSSCHECK_HH

#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hh"

namespace manticore::runtime {
class ReplayRecorder;
}

namespace manticore::engine {

class CrossCheck
{
  public:
    /** Pairs up the probes of the two engines by name (both must have
     *  cap::kProbes and at least one name in common — a fatal()
     *  otherwise, since a signal-free cross-check checks nothing). */
    CrossCheck(Engine &golden, Engine &subject);

    /** Advance both engines in lockstep up to max_cycles, comparing
     *  status and every paired probe after each cycle.  Returns the
     *  agreed status — or Status::Failed with divergence() set at the
     *  first mismatch.  Both engines reaching the same terminal
     *  status (e.g. both failing one assertion) is agreement, not
     *  divergence. */
    RunResult run(uint64_t max_cycles);

    bool diverged() const { return !_divergence.empty(); }
    /** "cycle N: signal x: <subject> 5 vs <golden> 7"; empty if the
     *  engines agreed everywhere so far.  With a recorder attached
     *  the message also names the written replay artifact. */
    const std::string &divergence() const { return _divergence; }

    /** Attach a replay recorder (see runtime/replay.hh): on the first
     *  divergence the recorder's trace is completed from the golden's
     *  state (run length + expectations), written to disk, and the
     *  artifact path appended to divergence().  The harness owns the
     *  recorder and pre-fills the design recipe and any pokes. */
    void setRecorder(runtime::ReplayRecorder *recorder)
    {
        _recorder = recorder;
    }

    size_t numPairedSignals() const { return _pairs.size(); }

  private:
    struct Pair
    {
        ProbeHandle golden;
        ProbeHandle subject;
    };

    void recordDivergence();

    Engine &_golden;
    Engine &_subject;
    std::vector<Pair> _pairs;
    std::string _divergence;
    runtime::ReplayRecorder *_recorder = nullptr;
};

/** Per-lane stimulus hook: called once per (lane, cycle) for the
 *  ensemble subject AND once for that lane's scalar golden, with the
 *  engine to drive — compute the lane's input values from (lane,
 *  cycle) and apply them through driveLane() so both sides see an
 *  identical waveform. */
using LaneStimulus =
    std::function<void(Engine &engine, unsigned lane, uint64_t cycle)>;

/** Ensemble differential harness: lockstep every lane of an N-lane
 *  ensemble subject against N INDEPENDENT scalar golden runs of the
 *  same design, comparing per-lane run status, per-lane cycle count,
 *  failure messages and every common RTL probe at each cycle
 *  boundary.  Divergent per-lane terminations are first-class: a
 *  lane whose golden finishes or fails is expected to freeze in the
 *  subject at the same cycle with the same message, while the other
 *  lanes keep stepping.
 *
 *    auto subject = engine::create("netlist.parallel", nl, opts);  // N lanes
 *    std::vector<std::unique_ptr<Engine>> goldens;                 // N scalar runs
 *    ...
 *    engine::EnsembleCrossCheck cc(golden_ptrs, *subject);
 *    cc.setStimulus([&](Engine &e, unsigned lane, uint64_t cycle) {
 *        engine::driveLane(e, handles.at(&e), lane, value(lane, cycle));
 *    });
 *    auto res = cc.run(100'000);
 *    if (cc.diverged()) report(cc.divergence());
 */
class EnsembleCrossCheck
{
  public:
    /** goldens[l] is lane l's scalar golden (size must equal
     *  subject.lanes(); every engine needs cap::kProbes and at least
     *  one name in common with the subject; all engines must be at
     *  cycle 0). */
    EnsembleCrossCheck(const std::vector<Engine *> &goldens,
                       Engine &subject);

    /** Install the per-lane stimulus hook (optional; closed designs
     *  self-drive). */
    void setStimulus(LaneStimulus stimulus)
    {
        _stimulus = std::move(stimulus);
    }

    /** Advance the ensemble and the goldens in lockstep up to
     *  max_cycles, comparing per lane after each cycle.  Stops at the
     *  first mismatch (status Failed, divergence() set) or when every
     *  lane reached an agreed terminal status (the result carries
     *  Finished if any lane finished, else Failed — agreed per-lane
     *  assert failures are agreement, not divergence). */
    RunResult run(uint64_t max_cycles);

    bool diverged() const { return !_divergence.empty(); }
    /** "lane L cycle N: ..."; empty if every lane agreed so far.
     *  With a recorder attached the message also names the written
     *  replay artifact. */
    const std::string &divergence() const { return _divergence; }

    /** Attach a replay recorder; see CrossCheck::setRecorder.  On
     *  divergence every lane's golden contributes one expectation, so
     *  the artifact reproduces the whole ensemble including lanes
     *  that terminated earlier. */
    void setRecorder(runtime::ReplayRecorder *recorder)
    {
        _recorder = recorder;
    }

    size_t
    numPairedSignals() const
    {
        return _pairs.empty() ? 0 : _pairs[0].size();
    }

  private:
    struct Pair
    {
        ProbeHandle golden;
        ProbeHandle subject;
    };

    bool checkLane(unsigned lane);
    void recordDivergence();

    std::vector<Engine *> _goldens;
    Engine &_subject;
    std::vector<std::vector<Pair>> _pairs; ///< per lane
    std::vector<uint8_t> _settled; ///< lane reached agreed terminal
    LaneStimulus _stimulus;
    std::string _divergence;
    runtime::ReplayRecorder *_recorder = nullptr;
};

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_CROSSCHECK_HH
