#include "engine/registry.hh"

#include "engine/snapshot.hh"
#include "isa/interpreter.hh"
#include "machine/machine.hh"
#include "netlist/aot.hh"
#include "netlist/evaluator.hh"
#include "runtime/host.hh"
#include "support/logging.hh"
#include "support/namelist.hh"

namespace manticore::engine {

namespace {

/** Heap context an ISA-level engine keeps alive: the compiled
 *  program (when the registry compiled it), and the Host servicing
 *  its exceptions. */
struct ProgramContext
{
    compiler::CompileResult compiled; ///< unused by the program overload
    isa::MachineConfig config;
    std::unique_ptr<runtime::Host> host;
    /// Ensemble path: one host per requested lane, each bound to its
    /// lane's global memory (laneHosts[0] doubles as the scalar host).
    std::vector<std::unique_ptr<runtime::Host>> laneHosts;
};

[[noreturn]] void
unknownEngine(const std::string &name)
{
    MANTICORE_FATAL("no such engine: ", name,
                    " (registered engines: ", formatNameList(names()),
                    ")");
}

/** Registry names of the engines whose EngineInfo advertises
 *  cap::kEnsemble (for the lanes-rejection diagnostic). */
std::vector<std::string>
ensembleEngineNames()
{
    std::vector<std::string> out;
    for (const EngineInfo &info : list())
        if (info.caps & cap::kEnsemble)
            out.push_back(info.name);
    return out;
}

[[noreturn]] void
rejectLanes(const std::string &name, unsigned lanes)
{
    MANTICORE_FATAL("engine ", name, " has no ensemble mode (lanes=",
                    lanes, "); ensemble engines: ",
                    formatNameList(ensembleEngineNames()));
}

/** Wire an ISA-level adapter to its Host and context.  The adapter
 *  must expose interpreter()/machine() global memory already; `setup`
 *  has run makeInterpreter / Machine construction. */
template <typename Adapter>
std::unique_ptr<Engine>
finishSelfHosted(std::unique_ptr<Adapter> adapter,
                 std::shared_ptr<ProgramContext> ctx,
                 const isa::Program &program,
                 isa::GlobalMemory &global)
{
    ctx->host = std::make_unique<runtime::Host>(program, global);
    ctx->host->attach(*adapter);
    runtime::Host *host = ctx->host.get();
    adapter->selfHost(std::move(ctx), host);
    return adapter;
}

/** Ensemble variant of finishSelfHosted: one Host per requested lane,
 *  each servicing its lane's EXPECTs against that lane's global
 *  memory through the interpreter's lane-aware exception hook. */
std::unique_ptr<Engine>
finishSelfHostedLaned(std::unique_ptr<IsaEngine> adapter,
                      std::shared_ptr<ProgramContext> ctx,
                      const isa::Program &program)
{
    isa::InterpreterBase &interp = adapter->interpreter();
    std::vector<runtime::Host *> hosts;
    for (unsigned l = 0; l < interp.lanes(); ++l) {
        ctx->laneHosts.push_back(std::make_unique<runtime::Host>(
            program, interp.globalMemoryLane(l)));
        hosts.push_back(ctx->laneHosts.back().get());
    }
    interp.onExceptionLane = [hosts](unsigned lane, uint32_t pid,
                                     uint16_t eid) {
        return hosts[lane]->service(pid, eid);
    };
    // Lane 0's host also covers the scalar onException path (unused
    // while onExceptionLane is set, but keeps wrap()-style callers
    // that clear the lane hook working).
    hosts[0]->attach(*adapter);
    adapter->selfHost(std::move(ctx), std::move(hosts));
    return adapter;
}

std::unique_ptr<Engine>
createIsaLevel(const std::string &name,
               std::shared_ptr<ProgramContext> ctx,
               const isa::Program &program,
               const isa::MachineConfig &config,
               std::vector<RtlSignal> signals, uint64_t design_hash,
               unsigned lanes)
{
    if (name == "machine") {
        auto adapter = std::make_unique<MachineEngine>(
            std::make_unique<machine::Machine>(program, config),
            std::move(signals));
        isa::GlobalMemory &global = adapter->machine().globalMemory();
        return finishSelfHosted(std::move(adapter), std::move(ctx),
                                program, global);
    }
    isa::ExecMode mode;
    if (name.rfind("isa.", 0) != 0 ||
        !isa::parseExecMode(name.substr(4), mode))
        unknownEngine(name);
    auto adapter = std::make_unique<IsaEngine>(
        name, isa::makeInterpreter(program, config, mode, lanes),
        std::move(signals));
    // Design identity for snapshots; 0 (= unknown, hash check skipped)
    // on the program-only create() path where no netlist exists.
    adapter->setDesignHash(design_hash);
    if (adapter->interpreter().lanes() > 1)
        return finishSelfHostedLaned(std::move(adapter), std::move(ctx),
                                     program);
    isa::GlobalMemory &global = adapter->interpreter().globalMemory();
    return finishSelfHosted(std::move(adapter), std::move(ctx), program,
                            global);
}

} // namespace

// Registration is once-guarded: the first list() call from ANY
// thread builds the table (including the memoized AOT toolchain
// probe, which takes its own mutex in aotToolchain()); every later
// call — find(), names(), create() — reads the immutable result.
// The guard is a function-local static rather than std::call_once:
// the [stmt.dcl] initialization guarantee is identical, but it also
// holds in binaries where the pthread runtime is not active (glibc's
// gthr once-stub silently skips the callable there, which would
// leave the registry empty for every single-threaded tool).
// Concurrent engine::create() from many threads is a supported,
// tested pattern (the multi-tenant service constructs tenant engines
// on its worker pool; see tests/test_service.cc).
namespace {

std::vector<EngineInfo>
registerEngines()
{
    constexpr uint32_t kNetlistCaps =
        cap::kInputs | cap::kProbes | cap::kDisplayLog |
        cap::kSnapshot;
    constexpr uint32_t kIsaCaps = cap::kExceptions | cap::kProbes |
                                  cap::kDisplayLog | cap::kSnapshot;
    std::vector<EngineInfo> engines = {
        {"netlist.reference",
         "graph-walking netlist evaluator (allocating, obviously "
         "correct; the golden model)",
         true, kNetlistCaps},
        {"netlist.compiled",
         "netlist lowered once to a flat op tape over a limb arena "
         "(zero-allocation)",
         true,
         kNetlistCaps | cap::kBatchedStep | cap::kEnsemble},
        {"netlist.parallel",
         "partition-parallel tapes on a persistent worker pool with "
         "the two-barrier Vcycle (batched step(n) amortises the "
         "rendezvous)",
         true,
         kNetlistCaps | cap::kBatchedStep | cap::kEnsemble},
        {"netlist.aot",
         "the flat tape AOT-compiled to a dlopen'd straight-line "
         "cycle function (dispatch-free; hashed on-disk object "
         "cache; lanes > 1 compiles a lane-width-templated SIMD "
         "body)",
         true,
         kNetlistCaps | cap::kBatchedStep | cap::kEnsemble |
             cap::kAotCompiled},
        {"netlist.parallel.aot",
         "partition-parallel tapes with each partition's tape "
         "AOT-compiled into its own cached object, dispatched inside "
         "the two-barrier Vcycle",
         true,
         kNetlistCaps | cap::kBatchedStep | cap::kEnsemble |
             cap::kAotCompiled},
        {"isa.reference",
         "instruction-walking functional ISA interpreter (untimed)",
         false, kIsaCaps},
        {"isa.tape",
         "flat pre-decoded ISA op tape with fused dispatch (untimed; "
         "batched step(n) runs the whole batch per call; lanes > 1 "
         "runs an N-wide SIMD ensemble)",
         false, kIsaCaps | cap::kBatchedStep | cap::kEnsemble},
        {"machine",
         "cycle-level grid model: static schedule, torus NoC, global "
         "stalls, perf counters",
         false,
         cap::kExceptions | cap::kProbes | cap::kDisplayLog |
             cap::kPerfCounters},
    };
    // The AOT engines are the only ones with a host dependency: a
    // working C++ toolchain, probed (and memoized) once here.
    const netlist::AotToolchain &tc = netlist::aotToolchain();
    for (EngineInfo &info : engines) {
        if (!(info.caps & cap::kAotCompiled))
            continue;
        info.available = tc.ok;
        info.availabilityNote = tc.ok ? tc.compiler : tc.message;
    }
    return engines;
}

} // namespace

const std::vector<EngineInfo> &
list()
{
    static const std::vector<EngineInfo> registry = registerEngines();
    return registry;
}

const EngineInfo *
find(const std::string &name)
{
    for (const EngineInfo &info : list())
        if (name == info.name)
            return &info;
    return nullptr;
}

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    for (const EngineInfo &info : list())
        out.push_back(info.name);
    return out;
}

std::unique_ptr<Engine>
create(const std::string &name, const netlist::Netlist &netlist,
       const CreateOptions &options)
{
    const EngineInfo *info = find(name);
    if (!info)
        unknownEngine(name);

    // The top-level lanes shorthand overrides eval.lanes when set; the
    // rejection is caps-driven, so an engine gaining an ensemble mode
    // only has to advertise cap::kEnsemble in its EngineInfo.
    netlist::EvalOptions eval = options.eval;
    if (options.lanes != 1)
        eval.lanes = options.lanes;
    if (eval.lanes != 1 && !(info->caps & cap::kEnsemble))
        rejectLanes(name, eval.lanes);

    if (info->netlistLevel) {
        netlist::EvalMode mode;
        if (name == "netlist.parallel.aot") {
            // Registry variant, not a distinct EvalMode: the parallel
            // engine with per-partition compiled objects.
            mode = netlist::EvalMode::Parallel;
            eval.aot = true;
        } else {
            bool ok = netlist::parseEvalMode(name.substr(8), mode);
            MANTICORE_ASSERT(ok, "registry/EvalMode name drift for ",
                             name);
        }
        return std::make_unique<NetlistEngine>(
            name, netlist::makeEvaluator(netlist, mode, eval), netlist);
    }

    auto ctx = std::make_shared<ProgramContext>();
    ctx->compiled = compiler::compile(netlist, options.compile);
    ctx->config = options.compile.config;
    // The context outlives the engine's interpreter/machine, so the
    // program reference below stays valid (see Adapter::selfHost).
    const isa::Program &program = ctx->compiled.program;
    const isa::MachineConfig &config = ctx->config;
    std::vector<RtlSignal> signals = rtlSignals(netlist, ctx->compiled);
    return createIsaLevel(name, std::move(ctx), program, config,
                          std::move(signals), designHash(netlist),
                          eval.lanes);
}

std::unique_ptr<Engine>
create(const std::string &name, const isa::Program &program,
       const isa::MachineConfig &config, std::vector<RtlSignal> signals,
       unsigned lanes)
{
    const EngineInfo *info = find(name);
    if (!info)
        unknownEngine(name);
    if (info->netlistLevel)
        MANTICORE_FATAL("engine ", name, " is netlist-level: create it "
                        "from a netlist, not a compiled program");
    if (lanes != 1 && !(info->caps & cap::kEnsemble))
        rejectLanes(name, lanes);
    return createIsaLevel(name, std::make_shared<ProgramContext>(),
                          program, config, std::move(signals),
                          /*design_hash=*/0, lanes);
}

} // namespace manticore::engine
