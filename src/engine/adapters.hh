/**
 * @file
 * Thin adapters implementing engine::Engine over the concrete
 * engines:
 *
 *  - NetlistEngine  over netlist::EvaluatorBase (reference, compiled,
 *                   partition-parallel),
 *  - IsaEngine      over isa::InterpreterBase (reference and tape
 *                   interpreters),
 *  - MachineEngine  over machine::Machine (the cycle-level model).
 *
 * Each adapter either *borrows* an engine the caller owns (the
 * `wrap()` helpers — handy for attaching a Host or cross-checking an
 * engine that already exists) or *owns* it (the unique_ptr
 * constructors, used by the registry).
 *
 * RTL observation on the ISA-level engines goes through the
 * compiler's observation map: `rtlSignals()` turns a CompileResult
 * into a table of (name, width, chunk homes), and the adapters
 * reassemble each probed register from its 16-bit chunks — the same
 * mechanism the waveform recorder and the Simulation cross-check use.
 * Probe names are the netlist register names, uniquified as
 * `name#<id>` on collision (and `#<id>` when unnamed) so pairing
 * probes by name across engines of the same design is well defined.
 */

#ifndef MANTICORE_ENGINE_ADAPTERS_HH
#define MANTICORE_ENGINE_ADAPTERS_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "engine/engine.hh"
#include "isa/interpreter.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"

namespace manticore::runtime {
class Host;
}

namespace manticore::engine {

/** One RTL register as observed on an ISA-level engine: its unique
 *  probe name, bit width, and the (process, machine register) home of
 *  each 16-bit chunk.  The width is chunk-padded (multiple of 16) so
 *  probes expose full chunk words: cross-checking two chunk-homed
 *  engines keeps per-chunk sensitivity, and cross-family comparisons
 *  mask down to the common RTL width. */
struct RtlSignal
{
    std::string name;
    unsigned width = 0;
    std::vector<compiler::RegChunkHome> homes;
};

/** Unique probe names for a netlist's registers (register name,
 *  `name#<id>` on duplicates, `#<id>` when unnamed). */
std::vector<std::string> rtlRegisterNames(const netlist::Netlist &netlist);

/** Build the RTL signal table for ISA-level probes from the
 *  compiler's observation map. */
std::vector<RtlSignal> rtlSignals(const netlist::Netlist &netlist,
                                  const compiler::CompileResult &compiled);

/** Reassemble one RTL value from its 16-bit chunk homes through an
 *  engine-specific (pid, reg) -> uint16_t reader — the ONE
 *  implementation of the observation mechanism, shared by the
 *  ISA-level probe adapters and runtime::readMachineRegister. */
BitVector assembleRtlValue(
    unsigned width, const std::vector<compiler::RegChunkHome> &homes,
    const std::function<uint16_t(uint32_t pid, isa::Reg reg)> &read_chunk);

/** Shared probe-table plumbing: name->handle resolution with
 *  name-listing diagnostics; handles are table indices. */
class ProbedEngine : public Engine
{
  public:
    size_t numProbes() const override { return _probeNames.size(); }
    ProbeHandle probe(const std::string &signal) override;
    const std::string &probeName(ProbeHandle handle) const override;
    unsigned probeWidth(ProbeHandle handle) const override;

  protected:
    std::vector<std::string> _probeNames;
    std::vector<unsigned> _probeWidths;
};

class NetlistEngine : public ProbedEngine
{
  public:
    /** Borrow an evaluator the caller owns.  The netlist is consulted
     *  at construction only (input/register tables). */
    NetlistEngine(std::string name, netlist::EvaluatorBase &eval,
                  const netlist::Netlist &netlist);
    /** Own the evaluator (registry path). */
    NetlistEngine(std::string name,
                  std::unique_ptr<netlist::EvaluatorBase> eval,
                  const netlist::Netlist &netlist);

    const char *name() const override { return _name.c_str(); }
    uint32_t capabilities() const override;

    InputHandle bindInput(const std::string &input) override;
    void setInput(InputHandle handle, const BitVector &value) override;

    BitVector read(ProbeHandle handle) const override;

    RunResult step(uint64_t n = 1) override;
    uint64_t cycle() const override;
    Status status() const override;
    std::string failureMessage() const override;
    /** "cycles" aggregates over the lanes (the total simulated
     *  cycles this engine delivered); an ensemble also reports
     *  "lanes" and per-lane "lane<i>.cycles" counters. */
    std::vector<Stat> stats() const override;

    const std::vector<std::string> &displayLog() const override;
    void setDisplaySink(DisplaySink sink) override;

    // Ensemble plumbing (cap::kEnsemble when the evaluator has
    // lanes() > 1; the un-indexed setInput broadcasts).
    unsigned lanes() const override { return _eval->lanes(); }
    void setInputLane(InputHandle handle, unsigned lane,
                      const BitVector &value) override;
    BitVector readLane(ProbeHandle handle, unsigned lane) const override;
    Status laneStatus(unsigned lane) const override;
    uint64_t laneCycle(unsigned lane) const override;
    std::string laneFailureMessage(unsigned lane) const override;
    const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const override;

    // Checkpoint/restore (cap::kSnapshot when the evaluator supports
    // it): one "netlist"-family section per lane, canonical format
    // (see netlist::EvaluatorBase::saveLaneState).
    void save(Snapshot &out) const override;
    void restore(const Snapshot &snapshot) override;
    /** Structural hash of the design (engine::designHash), carried in
     *  every snapshot this engine saves. */
    uint64_t designHash() const { return _designHash; }

    netlist::EvaluatorBase &evaluator() { return *_eval; }

  private:
    void checkInput(InputHandle handle, const BitVector &value) const;
    void checkLane(unsigned lane) const;

    std::string _name;
    std::unique_ptr<netlist::EvaluatorBase> _owned;
    netlist::EvaluatorBase *_eval;
    uint64_t _designHash = 0;
    /// Input table: handle -> (node id, width); bound by name once.
    std::vector<std::string> _inputNames;
    std::vector<netlist::NodeId> _inputNodes;
    std::vector<unsigned> _inputWidths;
};

class IsaEngine : public ProbedEngine
{
  public:
    /** Borrow an interpreter the caller owns.  Without a signal table
     *  the engine has no probes (cap::kProbes off). */
    IsaEngine(std::string name, isa::InterpreterBase &interp,
              std::vector<RtlSignal> signals = {});
    /** Own the interpreter (registry path). */
    IsaEngine(std::string name, std::unique_ptr<isa::InterpreterBase> interp,
              std::vector<RtlSignal> signals = {});

    const char *name() const override { return _name.c_str(); }
    uint32_t capabilities() const override;

    BitVector read(ProbeHandle handle) const override;

    RunResult step(uint64_t n = 1) override;
    uint64_t cycle() const override;
    Status status() const override;
    std::string failureMessage() const override;
    /** "cycles" aggregates over the lanes, mirroring NetlistEngine;
     *  an ensemble also reports "lanes" and "lane<i>.cycles". */
    std::vector<Stat> stats() const override;

    const std::vector<std::string> &displayLog() const override;
    void setDisplaySink(DisplaySink sink) override;
    void setExceptionHandler(ExceptionHandler handler) override;

    // Ensemble plumbing (cap::kEnsemble when the interpreter has
    // lanes() > 1; ISA designs take no inputs, so there is no
    // setInputLane — lanes diverge through forkLanes/restore).
    unsigned lanes() const override { return _interp->lanes(); }
    BitVector readLane(ProbeHandle handle, unsigned lane) const override;
    Status laneStatus(unsigned lane) const override;
    uint64_t laneCycle(unsigned lane) const override;
    std::string laneFailureMessage(unsigned lane) const override;
    const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const override;

    // Checkpoint/restore (cap::kSnapshot when the interpreter
    // supports it): one "isa"-family section per lane in the
    // canonical format (see isa::InterpreterBase::saveLaneState).
    void save(Snapshot &out) const override;
    void restore(const Snapshot &snapshot) override;
    /** Registry plumbing: design identity carried into snapshots.
     *  The program-only wrap() path leaves it 0 (= unknown; restore
     *  then skips the hash check but still validates geometry). */
    void setDesignHash(uint64_t hash) { _designHash = hash; }
    uint64_t designHash() const { return _designHash; }

    isa::InterpreterBase &interpreter() { return *_interp; }

    /** Registry plumbing: keep `context` (compiled program, host, …)
     *  alive for the engine's lifetime and, when `host` is given,
     *  route displayLog/failureMessage through it (enables
     *  cap::kDisplayLog). */
    void
    selfHost(std::shared_ptr<void> context, runtime::Host *host)
    {
        _context = std::move(context);
        _host = host;
    }

    /** Laned variant: one host per requested lane (each servicing
     *  its lane's EXPECTs over that lane's global memory, and routing
     *  laneFailureMessage / laneDisplayLog).  Lane 0's host doubles
     *  as the scalar host for the un-indexed accessors. */
    void
    selfHost(std::shared_ptr<void> context,
             std::vector<runtime::Host *> lane_hosts)
    {
        _context = std::move(context);
        _laneHosts = std::move(lane_hosts);
        _host = _laneHosts.empty() ? nullptr : _laneHosts[0];
    }

  private:
    void checkLane(unsigned lane) const;

    std::string _name;
    /// Declared before _owned: the interpreter references program
    /// storage living in _context, so it must be destroyed first.
    std::shared_ptr<void> _context;
    std::unique_ptr<isa::InterpreterBase> _owned;
    isa::InterpreterBase *_interp;
    std::vector<RtlSignal> _signals;
    runtime::Host *_host = nullptr;
    std::vector<runtime::Host *> _laneHosts;
    uint64_t _designHash = 0;
};

class MachineEngine : public ProbedEngine
{
  public:
    /** Borrow a machine the caller owns. */
    explicit MachineEngine(machine::Machine &machine,
                           std::vector<RtlSignal> signals = {});
    /** Own the machine (registry path). */
    explicit MachineEngine(std::unique_ptr<machine::Machine> machine,
                           std::vector<RtlSignal> signals = {});

    const char *name() const override { return "machine"; }
    uint32_t capabilities() const override;

    BitVector read(ProbeHandle handle) const override;

    RunResult step(uint64_t n = 1) override;
    uint64_t cycle() const override;
    Status status() const override;
    std::string failureMessage() const override;
    std::vector<Stat> stats() const override;

    const std::vector<std::string> &displayLog() const override;
    void setDisplaySink(DisplaySink sink) override;
    void setExceptionHandler(ExceptionHandler handler) override;

    machine::Machine &machine() { return *_machine; }

    /** Registry plumbing; see IsaEngine::selfHost. */
    void
    selfHost(std::shared_ptr<void> context, runtime::Host *host)
    {
        _context = std::move(context);
        _host = host;
    }

  private:
    /// Declared before _owned: the machine references program storage
    /// living in _context, so it must be destroyed first.
    std::shared_ptr<void> _context;
    std::unique_ptr<machine::Machine> _owned;
    machine::Machine *_machine;
    std::vector<RtlSignal> _signals;
    runtime::Host *_host = nullptr;
};

/** Wrap an existing engine without taking ownership.  The adapter
 *  identifies the concrete engine type to pick its registry name. */
NetlistEngine wrap(netlist::EvaluatorBase &eval,
                   const netlist::Netlist &netlist);
IsaEngine wrap(isa::InterpreterBase &interp,
               std::vector<RtlSignal> signals = {});
MachineEngine wrap(machine::Machine &machine,
                   std::vector<RtlSignal> signals = {});

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_ADAPTERS_HH
