/**
 * @file
 * The named-engine registry: every execution engine in the repository
 * is creatable by registry name —
 *
 *   | name                 | engine                                    |
 *   |----------------------|-------------------------------------------|
 *   | netlist.reference    | graph-walking netlist::Evaluator          |
 *   | netlist.compiled     | flat-tape netlist::CompiledEvaluator      |
 *   | netlist.parallel     | netlist::ParallelCompiledEvaluator        |
 *   | netlist.aot          | AOT-codegen netlist::AotEvaluator         |
 *   | netlist.parallel.aot | netlist::AotParallelEvaluator             |
 *   | isa.reference        | instruction-walking isa::Interpreter      |
 *   | isa.tape             | flat-tape isa::TapeInterpreter            |
 *   | machine              | cycle-level machine::Machine              |
 *
 * `create(name, netlist)` works for ALL of them: netlist-level
 * engines evaluate the netlist directly; ISA-level engines compile it
 * first (the registry owns the compiled program and wires a
 * runtime::Host so $display / $finish / assertions work out of the
 * box, and RTL probes go through the compiler's observation map).
 * `create(name, program, config)` skips the compile for callers that
 * already have a binary program.  `makeEvaluator` / `makeInterpreter`
 * remain as thin mode-enum spellings of the same constructions.
 *
 * Session is the quickstart convenience: a created engine plus the
 * one-call run loop (see README.md).
 *
 * Thread safety: registration is once-guarded, so
 * `list` / `find` / `names` / `create` may be called concurrently
 * from any number of threads — the multi-tenant service constructs
 * tenant engines on its worker pool (see src/service/scheduler.hh).
 * The Engine instances returned are NOT thread-safe themselves; one
 * engine, one thread at a time.
 */

#ifndef MANTICORE_ENGINE_REGISTRY_HH
#define MANTICORE_ENGINE_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "engine/engine.hh"
#include "netlist/netlist.hh"

namespace manticore::engine {

struct EngineInfo
{
    const char *name;
    const char *description;
    /// Netlist-level engines evaluate the netlist directly; ISA-level
    /// engines (isa.*, machine) execute a compiled program.
    bool netlistLevel;
    /// Static summary of the cap:: bits instances of this engine can
    /// support (conditional bits — kEnsemble at lanes > 1,
    /// kAotCompiled when the AOT toolchain engaged — are included).
    /// Harnesses use this to SKIP engines without a capability (e.g.
    /// cap::kSnapshot) instead of fataling on an unsupported call.
    uint32_t caps;
    /// Probed once at first list() call: can this engine run on this
    /// host?  Only the AOT engines (netlist.aot,
    /// netlist.parallel.aot) have a host dependency (a working C++
    /// toolchain); every other engine is always available.
    bool available = true;
    /// Availability detail: the probed compiler when available
    /// ("" for engines without a host dependency), or the actionable
    /// reason the engine cannot run here.
    std::string availabilityNote;
};

/** All registered engines, in documentation order, with per-engine
 *  availability.  create() on an unavailable engine is a user-facing
 *  fatal() repeating the availabilityNote. */
const std::vector<EngineInfo> &list();

/** Registry-name parsing: the EngineInfo for `name`, or nullptr. */
const EngineInfo *find(const std::string &name);

/** All registry names (for --engine flags and diagnostics). */
std::vector<std::string> names();

struct CreateOptions
{
    /// Ensemble width: one engine advancing N decoupled simulations
    /// per step — `engine::create("netlist.compiled", nl, {.lanes=N})`.
    /// Only engines advertising cap::kEnsemble (netlist.compiled,
    /// netlist.parallel, netlist.aot, netlist.parallel.aot,
    /// isa.tape) have an ensemble mode; any other engine rejects
    /// lanes != 1 with a fatal() listing them.
    /// Shorthand for (and, when != 1, overriding) eval.lanes.
    unsigned lanes = 1;
    /// netlist.parallel knobs (worker count, merge strategy, wait
    /// policy) and the compiled engines' lane count.
    netlist::EvalOptions eval;
    /// Grid / machine configuration for the ISA-level engines (the
    /// netlist is compiled with these options).
    compiler::CompileOptions compile;
};

/** Create any engine over a netlist.  Unknown names are a user-facing
 *  fatal() listing the registry.  ISA-level engines compile the
 *  netlist and come self-hosted (display log, finish/assert
 *  servicing, RTL probes). */
std::unique_ptr<Engine> create(const std::string &name,
                               const netlist::Netlist &netlist,
                               const CreateOptions &options = {});

/** Create an ISA-level engine over an already-compiled program (the
 *  program and config must outlive the engine).  Pass the signal
 *  table from rtlSignals() to enable RTL probes; netlist-level names
 *  are rejected.  lanes > 1 requests an ensemble (cap::kEnsemble
 *  engines only — currently isa.tape at this level). */
std::unique_ptr<Engine> create(const std::string &name,
                               const isa::Program &program,
                               const isa::MachineConfig &config,
                               std::vector<RtlSignal> signals = {},
                               unsigned lanes = 1);

/** The three-lines-to-simulate convenience: build an engine over a
 *  design and run it.
 *
 *  @code
 *  engine::Session sim(b.build(), "machine", options);
 *  sim->setDisplaySink([](const std::string &l) { ... });
 *  sim.run(1'000);
 *  @endcode
 */
class Session
{
  public:
    explicit Session(const netlist::Netlist &netlist,
                     const std::string &engine_name = "machine",
                     const CreateOptions &options = {})
        : _engine(create(engine_name, netlist, options))
    {}

    Engine &engine() { return *_engine; }
    const Engine &engine() const { return *_engine; }
    Engine *operator->() { return _engine.get(); }

    /** Step until finish/failure or max_cycles. */
    RunResult run(uint64_t max_cycles) { return _engine->step(max_cycles); }

  private:
    std::unique_ptr<Engine> _engine;
};

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_REGISTRY_HH
