#include "engine/adapters.hh"

#include <algorithm>
#include <unordered_map>

#include "engine/snapshot.hh"
#include "isa/tape_interpreter.hh"
#include "netlist/aot.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/parallel_evaluator.hh"
#include "runtime/host.hh"
#include "support/bytestream.hh"
#include "support/logging.hh"
#include "support/namelist.hh"

namespace manticore::engine {

namespace {

Status
mapStatus(netlist::SimStatus status)
{
    switch (status) {
      case netlist::SimStatus::Ok: return Status::Running;
      case netlist::SimStatus::Finished: return Status::Finished;
      case netlist::SimStatus::AssertFailed: return Status::Failed;
    }
    return Status::Failed;
}

Status
mapStatus(isa::RunStatus status)
{
    switch (status) {
      case isa::RunStatus::Running: return Status::Running;
      case isa::RunStatus::Finished: return Status::Finished;
      case isa::RunStatus::Failed: return Status::Failed;
    }
    return Status::Failed;
}

/** Restore-side header validation, shared by both adapter families.
 *  Every rejection names the snapshot's saving engine so the message
 *  is actionable ("saved by netlist.parallel"). */
void
checkSnapshotHeader(const char *engine_name, const Snapshot &s,
                    const char *family, uint64_t design_hash,
                    unsigned lanes)
{
    if (s.version != Snapshot::kVersion)
        MANTICORE_FATAL("engine ", engine_name,
                        ": snapshot format version ", s.version,
                        " (saved by ", s.engine, ") does not match ",
                        Snapshot::kVersion, " — refusing to restore");
    if (s.family != family)
        MANTICORE_FATAL("engine ", engine_name, ": snapshot family \"",
                        s.family, "\" (saved by ", s.engine,
                        ") is not \"", family,
                        "\" — refusing to restore");
    if (design_hash != 0 && s.designHash != 0 &&
        s.designHash != design_hash)
        MANTICORE_FATAL("engine ", engine_name,
                        ": snapshot design hash ", std::hex,
                        s.designHash, " (saved by ", s.engine,
                        ") does not match this design's ", design_hash,
                        std::dec, " — refusing to restore");
    if (s.lanes != lanes || s.sections.size() != lanes)
        MANTICORE_FATAL("engine ", engine_name, ": snapshot has ",
                        s.lanes, " lane(s) in ", s.sections.size(),
                        " section(s) (saved by ", s.engine,
                        "), this engine has ", lanes,
                        " — refusing to restore (use "
                        "engine::forkLanes to re-lane a checkpoint)");
}

} // namespace

BitVector
assembleRtlValue(
    unsigned width, const std::vector<compiler::RegChunkHome> &homes,
    const std::function<uint16_t(uint32_t, isa::Reg)> &read_chunk)
{
    BitVector value(width);
    for (size_t c = 0; c < homes.size(); ++c) {
        uint16_t word = read_chunk(homes[c].process, homes[c].reg);
        for (unsigned b = 0; b < 16; ++b) {
            unsigned bit = static_cast<unsigned>(c) * 16 + b;
            if (bit < width && ((word >> b) & 1))
                value.setBit(bit, true);
        }
    }
    return value;
}

std::vector<std::string>
rtlRegisterNames(const netlist::Netlist &netlist)
{
    std::unordered_map<std::string, unsigned> uses;
    for (const netlist::Register &r : netlist.registers())
        if (!r.name.empty())
            ++uses[r.name];
    std::vector<std::string> names;
    names.reserve(netlist.numRegisters());
    for (size_t r = 0; r < netlist.numRegisters(); ++r) {
        const std::string &name =
            netlist.reg(static_cast<netlist::RegId>(r)).name;
        if (name.empty() || uses[name] > 1)
            names.push_back(name + "#" + std::to_string(r));
        else
            names.push_back(name);
    }
    return names;
}

std::vector<RtlSignal>
rtlSignals(const netlist::Netlist &netlist,
           const compiler::CompileResult &compiled)
{
    MANTICORE_ASSERT(compiled.regChunkHome.size() ==
                         netlist.numRegisters(),
                     "observation map does not match the netlist");
    std::vector<std::string> names = rtlRegisterNames(netlist);
    std::vector<RtlSignal> signals(netlist.numRegisters());
    for (size_t r = 0; r < signals.size(); ++r) {
        signals[r].name = std::move(names[r]);
        signals[r].homes = compiled.regChunkHome[r];
        // Chunk-padded width: a probe carries every bit of every
        // 16-bit chunk home, not just the RTL register's low bits.
        // Cross-family comparisons mask to the common (RTL) width
        // anyway, but two chunk-homed engines compare FULL chunk
        // words — the same sensitivity the per-chunk lockstep loop
        // this replaced had (a machine bug corrupting only the dead
        // high bits of a top chunk still diverges).
        unsigned rtl_width =
            netlist.reg(static_cast<netlist::RegId>(r)).width;
        unsigned chunk_bits =
            static_cast<unsigned>(signals[r].homes.size()) * 16;
        signals[r].width = std::max(rtl_width, chunk_bits);
    }
    return signals;
}

// ---------------------------------------------------------------------------
// ProbedEngine
// ---------------------------------------------------------------------------

ProbeHandle
ProbedEngine::probe(const std::string &signal)
{
    if (_probeNames.empty())
        return Engine::probe(signal); // capability fatal
    for (size_t i = 0; i < _probeNames.size(); ++i)
        if (_probeNames[i] == signal)
            return static_cast<ProbeHandle>(i);
    MANTICORE_FATAL("engine ", name(), ": no such signal: ", signal,
                    " (valid signals: ", formatNameList(_probeNames),
                    ")");
}

const std::string &
ProbedEngine::probeName(ProbeHandle handle) const
{
    MANTICORE_ASSERT(handle < _probeNames.size(), "bad probe handle ",
                     handle);
    return _probeNames[handle];
}

unsigned
ProbedEngine::probeWidth(ProbeHandle handle) const
{
    MANTICORE_ASSERT(handle < _probeWidths.size(), "bad probe handle ",
                     handle);
    return _probeWidths[handle];
}

// ---------------------------------------------------------------------------
// NetlistEngine
// ---------------------------------------------------------------------------

NetlistEngine::NetlistEngine(std::string name,
                             netlist::EvaluatorBase &eval,
                             const netlist::Netlist &netlist)
    : _name(std::move(name)), _eval(&eval),
      _designHash(engine::designHash(netlist))
{
    _probeNames = rtlRegisterNames(netlist);
    for (const netlist::Register &r : netlist.registers())
        _probeWidths.push_back(r.width);
    for (size_t i = 0; i < netlist.numNodes(); ++i) {
        const netlist::Node &n =
            netlist.node(static_cast<netlist::NodeId>(i));
        if (n.kind == netlist::OpKind::Input) {
            _inputNames.push_back(n.name);
            _inputNodes.push_back(static_cast<netlist::NodeId>(i));
            _inputWidths.push_back(n.width);
        }
    }
}

NetlistEngine::NetlistEngine(std::string name,
                             std::unique_ptr<netlist::EvaluatorBase> eval,
                             const netlist::Netlist &netlist)
    : NetlistEngine(std::move(name), *eval, netlist)
{
    _owned = std::move(eval);
}

uint32_t
NetlistEngine::capabilities() const
{
    uint32_t caps = cap::kInputs | cap::kProbes | cap::kDisplayLog;
    if (dynamic_cast<const netlist::CompiledEvaluator *>(_eval) ||
        dynamic_cast<const netlist::ParallelCompiledEvaluator *>(_eval))
        caps |= cap::kBatchedStep;
    if (_eval->lanes() > 1)
        caps |= cap::kEnsemble;
    // kAotCompiled reports the executor actually running, so it is
    // NOT set when an AOT engine fell back to the interpreted
    // tape(s) — or, for the parallel variant, when any partition did.
    if (auto *a = dynamic_cast<const netlist::AotEvaluator *>(_eval);
        a && a->usingAot())
        caps |= cap::kAotCompiled;
    if (auto *pa =
            dynamic_cast<const netlist::AotParallelEvaluator *>(_eval);
        pa && pa->usingAot())
        caps |= cap::kAotCompiled;
    if (_eval->snapshotSupported())
        caps |= cap::kSnapshot;
    return caps;
}

InputHandle
NetlistEngine::bindInput(const std::string &input)
{
    for (size_t i = 0; i < _inputNames.size(); ++i)
        if (_inputNames[i] == input)
            return static_cast<InputHandle>(i);
    MANTICORE_FATAL("engine ", _name, ": no such input: ", input,
                    " (valid inputs: ", formatNameList(_inputNames),
                    ")");
}

void
NetlistEngine::checkInput(InputHandle handle, const BitVector &value) const
{
    MANTICORE_ASSERT(handle < _inputNodes.size(), "bad input handle ",
                     handle);
    if (value.width() != _inputWidths[handle])
        MANTICORE_FATAL("engine ", _name, ": input ",
                        _inputNames[handle], " is ",
                        _inputWidths[handle], " bits, driven with ",
                        value.width());
}

void
NetlistEngine::setInput(InputHandle handle, const BitVector &value)
{
    checkInput(handle, value);
    _eval->driveInput(_inputNodes[handle], value);
}

void
NetlistEngine::checkLane(unsigned lane) const
{
    if (lane >= _eval->lanes())
        MANTICORE_FATAL("engine ", _name, ": lane ", lane,
                        " out of range (", _eval->lanes(), " lanes)");
}

void
NetlistEngine::setInputLane(InputHandle handle, unsigned lane,
                            const BitVector &value)
{
    checkInput(handle, value);
    checkLane(lane);
    _eval->driveInputLane(lane, _inputNodes[handle], value);
}

BitVector
NetlistEngine::read(ProbeHandle handle) const
{
    MANTICORE_ASSERT(handle < _probeNames.size(), "bad probe handle ",
                     handle);
    return _eval->regValue(static_cast<netlist::RegId>(handle));
}

BitVector
NetlistEngine::readLane(ProbeHandle handle, unsigned lane) const
{
    MANTICORE_ASSERT(handle < _probeNames.size(), "bad probe handle ",
                     handle);
    checkLane(lane);
    return _eval->regValueLane(lane, static_cast<netlist::RegId>(handle));
}

RunResult
NetlistEngine::step(uint64_t n)
{
    uint64_t before = _eval->cycle();
    netlist::SimStatus st = _eval->run(n);
    return {mapStatus(st), _eval->cycle() - before, _eval->lanes()};
}

Status
NetlistEngine::laneStatus(unsigned lane) const
{
    checkLane(lane);
    return mapStatus(_eval->laneStatus(lane));
}

uint64_t
NetlistEngine::laneCycle(unsigned lane) const
{
    checkLane(lane);
    return _eval->laneCycle(lane);
}

std::string
NetlistEngine::laneFailureMessage(unsigned lane) const
{
    checkLane(lane);
    return _eval->laneFailureMessage(lane);
}

const std::vector<std::string> &
NetlistEngine::laneDisplayLog(unsigned lane) const
{
    checkLane(lane);
    return _eval->laneDisplayLog(lane);
}

uint64_t
NetlistEngine::cycle() const
{
    return _eval->cycle();
}

Status
NetlistEngine::status() const
{
    return mapStatus(_eval->status());
}

std::string
NetlistEngine::failureMessage() const
{
    return _eval->failureMessage();
}

std::vector<Stat>
NetlistEngine::stats() const
{
    // "cycles" is the total simulated cycles delivered across the
    // ensemble (the per-lane counters summed), so throughput math is
    // meaningful whether the run was batched, ensembled, or both; at
    // one lane it equals cycle() exactly as before.
    const unsigned lanes = _eval->lanes();
    uint64_t total = 0;
    for (unsigned l = 0; l < lanes; ++l)
        total += _eval->laneCycle(l);
    std::vector<Stat> stats{{"cycles", total}};
    if (lanes > 1) {
        stats.push_back({"lanes", lanes});
        for (unsigned l = 0; l < lanes; ++l)
            stats.push_back({"lane" + std::to_string(l) + ".cycles",
                             _eval->laneCycle(l)});
    }
    if (auto *c = dynamic_cast<const netlist::CompiledEvaluator *>(_eval)) {
        stats.push_back({"tape_length", c->tapeLength()});
        stats.push_back({"arena_limbs", c->arenaLimbs()});
        if (auto *a = dynamic_cast<const netlist::AotEvaluator *>(_eval)) {
            stats.push_back({"aot_active", a->usingAot() ? 1u : 0u});
            stats.push_back({"aot_cache_hit", a->cacheHit() ? 1u : 0u});
            stats.push_back(
                {"aot_compiler_runs", a->compilerInvocations()});
        }
    } else if (auto *p =
                   dynamic_cast<const netlist::ParallelCompiledEvaluator *>(
                       _eval)) {
        stats.push_back({"tape_length", p->tapeLength()});
        stats.push_back({"arena_limbs", p->arenaLimbs()});
        stats.push_back({"processes", p->numProcesses()});
        stats.push_back({"threads", p->numThreads()});
        if (auto *pa =
                dynamic_cast<const netlist::AotParallelEvaluator *>(
                    _eval)) {
            stats.push_back({"aot_active", pa->usingAot() ? 1u : 0u});
            stats.push_back({"aot_cache_hit", pa->cacheHit() ? 1u : 0u});
            stats.push_back(
                {"aot_compiler_runs", pa->compilerInvocations()});
            stats.push_back({"aot_partitions", pa->aotPartitions()});
        }
    }
    return stats;
}

const std::vector<std::string> &
NetlistEngine::displayLog() const
{
    return _eval->displayLog();
}

void
NetlistEngine::setDisplaySink(DisplaySink sink)
{
    _eval->onDisplay = std::move(sink);
}

void
NetlistEngine::save(Snapshot &out) const
{
    if (!_eval->snapshotSupported())
        unsupported("checkpoint/restore (cap::kSnapshot)");
    const unsigned lanes = _eval->lanes();
    out.version = Snapshot::kVersion;
    out.family = "netlist";
    out.engine = _name;
    out.designHash = _designHash;
    out.lanes = lanes;
    out.cycle = _eval->cycle();
    out.reset(lanes);
    for (unsigned l = 0; l < lanes; ++l) {
        support::ByteWriter w(out.sections[l]);
        _eval->saveLaneState(l, w);
    }
}

void
NetlistEngine::restore(const Snapshot &snapshot)
{
    if (!_eval->snapshotSupported())
        unsupported("checkpoint/restore (cap::kSnapshot)");
    checkSnapshotHeader(name(), snapshot, "netlist", _designHash,
                        _eval->lanes());
    for (unsigned l = 0; l < _eval->lanes(); ++l) {
        support::ByteReader r(snapshot.sections[l]);
        _eval->restoreLaneState(l, r);
        if (!r.done())
            MANTICORE_FATAL("engine ", _name, ": lane ", l,
                            " snapshot section has ", r.remaining(),
                            " trailing byte(s) (saved by ",
                            snapshot.engine,
                            ") — refusing to restore");
    }
    _eval->snapshotRestored();
}

// ---------------------------------------------------------------------------
// IsaEngine
// ---------------------------------------------------------------------------

IsaEngine::IsaEngine(std::string name, isa::InterpreterBase &interp,
                     std::vector<RtlSignal> signals)
    : _name(std::move(name)), _interp(&interp),
      _signals(std::move(signals))
{
    for (const RtlSignal &s : _signals) {
        _probeNames.push_back(s.name);
        _probeWidths.push_back(s.width);
    }
}

IsaEngine::IsaEngine(std::string name,
                     std::unique_ptr<isa::InterpreterBase> interp,
                     std::vector<RtlSignal> signals)
    : IsaEngine(std::move(name), *interp, std::move(signals))
{
    _owned = std::move(interp);
}

uint32_t
IsaEngine::capabilities() const
{
    uint32_t caps = cap::kExceptions;
    if (!_signals.empty())
        caps |= cap::kProbes;
    if (_host)
        caps |= cap::kDisplayLog;
    if (dynamic_cast<const isa::TapeInterpreter *>(_interp))
        caps |= cap::kBatchedStep;
    if (_interp->lanes() > 1)
        caps |= cap::kEnsemble;
    if (_interp->snapshotSupported())
        caps |= cap::kSnapshot;
    return caps;
}

BitVector
IsaEngine::read(ProbeHandle handle) const
{
    MANTICORE_ASSERT(handle < _signals.size(), "bad probe handle ",
                     handle);
    const RtlSignal &signal = _signals[handle];
    return assembleRtlValue(signal.width, signal.homes,
                            [this](uint32_t pid, isa::Reg reg) {
                                return _interp->regValue(pid, reg);
                            });
}

void
IsaEngine::checkLane(unsigned lane) const
{
    if (lane >= _interp->lanes())
        MANTICORE_FATAL("engine ", _name, ": lane ", lane,
                        " out of range (", _interp->lanes(), " lanes)");
}

BitVector
IsaEngine::readLane(ProbeHandle handle, unsigned lane) const
{
    MANTICORE_ASSERT(handle < _signals.size(), "bad probe handle ",
                     handle);
    checkLane(lane);
    const RtlSignal &signal = _signals[handle];
    return assembleRtlValue(signal.width, signal.homes,
                            [this, lane](uint32_t pid, isa::Reg reg) {
                                return _interp->regValueLane(lane, pid,
                                                             reg);
                            });
}

Status
IsaEngine::laneStatus(unsigned lane) const
{
    checkLane(lane);
    return mapStatus(_interp->laneStatus(lane));
}

uint64_t
IsaEngine::laneCycle(unsigned lane) const
{
    checkLane(lane);
    return _interp->laneVcycle(lane);
}

std::string
IsaEngine::laneFailureMessage(unsigned lane) const
{
    checkLane(lane);
    if (lane < _laneHosts.size() && _laneHosts[lane])
        return _laneHosts[lane]->failureMessage();
    return lane == 0 ? failureMessage() : std::string();
}

const std::vector<std::string> &
IsaEngine::laneDisplayLog(unsigned lane) const
{
    checkLane(lane);
    if (lane < _laneHosts.size() && _laneHosts[lane])
        return _laneHosts[lane]->displayLog();
    if (lane == 0)
        return displayLog();
    return Engine::laneDisplayLog(lane); // capability fatal
}

RunResult
IsaEngine::step(uint64_t n)
{
    uint64_t before = _interp->vcycle();
    isa::RunStatus st = _interp->run(n);
    return {mapStatus(st), _interp->vcycle() - before,
            _interp->lanes()};
}

uint64_t
IsaEngine::cycle() const
{
    return _interp->vcycle();
}

Status
IsaEngine::status() const
{
    return mapStatus(_interp->status());
}

std::string
IsaEngine::failureMessage() const
{
    return _host ? _host->failureMessage() : std::string();
}

std::vector<Stat>
IsaEngine::stats() const
{
    // Same aggregation contract as NetlistEngine: "cycles" is the
    // total simulated Vcycles delivered across the ensemble, and
    // instructions/sends already sum over the lanes inside the
    // interpreter.  Padded lanes contribute nothing (they are frozen
    // from birth and excluded from lanes()).
    const unsigned lanes = _interp->lanes();
    uint64_t total = 0;
    for (unsigned l = 0; l < lanes; ++l)
        total += _interp->laneVcycle(l);
    std::vector<Stat> stats{
        {"cycles", total},
        {"instructions", _interp->instructionsExecuted()},
        {"sends", _interp->sendsExecuted()},
    };
    if (lanes > 1) {
        stats.push_back({"lanes", lanes});
        for (unsigned l = 0; l < lanes; ++l)
            stats.push_back({"lane" + std::to_string(l) + ".cycles",
                             _interp->laneVcycle(l)});
    }
    if (auto *t = dynamic_cast<const isa::TapeInterpreter *>(_interp)) {
        stats.push_back({"tape_length", t->tapeLength()});
        stats.push_back({"nops_elided", t->nopsElided()});
        stats.push_back({"dispatches_per_vcycle", t->dispatches()});
    }
    return stats;
}

const std::vector<std::string> &
IsaEngine::displayLog() const
{
    if (!_host)
        return Engine::displayLog(); // capability fatal
    return _host->displayLog();
}

void
IsaEngine::setDisplaySink(DisplaySink sink)
{
    if (!_host)
        return Engine::setDisplaySink(std::move(sink));
    _host->onDisplay = std::move(sink);
}

void
IsaEngine::setExceptionHandler(ExceptionHandler handler)
{
    _interp->onException = std::move(handler);
}

void
IsaEngine::save(Snapshot &out) const
{
    if (!_interp->snapshotSupported())
        unsupported("checkpoint/restore (cap::kSnapshot)");
    const unsigned lanes = _interp->lanes();
    out.version = Snapshot::kVersion;
    out.family = "isa";
    out.engine = _name;
    out.designHash = _designHash;
    out.lanes = lanes;
    out.cycle = _interp->vcycle();
    out.reset(lanes);
    for (unsigned l = 0; l < lanes; ++l) {
        support::ByteWriter w(out.sections[l]);
        _interp->saveLaneState(l, w);
    }
}

void
IsaEngine::restore(const Snapshot &snapshot)
{
    if (!_interp->snapshotSupported())
        unsupported("checkpoint/restore (cap::kSnapshot)");
    checkSnapshotHeader(name(), snapshot, "isa", _designHash,
                        _interp->lanes());
    for (unsigned l = 0; l < _interp->lanes(); ++l) {
        support::ByteReader r(snapshot.sections[l]);
        _interp->restoreLaneState(l, r);
        if (!r.done())
            MANTICORE_FATAL("engine ", _name, ": lane ", l,
                            " snapshot section has ", r.remaining(),
                            " trailing byte(s) (saved by ",
                            snapshot.engine, ") — refusing to restore");
    }
}

// ---------------------------------------------------------------------------
// MachineEngine
// ---------------------------------------------------------------------------

MachineEngine::MachineEngine(machine::Machine &machine,
                             std::vector<RtlSignal> signals)
    : _machine(&machine), _signals(std::move(signals))
{
    for (const RtlSignal &s : _signals) {
        _probeNames.push_back(s.name);
        _probeWidths.push_back(s.width);
    }
}

MachineEngine::MachineEngine(std::unique_ptr<machine::Machine> machine,
                             std::vector<RtlSignal> signals)
    : MachineEngine(*machine, std::move(signals))
{
    _owned = std::move(machine);
}

uint32_t
MachineEngine::capabilities() const
{
    uint32_t caps = cap::kExceptions | cap::kPerfCounters;
    if (!_signals.empty())
        caps |= cap::kProbes;
    if (_host)
        caps |= cap::kDisplayLog;
    return caps;
}

BitVector
MachineEngine::read(ProbeHandle handle) const
{
    MANTICORE_ASSERT(handle < _signals.size(), "bad probe handle ",
                     handle);
    const RtlSignal &signal = _signals[handle];
    return assembleRtlValue(signal.width, signal.homes,
                            [this](uint32_t pid, isa::Reg reg) {
                                return _machine->regValue(pid, reg);
                            });
}

RunResult
MachineEngine::step(uint64_t n)
{
    uint64_t before = _machine->perf().vcycles;
    isa::RunStatus st = _machine->run(n);
    return {mapStatus(st), _machine->perf().vcycles - before};
}

uint64_t
MachineEngine::cycle() const
{
    return _machine->perf().vcycles;
}

Status
MachineEngine::status() const
{
    return mapStatus(_machine->status());
}

std::string
MachineEngine::failureMessage() const
{
    return _host ? _host->failureMessage() : std::string();
}

std::vector<Stat>
MachineEngine::stats() const
{
    const machine::PerfCounters &perf = _machine->perf();
    return {
        {"cycles", perf.vcycles},
        {"active_cycles", perf.activeCycles},
        {"stall_cycles", perf.stallCycles},
        {"cache_hits", perf.cacheHits},
        {"cache_misses", perf.cacheMisses},
        {"messages_delivered", perf.messagesDelivered},
        {"instructions", perf.instructionsExecuted},
    };
}

const std::vector<std::string> &
MachineEngine::displayLog() const
{
    if (!_host)
        return Engine::displayLog(); // capability fatal
    return _host->displayLog();
}

void
MachineEngine::setDisplaySink(DisplaySink sink)
{
    if (!_host)
        return Engine::setDisplaySink(std::move(sink));
    _host->onDisplay = std::move(sink);
}

void
MachineEngine::setExceptionHandler(ExceptionHandler handler)
{
    _machine->onException = std::move(handler);
}

// ---------------------------------------------------------------------------
// wrap()
// ---------------------------------------------------------------------------

NetlistEngine
wrap(netlist::EvaluatorBase &eval, const netlist::Netlist &netlist)
{
    const char *name = "netlist.reference";
    if (dynamic_cast<const netlist::AotParallelEvaluator *>(&eval))
        name = "netlist.parallel.aot";
    else if (dynamic_cast<const netlist::ParallelCompiledEvaluator *>(
                 &eval))
        name = "netlist.parallel";
    else if (dynamic_cast<const netlist::AotEvaluator *>(&eval))
        name = "netlist.aot";
    else if (dynamic_cast<const netlist::CompiledEvaluator *>(&eval))
        name = "netlist.compiled";
    return NetlistEngine(name, eval, netlist);
}

IsaEngine
wrap(isa::InterpreterBase &interp, std::vector<RtlSignal> signals)
{
    const char *name =
        dynamic_cast<const isa::TapeInterpreter *>(&interp)
            ? "isa.tape"
            : "isa.reference";
    return IsaEngine(name, interp, std::move(signals));
}

MachineEngine
wrap(machine::Machine &machine, std::vector<RtlSignal> signals)
{
    return MachineEngine(machine, std::move(signals));
}

} // namespace manticore::engine
