#include "engine/engine.hh"

#include "support/logging.hh"

namespace manticore::engine {

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Running: return "running";
      case Status::Finished: return "finished";
      case Status::Failed: return "failed";
    }
    return "?";
}

void
Engine::unsupported(const char *what) const
{
    MANTICORE_FATAL("engine ", name(), " does not support ", what,
                    " (capabilities 0x", std::hex, capabilities(), ")");
}

InputHandle
Engine::bindInput(const std::string &input)
{
    (void)input;
    unsupported("free inputs (cap::kInputs)");
}

void
Engine::setInput(InputHandle handle, const BitVector &value)
{
    (void)handle;
    (void)value;
    unsupported("free inputs (cap::kInputs)");
}

ProbeHandle
Engine::probe(const std::string &signal)
{
    (void)signal;
    unsupported("signal probes (cap::kProbes)");
}

const std::string &
Engine::probeName(ProbeHandle handle) const
{
    (void)handle;
    unsupported("signal probes (cap::kProbes)");
}

unsigned
Engine::probeWidth(ProbeHandle handle) const
{
    (void)handle;
    unsupported("signal probes (cap::kProbes)");
}

std::vector<Stat>
Engine::stats() const
{
    return {{"cycles", cycle()}};
}

const std::vector<std::string> &
Engine::displayLog() const
{
    unsupported("a display log (cap::kDisplayLog)");
}

void
Engine::setDisplaySink(DisplaySink sink)
{
    (void)sink;
    unsupported("a display log (cap::kDisplayLog)");
}

void
Engine::setExceptionHandler(ExceptionHandler handler)
{
    (void)handler;
    unsupported("exception servicing (cap::kExceptions)");
}

} // namespace manticore::engine
