#include "engine/engine.hh"

#include "support/logging.hh"

namespace manticore::engine {

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Running: return "running";
      case Status::Finished: return "finished";
      case Status::Failed: return "failed";
    }
    return "?";
}

void
Engine::unsupported(const char *what) const
{
    MANTICORE_FATAL("engine ", name(), " does not support ", what,
                    " (capabilities 0x", std::hex, capabilities(), ")");
}

InputHandle
Engine::bindInput(const std::string &input)
{
    (void)input;
    unsupported("free inputs (cap::kInputs)");
}

void
Engine::setInput(InputHandle handle, const BitVector &value)
{
    (void)handle;
    (void)value;
    unsupported("free inputs (cap::kInputs)");
}

ProbeHandle
Engine::probe(const std::string &signal)
{
    (void)signal;
    unsupported("signal probes (cap::kProbes)");
}

const std::string &
Engine::probeName(ProbeHandle handle) const
{
    (void)handle;
    unsupported("signal probes (cap::kProbes)");
}

unsigned
Engine::probeWidth(ProbeHandle handle) const
{
    (void)handle;
    unsupported("signal probes (cap::kProbes)");
}

std::vector<Stat>
Engine::stats() const
{
    return {{"cycles", cycle()}};
}

const std::vector<std::string> &
Engine::displayLog() const
{
    unsupported("a display log (cap::kDisplayLog)");
}

void
Engine::setDisplaySink(DisplaySink sink)
{
    (void)sink;
    unsupported("a display log (cap::kDisplayLog)");
}

void
Engine::setExceptionHandler(ExceptionHandler handler)
{
    (void)handler;
    unsupported("exception servicing (cap::kExceptions)");
}

// Lane-indexed defaults: a non-ensemble engine has exactly one lane,
// so lane 0 aliases the scalar API and any other lane is a
// capability error.

void
Engine::setInputLane(InputHandle handle, unsigned lane,
                     const BitVector &value)
{
    if (lane == 0)
        return setInput(handle, value);
    unsupported("ensemble lanes (cap::kEnsemble)");
}

BitVector
Engine::readLane(ProbeHandle handle, unsigned lane) const
{
    if (lane == 0)
        return read(handle);
    unsupported("ensemble lanes (cap::kEnsemble)");
}

Status
Engine::laneStatus(unsigned lane) const
{
    if (lane == 0)
        return status();
    unsupported("ensemble lanes (cap::kEnsemble)");
}

uint64_t
Engine::laneCycle(unsigned lane) const
{
    if (lane == 0)
        return cycle();
    unsupported("ensemble lanes (cap::kEnsemble)");
}

std::string
Engine::laneFailureMessage(unsigned lane) const
{
    if (lane == 0)
        return failureMessage();
    unsupported("ensemble lanes (cap::kEnsemble)");
}

const std::vector<std::string> &
Engine::laneDisplayLog(unsigned lane) const
{
    if (lane == 0)
        return displayLog();
    unsupported("ensemble lanes (cap::kEnsemble)");
}

void
Engine::save(Snapshot &out) const
{
    (void)out;
    unsupported("checkpoint/restore (cap::kSnapshot)");
}

void
Engine::restore(const Snapshot &snapshot)
{
    (void)snapshot;
    unsupported("checkpoint/restore (cap::kSnapshot)");
}

} // namespace manticore::engine
