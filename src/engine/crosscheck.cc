#include "engine/crosscheck.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace manticore::engine {

CrossCheck::CrossCheck(Engine &golden, Engine &subject)
    : _golden(golden), _subject(subject)
{
    if (!_golden.has(cap::kProbes))
        MANTICORE_FATAL("cross-check golden engine ", _golden.name(),
                        " has no signal probes");
    if (!_subject.has(cap::kProbes))
        MANTICORE_FATAL("cross-check subject engine ", _subject.name(),
                        " has no signal probes");

    std::unordered_map<std::string, ProbeHandle> golden_by_name;
    for (size_t g = 0; g < _golden.numProbes(); ++g)
        golden_by_name.emplace(
            _golden.probeName(static_cast<ProbeHandle>(g)),
            static_cast<ProbeHandle>(g));
    for (size_t s = 0; s < _subject.numProbes(); ++s) {
        auto it = golden_by_name.find(
            _subject.probeName(static_cast<ProbeHandle>(s)));
        if (it != golden_by_name.end())
            _pairs.push_back({it->second, static_cast<ProbeHandle>(s)});
    }
    if (_pairs.empty())
        MANTICORE_FATAL("cross-check of ", _subject.name(), " against ",
                        _golden.name(),
                        " pairs no signals: no probe names in common");
}

RunResult
CrossCheck::run(uint64_t max_cycles)
{
    // Resync: a plain-run segment may have advanced one engine; the
    // designs are closed (self-driving), so stepping the laggard up
    // keeps the lockstep honest instead of reporting a phantom
    // divergence.
    while (_golden.cycle() < _subject.cycle() &&
           _golden.status() == Status::Running)
        _golden.step(1);
    while (_subject.cycle() < _golden.cycle() &&
           _subject.status() == Status::Running)
        _subject.step(1);

    uint64_t advanced = 0;
    for (uint64_t i = 0; i < max_cycles; ++i) {
        if (_subject.status() != Status::Running)
            return {_subject.status(), advanced};
        RunResult s = _subject.step(1);
        RunResult g = _golden.step(1);
        advanced += s.cycles;

        // Status agreement first: on a terminal cycle the engines'
        // commit timing differs by design (a failed assert suppresses
        // the commit), so register comparison is only meaningful
        // while both agree the run continues.
        if (s.status != g.status) {
            _divergence = "cycle " + std::to_string(_subject.cycle()) +
                          ": " + _subject.name() + " status " +
                          statusName(s.status) + " vs " +
                          _golden.name() + " status " +
                          statusName(g.status);
            std::string why = s.status == Status::Failed
                                  ? _subject.failureMessage()
                                  : g.status == Status::Failed
                                        ? _golden.failureMessage()
                                        : std::string();
            if (!why.empty())
                _divergence += " (" + why + ")";
            return {Status::Failed, advanced};
        }
        if (s.status != Status::Running)
            return {s.status, advanced};

        for (const Pair &pair : _pairs) {
            BitVector subject_value = _subject.read(pair.subject);
            BitVector golden_value = _golden.read(pair.golden);
            // ISA-level probes carry whole 16-bit chunks, so an
            // engine pair may disagree on probe width (e.g. 40-bit
            // RTL register vs 48 chunk bits); compare the common
            // low bits, which is the architectural register either
            // way.
            unsigned width = std::min(subject_value.width(),
                                      golden_value.width());
            if (subject_value.resize(width) != golden_value.resize(width)) {
                _divergence =
                    "cycle " + std::to_string(_subject.cycle()) +
                    ": signal " + _subject.probeName(pair.subject) +
                    ": " + _subject.name() + " " +
                    subject_value.toString() + " vs " + _golden.name() +
                    " " + golden_value.toString();
                return {Status::Failed, advanced};
            }
        }
    }
    return {_subject.status(), advanced};
}

} // namespace manticore::engine
