#include "engine/crosscheck.hh"

#include <algorithm>
#include <unordered_map>

#include "runtime/replay.hh"
#include "support/logging.hh"

namespace manticore::engine {

CrossCheck::CrossCheck(Engine &golden, Engine &subject)
    : _golden(golden), _subject(subject)
{
    if (!_golden.has(cap::kProbes))
        MANTICORE_FATAL("cross-check golden engine ", _golden.name(),
                        " has no signal probes");
    if (!_subject.has(cap::kProbes))
        MANTICORE_FATAL("cross-check subject engine ", _subject.name(),
                        " has no signal probes");

    std::unordered_map<std::string, ProbeHandle> golden_by_name;
    for (size_t g = 0; g < _golden.numProbes(); ++g)
        golden_by_name.emplace(
            _golden.probeName(static_cast<ProbeHandle>(g)),
            static_cast<ProbeHandle>(g));
    for (size_t s = 0; s < _subject.numProbes(); ++s) {
        auto it = golden_by_name.find(
            _subject.probeName(static_cast<ProbeHandle>(s)));
        if (it != golden_by_name.end())
            _pairs.push_back({it->second, static_cast<ProbeHandle>(s)});
    }
    if (_pairs.empty())
        MANTICORE_FATAL("cross-check of ", _subject.name(), " against ",
                        _golden.name(),
                        " pairs no signals: no probe names in common");
}

/** Complete the attached recorder's trace from the golden's state and
 *  write the artifact: the golden defines the expected behavior, so
 *  replaying the artifact on a correct engine passes and replaying it
 *  on the faulty one reproduces the identical mismatch. */
void
CrossCheck::recordDivergence()
{
    if (!_recorder)
        return;
    _recorder->trace.engine = _subject.name();
    _recorder->trace.lanes = 1;
    _recorder->trace.runCycles = _golden.cycle();
    _recorder->trace.notes.push_back(_divergence);
    _recorder->expectFrom(_golden, 0, 0);
    _divergence += "; replay artifact: " + _recorder->write();
}

RunResult
CrossCheck::run(uint64_t max_cycles)
{
    // Resync: a plain-run segment may have advanced one engine; the
    // designs are closed (self-driving), so stepping the laggard up
    // keeps the lockstep honest instead of reporting a phantom
    // divergence.
    while (_golden.cycle() < _subject.cycle() &&
           _golden.status() == Status::Running)
        _golden.step(1);
    while (_subject.cycle() < _golden.cycle() &&
           _subject.status() == Status::Running)
        _subject.step(1);

    uint64_t advanced = 0;
    for (uint64_t i = 0; i < max_cycles; ++i) {
        if (_subject.status() != Status::Running)
            return {_subject.status(), advanced};
        RunResult s = _subject.step(1);
        RunResult g = _golden.step(1);
        advanced += s.cycles;

        // Status agreement first: on a terminal cycle the engines'
        // commit timing differs by design (a failed assert suppresses
        // the commit), so register comparison is only meaningful
        // while both agree the run continues.
        if (s.status != g.status) {
            _divergence = "cycle " + std::to_string(_subject.cycle()) +
                          ": " + _subject.name() + " status " +
                          statusName(s.status) + " vs " +
                          _golden.name() + " status " +
                          statusName(g.status);
            std::string why = s.status == Status::Failed
                                  ? _subject.failureMessage()
                                  : g.status == Status::Failed
                                        ? _golden.failureMessage()
                                        : std::string();
            if (!why.empty())
                _divergence += " (" + why + ")";
            recordDivergence();
            return {Status::Failed, advanced};
        }
        if (s.status != Status::Running)
            return {s.status, advanced};

        for (const Pair &pair : _pairs) {
            BitVector subject_value = _subject.read(pair.subject);
            BitVector golden_value = _golden.read(pair.golden);
            // ISA-level probes carry whole 16-bit chunks, so an
            // engine pair may disagree on probe width (e.g. 40-bit
            // RTL register vs 48 chunk bits); compare the common
            // low bits, which is the architectural register either
            // way.
            unsigned width = std::min(subject_value.width(),
                                      golden_value.width());
            if (subject_value.resize(width) != golden_value.resize(width)) {
                _divergence =
                    "cycle " + std::to_string(_subject.cycle()) +
                    ": signal " + _subject.probeName(pair.subject) +
                    ": " + _subject.name() + " " +
                    subject_value.toString() + " vs " + _golden.name() +
                    " " + golden_value.toString();
                recordDivergence();
                return {Status::Failed, advanced};
            }
        }
    }
    return {_subject.status(), advanced};
}

// ---------------------------------------------------------------------------
// EnsembleCrossCheck
// ---------------------------------------------------------------------------

EnsembleCrossCheck::EnsembleCrossCheck(
    const std::vector<Engine *> &goldens, Engine &subject)
    : _goldens(goldens), _subject(subject)
{
    const unsigned lanes = _subject.lanes();
    if (!_subject.has(cap::kProbes))
        MANTICORE_FATAL("ensemble cross-check subject ", _subject.name(),
                        " has no signal probes");
    MANTICORE_ASSERT(_goldens.size() == lanes,
                     "ensemble cross-check needs one golden per lane (",
                     lanes, " lanes, ", _goldens.size(), " goldens)");

    std::unordered_map<std::string, ProbeHandle> subject_by_name;
    for (size_t s = 0; s < _subject.numProbes(); ++s)
        subject_by_name.emplace(
            _subject.probeName(static_cast<ProbeHandle>(s)),
            static_cast<ProbeHandle>(s));

    _pairs.resize(lanes);
    _settled.assign(lanes, 0);
    for (unsigned l = 0; l < lanes; ++l) {
        Engine &golden = *_goldens[l];
        if (!golden.has(cap::kProbes))
            MANTICORE_FATAL("ensemble cross-check golden ", golden.name(),
                            " (lane ", l, ") has no signal probes");
        MANTICORE_ASSERT(golden.lanes() == 1,
                         "lane goldens must be scalar engines");
        MANTICORE_ASSERT(golden.cycle() == 0 &&
                             _subject.laneCycle(l) == 0,
                         "ensemble cross-check engines must start at "
                         "cycle 0");
        for (size_t g = 0; g < golden.numProbes(); ++g) {
            auto it = subject_by_name.find(
                golden.probeName(static_cast<ProbeHandle>(g)));
            if (it != subject_by_name.end())
                _pairs[l].push_back(
                    {static_cast<ProbeHandle>(g), it->second});
        }
        if (_pairs[l].empty())
            MANTICORE_FATAL("ensemble cross-check of ", _subject.name(),
                            " against ", golden.name(),
                            " pairs no signals: no probe names in "
                            "common");
    }
}

/** Compare lane `lane` after a lockstep cycle; true while the lane
 *  should keep stepping (both sides Running and agreeing). */
bool
EnsembleCrossCheck::checkLane(unsigned lane)
{
    Engine &golden = *_goldens[lane];
    Status ss = _subject.laneStatus(lane);
    Status gs = golden.status();
    // Built only on the mismatch paths: this runs per lane per cycle.
    auto where = [&] {
        return "lane " + std::to_string(lane) + " cycle " +
               std::to_string(_subject.laneCycle(lane)) + ": ";
    };
    if (ss != gs) {
        _divergence = where() + _subject.name() + " status " +
                      statusName(ss) + " vs " + golden.name() +
                      " status " + statusName(gs);
        std::string why = ss == Status::Failed
                              ? _subject.laneFailureMessage(lane)
                              : gs == Status::Failed
                                    ? golden.failureMessage()
                                    : std::string();
        if (!why.empty())
            _divergence += " (" + why + ")";
        return false;
    }
    if (_subject.laneCycle(lane) != golden.cycle()) {
        _divergence = where() + "lane advanced " +
                      std::to_string(_subject.laneCycle(lane)) +
                      " cycles vs golden " +
                      std::to_string(golden.cycle());
        return false;
    }
    if (ss == Status::Failed &&
        _subject.laneFailureMessage(lane) != golden.failureMessage()) {
        _divergence = where() + "failure message \"" +
                      _subject.laneFailureMessage(lane) + "\" vs \"" +
                      golden.failureMessage() + "\"";
        return false;
    }
    if (ss != Status::Running) {
        _settled[lane] = 1; // agreed terminal: stop stepping the lane
        return false;
    }
    for (const Pair &pair : _pairs[lane]) {
        BitVector subject_value = _subject.readLane(pair.subject, lane);
        BitVector golden_value = golden.read(pair.golden);
        // Compare the common low bits, as in CrossCheck::run (probe
        // widths may be chunk-padded on ISA-level goldens).
        unsigned width =
            std::min(subject_value.width(), golden_value.width());
        if (subject_value.resize(width) != golden_value.resize(width)) {
            _divergence = where() + "signal " +
                          _subject.probeName(pair.subject) + ": " +
                          _subject.name() + " " +
                          subject_value.toString() + " vs " +
                          golden.name() + " " + golden_value.toString();
            return false;
        }
    }
    return true;
}

/** See CrossCheck::recordDivergence.  Active lanes advance in
 *  lockstep, so at the divergence every live golden sits at the
 *  divergence cycle and every settled golden froze earlier — the max
 *  golden cycle replays all of them to their recorded terminal. */
void
EnsembleCrossCheck::recordDivergence()
{
    if (!_recorder)
        return;
    const unsigned lanes = _subject.lanes();
    _recorder->trace.engine = _subject.name();
    _recorder->trace.lanes = lanes;
    uint64_t run_cycles = 0;
    for (unsigned l = 0; l < lanes; ++l)
        run_cycles = std::max(run_cycles, _goldens[l]->cycle());
    _recorder->trace.runCycles = run_cycles;
    _recorder->trace.notes.push_back(_divergence);
    for (unsigned l = 0; l < lanes; ++l)
        _recorder->expectFrom(*_goldens[l], 0, l);
    _divergence += "; replay artifact: " + _recorder->write();
}

RunResult
EnsembleCrossCheck::run(uint64_t max_cycles)
{
    const unsigned lanes = _subject.lanes();
    uint64_t advanced = 0;
    for (uint64_t i = 0; i < max_cycles; ++i) {
        // A lane stays live until it reaches an agreed terminal
        // status (checkLane settles it); a disagreeing lane returns
        // below, so unsettled lanes are Running on both sides.
        bool any_live = false;
        for (unsigned l = 0; l < lanes; ++l)
            if (!_settled[l])
                any_live = true;
        if (!any_live)
            break;

        if (_stimulus) {
            for (unsigned l = 0; l < lanes; ++l) {
                if (_settled[l])
                    continue;
                uint64_t cycle = _subject.laneCycle(l);
                _stimulus(*_goldens[l], l, cycle);
                _stimulus(_subject, l, cycle);
            }
        }
        RunResult s = _subject.step(1);
        advanced += s.cycles;
        for (unsigned l = 0; l < lanes; ++l)
            if (!_settled[l] &&
                _goldens[l]->status() == Status::Running)
                _goldens[l]->step(1);

        for (unsigned l = 0; l < lanes; ++l) {
            if (_settled[l])
                continue;
            if (!checkLane(l) && diverged()) {
                recordDivergence();
                return {Status::Failed, advanced, lanes};
            }
        }
    }

    // Aggregate: Failed on divergence (returned above); Running if
    // the budget ran out first; otherwise every lane settled on an
    // agreed terminal status — Finished if any lane finished, else
    // Failed (every lane failed its assertion, in agreement with its
    // golden — agreement, but still a failed run).
    bool any_finished = false;
    for (unsigned l = 0; l < lanes; ++l) {
        if (!_settled[l])
            return {Status::Running, advanced, lanes};
        if (_subject.laneStatus(l) == Status::Finished)
            any_finished = true;
    }
    return {any_finished ? Status::Finished : Status::Failed, advanced,
            lanes};
}

} // namespace manticore::engine
