/**
 * @file
 * The unified execution-engine interface.
 *
 * The repository grew five execution engines in three disjoint API
 * families: the netlist evaluators (`netlist::EvaluatorBase` behind
 * `makeEvaluator`), the functional ISA interpreters
 * (`isa::InterpreterBase` behind `makeInterpreter`), and the
 * cycle-level `machine::Machine`.  Every harness — the Simulation
 * cross-checks, the Host attach overloads, each bench's setup — was
 * written once per family.  `engine::Engine` is the one interface all
 * of them implement (through the thin adapters in adapters.hh), so a
 * harness is written once and works against any engine.
 *
 * Design points:
 *
 *  - **Capability-driven.**  Not every engine supports every feature
 *    (netlist engines have free inputs but no exception callback; the
 *    ISA-level engines are the reverse).  `capabilities()` reports
 *    what an engine can do; calling an unsupported method is a
 *    user-facing fatal() naming the engine.
 *
 *  - **String-free hot path.**  Names are resolved exactly once:
 *    `bindInput` / `probe` turn a signal name into a dense integer
 *    handle; `setInput` / `read` on handles never touch a string or a
 *    hash map.
 *
 *  - **Batched stepping.**  `step(n)` advances up to n cycles in one
 *    call and is plumbed into the engines that can exploit it: the
 *    partition-parallel evaluator amortises its two-barrier
 *    rendezvous over the batch, and the flat-tape ISA interpreter
 *    runs the whole batch per dispatch (see src/engine/README.md for
 *    measured speedups).  `step(n)` is cycle-exact with n calls to
 *    `step(1)` for every engine — the engine differential suite pins
 *    this.
 *
 *  - **Uniform observation.**  Probes address RTL registers by name
 *    on every engine; ISA-level engines reassemble them from their
 *    16-bit chunk homes through the compiler's observation map.  This
 *    is what makes differential testing across engine families a
 *    one-liner (see crosscheck.hh).
 *
 * Engines are obtained from the registry (`engine::create`, see
 * registry.hh) or by wrapping an existing concrete engine
 * (`engine::wrap`, see adapters.hh).
 */

#ifndef MANTICORE_ENGINE_ENGINE_HH
#define MANTICORE_ENGINE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/interpreter.hh" // isa::HostAction
#include "support/bitvector.hh"

namespace manticore::engine {

/** Unified run status across all engine families:
 *  netlist::SimStatus{Ok,Finished,AssertFailed} and
 *  isa::RunStatus{Running,Finished,Failed} both map onto this. */
enum class Status
{
    Running,
    Finished,
    Failed,
};

const char *statusName(Status status);

/** Capability bits (see Engine::capabilities). */
namespace cap {

/// bindInput/setInput drive free design inputs.
constexpr uint32_t kInputs = 1u << 0;
/// probe/read observe RTL register values.
constexpr uint32_t kProbes = 1u << 1;
/// displayLog/setDisplaySink carry $display output.
constexpr uint32_t kDisplayLog = 1u << 2;
/// setExceptionHandler services EXPECT exceptions (ISA-level engines).
constexpr uint32_t kExceptions = 1u << 3;
/// step(n) is natively batched, not a step(1) loop.
constexpr uint32_t kBatchedStep = 1u << 4;
/// stats() include hardware performance counters (machine model).
constexpr uint32_t kPerfCounters = 1u << 5;
/// The engine is an N-lane ensemble (lanes() > 1): one step advances
/// N decoupled simulations, addressed by the lane-indexed calls.
constexpr uint32_t kEnsemble = 1u << 6;
/// The per-cycle executor is AOT-compiled native code (a dlopen'd
/// cycle function, see src/netlist/aot.hh) — NOT set when the AOT
/// engine fell back to the interpreted tape.
constexpr uint32_t kAotCompiled = 1u << 7;
/// save()/restore() checkpoint the full architectural state into an
/// engine::Snapshot (see snapshot.hh) at a cycle boundary.
constexpr uint32_t kSnapshot = 1u << 8;

} // namespace cap

struct Snapshot; // snapshot.hh

/** Dense handle for a bound input (engine-specific index space). */
using InputHandle = uint32_t;
/** Dense handle for a probed signal: handles are exactly
 *  0..numProbes()-1, so a harness can enumerate without strings. */
using ProbeHandle = uint32_t;

/** Result of a (possibly batched) step() call. */
struct RunResult
{
    Status status = Status::Running;
    /// Cycles actually advanced by this call (== n unless the run
    /// finished, failed, or was already terminal).  On an ensemble
    /// this counts ensemble cycles: rendezvous that advanced at
    /// least one lane.
    uint64_t cycles = 0;
    /// Simulations advanced per cycle (1 unless cap::kEnsemble).
    uint32_t lanes = 1;
};

/** One named counter in an engine's stats() snapshot. */
struct Stat
{
    std::string name;
    uint64_t value = 0;
};

/** Handler for EXPECT exceptions (cap::kExceptions); pid/eid as in
 *  isa::InterpreterBase::onException. */
using ExceptionHandler =
    std::function<isa::HostAction(uint32_t pid, uint16_t eid)>;

/** Sink for $display lines (cap::kDisplayLog). */
using DisplaySink = std::function<void(const std::string &)>;

class Engine
{
  public:
    virtual ~Engine() = default;

    /** Registry name of this engine ("netlist.parallel", "isa.tape",
     *  "machine", ...). */
    virtual const char *name() const = 0;

    /** Bitwise OR of the cap:: bits this engine supports. */
    virtual uint32_t capabilities() const = 0;

    bool
    has(uint32_t mask) const
    {
        return (capabilities() & mask) == mask;
    }

    // ---- free inputs (cap::kInputs) -------------------------------
    /** One-time name resolution for a free design input.  Unknown
     *  names are a user-facing fatal() that lists the valid input
     *  names of this engine. */
    virtual InputHandle bindInput(const std::string &input);
    /** Drive a bound input (applies from the next step() onward).
     *  String-free: safe on the hot path. */
    virtual void setInput(InputHandle handle, const BitVector &value);

    // ---- RTL register probes (cap::kProbes) -----------------------
    /** Number of probeable signals; valid handles are 0..n-1. */
    virtual size_t numProbes() const { return 0; }
    /** One-time name resolution for a probeable signal.  Unknown
     *  names are a user-facing fatal() listing the valid signals. */
    virtual ProbeHandle probe(const std::string &signal);
    virtual const std::string &probeName(ProbeHandle handle) const;
    virtual unsigned probeWidth(ProbeHandle handle) const;
    /** Committed value of the signal as of the last completed cycle.
     *  String-free: safe on the hot path. */
    virtual BitVector read(ProbeHandle handle) const = 0;

    // ---- stepping -------------------------------------------------
    /** Advance up to n cycles; stops early when the run finishes or
     *  fails.  Cycle-exact with n calls of step(1) on every engine.
     *  A terminal engine returns immediately with cycles == 0. */
    virtual RunResult step(uint64_t n = 1) = 0;

    /** Completed cycles since construction. */
    virtual uint64_t cycle() const = 0;
    virtual Status status() const = 0;
    /** Failure description once status() == Failed (engines without
     *  their own message — the borrowed ISA-level adapters, whose
     *  failures live in the attached Host — return ""). */
    virtual std::string failureMessage() const { return {}; }

    /** Named counters: every engine reports "cycles"; engines add
     *  family-specific entries (instret, dispatches, stall cycles,
     *  partition count, ...). */
    virtual std::vector<Stat> stats() const;

    // ---- $display log (cap::kDisplayLog) --------------------------
    virtual const std::vector<std::string> &displayLog() const;
    /** Live sink invoked for each $display line as it fires. */
    virtual void setDisplaySink(DisplaySink sink);

    // ---- exception servicing (cap::kExceptions) -------------------
    /** Install the host-side EXPECT servicing callback.  On engines
     *  created through the registry a Host is already wired; setting
     *  a handler replaces it. */
    virtual void setExceptionHandler(ExceptionHandler handler);

    // ---- ensemble lanes (cap::kEnsemble) --------------------------
    // An ensemble engine advances N decoupled simulations ("lanes")
    // of the same design per step: shared arena, lane-strided state,
    // one rendezvous for all lanes.  Lane 0 always aliases the
    // scalar API above (so every single-lane caller works untouched,
    // and the lane-indexed calls with lane == 0 work on EVERY
    // engine); a lane that finishes or fails is frozen while the
    // rest keep running, and step(n) runs until all lanes are
    // terminal or the batch ends.  The un-indexed setInput
    // broadcasts to every lane of an ensemble.

    /** Number of decoupled simulations this engine advances per
     *  step; 1 unless created with CreateOptions::lanes > 1. */
    virtual unsigned lanes() const { return 1; }
    /** Drive one lane's copy of a bound input. */
    virtual void setInputLane(InputHandle handle, unsigned lane,
                              const BitVector &value);
    /** One lane's committed value of a probed signal. */
    virtual BitVector readLane(ProbeHandle handle, unsigned lane) const;
    virtual Status laneStatus(unsigned lane) const;
    /** Cycles lane `lane` actually committed (a frozen lane stops
     *  counting while the ensemble moves on). */
    virtual uint64_t laneCycle(unsigned lane) const;
    virtual std::string laneFailureMessage(unsigned lane) const;
    virtual const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const;

    // ---- checkpoint/restore (cap::kSnapshot) ----------------------
    // A Snapshot captures the complete architectural state of every
    // lane at a cycle boundary — in the engine family's canonical
    // byte format, so a snapshot saved on one engine restores on any
    // other engine of the same family simulating the same design
    // (identity is checked: family, design hash, lane count, version;
    // a mismatched restore is a loud user-facing fatal()).

    /** Serialize the full architectural state into `out` (reuses its
     *  buffers, so repeated saves into one Snapshot don't allocate
     *  once capacity is warm). */
    virtual void save(Snapshot &out) const;
    /** Replace the architectural state from a snapshot.  Fatal() on
     *  any identity mismatch rather than restoring garbage. */
    virtual void restore(const Snapshot &snapshot);

  protected:
    /** Shared fatal() for calls outside an engine's capability set. */
    [[noreturn]] void unsupported(const char *what) const;
};

/** Route one lane's stimulus: ensembles take it on the lane, scalar
 *  engines (e.g. a per-lane golden standing in for `lane`) on their
 *  only lane.  This is what lets one stimulus function drive an
 *  ensemble subject and its N scalar golden runs identically. */
inline void
driveLane(Engine &engine, InputHandle handle, unsigned lane,
          const BitVector &value)
{
    if (engine.lanes() > 1)
        engine.setInputLane(handle, lane, value);
    else
        engine.setInput(handle, value);
}

} // namespace manticore::engine

#endif // MANTICORE_ENGINE_ENGINE_HH
