#include "machine/machine.hh"

#include <algorithm>

#include "isa/exec_semantics.hh"
#include "support/logging.hh"

namespace manticore::machine {

using isa::HostAction;
using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::RunStatus;
using isa::kNoReg;

namespace ex = isa::exec;

CacheModel::CacheModel(const isa::MachineConfig &config)
    : _wordsPerLine(config.cacheLineBytes / 2),
      _numLines(config.cacheBytes / config.cacheLineBytes),
      _hitStall(config.cacheHitStall), _missStall(config.cacheMissStall),
      _tags(_numLines, 0), _valid(_numLines, false)
{
}

unsigned
CacheModel::access(uint64_t word_addr, bool is_write, PerfCounters &perf)
{
    (void)is_write; // write-allocate: hits and misses cost the same
    uint64_t line = word_addr / _wordsPerLine;
    unsigned idx = static_cast<unsigned>(line % _numLines);
    uint64_t tag = line / _numLines;
    if (_valid[idx] && _tags[idx] == tag) {
        ++perf.cacheHits;
        return _hitStall;
    }
    ++perf.cacheMisses;
    _valid[idx] = true;
    _tags[idx] = tag;
    return _missStall;
}

Machine::Machine(const isa::Program &program,
                 const isa::MachineConfig &config)
    : _program(program), _config(config), _cache(config)
{
    isa::validate(program, config);
    MANTICORE_ASSERT(!program.placement.empty(),
                     "program must be placed (run the scheduler)");
    MANTICORE_ASSERT(program.vcpl > 0, "program must be scheduled");

    // Register files are exactly sized up front — including the
    // registers incoming SENDs deliver into — by the same shared
    // helper the functional interpreters use, so commit and epilogue
    // writes can assert instead of resizing mid-run.
    std::vector<uint32_t> reg_sizes = ex::registerFileSizes(program);
    _cores.resize(program.processes.size());
    for (size_t p = 0; p < program.processes.size(); ++p) {
        const isa::Process &proc = program.processes[p];
        MANTICORE_ASSERT(proc.body.size() + proc.epilogueLength <=
                             _config.imemSize,
                         "instruction memory overflow in process ", p);
        MANTICORE_ASSERT(proc.scratchInit.size() <= _config.scratchSize,
                         "scratchInit overflow in process ", p,
                         " escaped isa::validate");
        _cores[p].regs.assign(reg_sizes[p], 0);
        for (const auto &[reg, v] : proc.init)
            _cores[p].regs.at(reg) = v;
        _cores[p].scratch.assign(_config.scratchSize, 0);
        std::copy(proc.scratchInit.begin(), proc.scratchInit.end(),
                  _cores[p].scratch.begin());
    }
    for (const auto &[addr, value] : program.globalInit)
        _global.write(addr, value);
}

uint16_t
Machine::readReg(const Core &core, Reg r) const
{
    return static_cast<uint16_t>(readRegRaw(core, r));
}

uint32_t
Machine::readRegRaw(const Core &core, Reg r) const
{
    return r < core.regs.size() ? core.regs[r] : 0;
}

void
Machine::commitDue(Core &core, uint64_t cycle)
{
    auto it = core.pending.begin();
    while (it != core.pending.end()) {
        if (it->commitCycle <= cycle) {
            MANTICORE_ASSERT(it->reg < core.regs.size(),
                             "commit to unsized register $r", it->reg);
            core.regs[it->reg] = it->value;
            it = core.pending.erase(it);
        } else {
            ++it;
        }
    }
}

void
Machine::executeSlot(uint32_t pid, const Instruction &inst, uint64_t cycle)
{
    Core &core = _cores[pid];
    if (inst.opcode != Opcode::Nop)
        ++_perf.instructionsExecuted;

    auto rs = [&](Reg r) { return readReg(core, r); };
    auto rsraw = [&](Reg r) { return readRegRaw(core, r); };
    // Writes commit pipelineLatency cycles after issue as a raw
    // 17-bit register image (value + carry).
    auto wrRaw = [&](uint32_t raw) {
        core.pending.push_back(
            {cycle + _config.pipelineLatency, inst.rd, raw});
    };
    auto wr = [&](uint16_t v) { wrRaw(v); };

    switch (inst.opcode) {
      case Opcode::Nop:
        break;
      case Opcode::Set:
        wr(inst.imm);
        break;
      case Opcode::Mov:
        wr(rs(inst.rs1));
        break;
      case Opcode::Add:
        wrRaw(ex::addCarry(rs(inst.rs1), rs(inst.rs2), 0));
        break;
      case Opcode::Addc:
        wrRaw(ex::addCarry(rs(inst.rs1), rs(inst.rs2),
                           ex::carryIn(rsraw(inst.rs3))));
        break;
      case Opcode::Sub:
        wrRaw(ex::subBorrow(rs(inst.rs1), rs(inst.rs2), 0));
        break;
      case Opcode::Subb:
        wrRaw(ex::subBorrow(rs(inst.rs1), rs(inst.rs2),
                            ex::carryIn(rsraw(inst.rs3))));
        break;
      case Opcode::Mul:
        wr(ex::mulLow(rs(inst.rs1), rs(inst.rs2)));
        break;
      case Opcode::Mulh:
        wr(ex::mulHigh(rs(inst.rs1), rs(inst.rs2)));
        break;
      case Opcode::And:
        wr(rs(inst.rs1) & rs(inst.rs2));
        break;
      case Opcode::Or:
        wr(rs(inst.rs1) | rs(inst.rs2));
        break;
      case Opcode::Xor:
        wr(rs(inst.rs1) ^ rs(inst.rs2));
        break;
      case Opcode::Sll:
        wr(ex::shiftLeft(rs(inst.rs1), rs(inst.rs2)));
        break;
      case Opcode::Srl:
        wr(ex::shiftRight(rs(inst.rs1), rs(inst.rs2)));
        break;
      case Opcode::Seq:
        wr(rs(inst.rs1) == rs(inst.rs2) ? 1 : 0);
        break;
      case Opcode::Sltu:
        wr(rs(inst.rs1) < rs(inst.rs2) ? 1 : 0);
        break;
      case Opcode::Slts:
        wr(ex::lessSigned(rs(inst.rs1), rs(inst.rs2)) ? 1 : 0);
        break;
      case Opcode::Mux:
        wr(ex::predicate(rsraw(inst.rs1)) ? rs(inst.rs2)
                                          : rs(inst.rs3));
        break;
      case Opcode::Slice:
        wr(ex::sliceExtract(rs(inst.rs1), inst.sliceLo(),
                            ex::sliceMask(inst.sliceLen())));
        break;
      case Opcode::Cust: {
        const isa::CustomFunction &f =
            _program.processes[pid].functions[inst.imm];
        wr(f.apply(rs(inst.rs1), rs(inst.rs2), rs(inst.rs3),
                   rs(inst.rs4)));
        break;
      }
      case Opcode::Lld: {
        uint32_t addr = ex::scratchAddress(rs(inst.rs1), inst.imm,
                                           _config.scratchSize);
        wr(core.scratch[addr]);
        break;
      }
      case Opcode::Lst: {
        if (core.pred) {
            uint32_t addr = ex::scratchAddress(rs(inst.rs1), inst.imm,
                                               _config.scratchSize);
            core.scratch[addr] = rs(inst.rs2);
        }
        break;
      }
      case Opcode::Gld: {
        uint64_t addr =
            ex::globalAddress(rs(inst.rs1), rs(inst.rs2), inst.imm);
        _pendingStall += _cache.access(addr, false, _perf);
        wr(_global.read(addr));
        break;
      }
      case Opcode::Gst: {
        // A predicated-off store never reaches the memory stage, so
        // no global stall is charged; a retiring store stalls
        // preemptively whether it hits or misses (§5.3).
        if (core.pred) {
            uint64_t addr =
                ex::globalAddress(rs(inst.rs1), rs(inst.rs2), inst.imm);
            _pendingStall += _cache.access(addr, true, _perf);
            _global.write(addr, rs(inst.rs3));
        }
        break;
      }
      case Opcode::Pred:
        core.pred = ex::predicate(rsraw(inst.rs1));
        break;
      case Opcode::Send: {
        auto [sx, sy] = _program.placement[pid];
        auto [tx, ty] = _program.placement[inst.target];
        uint64_t entry = cycle + _config.sendInjectLatency;
        unsigned x = sx, y = sy;
        unsigned hops = 0;
        auto reserve = [&](unsigned dim) {
            uint32_t link = (y * _config.gridX + x) * 2 + dim;
            uint64_t key = (static_cast<uint64_t>(link) << 32) |
                           (entry + hops * _config.hopLatency);
            if (!_linkBusy.insert(key).second)
                MANTICORE_PANIC("NoC link collision at cycle ",
                                entry + hops, " on link ", link,
                                " — compiler routing bug");
            ++hops;
        };
        while (x != tx) {
            reserve(0);
            x = (x + 1) % _config.gridX;
        }
        while (y != ty) {
            reserve(1);
            y = (y + 1) % _config.gridY;
        }
        uint64_t arrival = entry + hops * _config.hopLatency;
        MANTICORE_ASSERT(arrival <= _program.vcpl,
                         "message arrives after the Vcycle window");
        _inFlight.push_back(
            {inst.target, inst.rd, rs(inst.rs1), arrival});
        break;
      }
      case Opcode::Expect: {
        if (rs(inst.rs1) != rs(inst.rs2)) {
            // Precise exception: the grid stalls, the host services.
            _pendingStall += _config.cacheMissStall;
            HostAction action = HostAction::Finish;
            if (onException)
                action = onException(pid, inst.imm);
            if (action == HostAction::Finish &&
                _status == RunStatus::Running)
                _status = RunStatus::Finished;
            else if (action == HostAction::Fail)
                _status = RunStatus::Failed;
        }
        break;
      }
      case Opcode::NumOpcodes:
        MANTICORE_PANIC("bad opcode");
    }
}

RunStatus
Machine::runVcycle()
{
    if (_status == RunStatus::Failed)
        return _status;
    RunStatus entry_status = _status;

    _linkBusy.clear();
    _inFlight.clear();

    for (uint64_t cycle = 0; cycle < _program.vcpl; ++cycle) {
        for (uint32_t pid = 0; pid < _cores.size(); ++pid) {
            commitDue(_cores[pid], cycle);
            const auto &body = _program.processes[pid].body;
            if (cycle < body.size())
                executeSlot(pid, body[cycle], cycle);
            if (_status == RunStatus::Failed)
                return _status;
        }
    }

    // Drain: everything commits inside the sleep window by
    // construction (VCPL >= max body + latency).
    for (auto &core : _cores) {
        commitDue(core, _program.vcpl + _config.pipelineLatency);
        MANTICORE_ASSERT(core.pending.empty(),
                         "write escaped the Vcycle drain window");
    }

    // Epilogue: apply received messages; verify the static count.
    std::vector<unsigned> received(_cores.size(), 0);
    for (const Message &m : _inFlight) {
        Core &core = _cores[m.targetPid];
        MANTICORE_ASSERT(m.targetReg < core.regs.size(),
                         "message to unsized register $r", m.targetReg,
                         " of process ", m.targetPid);
        core.regs[m.targetReg] = m.value;
        ++received[m.targetPid];
        ++_perf.messagesDelivered;
    }
    for (uint32_t pid = 0; pid < _cores.size(); ++pid) {
        MANTICORE_ASSERT(
            received[pid] == _program.processes[pid].epilogueLength,
            "process ", pid, " received ", received[pid],
            " messages, expected ",
            _program.processes[pid].epilogueLength);
    }

    ++_perf.vcycles;
    _perf.activeCycles += _program.vcpl;
    _perf.stallCycles += _pendingStall;
    _pendingStall = 0;

    if (entry_status == RunStatus::Finished)
        _status = RunStatus::Finished;
    return _status;
}

RunStatus
Machine::run(uint64_t max_vcycles)
{
    for (uint64_t i = 0; i < max_vcycles && _status == RunStatus::Running;
         ++i)
        runVcycle();
    return _status;
}

uint16_t
Machine::regValue(uint32_t pid, Reg reg) const
{
    const auto &regs = _cores.at(pid).regs;
    return reg < regs.size() ? static_cast<uint16_t>(regs[reg]) : 0;
}

uint16_t
Machine::scratchValue(uint32_t pid, uint32_t addr) const
{
    return _cores.at(pid).scratch.at(addr);
}

} // namespace manticore::machine
