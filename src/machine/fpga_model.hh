/**
 * @file
 * Analytic model of the Manticore FPGA physical design on the Alveo
 * U200 (§7.2, §A.5, §A.7 of the paper).  The real artifact is a
 * Vivado place-and-route run; this model encodes the mechanisms the
 * paper describes — the three-SLR floorplan, the immovable PCIe shell
 * carving a C-shaped user region, SLR-crossing costs, and the URAM
 * budget that caps the core count — and reproduces the reported
 * frequency/resource tables from them.  DESIGN.md documents this
 * substitution.
 */

#ifndef MANTICORE_MACHINE_FPGA_MODEL_HH
#define MANTICORE_MACHINE_FPGA_MODEL_HH

#include <string>
#include <vector>

namespace manticore::machine {

/** Per-core resource vector (Table 7). */
struct CoreResources
{
    unsigned lut = 545;
    unsigned lutram = 128;
    unsigned ff = 1358;
    unsigned bram = 4;
    unsigned uram = 2;
    unsigned dsp = 1;
    unsigned srl = 102;
};

/** U200 device totals (public datasheet figures). */
struct DeviceResources
{
    unsigned lut = 1'182'240;
    unsigned lutram = 591'840;
    unsigned ff = 2'364'480;
    unsigned bram = 2160;
    unsigned uram = 960;
    unsigned dsp = 6840;
    unsigned slrs = 3;
    /// URAMs usable by Manticore after the shell's share (the paper
    /// counts "800 available URAMs", §7.2 fn. 4)...
    unsigned uramAvailable = 800;
    /// ...of which the privileged core's cache takes four.
    unsigned cacheUrams = 4;
};

class FpgaModel
{
  public:
    FpgaModel() = default;

    /** Maximum cores the URAM budget allows (398 on the U200). */
    unsigned maxCores() const;

    /** Achievable clock (MHz) for a grid, with automatic or guided
     *  floorplanning (Table 1).  Returns 0 when the grid does not
     *  fit. */
    double fmaxMhz(unsigned grid_x, unsigned grid_y, bool guided) const;

    /** Fraction [0,1] of each device resource a single core uses. */
    std::vector<std::pair<std::string, double>> coreUtilization() const;

    CoreResources core;
    DeviceResources device;

  private:
    /// Cores that fit in the shell-free region at the top of the die
    /// (the paper: below 160 cores timing closes untouched).
    static constexpr unsigned kUnobstructedCores = 160;
    static constexpr double kBaseMhz = 500.0;
};

} // namespace manticore::machine

#endif // MANTICORE_MACHINE_FPGA_MODEL_HH
