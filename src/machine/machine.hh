/**
 * @file
 * Cycle-level simulator of the Manticore grid (§4, §5 of the paper) —
 * this repository's substitute for the Alveo U200 prototype.
 *
 * The model executes the static schedule exactly as the hardware
 * contract promises the compiler:
 *  - all cores run in lockstep, one instruction slot per compute
 *    cycle, with register writebacks committing pipelineLatency
 *    cycles after issue;
 *  - SENDs traverse the unidirectional torus with dimension-ordered
 *    routing at one cycle per hop; the bufferless switches are
 *    *verified*, not trusted: two messages on one link in the same
 *    cycle abort the simulation (the compiler must prevent this);
 *  - received messages are applied at the Vcycle boundary (the
 *    epilogue SET window), and their count is checked against the
 *    compiler's EPILOGUE_LENGTH;
 *  - global memory accesses and exceptions globally stall the grid:
 *    the privileged core's direct-mapped write-back cache charges
 *    hit/miss stall cycles to everyone (§5.3), counted separately by
 *    the hardware performance counters (§7.7).
 */

#ifndef MANTICORE_MACHINE_MACHINE_HH
#define MANTICORE_MACHINE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/config.hh"
#include "isa/interpreter.hh"
#include "isa/isa.hh"

namespace manticore::machine {

/** Hardware performance counters (used by Fig. 8). */
struct PerfCounters
{
    uint64_t vcycles = 0;
    /// Compute-clock cycles spent executing (vcycles * VCPL).
    uint64_t activeCycles = 0;
    /// Extra cycles the control domain held the compute clock.
    uint64_t stallCycles = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t messagesDelivered = 0;
    uint64_t instructionsExecuted = 0; ///< non-NOP

    uint64_t totalCycles() const { return activeCycles + stallCycles; }
};

/** Direct-mapped write-back write-allocate cache model.  Only the
 *  timing metadata lives here; data goes straight to GlobalMemory
 *  (the host flushes the cache when it intervenes, §A.3.2, so the
 *  backing store is always the architectural truth). */
class CacheModel
{
  public:
    explicit CacheModel(const isa::MachineConfig &config);

    /** Access one 16-bit word; returns the stall cycles charged. */
    unsigned access(uint64_t word_addr, bool is_write,
                    PerfCounters &perf);

  private:
    unsigned _wordsPerLine;
    unsigned _numLines;
    unsigned _hitStall;
    unsigned _missStall;
    std::vector<uint64_t> _tags;
    std::vector<bool> _valid;
};

class Machine
{
  public:
    Machine(const isa::Program &program,
            const isa::MachineConfig &config);

    /** Simulate one Vcycle (VCPL compute cycles plus any stalls). */
    isa::RunStatus runVcycle();

    /** Run until finish/failure or max_vcycles. */
    isa::RunStatus run(uint64_t max_vcycles);

    isa::RunStatus status() const { return _status; }
    const PerfCounters &perf() const { return _perf; }

    /** Host exception servicing, as in the ISA interpreter. */
    std::function<isa::HostAction(uint32_t pid, uint16_t eid)> onException;

    uint16_t regValue(uint32_t pid, isa::Reg reg) const;
    uint16_t scratchValue(uint32_t pid, uint32_t addr) const;
    isa::GlobalMemory &globalMemory() { return _global; }
    const isa::GlobalMemory &globalMemory() const { return _global; }

  private:
    struct PendingWrite
    {
        uint64_t commitCycle;
        isa::Reg reg;
        uint32_t value; ///< 17-bit (bit 16 = carry)
    };

    struct Core
    {
        std::vector<uint32_t> regs;
        std::vector<uint16_t> scratch;
        std::vector<PendingWrite> pending;
        bool pred = false;
    };

    struct Message
    {
        uint32_t targetPid;
        isa::Reg targetReg;
        uint16_t value;
        uint64_t arrivalCycle; ///< within the current Vcycle
    };

    void executeSlot(uint32_t pid, const isa::Instruction &inst,
                     uint64_t cycle);
    void commitDue(Core &core, uint64_t cycle);
    uint16_t readReg(const Core &core, isa::Reg r) const;
    uint32_t readRegRaw(const Core &core, isa::Reg r) const;

    const isa::Program &_program;
    isa::MachineConfig _config;
    std::vector<Core> _cores;
    isa::GlobalMemory _global;
    CacheModel _cache;
    PerfCounters _perf;
    isa::RunStatus _status = isa::RunStatus::Running;

    std::vector<Message> _inFlight;
    /// Link occupancy within the current Vcycle: linkId << 32 | cycle.
    std::unordered_set<uint64_t> _linkBusy;
    uint64_t _pendingStall = 0;
};

} // namespace manticore::machine

#endif // MANTICORE_MACHINE_MACHINE_HH
