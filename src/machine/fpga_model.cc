#include "machine/fpga_model.hh"

#include <algorithm>
#include <cmath>

namespace manticore::machine {

unsigned
FpgaModel::maxCores() const
{
    return (device.uramAvailable - device.cacheUrams) / core.uram;
}

namespace {

/** Piecewise-linear interpolation over (cores, MHz) calibration
 *  points; extrapolates the final segment's slope past the last
 *  point, clamped at 50 MHz. */
double
interp(const std::vector<std::pair<double, double>> &pts, double cores)
{
    if (cores <= pts.front().first)
        return pts.front().second;
    for (size_t i = 1; i < pts.size(); ++i) {
        if (cores <= pts[i].first) {
            double t = (cores - pts[i - 1].first) /
                       (pts[i].first - pts[i - 1].first);
            return pts[i - 1].second +
                   t * (pts[i].second - pts[i - 1].second);
        }
    }
    const auto &[x1, y1] = pts[pts.size() - 2];
    const auto &[x2, y2] = pts.back();
    double slope = (y2 - y1) / (x2 - x1);
    return std::max(50.0, y2 + slope * (cores - x2));
}

} // namespace

double
FpgaModel::fmaxMhz(unsigned grid_x, unsigned grid_y, bool guided) const
{
    unsigned cores = grid_x * grid_y;
    if (cores > maxCores())
        return 0.0;

    // Mechanism (§7.2, §A.5): below ~160 cores the design fits the
    // shell-free top of the die and closes near 500 MHz.  Beyond that,
    // cores wrap around the immovable shell and cross SLRs.  With
    // automatic floorplanning the critical path snakes through the
    // congested C-region and frequency collapses; guided floorplanning
    // pins the torus switches to the centre SLR and splits cores over
    // the outer SLRs, paying only a mild per-crossing cost.  The
    // calibration points are Table 1's measurements.
    static const std::vector<std::pair<double, double>> auto_pts = {
        {64, 500}, {100, 485}, {144, 480}, {160, 475},
        {225, 395}, {256, 180}};
    static const std::vector<std::pair<double, double>> guided_pts = {
        {64, 500}, {144, 500}, {160, 495}, {225, 475}, {256, 450}};
    return interp(guided ? guided_pts : auto_pts,
                  static_cast<double>(cores));
}

std::vector<std::pair<std::string, double>>
FpgaModel::coreUtilization() const
{
    return {
        {"LUT", static_cast<double>(core.lut) / device.lut},
        {"LUTRAM", static_cast<double>(core.lutram) / device.lutram},
        {"FF", static_cast<double>(core.ff) / device.ff},
        {"BRAM", static_cast<double>(core.bram) / device.bram},
        {"URAM", static_cast<double>(core.uram) / device.uram},
        {"DSP", static_cast<double>(core.dsp) / device.dsp},
    };
}

} // namespace manticore::machine
