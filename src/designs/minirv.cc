/**
 * @file
 * rv32r: sixteen MiniRV cores on a ring (the paper's benchmark is 16
 * riscv-mini cores; DESIGN.md documents the substitution).  MiniRV is
 * a from-scratch 16-bit accumulator-style RISC: 32-entry instruction
 * ROM, eight registers, ALU (add/xor/and/shift/mul), a branch, and
 * ring send/receive.  Each core runs a small self-looping program
 * parameterised by its core id; a cross-core XOR fold feeds the
 * self-checking driver.
 */

#include "designs/designs.hh"

#include <array>

#include "netlist/builder.hh"
#include "support/logging.hh"

namespace manticore::designs {

using netlist::CircuitBuilder;
using netlist::MemHandle;
using netlist::Netlist;
using netlist::RegHandle;
using netlist::Signal;

namespace {

constexpr unsigned kCores = 16;
constexpr unsigned kImem = 32;
constexpr unsigned kRegs = 8;

enum MiniOp : uint16_t
{
    kAddi = 0,
    kAdd = 1,
    kXor = 2,
    kAnd = 3,
    kSll = 4,
    kLoadi = 5,
    kBnez = 6,
    kSendR = 7,
    kRecv = 8,
    kMul = 9,
};

uint16_t
encode(MiniOp op, unsigned rd, unsigned rs, int imm6)
{
    return static_cast<uint16_t>((op << 12) | ((rd & 7) << 9) |
                                 ((rs & 7) << 6) | (imm6 & 0x3f));
}

/** The per-core program: an arithmetic loop with ring traffic. */
std::array<uint16_t, kImem>
coreProgram(unsigned core)
{
    std::array<uint16_t, kImem> prog{};
    unsigned i = 0;
    prog[i++] = encode(kLoadi, 1, 0, 21);                  // r1 = 21
    prog[i++] = encode(kLoadi, 2, 0, (core % 28) + 3);     // r2 = id+3
    prog[i++] = encode(kAddi, 3, 3, 5);                    // r3 += 5
    prog[i++] = encode(kXor, 4, 3, 2);                     // r4 = r3^r2
    prog[i++] = encode(kMul, 5, 4, 3);                     // r5 = r4*r3
    prog[i++] = encode(kSll, 6, 5, (core % 7) + 1);        // r6 = r5<<k
    prog[i++] = encode(kSendR, 0, 6, 0);                   // ring <- r6
    prog[i++] = encode(kRecv, 7, 0, 0);                    // r7 = ring
    prog[i++] = encode(kAdd, 7, 7, 5);                     // r7 += r5
    prog[i++] = encode(kAnd, 3, 7, 4);                     // r3 = r7&r4
    prog[i++] = encode(kAddi, 1, 1, -1);                   // r1 -= 1
    prog[i++] = encode(kBnez, 0, 1, -9);                   // loop to 2
    prog[i++] = encode(kAddi, 3, 3, 9);                    // epilogue
    prog[i++] = encode(kLoadi, 1, 0, 17);                  // r1 = 17
    prog[i++] = encode(kBnez, 0, 1, -12);                  // loop to 2
    while (i < kImem)
        prog[i++] = encode(kAddi, 3, 3, 1);
    // pc wraps to 0 after slot 31, restarting the program.
    return prog;
}

int
sext6(uint16_t imm)
{
    return (imm & 0x20) ? static_cast<int>(imm) - 64
                        : static_cast<int>(imm);
}

/** Golden C++ model of one core's architectural step. */
struct GCore
{
    uint16_t pc = 0;
    std::array<uint16_t, kRegs> r{};
    uint16_t ringOut = 0;
};

void
stepCore(GCore &c, const std::array<uint16_t, kImem> &prog,
         uint16_t ring_in, GCore &next)
{
    uint16_t inst = prog[c.pc & (kImem - 1)];
    uint16_t op = inst >> 12;
    unsigned rd = (inst >> 9) & 7;
    unsigned rs = (inst >> 6) & 7;
    uint16_t imm = inst & 0x3f;
    uint16_t rsv = c.r[rs];
    uint16_t rtv = c.r[imm & 7];

    uint16_t res;
    switch (op) {
      case kAddi: res = static_cast<uint16_t>(rsv + sext6(imm)); break;
      case kAdd: res = static_cast<uint16_t>(rsv + rtv); break;
      case kXor: res = rsv ^ rtv; break;
      case kAnd: res = rsv & rtv; break;
      case kSll: {
        unsigned amt = imm & 15;
        res = static_cast<uint16_t>(rsv << amt);
        break;
      }
      case kLoadi: res = imm; break;
      case kRecv: res = ring_in; break;
      case kMul: res = static_cast<uint16_t>(rsv * rtv); break;
      default: res = rsv; break;
    }

    next = c;
    bool writes = op != kBnez && op != kSendR;
    if (writes)
        next.r[rd] = res;
    next.ringOut = op == kSendR ? rsv : c.ringOut;
    if (op == kBnez && rsv != 0)
        next.pc = static_cast<uint16_t>((c.pc + sext6(imm)) &
                                        (kImem - 1));
    else
        next.pc = static_cast<uint16_t>((c.pc + 1) & (kImem - 1));
}

} // namespace

Netlist
buildRv32r(uint64_t check_cycles)
{
    CircuitBuilder b("rv32r");

    struct HwCore
    {
        RegHandle pc;
        std::array<RegHandle, kRegs> r;
        RegHandle ringOut;
        MemHandle imem;
    };
    std::array<HwCore, kCores> cores;
    std::array<std::array<uint16_t, kImem>, kCores> progs;

    for (unsigned c = 0; c < kCores; ++c) {
        progs[c] = coreProgram(c);
        std::vector<BitVector> image;
        for (uint16_t word : progs[c])
            image.emplace_back(16, word);
        std::string id = std::to_string(c);
        cores[c].imem = b.memory("imem" + id, 16, kImem, image);
        cores[c].pc = b.reg("pc" + id, 16);
        for (unsigned k = 0; k < kRegs; ++k)
            cores[c].r[k] =
                b.reg("c" + id + "_r" + std::to_string(k), 16);
        cores[c].ringOut = b.reg("ring" + id, 16);
    }

    Signal fold = b.lit(16, 0);
    for (unsigned c = 0; c < kCores; ++c) {
        HwCore &core = cores[c];
        Signal ring_in =
            cores[(c + kCores - 1) % kCores].ringOut.read();

        Signal inst = core.imem.read(core.pc.read());
        Signal op = inst.slice(12, 4);
        Signal rd = inst.slice(9, 3);
        Signal rs = inst.slice(6, 3);
        Signal imm = inst.slice(0, 6);
        Signal imm_s = imm.sext(16);
        Signal imm_z = imm.zext(16);

        // Register-file read ports (mux trees).
        auto read_port = [&](Signal sel) {
            Signal v = core.r[0].read();
            for (unsigned k = 1; k < kRegs; ++k)
                v = b.mux(sel == b.lit(3, k), core.r[k].read(), v);
            return v;
        };
        Signal rsv = read_port(rs);
        Signal rtv = read_port(imm.slice(0, 3));

        auto is = [&](MiniOp o) { return op == b.lit(4, o); };

        Signal res = rsv;
        res = b.mux(is(kAddi), rsv + imm_s, res);
        res = b.mux(is(kAdd), rsv + rtv, res);
        res = b.mux(is(kXor), rsv ^ rtv, res);
        res = b.mux(is(kAnd), rsv & rtv, res);
        res = b.mux(is(kSll), rsv.shl(imm_z & b.lit(16, 15)), res);
        res = b.mux(is(kLoadi), imm_z, res);
        res = b.mux(is(kRecv), ring_in, res);
        res = b.mux(is(kMul), rsv * rtv, res);

        Signal writes = (!is(kBnez)) & (!is(kSendR));
        for (unsigned k = 0; k < kRegs; ++k) {
            Signal hit = writes & (rd == b.lit(3, k));
            b.next(core.r[k], b.mux(hit, res, core.r[k].read()));
        }
        b.next(core.ringOut, b.mux(is(kSendR), rsv, core.ringOut.read()));

        Signal taken = is(kBnez) & !(rsv == b.lit(16, 0));
        Signal pc_next = b.mux(taken, core.pc.read() + imm_s,
                               core.pc.read() + b.lit(16, 1));
        b.next(core.pc, pc_next & b.lit(16, kImem - 1));

        fold = fold ^ core.r[7].read() ^ core.pc.read();
    }

    auto checksum = b.reg("checksum", 32);
    Signal csh = checksum.read().shl(1u) |
                 checksum.read().lshr(31u);
    b.next(checksum, csh ^ fold.zext(32));

    // Golden model.
    std::array<GCore, kCores> g, gn;
    uint32_t g_checksum = 0;
    for (uint64_t cyc = 0; cyc < check_cycles; ++cyc) {
        uint16_t fold_now = 0;
        for (unsigned c = 0; c < kCores; ++c)
            fold_now ^= g[c].r[7] ^ g[c].pc;
        g_checksum =
            ((g_checksum << 1) | (g_checksum >> 31)) ^ fold_now;
        for (unsigned c = 0; c < kCores; ++c) {
            uint16_t ring_in = g[(c + kCores - 1) % kCores].ringOut;
            stepCore(g[c], progs[c], ring_in, gn[c]);
        }
        g = gn;
    }

    // Driver.
    auto cycle = b.reg("drv_cycle", 32);
    b.next(cycle, cycle.read() + b.lit(32, 1));
    Signal at_end = cycle.read() == b.lit(32, check_cycles);
    b.display(at_end, "rv32r: checksum=%d after %d cycles",
              {checksum.read(), cycle.read()});
    b.assertAlways(at_end, checksum.read() == b.lit(32, g_checksum),
                   "rv32r checksum mismatch (golden " +
                       std::to_string(g_checksum) + ")");
    b.finish(at_end);

    return b.build();
}

} // namespace manticore::designs
