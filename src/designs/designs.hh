/**
 * @file
 * The paper's nine benchmark RTL workloads (§7.5), rebuilt from
 * scratch over the CircuitBuilder DSL, plus the FIFO/RAM
 * microbenchmarks of §7.7.  Each generator also evaluates the same
 * recurrence in plain C++ while building, and wraps the design in an
 * assertion-based test driver (as the paper does): at check_cycles the
 * design asserts its running checksum equals the precomputed golden
 * value, displays it, and $finishes.  Running any benchmark to
 * completion on any engine is therefore an end-to-end functional test.
 *
 * Substitutions relative to the paper's exact sources (documented in
 * DESIGN.md §1): fixed-point instead of floating-point in cgra/mc, a
 * from-scratch 16-bit MiniRV core instead of riscv-mini in rv32r, a
 * Huffman-FSM + transform tail instead of core_jpeg, and a compact
 * weight-stationary GEMM core instead of VTA.  Each preserves the
 * structural property the paper relies on (parallel MAC arrays,
 * serial decode chains, replicated cores with ring traffic, ...).
 */

#ifndef MANTICORE_DESIGNS_DESIGNS_HH
#define MANTICORE_DESIGNS_DESIGNS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace manticore::designs {

/** bc: pipelined SHA-256-style double-hash miner core. */
netlist::Netlist buildBc(uint64_t check_cycles);
/** Sized variant: `rounds` pipeline stages (default 5). */
netlist::Netlist buildBcSized(uint64_t check_cycles, unsigned rounds);

/** mm: 16x16 integer matrix-vector MAC array with streamed inputs. */
netlist::Netlist buildMm(uint64_t check_cycles);
/** Sized variant: an n x n MAC array (default 16). */
netlist::Netlist buildMmSized(uint64_t check_cycles, unsigned n);

/** cgra: 8x8 grid of fixed-point processing elements on a torus. */
netlist::Netlist buildCgra(uint64_t check_cycles);
/** Sized variant: a dim x dim PE grid (default 8). */
netlist::Netlist buildCgraSized(uint64_t check_cycles, unsigned dim);

/** vta: weight-stationary GEMM accelerator with on-chip buffers and a
 *  load/compute/store FSM. */
netlist::Netlist buildVta(uint64_t check_cycles);

/** rv32r: 16 MiniRV in-order cores communicating over a ring. */
netlist::Netlist buildRv32r(uint64_t check_cycles);

/** jpeg: bit-serial Huffman decode FSM feeding a transform tail —
 *  the deliberately serial benchmark. */
netlist::Netlist buildJpeg(uint64_t check_cycles);

/** blur: 3x3 stencil over line-buffered streaming pixels. */
netlist::Netlist buildBlur(uint64_t check_cycles);

/** mc: 16 independent Monte-Carlo price paths with xorshift RNGs and
 *  fixed-point arithmetic — the embarrassingly parallel benchmark. */
netlist::Netlist buildMc(uint64_t check_cycles);
/** Sized variant: `paths` independent price paths (default 16). */
netlist::Netlist buildMcSized(uint64_t check_cycles, unsigned paths);

/** noc: 4x4 unidirectional-torus deflection NoC with live flit-
 *  conservation assertions. */
netlist::Netlist buildNoc(uint64_t check_cycles);

struct Benchmark
{
    std::string name;
    std::function<netlist::Netlist(uint64_t)> build;
    /// Default driver horizon used by tests and benches.
    uint64_t defaultCheckCycles;
};

/** All nine benchmarks in the paper's Table 3 order. */
const std::vector<Benchmark> &allBenchmarks();

/** Scaled-up builds of the parallel benchmarks (32x32 mm, 128-path
 *  mc, 16x16 cgra, 16-round bc, plus the unchanged serial designs):
 *  used by the scaling experiments (Fig. 7, Table 3) so the paper's
 *  hundreds-of-cores regime is actually exercised.  The paper's
 *  originals are far larger than the default test sizes (38k-169k
 *  x86 instructions per simulated cycle). */
const std::vector<Benchmark> &allBenchmarksLarge();

/** §7.7 microbenchmarks: size_kib selects 1, 64, or 512 KiB state.
 *  The FIFO streams sequentially; the RAM uses xorshift addresses.
 *  Each performs one load and one store per Vcycle. */
netlist::Netlist buildFifoMicro(unsigned size_kib, uint64_t check_cycles);
netlist::Netlist buildRamMicro(unsigned size_kib, uint64_t check_cycles);

} // namespace manticore::designs

#endif // MANTICORE_DESIGNS_DESIGNS_HH
