#include "designs/designs.hh"

#include <array>
#include <vector>

#include "netlist/builder.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace manticore::designs {

using netlist::CircuitBuilder;
using netlist::MemHandle;
using netlist::Netlist;
using netlist::RegHandle;
using netlist::Signal;

namespace {

/** Standard test driver: count cycles; at check_cycles display the
 *  checksum, assert it equals the golden value, and $finish. */
void
addDriver(CircuitBuilder &b, uint64_t check_cycles, Signal checksum,
          uint32_t golden, const std::string &name)
{
    auto cycle = b.reg("drv_cycle", 32);
    b.next(cycle, cycle.read() + b.lit(32, 1));
    Signal at_end = cycle.read() == b.lit(32, check_cycles);
    b.display(at_end, name + ": checksum=%d after %d cycles",
              {checksum, cycle.read()});
    b.assertAlways(at_end, checksum == b.lit(32, golden),
                   name + " checksum mismatch (golden " +
                       std::to_string(golden) + ")");
    b.finish(at_end);
}

/** Galois-free 16-bit Fibonacci LFSR step (taps 0xB400). */
Signal
lfsr16(CircuitBuilder &b, Signal x)
{
    Signal sh = x.lshr(1u);
    return b.mux(x.bit(0), sh ^ b.lit(16, 0xB400), sh);
}
uint16_t
lfsr16(uint16_t x)
{
    uint16_t sh = x >> 1;
    return (x & 1) ? sh ^ 0xB400 : sh;
}

/** xorshift32 step. */
Signal
xorshift32(Signal x)
{
    Signal a = x ^ x.shl(13u);
    Signal c = a ^ a.lshr(17u);
    return c ^ c.shl(5u);
}
uint32_t
xorshift32(uint32_t x)
{
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return x;
}

Signal
rotr32(Signal x, unsigned n)
{
    return x.lshr(n) | x.shl(32 - n);
}
uint32_t
rotr32(uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

Signal
rotl32(Signal x, unsigned n)
{
    return x.shl(n) | x.lshr(32 - n);
}
uint32_t
rotl32(uint32_t x, unsigned n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

// --------------------------------------------------------------------
// bc: SHA-256-style miner pipeline.
// --------------------------------------------------------------------

Netlist
buildBcSized(uint64_t check_cycles, unsigned kRounds)
{
    static const uint32_t kKBase[5] = {0x428a2f98, 0x71374491,
                                       0xb5c0fbcf, 0xe9b5dba5,
                                       0x3956c25b};
    std::vector<uint32_t> kK(kRounds);
    for (unsigned i = 0; i < kRounds; ++i)
        kK[i] = kKBase[i % 5] + i * 0x9e3779b9u;
    static const uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                      0xa54ff53a, 0x510e527f, 0x9b05688c,
                                      0x1f83d9ab, 0x5be0cd19};
    constexpr uint32_t kTarget = 0x04000000;

    CircuitBuilder b("bc");

    auto nonce = b.reg("nonce", 32, 1);
    b.next(nonce, nonce.read() + b.lit(32, 1));

    // Pipeline registers: 8 working variables + the nonce per stage.
    std::vector<std::array<RegHandle, 8>> vars(kRounds);
    std::vector<RegHandle> npipe(kRounds);
    for (unsigned s = 0; s < kRounds; ++s) {
        for (unsigned v = 0; v < 8; ++v)
            vars[s][v] = b.reg("h" + std::to_string(s) + "_" +
                                   std::to_string(v),
                               32, kInit[v]);
        npipe[s] = b.reg("npipe" + std::to_string(s), 32);
    }

    auto round_sig = [&](std::array<Signal, 8> in, Signal w,
                         uint32_t k) -> std::array<Signal, 8> {
        Signal s1 = rotr32(in[4], 6) ^ rotr32(in[4], 11) ^
                    rotr32(in[4], 25);
        Signal ch = (in[4] & in[5]) ^ (~in[4] & in[6]);
        Signal t1 = in[7] + s1 + ch + b.lit(32, k) + w;
        Signal s0 = rotr32(in[0], 2) ^ rotr32(in[0], 13) ^
                    rotr32(in[0], 22);
        Signal maj = (in[0] & in[1]) ^ (in[0] & in[2]) ^
                     (in[1] & in[2]);
        Signal t2 = s0 + maj;
        return {t1 + t2, in[0], in[1], in[2], in[3] + t1,
                in[4], in[5], in[6]};
    };
    auto round_gold = [&](std::array<uint32_t, 8> in, uint32_t w,
                          uint32_t k) -> std::array<uint32_t, 8> {
        uint32_t s1 = rotr32(in[4], 6) ^ rotr32(in[4], 11) ^
                      rotr32(in[4], 25);
        uint32_t ch = (in[4] & in[5]) ^ (~in[4] & in[6]);
        uint32_t t1 = in[7] + s1 + ch + k + w;
        uint32_t s0 = rotr32(in[0], 2) ^ rotr32(in[0], 13) ^
                      rotr32(in[0], 22);
        uint32_t maj = (in[0] & in[1]) ^ (in[0] & in[2]) ^
                       (in[1] & in[2]);
        uint32_t t2 = s0 + maj;
        return {t1 + t2, in[0], in[1], in[2], in[3] + t1,
                in[4],   in[5], in[6]};
    };

    // Stage 0 consumes the fresh nonce; stage s consumes stage s-1.
    for (unsigned s = 0; s < kRounds; ++s) {
        std::array<Signal, 8> in;
        Signal w = s == 0 ? nonce.read() : npipe[s - 1].read();
        for (unsigned v = 0; v < 8; ++v)
            in[v] = s == 0 ? b.lit(32, kInit[v]) : vars[s - 1][v].read();
        std::array<Signal, 8> out =
            round_sig(in, w ^ b.lit(32, kK[(s * 3) % kRounds]), kK[s]);
        for (unsigned v = 0; v < 8; ++v)
            b.next(vars[s][v], out[v]);
        b.next(npipe[s], w);
    }

    Signal hash =
        vars[kRounds - 1][0].read() + vars[kRounds - 1][4].read();
    Signal found = hash < b.lit(32, kTarget);

    auto found_count = b.reg("found_count", 32);
    b.next(found_count, found_count.read() + found.zext(32));
    auto checksum = b.reg("checksum", 32);
    b.next(checksum, rotl32(checksum.read(), 1) ^ hash);

    // Golden model.
    uint32_t g_nonce = 1;
    std::vector<std::array<uint32_t, 8>> g_vars(kRounds);
    std::vector<uint32_t> g_npipe(kRounds, 0);
    for (auto &stage : g_vars)
        for (unsigned v = 0; v < 8; ++v)
            stage[v] = kInit[v];
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint32_t hash_now =
            g_vars[kRounds - 1][0] + g_vars[kRounds - 1][4];
        auto next_vars = g_vars;
        auto next_npipe = g_npipe;
        for (unsigned s = 0; s < kRounds; ++s) {
            uint32_t w = s == 0 ? g_nonce : g_npipe[s - 1];
            std::array<uint32_t, 8> in;
            for (unsigned v = 0; v < 8; ++v)
                in[v] = s == 0 ? kInit[v] : g_vars[s - 1][v];
            next_vars[s] =
                round_gold(in, w ^ kK[(s * 3) % kRounds], kK[s]);
            next_npipe[s] = w;
        }
        g_checksum = rotl32(g_checksum, 1) ^ hash_now;
        g_vars = next_vars;
        g_npipe = next_npipe;
        ++g_nonce;
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "bc");
    return b.build();
}

Netlist
buildBc(uint64_t check_cycles)
{
    return buildBcSized(check_cycles, 5);
}

// --------------------------------------------------------------------
// mm: 16x16 integer matrix-vector MAC array.
// --------------------------------------------------------------------

Netlist
buildMmSized(uint64_t check_cycles, unsigned kN)
{
    CircuitBuilder b("mm");
    Rng rng(0x3131);

    // Stationary weights.
    std::vector<std::vector<uint16_t>> weights(
        kN, std::vector<uint16_t>(kN));
    for (auto &row : weights)
        for (auto &w : row)
            w = static_cast<uint16_t>(rng.next());

    // Streaming input vector: one LFSR per lane.
    std::vector<RegHandle> x(kN);
    std::vector<uint16_t> g_x(kN);
    for (unsigned i = 0; i < kN; ++i) {
        uint16_t seed = static_cast<uint16_t>(0xace1 + i * 0x1234 + 1);
        x[i] = b.reg("x" + std::to_string(i), 16, seed);
        g_x[i] = seed;
        b.next(x[i], lfsr16(b, x[i].read()));
    }

    // MAC columns: acc[j] += sum_i x[i] * W[i][j].
    std::vector<RegHandle> acc(kN);
    std::vector<uint32_t> g_acc(kN, 0);
    for (unsigned j = 0; j < kN; ++j)
        acc[j] = b.reg("acc" + std::to_string(j), 32);
    for (unsigned j = 0; j < kN; ++j) {
        Signal dot = b.lit(32, 0);
        for (unsigned i = 0; i < kN; ++i) {
            Signal prod =
                x[i].read().zext(32) * b.lit(32, weights[i][j]);
            dot = dot + prod;
        }
        b.next(acc[j], acc[j].read() + dot);
    }

    Signal fold = acc[0].read();
    for (unsigned j = 1; j < kN; ++j)
        fold = fold ^ acc[j].read();
    auto checksum = b.reg("checksum", 32);
    b.next(checksum, rotl32(checksum.read(), 1) ^ fold);

    // Golden model.
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint32_t fold_now = 0;
        for (unsigned j = 0; j < kN; ++j)
            fold_now ^= g_acc[j];
        g_checksum = rotl32(g_checksum, 1) ^ fold_now;
        for (unsigned j = 0; j < kN; ++j) {
            uint32_t dot = 0;
            for (unsigned i = 0; i < kN; ++i)
                dot += static_cast<uint32_t>(g_x[i]) * weights[i][j];
            g_acc[j] += dot;
        }
        for (unsigned i = 0; i < kN; ++i)
            g_x[i] = lfsr16(g_x[i]);
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "mm");
    return b.build();
}

Netlist
buildMm(uint64_t check_cycles)
{
    return buildMmSized(check_cycles, 16);
}

// --------------------------------------------------------------------
// cgra: 8x8 fixed-point PE grid on a torus.
// --------------------------------------------------------------------

Netlist
buildCgraSized(uint64_t check_cycles, unsigned kDim)
{
    CircuitBuilder b("cgra");
    Rng rng(0xc64a);

    std::vector<std::vector<RegHandle>> pe(
        kDim, std::vector<RegHandle>(kDim));
    std::vector<std::vector<uint16_t>> g_pe(
        kDim, std::vector<uint16_t>(kDim));
    std::vector<std::vector<uint16_t>> kconst(
        kDim, std::vector<uint16_t>(kDim));
    for (unsigned i = 0; i < kDim; ++i) {
        for (unsigned j = 0; j < kDim; ++j) {
            uint16_t seed = static_cast<uint16_t>(rng.next() | 1);
            pe[i][j] = b.reg(
                "pe" + std::to_string(i) + "_" + std::to_string(j), 16,
                seed);
            g_pe[i][j] = seed;
            kconst[i][j] = static_cast<uint16_t>(rng.next());
        }
    }

    auto pe_next_sig = [&](unsigned i, unsigned j) -> Signal {
        Signal self = pe[i][j].read();
        Signal left = pe[i][(j + kDim - 1) % kDim].read();
        Signal up = pe[(i + kDim - 1) % kDim][j].read();
        Signal k = b.lit(16, kconst[i][j]);
        switch ((i + j) % 4) {
          case 0: return left + up + k;
          case 1: return left ^ (up.shl(1u) | up.lshr(15u)) ^ k;
          case 2: return (left * up) + k;
          default:
            return b.mux(self.bit(0), left, up) + (self ^ k);
        }
    };
    auto pe_next_gold = [&](const std::vector<std::vector<uint16_t>> &g,
                            unsigned i, unsigned j) -> uint16_t {
        uint16_t self = g[i][j];
        uint16_t left = g[i][(j + kDim - 1) % kDim];
        uint16_t up = g[(i + kDim - 1) % kDim][j];
        uint16_t k = kconst[i][j];
        switch ((i + j) % 4) {
          case 0: return left + up + k;
          case 1:
            return left ^ static_cast<uint16_t>((up << 1) | (up >> 15)) ^
                   k;
          case 2: return static_cast<uint16_t>(left * up) + k;
          default:
            return static_cast<uint16_t>(((self & 1) ? left : up) +
                                         (self ^ k));
        }
    };

    Signal fold = b.lit(16, 0);
    for (unsigned i = 0; i < kDim; ++i)
        for (unsigned j = 0; j < kDim; ++j) {
            b.next(pe[i][j], pe_next_sig(i, j));
            fold = fold ^ pe[i][j].read();
        }
    auto checksum = b.reg("checksum", 32);
    b.next(checksum, rotl32(checksum.read(), 1) ^ fold.zext(32));

    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint16_t fold_now = 0;
        for (unsigned i = 0; i < kDim; ++i)
            for (unsigned j = 0; j < kDim; ++j)
                fold_now ^= g_pe[i][j];
        g_checksum = rotl32(g_checksum, 1) ^ fold_now;
        std::vector<std::vector<uint16_t>> next(
            kDim, std::vector<uint16_t>(kDim));
        for (unsigned i = 0; i < kDim; ++i)
            for (unsigned j = 0; j < kDim; ++j)
                next[i][j] = pe_next_gold(g_pe, i, j);
        g_pe = std::move(next);
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "cgra");
    return b.build();
}

Netlist
buildCgra(uint64_t check_cycles)
{
    return buildCgraSized(check_cycles, 8);
}

// --------------------------------------------------------------------
// vta: weight-stationary GEMM core with buffers and an FSM.
// --------------------------------------------------------------------

Netlist
buildVta(uint64_t check_cycles)
{
    constexpr unsigned kBuf = 64;   // buffer elements
    constexpr unsigned kLanes = 8;  // parallel MAC lanes
    CircuitBuilder b("vta");

    MemHandle inp = b.memory("inp_buf", 16, kBuf);
    MemHandle wgt = b.memory("wgt_buf", 16, kBuf);

    auto phase = b.reg("phase", 2);  // 0 load, 1 compute, 2 store
    auto idx = b.reg("idx", 16);
    auto lfsr_a = b.reg("lfsr_a", 16, 0xbeef);
    auto lfsr_b = b.reg("lfsr_b", 16, 0x1dea);
    b.next(lfsr_a, lfsr16(b, lfsr_a.read()));
    b.next(lfsr_b, lfsr16(b, lfsr_b.read()));

    Signal in_load = phase.read() == b.lit(2, 0);
    Signal in_compute = phase.read() == b.lit(2, 1);
    Signal in_store = phase.read() == b.lit(2, 2);

    // LOAD: stream both buffers.
    inp.write(idx.read(), lfsr_a.read(), in_load);
    wgt.write(idx.read(), lfsr_b.read(), in_load);

    // COMPUTE: kLanes MACs per cycle.
    std::array<RegHandle, kLanes> acc;
    for (unsigned l = 0; l < kLanes; ++l)
        acc[l] = b.reg("acc" + std::to_string(l), 32);
    for (unsigned l = 0; l < kLanes; ++l) {
        Signal ia = (idx.read() + b.lit(16, l * 8)) & b.lit(16, kBuf - 1);
        Signal iw = (idx.read() * b.lit(16, 3) + b.lit(16, l)) &
                    b.lit(16, kBuf - 1);
        Signal prod = inp.read(ia).zext(32) * wgt.read(iw).zext(32);
        b.next(acc[l],
               b.mux(in_compute, acc[l].read() + prod, acc[l].read()));
    }

    // STORE: fold one accumulator per cycle into the checksum.
    auto checksum = b.reg("checksum", 32);
    Signal lane_sel = idx.read() & b.lit(16, kLanes - 1);
    Signal folded = acc[0].read();
    for (unsigned l = 1; l < kLanes; ++l)
        folded = b.mux(lane_sel == b.lit(16, l), acc[l].read(), folded);
    b.next(checksum,
           b.mux(in_store, rotl32(checksum.read(), 1) ^ folded,
                 checksum.read()));

    // FSM: load 64, compute 64, store 8, repeat.
    Signal last_load = in_load & (idx.read() == b.lit(16, kBuf - 1));
    Signal last_comp = in_compute & (idx.read() == b.lit(16, kBuf - 1));
    Signal last_store = in_store & (idx.read() == b.lit(16, kLanes - 1));
    Signal wrap = last_load | last_comp | last_store;
    b.next(idx, b.mux(wrap, b.lit(16, 0), idx.read() + b.lit(16, 1)));
    Signal phase_next =
        b.mux(last_store, b.lit(2, 0),
              b.mux(wrap, phase.read() + b.lit(2, 1), phase.read()));
    b.next(phase, phase_next);

    // Golden model.
    uint16_t g_inp[kBuf] = {0}, g_wgt[kBuf] = {0};
    uint32_t g_acc[kLanes] = {0};
    uint16_t g_la = 0xbeef, g_lb = 0x1dea;
    unsigned g_phase = 0, g_idx = 0;
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        bool load = g_phase == 0, comp = g_phase == 1, store = g_phase == 2;
        // Combinational reads against current state.
        uint32_t prod[kLanes];
        for (unsigned l = 0; l < kLanes; ++l) {
            unsigned ia = (g_idx + l * 8) & (kBuf - 1);
            unsigned iw = (g_idx * 3 + l) & (kBuf - 1);
            prod[l] = static_cast<uint32_t>(g_inp[ia]) * g_wgt[iw];
        }
        unsigned lane = g_idx & (kLanes - 1);
        uint32_t folded_now = g_acc[lane];
        bool last_l = load && g_idx == kBuf - 1;
        bool last_c = comp && g_idx == kBuf - 1;
        bool last_s = store && g_idx == kLanes - 1;
        bool wrap_now = last_l || last_c || last_s;
        // Commits.
        if (store)
            g_checksum = rotl32(g_checksum, 1) ^ folded_now;
        for (unsigned l = 0; l < kLanes; ++l)
            if (comp)
                g_acc[l] += prod[l];
        if (load) {
            g_inp[g_idx & (kBuf - 1)] = g_la;
            g_wgt[g_idx & (kBuf - 1)] = g_lb;
        }
        g_la = lfsr16(g_la);
        g_lb = lfsr16(g_lb);
        g_idx = wrap_now ? 0 : (g_idx + 1) & 0xffff;
        g_phase = last_s ? 0 : (wrap_now ? (g_phase + 1) & 3 : g_phase);
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "vta");
    return b.build();
}

// --------------------------------------------------------------------
// jpeg: bit-serial Huffman decode FSM + transform tail.
// --------------------------------------------------------------------

namespace {

/** Build a random 16-symbol Huffman-style decode tree; nodes encode
 *  leaf(0x8000|sym) or internal(left<<7 | right). */
std::vector<uint16_t>
buildDecodeTree(Rng &rng)
{
    // Grow a random binary tree with 16 leaves by splitting leaves.
    struct TreeNode
    {
        bool leaf = true;
        unsigned sym = 0;
        int left = -1, right = -1;
    };
    std::vector<TreeNode> nodes(1);
    std::vector<int> leaves = {0};
    unsigned next_sym = 0;
    while (leaves.size() < 16) {
        size_t pick = rng.below(leaves.size());
        int n = leaves[pick];
        leaves.erase(leaves.begin() + pick);
        nodes[n].leaf = false;
        nodes[n].left = static_cast<int>(nodes.size());
        nodes.push_back(TreeNode{});
        nodes[n].right = static_cast<int>(nodes.size());
        nodes.push_back(TreeNode{});
        leaves.push_back(nodes[n].left);
        leaves.push_back(nodes[n].right);
    }
    for (int n : leaves)
        nodes[n].sym = next_sym++;

    std::vector<uint16_t> encoded(64, 0);
    MANTICORE_ASSERT(nodes.size() <= 64, "decode tree too large");
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].leaf)
            encoded[i] = static_cast<uint16_t>(0x8000 | nodes[i].sym);
        else
            encoded[i] = static_cast<uint16_t>((nodes[i].left << 7) |
                                               nodes[i].right);
    }
    return encoded;
}

} // namespace

Netlist
buildJpeg(uint64_t check_cycles)
{
    CircuitBuilder b("jpeg");
    Rng rng(0x12e6);

    std::vector<uint16_t> tree = buildDecodeTree(rng);
    std::vector<BitVector> tree_init;
    for (uint16_t n : tree)
        tree_init.emplace_back(16, n);
    MemHandle troms = b.memory("huff_tree", 16, 64, tree_init);

    uint16_t dequant[8];
    uint16_t idct_w[8];
    for (unsigned i = 0; i < 8; ++i) {
        dequant[i] = static_cast<uint16_t>(1 + rng.below(255));
        idct_w[i] = static_cast<uint16_t>(1 + rng.below(63));
    }

    auto bits = b.reg("bitsrc", 32, 0x9e3779b9);
    b.next(bits, xorshift32(bits.read()));
    Signal bit = bits.read().bit(0);

    auto state = b.reg("state", 16);
    Signal node = troms.read(state.read());
    Signal is_leaf = node.bit(15);
    Signal sym = node.slice(0, 8).zext(16);
    Signal left = node.slice(7, 7).zext(16);
    Signal right = node.slice(0, 7).zext(16);
    b.next(state,
           b.mux(is_leaf, b.lit(16, 0), b.mux(bit, right, left)));

    // Transform tail: 8 rotating coefficients, dequantised symbols in,
    // a weighted fold out every 8th symbol.
    std::array<RegHandle, 8> coeff;
    for (unsigned i = 0; i < 8; ++i)
        coeff[i] = b.reg("coeff" + std::to_string(i), 16);
    auto phase = b.reg("sym_phase", 16);

    Signal dq = b.lit(16, dequant[0]);
    for (unsigned i = 1; i < 8; ++i)
        dq = b.mux(phase.read() == b.lit(16, i), b.lit(16, dequant[i]),
                   dq);
    Signal newc = sym * dq;
    for (unsigned i = 0; i < 8; ++i) {
        Signal shifted = i == 0 ? newc : coeff[i - 1].read();
        b.next(coeff[i],
               b.mux(is_leaf, shifted, coeff[i].read()));
    }
    b.next(phase, b.mux(is_leaf,
                        (phase.read() + b.lit(16, 1)) & b.lit(16, 7),
                        phase.read()));

    Signal out = b.lit(32, 0);
    for (unsigned i = 0; i < 8; ++i)
        out = out + coeff[i].read().zext(32) * b.lit(32, idct_w[i]);
    Signal emit = is_leaf & (phase.read() == b.lit(16, 7));
    auto checksum = b.reg("checksum", 32);
    b.next(checksum,
           b.mux(emit, rotl32(checksum.read(), 1) ^ out,
                 checksum.read()));

    // Golden model.
    uint32_t g_bits = 0x9e3779b9;
    uint16_t g_state = 0;
    uint16_t g_coeff[8] = {0};
    uint16_t g_phase = 0;
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        bool bit_now = g_bits & 1;
        uint16_t node_now = tree[g_state];
        bool leaf = node_now & 0x8000;
        uint16_t s = node_now & 0xff;
        uint16_t l = (node_now >> 7) & 0x7f;
        uint16_t r = node_now & 0x7f;
        uint32_t out_now = 0;
        for (unsigned i = 0; i < 8; ++i)
            out_now += static_cast<uint32_t>(g_coeff[i]) * idct_w[i];
        bool emit_now = leaf && g_phase == 7;
        if (emit_now)
            g_checksum = rotl32(g_checksum, 1) ^ out_now;
        if (leaf) {
            uint16_t newc_now =
                static_cast<uint16_t>(s * dequant[g_phase & 7]);
            for (unsigned i = 8; i-- > 1;)
                g_coeff[i] = g_coeff[i - 1];
            g_coeff[0] = newc_now;
            g_phase = (g_phase + 1) & 7;
            g_state = 0;
        } else {
            g_state = bit_now ? r : l;
        }
        g_bits = xorshift32(g_bits);
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "jpeg");
    return b.build();
}

// --------------------------------------------------------------------
// blur: 3x3 stencil over line buffers.
// --------------------------------------------------------------------

Netlist
buildBlur(uint64_t check_cycles)
{
    constexpr unsigned kRowLen = 16;
    CircuitBuilder b("blur");
    static const uint16_t kKernel[3][3] = {
        {1, 2, 1}, {2, 4, 2}, {1, 2, 1}};

    auto pixel_src = b.reg("pixel_src", 16, 0x5eed);
    b.next(pixel_src, lfsr16(b, pixel_src.read()));

    RegHandle rows[3][kRowLen];
    uint16_t g_rows[3][kRowLen] = {};
    for (unsigned r = 0; r < 3; ++r)
        for (unsigned x = 0; x < kRowLen; ++x)
            rows[r][x] = b.reg(
                "row" + std::to_string(r) + "_" + std::to_string(x), 16);

    // Shift: new pixel enters row0; row ends feed the next row.
    for (unsigned r = 0; r < 3; ++r) {
        for (unsigned x = 0; x < kRowLen; ++x) {
            Signal in = x > 0 ? rows[r][x - 1].read()
                              : (r == 0 ? pixel_src.read()
                                        : rows[r - 1][kRowLen - 1].read());
            b.next(rows[r][x], in);
        }
    }

    Signal fold = b.lit(16, 0);
    for (unsigned x = 1; x + 1 < kRowLen; ++x) {
        Signal o = b.lit(16, 0);
        for (unsigned dy = 0; dy < 3; ++dy)
            for (unsigned dx = 0; dx < 3; ++dx)
                o = o + rows[dy][x + dx - 1].read() *
                            b.lit(16, kKernel[dy][dx]);
        fold = fold ^ o;
    }
    auto checksum = b.reg("checksum", 32);
    b.next(checksum, rotl32(checksum.read(), 1) ^ fold.zext(32));

    // Golden model.
    uint16_t g_src = 0x5eed;
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint16_t fold_now = 0;
        for (unsigned x = 1; x + 1 < kRowLen; ++x) {
            uint16_t o = 0;
            for (unsigned dy = 0; dy < 3; ++dy)
                for (unsigned dx = 0; dx < 3; ++dx)
                    o = static_cast<uint16_t>(
                        o + g_rows[dy][x + dx - 1] * kKernel[dy][dx]);
            fold_now ^= o;
        }
        g_checksum = rotl32(g_checksum, 1) ^ fold_now;
        for (unsigned r = 3; r-- > 0;) {
            for (unsigned x = kRowLen; x-- > 1;)
                g_rows[r][x] = g_rows[r][x - 1];
            g_rows[r][0] =
                r == 0 ? g_src : g_rows[r - 1][kRowLen - 1];
        }
        g_src = lfsr16(g_src);
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "blur");
    return b.build();
}

// --------------------------------------------------------------------
// mc: Monte-Carlo price paths.
// --------------------------------------------------------------------

Netlist
buildMcSized(uint64_t check_cycles, unsigned kPaths)
{
    CircuitBuilder b("mc");

    std::vector<RegHandle> rng_regs(kPaths), price(kPaths);
    std::vector<uint32_t> g_rng(kPaths), g_price(kPaths);
    for (unsigned p = 0; p < kPaths; ++p) {
        uint32_t seed = 0x1234567 + p * 0x9e3779b9;
        rng_regs[p] = b.reg("rng" + std::to_string(p), 32, seed);
        g_rng[p] = seed;
        price[p] = b.reg("price" + std::to_string(p), 32, 1 << 16);
        g_price[p] = 1 << 16;
    }

    Signal fold = b.lit(32, 0);
    for (unsigned p = 0; p < kPaths; ++p) {
        uint32_t vol = 200 + p * 7;
        b.next(rng_regs[p], xorshift32(rng_regs[p].read()));
        Signal noise = rng_regs[p].read() & b.lit(32, 0xffff);
        Signal drift =
            (price[p].read().lshr(8u) * b.lit(32, vol)).lshr(8u);
        Signal updated =
            price[p].read() + drift + noise - b.lit(32, 0x8000);
        b.next(price[p], updated);
        fold = fold ^ price[p].read();
    }
    auto checksum = b.reg("checksum", 32);
    b.next(checksum, rotl32(checksum.read(), 1) ^ fold);

    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint32_t fold_now = 0;
        for (unsigned p = 0; p < kPaths; ++p)
            fold_now ^= g_price[p];
        g_checksum = rotl32(g_checksum, 1) ^ fold_now;
        for (unsigned p = 0; p < kPaths; ++p) {
            uint32_t vol = 200 + p * 7;
            uint32_t noise = g_rng[p] & 0xffff;
            uint32_t drift = ((g_price[p] >> 8) * vol) >> 8;
            g_price[p] = g_price[p] + drift + noise - 0x8000;
            g_rng[p] = xorshift32(g_rng[p]);
        }
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "mc");
    return b.build();
}

Netlist
buildMc(uint64_t check_cycles)
{
    return buildMcSized(check_cycles, 16);
}

// --------------------------------------------------------------------
// noc: 4x4 deflection torus with conservation assertions.
// --------------------------------------------------------------------

Netlist
buildNoc(uint64_t check_cycles)
{
    constexpr unsigned kDim = 4;
    CircuitBuilder b("noc");

    // Flit: [15:14] destX, [13:12] destY, [11:0] payload.
    struct Router
    {
        RegHandle xv, xf, yv, yf; // X/Y ring buffers (valid + flit)
        RegHandle gen;            // local traffic LFSR
        RegHandle pendv, pendf;   // pending injection
    };
    Router r[kDim][kDim];
    struct GRouter
    {
        bool xv = false, yv = false, pendv = false;
        uint16_t xf = 0, yf = 0, pendf = 0, gen = 0;
    };
    GRouter g[kDim][kDim];

    for (unsigned x = 0; x < kDim; ++x) {
        for (unsigned y = 0; y < kDim; ++y) {
            std::string id = std::to_string(x) + std::to_string(y);
            r[x][y].xv = b.reg("xv" + id, 1);
            r[x][y].xf = b.reg("xf" + id, 16);
            r[x][y].yv = b.reg("yv" + id, 1);
            r[x][y].yf = b.reg("yf" + id, 16);
            uint16_t seed =
                static_cast<uint16_t>(0x7231 + x * 47 + y * 131);
            r[x][y].gen = b.reg("gen" + id, 16, seed);
            g[x][y].gen = seed;
            r[x][y].pendv = b.reg("pendv" + id, 1);
            r[x][y].pendf = b.reg("pendf" + id, 16);
        }
    }

    auto counters_injected = b.reg("injected", 32);
    auto counters_delivered = b.reg("delivered", 32);
    auto checksum = b.reg("checksum", 32);

    // Per-router routing logic.  Outputs wired to the east/south
    // neighbours' ring buffers.
    struct RouterOut
    {
        Signal outXv, outXf, outYv, outYf;
        Signal eject, ejectF;
        Signal injected;
        Signal pendvN, pendfN;
    };
    std::vector<std::vector<RouterOut>> out(
        kDim, std::vector<RouterOut>(kDim));

    for (unsigned x = 0; x < kDim; ++x) {
        for (unsigned y = 0; y < kDim; ++y) {
            Signal xv = r[x][y].xv.read();
            Signal xf = r[x][y].xf.read();
            Signal yv = r[x][y].yv.read();
            Signal yf = r[x][y].yf.read();

            Signal myx = b.lit(2, x), myy = b.lit(2, y);
            Signal a_dx = xf.slice(14, 2), a_dy = xf.slice(12, 2);
            Signal b_dy = yf.slice(12, 2);

            // A (on the X ring): continue X, turn to Y, or eject.
            Signal a_wantX = xv & !(a_dx == myx);
            Signal a_here = xv & (a_dx == myx);
            Signal a_wantY = a_here & !(a_dy == myy);
            Signal a_wantEj = a_here & (a_dy == myy);
            // B (on the Y ring): continue Y or eject.
            Signal b_wantY = yv & !(b_dy == myy);
            Signal b_wantEj = yv & (b_dy == myy);

            // Y output: B has priority (ring continuation).
            Signal outYv = b_wantY | a_wantY;
            Signal outYf = b.mux(b_wantY, yf, xf);
            // Eject: B first; A ejects only when B does not.
            Signal eject = b_wantEj | (a_wantEj & !b_wantEj);
            Signal ejectF = b.mux(b_wantEj, yf, xf);
            // A deflects back to X if it lost its port.
            Signal a_deflect = (a_wantY & b_wantY) |
                               (a_wantEj & b_wantEj);
            Signal a_toX = a_wantX | a_deflect;

            // Local injection: pend flit enters X when X is free.
            Signal can_inject = r[x][y].pendv.read() & !a_toX;
            Signal outXv = a_toX | can_inject;
            Signal outXf = b.mux(a_toX, xf, r[x][y].pendf.read());

            // Pending generation: refill when empty.
            Signal gen = r[x][y].gen.read();
            Signal dest = gen.slice(4, 4);
            Signal self = b.lit(4, x | (y << 2));
            Signal fixed =
                b.mux(dest == self, dest ^ b.lit(4, 5), dest);
            // Flit layout: destX=[15:14] destY=[13:12]; fixed is
            // (x | y<<2), so destX = fixed[1:0], destY = fixed[3:2].
            Signal new_flit = b.cat(
                {fixed.slice(0, 2), fixed.slice(2, 2), gen.slice(0, 12)});
            Signal pend_empty = (!r[x][y].pendv.read()) | can_inject;
            Signal pendvN = b.lit(1, 1); // refilled every cycle
            Signal pendfN =
                b.mux(pend_empty, new_flit, r[x][y].pendf.read());
            b.next(r[x][y].gen, lfsr16(b, gen));

            out[x][y] = {outXv, outXf, outYv,  outYf, eject,
                         ejectF, can_inject, pendvN, pendfN};
        }
    }

    // Wire ring buffers: east/south neighbours receive the outputs.
    for (unsigned x = 0; x < kDim; ++x) {
        for (unsigned y = 0; y < kDim; ++y) {
            const RouterOut &west = out[(x + kDim - 1) % kDim][y];
            const RouterOut &north = out[x][(y + kDim - 1) % kDim];
            b.next(r[x][y].xv, west.outXv);
            b.next(r[x][y].xf, west.outXf);
            b.next(r[x][y].yv, north.outYv);
            b.next(r[x][y].yf, north.outYf);
            b.next(r[x][y].pendv, out[x][y].pendvN);
            b.next(r[x][y].pendf, out[x][y].pendfN);
        }
    }

    // Counters, checksum, and the conservation invariant.
    Signal inj = b.lit(32, 0), del = b.lit(32, 0), fold = b.lit(16, 0);
    Signal inflight = b.lit(32, 0);
    for (unsigned x = 0; x < kDim; ++x) {
        for (unsigned y = 0; y < kDim; ++y) {
            inj = inj + out[x][y].injected.zext(32);
            del = del + out[x][y].eject.zext(32);
            fold = fold ^ b.mux(out[x][y].eject, out[x][y].ejectF,
                                b.lit(16, 0));
            inflight = inflight + r[x][y].xv.read().zext(32) +
                       r[x][y].yv.read().zext(32);
        }
    }
    b.next(counters_injected, counters_injected.read() + inj);
    b.next(counters_delivered, counters_delivered.read() + del);
    b.next(checksum, rotl32(checksum.read(), 1) ^ fold.zext(32));

    // Conservation: flits injected == delivered + in flight, checked
    // against the *registered* counters every cycle.
    Signal expect_inflight =
        counters_injected.read() - counters_delivered.read();
    b.assertAlways(b.lit(1, 1), expect_inflight == inflight,
                   "noc flit conservation violated");

    // Golden model.
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        struct GOut
        {
            bool xv = false, yv = false, ej = false, inj = false;
            uint16_t xf = 0, yf = 0, ejf = 0;
            bool pendvN = true;
            uint16_t pendfN = 0;
        };
        GOut go[kDim][kDim];
        uint16_t fold_now = 0;
        for (unsigned x = 0; x < kDim; ++x) {
            for (unsigned y = 0; y < kDim; ++y) {
                GRouter &cur = g[x][y];
                unsigned a_dx = (cur.xf >> 14) & 3;
                unsigned a_dy = (cur.xf >> 12) & 3;
                unsigned b_dy = (cur.yf >> 12) & 3;
                bool a_wantX = cur.xv && a_dx != x;
                bool a_here = cur.xv && a_dx == x;
                bool a_wantY = a_here && a_dy != y;
                bool a_wantEj = a_here && a_dy == y;
                bool b_wantY = cur.yv && b_dy != y;
                bool b_wantEj = cur.yv && b_dy == y;
                GOut &o = go[x][y];
                o.yv = b_wantY || a_wantY;
                o.yf = b_wantY ? cur.yf : cur.xf;
                o.ej = b_wantEj || (a_wantEj && !b_wantEj);
                o.ejf = b_wantEj ? cur.yf : cur.xf;
                bool a_deflect =
                    (a_wantY && b_wantY) || (a_wantEj && b_wantEj);
                bool a_toX = a_wantX || a_deflect;
                bool can_inject = cur.pendv && !a_toX;
                o.xv = a_toX || can_inject;
                o.xf = a_toX ? cur.xf : cur.pendf;
                o.inj = can_inject;
                unsigned dest = (cur.gen >> 4) & 15;
                unsigned self = x | (y << 2);
                unsigned fixed = dest == self ? (dest ^ 5) : dest;
                uint16_t new_flit = static_cast<uint16_t>(
                    ((fixed & 3) << 14) | (((fixed >> 2) & 3) << 12) |
                    (cur.gen & 0xfff));
                bool pend_empty = !cur.pendv || can_inject;
                o.pendfN = pend_empty ? new_flit : cur.pendf;
                if (o.ej)
                    fold_now ^= o.ejf;
            }
        }
        g_checksum = rotl32(g_checksum, 1) ^ fold_now;
        GRouter next_g[kDim][kDim];
        for (unsigned x = 0; x < kDim; ++x) {
            for (unsigned y = 0; y < kDim; ++y) {
                const GOut &west = go[(x + kDim - 1) % kDim][y];
                const GOut &north = go[x][(y + kDim - 1) % kDim];
                next_g[x][y].xv = west.xv;
                next_g[x][y].xf = west.xf;
                next_g[x][y].yv = north.yv;
                next_g[x][y].yf = north.yf;
                next_g[x][y].pendv = go[x][y].pendvN;
                next_g[x][y].pendf = go[x][y].pendfN;
                next_g[x][y].gen = lfsr16(g[x][y].gen);
            }
        }
        for (unsigned x = 0; x < kDim; ++x)
            for (unsigned y = 0; y < kDim; ++y)
                g[x][y] = next_g[x][y];
    }

    addDriver(b, check_cycles, checksum.read(), g_checksum, "noc");
    return b.build();
}

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> kBenchmarks = {
        {"vta", buildVta, 600},
        {"mc", buildMc, 512},
        {"noc", buildNoc, 512},
        {"mm", buildMm, 256},
        {"rv32r", buildRv32r, 512},
        {"cgra", buildCgra, 512},
        {"bc", buildBc, 512},
        {"blur", buildBlur, 512},
        {"jpeg", buildJpeg, 2048},
    };
    return kBenchmarks;
}

const std::vector<Benchmark> &
allBenchmarksLarge()
{
    static const std::vector<Benchmark> kBenchmarks = {
        {"vta", buildVta, 600},
        {"mc", [](uint64_t c) { return buildMcSized(c, 128); }, 512},
        {"noc", buildNoc, 512},
        {"mm", [](uint64_t c) { return buildMmSized(c, 32); }, 256},
        {"rv32r", buildRv32r, 512},
        {"cgra", [](uint64_t c) { return buildCgraSized(c, 16); }, 512},
        {"bc", [](uint64_t c) { return buildBcSized(c, 16); }, 512},
        {"blur", buildBlur, 512},
        {"jpeg", buildJpeg, 2048},
    };
    return kBenchmarks;
}

} // namespace manticore::designs
