/**
 * @file
 * §7.7 global-stall microbenchmarks: a FIFO that streams its backing
 * memory sequentially and a RAM that reads/writes pseudo-random
 * (xorshift) addresses, each performing one load and one store per
 * Vcycle.  At 1 KiB the memory fits a scratchpad; at 64 KiB it lives
 * in DRAM but fits the privileged cache; at 512 KiB it spills to
 * DRAM proper — reproducing Fig. 8's three regimes.
 */

#include "designs/designs.hh"

#include "netlist/builder.hh"
#include "support/logging.hh"

namespace manticore::designs {

using netlist::CircuitBuilder;
using netlist::MemHandle;
using netlist::Netlist;
using netlist::Signal;

namespace {

Signal
lfsr16s(CircuitBuilder &b, Signal x)
{
    Signal sh = x.lshr(1u);
    return b.mux(x.bit(0), sh ^ b.lit(16, 0xB400), sh);
}
uint16_t
lfsr16g(uint16_t x)
{
    uint16_t sh = x >> 1;
    return (x & 1) ? sh ^ 0xB400 : sh;
}

Signal
xorshift32s(Signal x)
{
    Signal a = x ^ x.shl(13u);
    Signal c = a ^ a.lshr(17u);
    return c ^ c.shl(5u);
}
uint32_t
xorshift32g(uint32_t x)
{
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return x;
}

void
microDriver(CircuitBuilder &b, uint64_t check_cycles, Signal checksum,
            uint32_t golden, const std::string &name)
{
    auto cycle = b.reg("drv_cycle", 32);
    b.next(cycle, cycle.read() + b.lit(32, 1));
    Signal at_end = cycle.read() == b.lit(32, check_cycles);
    b.display(at_end, name + ": checksum=%d", {checksum});
    b.assertAlways(at_end, checksum == b.lit(32, golden),
                   name + " checksum mismatch");
    b.finish(at_end);
}

} // namespace

Netlist
buildFifoMicro(unsigned size_kib, uint64_t check_cycles)
{
    unsigned depth = size_kib * 1024 / 2; // 16-bit elements
    MANTICORE_ASSERT((depth & (depth - 1)) == 0, "depth must be pow2");
    CircuitBuilder b("fifo_micro_" + std::to_string(size_kib) + "k");

    MemHandle mem = b.memory("fifo_mem", 16, depth);
    unsigned aw = 32;
    // Half-full steady state.  The occupancy is offset by a non-power-
    // of-two so the two streaming pointers never alias to the same
    // direct-mapped cache set (a real FIFO's sizing, not a benchmark
    // of pathological conflict misses).
    unsigned occupancy = depth / 2 + (depth > 2048 ? 1063 : 0);
    auto head = b.reg("head", aw);
    auto tail = b.reg("tail", aw, occupancy);
    auto src = b.reg("src", 16, 0x5a5a);
    b.next(src, lfsr16s(b, src.read()));

    Signal popped = mem.read(head.read());
    mem.write(tail.read(), src.read(), b.lit(1, 1));
    b.next(head, head.read() + b.lit(aw, 1));
    b.next(tail, tail.read() + b.lit(aw, 1));

    auto checksum = b.reg("checksum", 32);
    b.next(checksum,
           (checksum.read().shl(1u) | checksum.read().lshr(31u)) ^
               popped.zext(32));

    // Golden.
    std::vector<uint16_t> g_mem(depth, 0);
    uint32_t g_head = 0, g_tail = occupancy;
    uint16_t g_src = 0x5a5a;
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint16_t popped_now = g_mem[g_head & (depth - 1)];
        g_checksum = ((g_checksum << 1) | (g_checksum >> 31)) ^
                     popped_now;
        g_mem[g_tail & (depth - 1)] = g_src;
        ++g_head;
        ++g_tail;
        g_src = lfsr16g(g_src);
    }

    microDriver(b, check_cycles, checksum.read(), g_checksum,
                "fifo_micro");
    return b.build();
}

Netlist
buildRamMicro(unsigned size_kib, uint64_t check_cycles)
{
    unsigned depth = size_kib * 1024 / 2;
    MANTICORE_ASSERT((depth & (depth - 1)) == 0, "depth must be pow2");
    CircuitBuilder b("ram_micro_" + std::to_string(size_kib) + "k");

    MemHandle mem = b.memory("ram_mem", 16, depth);
    auto raddr = b.reg("raddr", 32, 0xdead4ea1);
    auto waddr = b.reg("waddr", 32, 0x12345679);
    auto src = b.reg("src", 16, 0x0bad);
    b.next(raddr, xorshift32s(raddr.read()));
    b.next(waddr, xorshift32s(waddr.read()));
    b.next(src, lfsr16s(b, src.read()));

    Signal loaded = mem.read(raddr.read());
    mem.write(waddr.read(), src.read(), b.lit(1, 1));

    auto checksum = b.reg("checksum", 32);
    b.next(checksum,
           (checksum.read().shl(1u) | checksum.read().lshr(31u)) ^
               loaded.zext(32));

    // Golden.
    std::vector<uint16_t> g_mem(depth, 0);
    uint32_t g_ra = 0xdead4ea1, g_wa = 0x12345679;
    uint16_t g_src = 0x0bad;
    uint32_t g_checksum = 0;
    for (uint64_t c = 0; c < check_cycles; ++c) {
        uint16_t loaded_now = g_mem[g_ra & (depth - 1)];
        g_checksum = ((g_checksum << 1) | (g_checksum >> 31)) ^
                     loaded_now;
        g_mem[g_wa & (depth - 1)] = g_src;
        g_ra = xorshift32g(g_ra);
        g_wa = xorshift32g(g_wa);
        g_src = lfsr16g(g_src);
    }

    microDriver(b, check_cycles, checksum.read(), g_checksum,
                "ram_micro");
    return b.build();
}

} // namespace manticore::designs
