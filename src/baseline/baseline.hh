/**
 * @file
 * The software full-cycle RTL simulator used as the paper's baseline
 * (standing in for Verilator v5.006; DESIGN.md §1).
 *
 * CompiledDesign flattens a (<=64-bit) netlist into a dense array of
 * word operations over value slots — the moral equivalent of
 * Verilator's generated C++.  SerialSimulator evaluates it one cycle
 * at a time.  ThreadedSimulator executes the same op stream with a
 * pool of worker threads: ops are grouped into macro-tasks (levelised
 * chunks of the DAG — a simplification of Verilator's Sarkar-based
 * coarsening with the same synchronisation structure), tasks
 * synchronise through atomic completion epochs, and each simulated
 * cycle ends with the two barrier rendezvous §7.1 describes.
 */

#ifndef MANTICORE_BASELINE_BASELINE_HH
#define MANTICORE_BASELINE_BASELINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netlist/netlist.hh"

namespace manticore::baseline {

enum class SimStatus
{
    Ok,
    Finished,
    AssertFailed,
};

/** A netlist compiled to a flat evaluation program over 64-bit value
 *  slots.  Only designs whose signals are at most 64 bits wide are
 *  supported (all bundled benchmarks qualify); use the reference
 *  netlist::Evaluator for wider designs. */
class CompiledDesign
{
  public:
    /** Keeps its own copy of the netlist; temporaries are fine. */
    explicit CompiledDesign(netlist::Netlist netlist);

    struct Op
    {
        netlist::OpKind kind;
        uint32_t dst;
        uint32_t a = 0, b = 0, c = 0;
        uint32_t mem = 0;
        uint32_t lo = 0;
        uint64_t mask = 0;   ///< width mask of the result
        uint64_t imm = 0;    ///< constant payload
        unsigned shiftB = 0; ///< concat: width of the low operand
    };

    struct RegCommit
    {
        uint32_t reg;
        uint32_t next; ///< value slot
    };

    struct MemCommit
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< value slots
        uint64_t addrMask;
    };

    struct Check
    {
        enum class Kind { Assert, Display, Finish } kind;
        uint32_t enable; ///< value slot
        uint32_t cond;   ///< Assert only
        std::string text;
        std::vector<uint32_t> args;
        std::vector<uint64_t> argMasks;
    };

    const netlist::Netlist &netlist() const { return _netlist; }
    const std::vector<Op> &ops() const { return _ops; }
    const std::vector<RegCommit> &regCommits() const { return _regCommits; }
    const std::vector<MemCommit> &memCommits() const { return _memCommits; }
    const std::vector<Check> &checks() const { return _checks; }
    size_t numSlots() const { return _numSlots; }
    const std::vector<uint64_t> &regInit() const { return _regInit; }
    const std::vector<std::vector<uint64_t>> &memInit() const
    {
        return _memInit;
    }
    /// Topological level of each op (for macro-task formation).
    const std::vector<uint32_t> &opLevel() const { return _opLevel; }
    uint32_t numLevels() const { return _numLevels; }

  private:
    netlist::Netlist _netlist;
    std::vector<Op> _ops;
    std::vector<RegCommit> _regCommits;
    std::vector<MemCommit> _memCommits;
    std::vector<Check> _checks;
    std::vector<uint64_t> _regInit;
    std::vector<std::vector<uint64_t>> _memInit;
    std::vector<uint32_t> _opLevel;
    uint32_t _numLevels = 0;
    size_t _numSlots = 0;
};

/** Mutable simulation state shared by both engines. */
struct SimState
{
    explicit SimState(const CompiledDesign &design);

    std::vector<uint64_t> values;
    std::vector<uint64_t> regs;
    std::vector<std::vector<uint64_t>> mems;
    uint64_t cycle = 0;
    SimStatus status = SimStatus::Ok;
    std::string failureMessage;
    std::vector<std::string> displayLog;
    bool collectDisplays = true;
};

/** Evaluate one op against the state (shared by both engines). */
void evalOp(const CompiledDesign::Op &op, SimState &state);

/** Side effects + state commit for one cycle; returns the status. */
SimStatus commitCycle(const CompiledDesign &design, SimState &state);

class SerialSimulator
{
  public:
    explicit SerialSimulator(const CompiledDesign &design)
        : _design(design), _state(design)
    {}

    SimStatus step();
    SimStatus run(uint64_t max_cycles);

    SimState &state() { return _state; }
    uint64_t cycle() const { return _state.cycle; }
    SimStatus status() const { return _state.status; }

  private:
    const CompiledDesign &_design;
    SimState _state;
};

/** Parallel engine: persistent worker pool, macro-tasks with atomic
 *  dependence epochs, two barriers per simulated cycle. */
class ThreadedSimulator
{
  public:
    ThreadedSimulator(const CompiledDesign &design, unsigned threads);
    ~ThreadedSimulator();

    SimStatus run(uint64_t max_cycles);

    SimState &state() { return _state; }
    uint64_t cycle() const { return _state.cycle; }
    SimStatus status() const { return _state.status; }
    size_t numTasks() const { return _tasks.size(); }

  private:
    struct Task
    {
        uint32_t begin, end; ///< op range
        std::vector<uint32_t> deps;
    };

    void workerLoop(unsigned tid);
    void runTask(uint32_t t);

    const CompiledDesign &_design;
    SimState _state;
    unsigned _threads;
    std::vector<uint32_t> _levelOrder; ///< op indices sorted by level
    std::vector<Task> _tasks;
    std::vector<std::vector<uint32_t>> _assignment; ///< per worker
    std::unique_ptr<std::atomic<uint64_t>[]> _taskEpoch;
    std::atomic<uint64_t> _goEpoch{0};
    std::atomic<unsigned> _workersDone{0};
    std::atomic<bool> _shutdown{false};
    std::vector<std::thread> _pool;
};

} // namespace manticore::baseline

#endif // MANTICORE_BASELINE_BASELINE_HH
