#include "baseline/baseline.hh"

#include <algorithm>

#include "netlist/evaluator.hh"
#include "support/logging.hh"

namespace manticore::baseline {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::OpKind;

namespace {

uint64_t
widthMask(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

} // namespace

CompiledDesign::CompiledDesign(Netlist nl_in) : _netlist(std::move(nl_in))
{
    const Netlist &netlist = _netlist;
    netlist.validate();
    _numSlots = netlist.numNodes();

    for (const netlist::Register &r : netlist.registers()) {
        MANTICORE_ASSERT(r.width <= 64,
                         "baseline engine supports <=64-bit signals (",
                         r.name, " is ", r.width, " bits)");
        _regInit.push_back(r.init.toUint64());
    }
    for (const netlist::Memory &m : netlist.memories()) {
        MANTICORE_ASSERT(m.width <= 64, "memory too wide for baseline");
        std::vector<uint64_t> image;
        for (const BitVector &v : m.init)
            image.push_back(v.toUint64());
        _memInit.push_back(std::move(image));
    }

    std::vector<uint32_t> node_level(netlist.numNodes(), 0);
    for (NodeId id = 0; id < netlist.numNodes(); ++id) {
        const Node &n = netlist.node(id);
        MANTICORE_ASSERT(n.width <= 64, "signal too wide for baseline");
        Op op;
        op.kind = n.kind;
        op.dst = id;
        op.mask = widthMask(n.width);
        op.lo = n.lo;
        uint32_t level = 0;
        for (NodeId operand : n.operands)
            level = std::max(level, node_level[operand] + 1);
        node_level[id] = level;
        switch (n.kind) {
          case OpKind::Const:
            op.imm = n.value.toUint64();
            break;
          case OpKind::Input:
            op.imm = 0; // inputs are driven to zero in the baseline
            break;
          case OpKind::RegRead:
            op.mem = n.regId;
            break;
          case OpKind::MemRead:
            op.mem = n.memId;
            op.a = n.operands[0];
            op.imm = netlist.memory(n.memId).depth;
            break;
          case OpKind::Concat:
            op.a = n.operands[0];
            op.b = n.operands[1];
            op.shiftB = netlist.node(n.operands[1]).width;
            break;
          default:
            if (n.operands.size() > 0)
                op.a = n.operands[0];
            if (n.operands.size() > 1)
                op.b = n.operands[1];
            if (n.operands.size() > 2)
                op.c = n.operands[2];
            break;
        }
        // Signed compare needs the operand width to locate sign bits.
        if (n.kind == OpKind::Slt || n.kind == OpKind::Ult ||
            n.kind == OpKind::Eq)
            op.imm = netlist.node(n.operands[0]).width;
        if (n.kind == OpKind::SExt)
            op.imm = netlist.node(n.operands[0]).width;
        if (n.kind == OpKind::RedAnd)
            op.imm = widthMask(netlist.node(n.operands[0]).width);
        _opLevel.push_back(level);
        _numLevels = std::max(_numLevels, level + 1);
        _ops.push_back(op);
    }

    for (const netlist::Register &r : netlist.registers())
        _regCommits.push_back(
            {static_cast<uint32_t>(&r - netlist.registers().data()),
             r.next});
    for (const netlist::MemWrite &w : netlist.memWrites())
        _memCommits.push_back({w.mem, w.addr, w.data, w.enable,
                               netlist.memory(w.mem).depth - 1ull});
    for (const netlist::Assert &a : netlist.asserts()) {
        Check c;
        c.kind = Check::Kind::Assert;
        c.enable = a.enable;
        c.cond = a.cond;
        c.text = a.message;
        _checks.push_back(std::move(c));
    }
    for (const netlist::Display &d : netlist.displays()) {
        Check c;
        c.kind = Check::Kind::Display;
        c.enable = d.enable;
        c.cond = 0;
        c.text = d.format;
        for (NodeId arg : d.args) {
            c.args.push_back(arg);
            c.argMasks.push_back(widthMask(netlist.node(arg).width));
        }
        _checks.push_back(std::move(c));
    }
    for (const netlist::Finish &f : netlist.finishes()) {
        Check c;
        c.kind = Check::Kind::Finish;
        c.enable = f.enable;
        c.cond = 0;
        _checks.push_back(std::move(c));
    }
}

SimState::SimState(const CompiledDesign &design)
    : values(design.numSlots(), 0), regs(design.regInit()),
      mems(design.memInit())
{
}

void
evalOp(const CompiledDesign::Op &op, SimState &st)
{
    uint64_t *v = st.values.data();
    uint64_t r;
    switch (op.kind) {
      case OpKind::Const:
      case OpKind::Input:
        r = op.imm;
        break;
      case OpKind::RegRead:
        r = st.regs[op.mem];
        break;
      case OpKind::MemRead:
        r = st.mems[op.mem][v[op.a] % op.imm];
        break;
      case OpKind::Add: r = (v[op.a] + v[op.b]) & op.mask; break;
      case OpKind::Sub: r = (v[op.a] - v[op.b]) & op.mask; break;
      case OpKind::Mul: r = (v[op.a] * v[op.b]) & op.mask; break;
      case OpKind::And: r = v[op.a] & v[op.b]; break;
      case OpKind::Or: r = v[op.a] | v[op.b]; break;
      case OpKind::Xor: r = v[op.a] ^ v[op.b]; break;
      case OpKind::Not: r = ~v[op.a] & op.mask; break;
      case OpKind::Shl:
        r = v[op.b] >= 64 ? 0 : (v[op.a] << v[op.b]) & op.mask;
        break;
      case OpKind::Lshr:
        r = v[op.b] >= 64 ? 0 : v[op.a] >> v[op.b];
        break;
      case OpKind::Eq: r = v[op.a] == v[op.b]; break;
      case OpKind::Ult: r = v[op.a] < v[op.b]; break;
      case OpKind::Slt: {
        unsigned w = static_cast<unsigned>(op.imm);
        int64_t a = static_cast<int64_t>(v[op.a] << (64 - w)) >> (64 - w);
        int64_t b = static_cast<int64_t>(v[op.b] << (64 - w)) >> (64 - w);
        r = a < b;
        break;
      }
      case OpKind::Mux: r = v[op.a] ? v[op.b] : v[op.c]; break;
      case OpKind::Slice: r = (v[op.a] >> op.lo) & op.mask; break;
      case OpKind::Concat:
        r = ((v[op.a] << op.shiftB) | v[op.b]) & op.mask;
        break;
      case OpKind::ZExt: r = v[op.a]; break;
      case OpKind::SExt: {
        unsigned w = static_cast<unsigned>(op.imm);
        uint64_t sign = (v[op.a] >> (w - 1)) & 1;
        r = sign ? (v[op.a] | (~0ull << w)) & op.mask : v[op.a];
        break;
      }
      case OpKind::RedOr: r = v[op.a] != 0; break;
      case OpKind::RedAnd: r = v[op.a] == op.imm; break;
      case OpKind::RedXor: r = __builtin_popcountll(v[op.a]) & 1; break;
      default:
        r = 0;
        break;
    }
    v[op.dst] = r;
}

SimStatus
commitCycle(const CompiledDesign &design, SimState &st)
{
    const uint64_t *v = st.values.data();

    bool finished = false;
    for (const CompiledDesign::Check &c : design.checks()) {
        if (!v[c.enable])
            continue;
        switch (c.kind) {
          case CompiledDesign::Check::Kind::Assert:
            if (!v[c.cond]) {
                st.status = SimStatus::AssertFailed;
                st.failureMessage =
                    "cycle " + std::to_string(st.cycle) +
                    ": assertion failed: " + c.text;
                return st.status;
            }
            break;
          case CompiledDesign::Check::Kind::Display:
            if (st.collectDisplays) {
                std::vector<BitVector> args;
                for (size_t i = 0; i < c.args.size(); ++i) {
                    unsigned width = 64 - static_cast<unsigned>(
                        __builtin_clzll(c.argMasks[i] | 1));
                    args.emplace_back(width, v[c.args[i]]);
                }
                st.displayLog.push_back(
                    netlist::Evaluator::formatDisplay(c.text, args));
            }
            break;
          case CompiledDesign::Check::Kind::Finish:
            finished = true;
            break;
        }
    }

    for (const CompiledDesign::RegCommit &rc : design.regCommits())
        st.regs[rc.reg] = st.values[rc.next];
    for (const CompiledDesign::MemCommit &mc : design.memCommits()) {
        if (st.values[mc.enable])
            st.mems[mc.mem][st.values[mc.addr] & mc.addrMask] =
                st.values[mc.data];
    }

    ++st.cycle;
    if (finished)
        st.status = SimStatus::Finished;
    return st.status;
}

SimStatus
SerialSimulator::step()
{
    if (_state.status != SimStatus::Ok)
        return _state.status;
    for (const CompiledDesign::Op &op : _design.ops())
        evalOp(op, _state);
    return commitCycle(_design, _state);
}

SimStatus
SerialSimulator::run(uint64_t max_cycles)
{
    for (uint64_t i = 0; i < max_cycles && _state.status == SimStatus::Ok;
         ++i)
        step();
    return _state.status;
}

ThreadedSimulator::ThreadedSimulator(const CompiledDesign &design,
                                     unsigned threads)
    : _design(design), _state(design), _threads(std::max(1u, threads))
{
    // Macro-task formation: chunk each topological level into at most
    // `threads` contiguous ranges.  Ops were emitted in id order, so
    // we first sort op indices by level (stable to preserve intra-
    // level order) and record task boundaries.
    const auto &ops = design.ops();
    std::vector<uint32_t> order(ops.size());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return design.opLevel()[a] < design.opLevel()[b];
                     });
    _levelOrder = std::move(order);

    std::vector<uint32_t> task_of_op(ops.size(), 0);
    size_t pos = 0;
    for (uint32_t level = 0; level < design.numLevels(); ++level) {
        size_t begin = pos;
        while (pos < _levelOrder.size() &&
               design.opLevel()[_levelOrder[pos]] == level)
            ++pos;
        size_t count = pos - begin;
        size_t chunks = std::min<size_t>(_threads, count);
        for (size_t c = 0; c < chunks; ++c) {
            size_t lo = begin + count * c / chunks;
            size_t hi = begin + count * (c + 1) / chunks;
            Task t;
            t.begin = static_cast<uint32_t>(lo);
            t.end = static_cast<uint32_t>(hi);
            uint32_t tid = static_cast<uint32_t>(_tasks.size());
            for (size_t k = lo; k < hi; ++k)
                task_of_op[_levelOrder[k]] = tid;
            _tasks.push_back(std::move(t));
        }
    }

    // Task dependencies: the tasks producing any operand.
    for (Task &t : _tasks) {
        std::vector<uint32_t> deps;
        for (uint32_t k = t.begin; k < t.end; ++k) {
            const Node &n =
                design.netlist().node(_levelOrder[k]);
            for (NodeId operand : n.operands) {
                uint32_t d = task_of_op[operand];
                if (d != task_of_op[_levelOrder[k]])
                    deps.push_back(d);
            }
        }
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        t.deps = std::move(deps);
    }

    // Static assignment: round-robin within each level.
    _assignment.resize(_threads);
    std::vector<uint32_t> per_level_counter(design.numLevels(), 0);
    for (uint32_t t = 0; t < _tasks.size(); ++t) {
        uint32_t level =
            design.opLevel()[_levelOrder[_tasks[t].begin]];
        _assignment[per_level_counter[level]++ % _threads].push_back(t);
    }

    _taskEpoch = std::make_unique<std::atomic<uint64_t>[]>(_tasks.size());
    for (size_t t = 0; t < _tasks.size(); ++t)
        _taskEpoch[t].store(0, std::memory_order_relaxed);

    for (unsigned w = 0; w < _threads; ++w)
        _pool.emplace_back([this, w] { workerLoop(w); });
}

ThreadedSimulator::~ThreadedSimulator()
{
    _shutdown.store(true, std::memory_order_release);
    _goEpoch.fetch_add(1, std::memory_order_acq_rel);
    for (std::thread &t : _pool)
        t.join();
}

void
ThreadedSimulator::runTask(uint32_t t)
{
    const Task &task = _tasks[t];
    uint64_t epoch = _goEpoch.load(std::memory_order_acquire);
    // Spin on producer tasks: the fine-grain synchronisation Verilator
    // pays between mtasks.  Yield so oversubscribed hosts make
    // progress (a blocked spinner would otherwise burn its whole
    // scheduler quantum).
    for (uint32_t dep : task.deps)
        while (_taskEpoch[dep].load(std::memory_order_acquire) < epoch)
            std::this_thread::yield();
    for (uint32_t k = task.begin; k < task.end; ++k)
        evalOp(_design.ops()[_levelOrder[k]], _state);
    _taskEpoch[t].store(epoch, std::memory_order_release);
}

void
ThreadedSimulator::workerLoop(unsigned tid)
{
    uint64_t seen = 0;
    while (true) {
        while (_goEpoch.load(std::memory_order_acquire) == seen)
            std::this_thread::yield();
        if (_shutdown.load(std::memory_order_acquire))
            return;
        seen = _goEpoch.load(std::memory_order_acquire);
        for (uint32_t t : _assignment[tid])
            runTask(t);
        _workersDone.fetch_add(1, std::memory_order_acq_rel);
    }
}

SimStatus
ThreadedSimulator::run(uint64_t max_cycles)
{
    for (uint64_t i = 0; i < max_cycles && _state.status == SimStatus::Ok;
         ++i) {
        _workersDone.store(0, std::memory_order_release);
        _goEpoch.fetch_add(1, std::memory_order_acq_rel);
        // Barrier 1: computation phase ends when all workers check in.
        while (_workersDone.load(std::memory_order_acquire) < _threads)
            std::this_thread::yield();
        // Barrier 2 (commit rendezvous): registers, memories, side
        // effects — the "communication" of newly computed values.
        commitCycle(_design, _state);
    }
    return _state.status;
}

} // namespace manticore::baseline
