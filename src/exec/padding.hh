/**
 * @file
 * The ensemble lane-padding policy.
 *
 * The laned limb kernels are instantiated at the compile-time lane
 * counts {1, 2, 4, 8, 16} so their lane loops vectorise with a known
 * trip count and no scalar tail.  A requested lane count that is not
 * one of those widths is padded UP to the next instantiated width
 * (and counts above 16 to a multiple of 16, executed as unrolled
 * 16-wide groups): the engine allocates and computes `padded` lanes
 * but only the `requested` lanes exist as far as any observer is
 * concerned.  Padded lanes are born frozen — they never fire effects,
 * never appear in stats, status, RunResult::lanes, snapshots or
 * replay digests, and their (deterministic, discarded) values cost
 * nothing beyond the vector slots that would otherwise sit empty.
 */

#ifndef MANTICORE_EXEC_PADDING_HH
#define MANTICORE_EXEC_PADDING_HH

namespace manticore::exec {

/** Smallest instantiated ensemble width >= requested (see file
 *  comment).  requested == 0 is the caller's bug and returns 0. */
inline unsigned
paddedLaneCount(unsigned requested)
{
    if (requested <= 2)
        return requested;
    if (requested <= 4)
        return 4;
    if (requested <= 8)
        return 8;
    if (requested <= 16)
        return 16;
    return (requested + 15) & ~15u; // multiple of 16: no vector tail
}

} // namespace manticore::exec

#endif // MANTICORE_EXEC_PADDING_HH
