/**
 * @file
 * The N-lane ensemble arena shared by the compiled engines.
 *
 * An Arena is the single uint64_t store every tape instruction
 * addresses by limb offset.  It holds N independent simulations
 * ("lanes") in a lane-strided structure-of-arrays layout: each
 * allocated word owns nlimbs(width) limbs PER LANE, lanes contiguous,
 *
 *     slot ──▶ [lane0: limb0..limbK-1][lane1: limb0..limbK-1] ...
 *
 * so lane l of a word allocated at `slot` lives at
 * slot + l * nlimbs(width), and for the single-limb words that
 * dominate real designs one op's N lane values are N consecutive
 * limbs — the shape the laned kernels in support/limbops.hh stream
 * over with a unit stride.  A 1-lane Arena degenerates to the
 * pre-ensemble flat layout (identical offsets, identical codegen).
 *
 * Allocation is a two-phase bump: alloc()/align() during engine
 * compilation, then one seal() that materialises the zeroed storage.
 * align() starts a region on a cache-line boundary — the partition-
 * parallel engine aligns every per-process region and register-file
 * owner group so distinct worker threads never write the same line.
 *
 * The arena lived in src/netlist/ until the lane-execution substrate
 * was hoisted out; the layout is engine-family-neutral (the ISA tape
 * interpreter lane-strides its register file the same way), so it
 * lives here now.  src/netlist/arena.hh keeps the old name as an
 * alias.
 */

#ifndef MANTICORE_EXEC_ARENA_HH
#define MANTICORE_EXEC_ARENA_HH

#include <cstdint>
#include <vector>

#include "support/bitvector.hh"
#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::exec {

class Arena
{
  public:
    explicit Arena(unsigned lanes = 1) : _lanes(lanes)
    {
        MANTICORE_ASSERT(lanes >= 1, "arena needs at least one lane");
    }

    unsigned lanes() const { return _lanes; }

    /** Reserve a lane-strided block for one width-bit word; returns
     *  the lane-0 limb offset (lane l lives at the returned slot
     *  + l * nlimbs(width)). */
    uint32_t
    alloc(unsigned width)
    {
        MANTICORE_ASSERT(!_sealed, "arena is sealed");
        uint64_t slot = _offset;
        _offset += static_cast<uint64_t>(limbops::nlimbs(width)) * _lanes;
        MANTICORE_ASSERT(_offset <= kMaxSlots,
                         "design x lanes too large for 32-bit slots");
        return static_cast<uint32_t>(slot);
    }

    /** Cache-line align (8 limbs = 64 bytes) the next allocation. */
    void
    align()
    {
        MANTICORE_ASSERT(!_sealed, "arena is sealed");
        _offset = (_offset + 7) & ~uint64_t{7};
    }

    /** Materialise the zeroed storage; no further alloc()s. */
    void
    seal()
    {
        MANTICORE_ASSERT(!_sealed, "arena sealed twice");
        _sealed = true;
        _limbs.assign(_offset, 0);
    }

    size_t limbs() const { return _limbs.size(); }
    uint64_t *data() { return _limbs.data(); }
    const uint64_t *data() const { return _limbs.data(); }

    /** Lane l's limbs of the word allocated at slot. */
    uint64_t *
    at(uint32_t slot, unsigned width, unsigned lane)
    {
        MANTICORE_ASSERT(lane < _lanes, "bad arena lane ", lane);
        return &_limbs[slot +
                       static_cast<size_t>(lane) * limbops::nlimbs(width)];
    }

    const uint64_t *
    at(uint32_t slot, unsigned width, unsigned lane) const
    {
        MANTICORE_ASSERT(lane < _lanes, "bad arena lane ", lane);
        return &_limbs[slot +
                       static_cast<size_t>(lane) * limbops::nlimbs(width)];
    }

    /** Materialise one lane's value (cold accessor paths). */
    BitVector read(uint32_t slot, unsigned width, unsigned lane) const;

    /** Drive one lane of a word. */
    void write(uint32_t slot, unsigned lane, const BitVector &value);

    /** Drive every lane of a word with the same value (constants,
     *  register init, broadcast stimulus). */
    void broadcast(uint32_t slot, const BitVector &value);

  private:
    static constexpr uint64_t kMaxSlots = ~uint32_t{0};

    unsigned _lanes;
    uint64_t _offset = 0;
    bool _sealed = false;
    std::vector<uint64_t> _limbs;
};

} // namespace manticore::exec

#endif // MANTICORE_EXEC_ARENA_HH
