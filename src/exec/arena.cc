#include "exec/arena.hh"

namespace manticore::exec {

namespace lo = ::manticore::limbops;

BitVector
Arena::read(uint32_t slot, unsigned width, unsigned lane) const
{
    const uint64_t *p = at(slot, width, lane);
    std::vector<uint64_t> limbs(p, p + lo::nlimbs(width));
    return BitVector::fromLimbs(width, limbs);
}

void
Arena::write(uint32_t slot, unsigned lane, const BitVector &value)
{
    lo::copy(at(slot, value.width(), lane), value.limbs().data(),
             lo::nlimbs(value.width()));
}

void
Arena::broadcast(uint32_t slot, const BitVector &value)
{
    lo::broadcast(&_limbs[slot], value.limbs().data(),
                  lo::nlimbs(value.width()), _lanes);
}

} // namespace manticore::exec
