/**
 * @file
 * Named instantiations of the laned limb kernels, one symbol per
 * (op, ensemble width) pair — the vectorisation witness for
 * tools/check_vectorized.
 *
 * The tape executors inline the same limbops templates into their
 * dispatch loops, where objdump cannot attribute vector instructions
 * to a particular kernel.  This translation unit (compiled with the
 * identical SIMD flags — see the manticore_simd target in
 * CMakeLists.txt) pins each instantiation behind a non-inlined,
 * demangleable symbol so the checker can disassemble exactly the
 * loop the ensembles run and fail the build if a width compiles to
 * scalar code.  The symbols are also handy in perf profiles.
 */

#ifndef MANTICORE_EXEC_LANE_KERNELS_HH
#define MANTICORE_EXEC_LANE_KERNELS_HH

#include <cstdint>

namespace manticore::exec {

// One block of kernels per instantiated ensemble width W (the widths
// exec::paddedLaneCount pads every request to).  d/a/b are
// lane-strided arena blocks of W consecutive limbs.
#define MANTICORE_DECLARE_LANE_KERNELS(W)                                   \
    void lanedAdd##W(uint64_t *d, const uint64_t *a, const uint64_t *b,     \
                     uint64_t mask);                                        \
    void lanedSub##W(uint64_t *d, const uint64_t *a, const uint64_t *b,     \
                     uint64_t mask);                                        \
    void lanedMul##W(uint64_t *d, const uint64_t *a, const uint64_t *b,     \
                     uint64_t mask);                                        \
    void lanedAnd##W(uint64_t *d, const uint64_t *a, const uint64_t *b);    \
    void lanedOr##W(uint64_t *d, const uint64_t *a, const uint64_t *b);     \
    void lanedXor##W(uint64_t *d, const uint64_t *a, const uint64_t *b);    \
    void lanedNot##W(uint64_t *d, const uint64_t *a, uint64_t mask);        \
    void lanedEq##W(uint64_t *d, const uint64_t *a, const uint64_t *b);     \
    void lanedUlt##W(uint64_t *d, const uint64_t *a, const uint64_t *b);    \
    void lanedSlt##W(uint64_t *d, const uint64_t *a, const uint64_t *b,     \
                     uint64_t sbit);                                        \
    void lanedMux##W(uint64_t *d, const uint64_t *sel, const uint64_t *t,   \
                     const uint64_t *e);                                    \
    void lanedSlice##W(uint64_t *d, const uint64_t *a, unsigned lo,         \
                       uint64_t mask);                                      \
    void lanedConcat##W(uint64_t *d, const uint64_t *hi,                    \
                        const uint64_t *lo_, unsigned lw);                  \
    void lanedSext##W(uint64_t *d, const uint64_t *a, unsigned aw,          \
                      uint64_t mask);

MANTICORE_DECLARE_LANE_KERNELS(2)
MANTICORE_DECLARE_LANE_KERNELS(4)
MANTICORE_DECLARE_LANE_KERNELS(8)
MANTICORE_DECLARE_LANE_KERNELS(16)

#undef MANTICORE_DECLARE_LANE_KERNELS

} // namespace manticore::exec

#endif // MANTICORE_EXEC_LANE_KERNELS_HH
