/**
 * @file
 * Per-lane run state shared by every ensemble-capable engine.
 *
 * An ensemble advances N decoupled simulations ("lanes") in lockstep.
 * Each lane carries its own cycle count, terminal status, failure
 * message and display transcript; a lane that reaches a terminal
 * status is *frozen* — its state stops advancing while the other
 * lanes continue.  These types used to live inside src/netlist/, but
 * the lane model is engine-family-neutral (the ISA tape interpreter
 * runs the same lockstep shape over its flat register files), so they
 * live here in the shared lane-execution layer.
 */

#ifndef MANTICORE_EXEC_LANE_STATE_HH
#define MANTICORE_EXEC_LANE_STATE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace manticore::exec {

enum class SimStatus
{
    Ok,           ///< still running
    Finished,     ///< a $finish fired
    AssertFailed, ///< an assertion failed
};

/** One ensemble lane's run state.  Kept as a single block per lane so
 *  the scalar hot path pays one pointer chase for the whole
 *  cycle/status/transcript bundle. */
struct LaneState
{
    uint64_t cycle = 0;
    SimStatus status = SimStatus::Ok;
    size_t logMark = 0; ///< display-log rollback mark on throw
    std::string failureMessage;
    std::vector<std::string> displayLog;
};

} // namespace manticore::exec

#endif // MANTICORE_EXEC_LANE_STATE_HH
