#include "exec/lane_kernels.hh"

#include "support/limbops.hh"

// Compiled into the manticore_simd target with the host's full SIMD
// flags and WITHOUT sanitizer instrumentation (instrumented stores
// defeat the vectoriser); see CMakeLists.txt.  noinline keeps every
// instantiation behind its own symbol for tools/check_vectorized.

namespace manticore::exec {

namespace lo = ::manticore::limbops;

#define MANTICORE_NOINLINE __attribute__((noinline))

#define MANTICORE_DEFINE_LANE_KERNELS(W)                                    \
    MANTICORE_NOINLINE void lanedAdd##W(                                    \
        uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask)   \
    {                                                                       \
        lo::addN<W>(d, a, b, mask, W);                                      \
    }                                                                       \
    MANTICORE_NOINLINE void lanedSub##W(                                    \
        uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask)   \
    {                                                                       \
        lo::subN<W>(d, a, b, mask, W);                                      \
    }                                                                       \
    MANTICORE_NOINLINE void lanedMul##W(                                    \
        uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask)   \
    {                                                                       \
        lo::mulN<W>(d, a, b, mask, W);                                      \
    }                                                                       \
    MANTICORE_NOINLINE void lanedAnd##W(uint64_t *d, const uint64_t *a,     \
                                        const uint64_t *b)                  \
    {                                                                       \
        lo::andN<W>(d, a, b, W);                                            \
    }                                                                       \
    MANTICORE_NOINLINE void lanedOr##W(uint64_t *d, const uint64_t *a,      \
                                       const uint64_t *b)                   \
    {                                                                       \
        lo::orN<W>(d, a, b, W);                                             \
    }                                                                       \
    MANTICORE_NOINLINE void lanedXor##W(uint64_t *d, const uint64_t *a,     \
                                        const uint64_t *b)                  \
    {                                                                       \
        lo::xorN<W>(d, a, b, W);                                            \
    }                                                                       \
    MANTICORE_NOINLINE void lanedNot##W(uint64_t *d, const uint64_t *a,     \
                                        uint64_t mask)                      \
    {                                                                       \
        lo::notN<W>(d, a, mask, W);                                         \
    }                                                                       \
    MANTICORE_NOINLINE void lanedEq##W(uint64_t *d, const uint64_t *a,      \
                                       const uint64_t *b)                   \
    {                                                                       \
        lo::eqN<W>(d, a, b, W);                                             \
    }                                                                       \
    MANTICORE_NOINLINE void lanedUlt##W(uint64_t *d, const uint64_t *a,     \
                                        const uint64_t *b)                  \
    {                                                                       \
        lo::ultN<W>(d, a, b, W);                                            \
    }                                                                       \
    MANTICORE_NOINLINE void lanedSlt##W(                                    \
        uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t sbit)   \
    {                                                                       \
        lo::sltN<W>(d, a, b, sbit, W);                                      \
    }                                                                       \
    MANTICORE_NOINLINE void lanedMux##W(uint64_t *d, const uint64_t *sel,   \
                                        const uint64_t *t,                  \
                                        const uint64_t *e)                  \
    {                                                                       \
        lo::muxN<W>(d, sel, t, e, W);                                       \
    }                                                                       \
    MANTICORE_NOINLINE void lanedSlice##W(uint64_t *d, const uint64_t *a,   \
                                          unsigned lo_bit, uint64_t mask)   \
    {                                                                       \
        lo::sliceN<W>(d, a, lo_bit, mask, W);                               \
    }                                                                       \
    MANTICORE_NOINLINE void lanedConcat##W(                                 \
        uint64_t *d, const uint64_t *hi, const uint64_t *lo_, unsigned lw)  \
    {                                                                       \
        lo::concatN<W>(d, hi, lo_, lw, W);                                  \
    }                                                                       \
    MANTICORE_NOINLINE void lanedSext##W(uint64_t *d, const uint64_t *a,    \
                                         unsigned aw, uint64_t mask)        \
    {                                                                       \
        lo::sextN<W>(d, a, aw, mask, W);                                    \
    }

MANTICORE_DEFINE_LANE_KERNELS(2)
MANTICORE_DEFINE_LANE_KERNELS(4)
MANTICORE_DEFINE_LANE_KERNELS(8)
MANTICORE_DEFINE_LANE_KERNELS(16)

#undef MANTICORE_DEFINE_LANE_KERNELS
#undef MANTICORE_NOINLINE

} // namespace manticore::exec
