#include "netlist/parallel_evaluator.hh"

#include <exception>
#include <unordered_map>

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

namespace {

constexpr uint32_t kNoSlot = ~0u;

uint64_t
alignLimbs(uint64_t offset)
{
    // Cache-line align region starts (8 limbs = 64 bytes) so distinct
    // processes never share a line they write.
    return (offset + 7) & ~uint64_t{7};
}

/** Spin-then-yield wait for a generation counter to move past `last`;
 *  returns the new value.  Yielding keeps oversubscribed (or
 *  single-core) hosts making progress, as in baseline's worker pool. */
uint64_t
waitAbove(const std::atomic<uint64_t> &gen, uint64_t last)
{
    uint64_t v;
    unsigned spins = 0;
    while ((v = gen.load(std::memory_order_acquire)) == last) {
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    return v;
}

void
waitCount(const std::atomic<uint64_t> &counter, uint64_t target)
{
    unsigned spins = 0;
    while (counter.load(std::memory_order_acquire) < target) {
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

} // namespace

ParallelCompiledEvaluator::ParallelCompiledEvaluator(
    Netlist netlist, const EvalOptions &options)
    : _netlist(std::move(netlist))
{
    _netlist.validate();
    unsigned hw = std::thread::hardware_concurrency();
    _numThreads = options.numThreads != 0 ? options.numThreads
                                          : std::max(1u, hw);
    compile(options.mergeAlgo);
    for (size_t p = 1; p < _procs.size(); ++p)
        _pool.emplace_back([this, p] { workerLoop(p); });
}

ParallelCompiledEvaluator::~ParallelCompiledEvaluator()
{
    // Workers always park at the compute rendezvous between steps;
    // bumping both generations with _shutdown set releases them from
    // either wait.
    _shutdown.store(true, std::memory_order_relaxed);
    _computeGen.fetch_add(1, std::memory_order_release);
    _commitGen.fetch_add(1, std::memory_order_release);
    for (std::thread &t : _pool)
        t.join();
}

void
ParallelCompiledEvaluator::compile(MergeAlgo algo)
{
    NetlistPartition part = partitionNetlist(_netlist, _numThreads, algo);
    _stats = part.stats;
    _mems = tape::buildMemStates(_netlist);

    const auto &nodes = _netlist.nodes();
    uint64_t offset = 0;

    // Shared source region: constants and inputs, written only at
    // build time / between steps.
    _sourceSlot.assign(nodes.size(), kNoSlot);
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].kind == OpKind::Const ||
            nodes[i].kind == OpKind::Input) {
            _sourceSlot[i] = static_cast<uint32_t>(offset);
            offset += lo::nlimbs(nodes[i].width);
        }
    }

    // Shared register file, grouped by committing process and
    // cache-line aligned per group: the only shared slots written
    // after construction, each by exactly one process per cycle.
    _regSlot.assign(_netlist.numRegisters(), kNoSlot);
    for (const NetlistProcess &proc : part.processes) {
        offset = alignLimbs(offset);
        for (RegId r : proc.registers) {
            MANTICORE_ASSERT(_regSlot[r] == kNoSlot,
                             "register owned by two processes");
            _regSlot[r] = static_cast<uint32_t>(offset);
            offset += lo::nlimbs(_netlist.reg(r).width);
        }
    }
    for (size_t r = 0; r < _netlist.numRegisters(); ++r)
        MANTICORE_ASSERT(_regSlot[r] != kNoSlot, "unowned register");

    // Per-process private regions: cone node slots, then staging for
    // RegRead-sourced commit operands.  Lowering happens in the same
    // sweep — node ids are topologically ordered and cones are
    // operand-closed, so every operand slot is resolvable by the time
    // it is needed.
    int effects_proc = -1;
    std::unordered_map<NodeId, uint32_t> effects_local;
    _procs.resize(part.processes.size());
    for (size_t p = 0; p < part.processes.size(); ++p) {
        const NetlistProcess &src = part.processes[p];
        Proc &proc = _procs[p];
        offset = alignLimbs(offset);

        std::unordered_map<NodeId, uint32_t> local;
        local.reserve(src.nodes.size() * 2);
        for (NodeId id : src.nodes) {
            local[id] = static_cast<uint32_t>(offset);
            offset += lo::nlimbs(nodes[id].width);
        }

        auto resolve = [&](NodeId id) -> uint32_t {
            const Node &n = _netlist.node(id);
            if (n.kind == OpKind::RegRead)
                return _regSlot[n.regId];
            if (n.kind == OpKind::Const || n.kind == OpKind::Input)
                return _sourceSlot[id];
            auto it = local.find(id);
            MANTICORE_ASSERT(it != local.end(),
                             "operand escapes its process cone");
            return it->second;
        };

        proc.tape.reserve(src.nodes.size());
        for (NodeId id : src.nodes) {
            const Node &n = _netlist.node(id);
            uint32_t a = n.operands.size() > 0 ? resolve(n.operands[0]) : 0;
            uint32_t b = n.operands.size() > 1 ? resolve(n.operands[1]) : 0;
            uint32_t c = n.operands.size() > 2 ? resolve(n.operands[2]) : 0;
            proc.tape.push_back(
                tape::lower(_netlist, id, local[id], a, b, c, _mems));
        }

        // Commit operands that live in the shared register file are
        // staged into the private region pre-barrier; everything else
        // (private slots, stable constants/inputs) is read directly.
        std::unordered_map<NodeId, uint32_t> staged;
        auto commitSlot = [&](NodeId id) -> uint32_t {
            const Node &n = _netlist.node(id);
            if (n.kind != OpKind::RegRead)
                return resolve(id);
            auto it = staged.find(id);
            if (it != staged.end())
                return it->second;
            uint32_t slot = static_cast<uint32_t>(offset);
            uint32_t limbs = lo::nlimbs(n.width);
            offset += limbs;
            staged.emplace(id, slot);
            proc.stages.push_back({slot, _regSlot[n.regId], limbs});
            return slot;
        };

        for (RegId r : src.registers) {
            const Register &reg = _netlist.reg(r);
            proc.regCommits.push_back({_regSlot[r], commitSlot(reg.next),
                                       lo::nlimbs(reg.width)});
        }
        for (uint32_t w : src.memWrites) {
            const MemWrite &mw = _netlist.memWrites()[w];
            proc.memCommits.push_back({mw.mem, commitSlot(mw.addr),
                                       commitSlot(mw.data),
                                       commitSlot(mw.enable)});
        }

        if (src.effects) {
            effects_proc = static_cast<int>(p);
            effects_local = std::move(local);
        }
    }

    // Side effects, resolved against the effects process's region (or
    // shared slots); the master fires them between the two barriers.
    bool have_effects = !_netlist.asserts().empty() ||
                        !_netlist.displays().empty() ||
                        !_netlist.finishes().empty();
    if (have_effects) {
        MANTICORE_ASSERT(effects_proc != -1, "effects cone unassigned");
        _effects = tape::Effects::compile(
            _netlist, [&](NodeId id) -> uint32_t {
                const Node &n = _netlist.node(id);
                if (n.kind == OpKind::RegRead)
                    return _regSlot[n.regId];
                if (n.kind == OpKind::Const || n.kind == OpKind::Input)
                    return _sourceSlot[id];
                auto it = effects_local.find(id);
                MANTICORE_ASSERT(it != effects_local.end(),
                                 "effect node outside effects cone");
                return it->second;
            });
    }

    MANTICORE_ASSERT(offset < kNoSlot, "design too large for 32-bit slots");
    _arena.assign(offset, 0);

    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].kind == OpKind::Const)
            lo::copy(&_arena[_sourceSlot[i]], nodes[i].value.limbs().data(),
                     lo::nlimbs(nodes[i].width));
    for (size_t r = 0; r < _netlist.numRegisters(); ++r) {
        const Register &reg = _netlist.reg(static_cast<RegId>(r));
        lo::copy(&_arena[_regSlot[r]], reg.init.limbs().data(),
                 lo::nlimbs(reg.width));
    }
}

void
ParallelCompiledEvaluator::computeProc(const Proc &proc)
{
    uint64_t *A = _arena.data();
    tape::run(proc.tape, A, _mems);
    for (const StageCopy &s : proc.stages)
        lo::copy(A + s.dst, A + s.src, s.limbs);
}

void
ParallelCompiledEvaluator::commitProc(const Proc &proc)
{
    uint64_t *A = _arena.data();
    // Memory writes never read shared register-file slots (those were
    // staged), so intra-process commit order is free; registers and
    // memories owned by other processes are untouched by design.
    for (const MemCommit &w : proc.memCommits) {
        if (A[w.enable]) {
            tape::MemState &m = _mems[w.mem];
            uint64_t addr = A[w.addr] % m.depth;
            lo::copy(&m.words[addr * m.wordLimbs], A + w.data,
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : proc.regCommits)
        lo::copy(A + rc.dst, A + rc.src, rc.limbs);
}

/* Batch protocol.  A run()/step() call issues ONE pool command: the
 * master bumps _computeGen once and every worker enters its batch
 * loop.  Within the batch, each cycle is
 *
 *   worker: compute; ++_computeDone; wait _commitGen; commit if
 *           _doCommit; read _batchMore; ++_commitDone; if more: wait
 *           _commitDone == everyone, roll into the next compute
 *   master: compute proc 0; wait _computeDone target; fire effects;
 *           publish _doCommit/_batchMore; bump _commitGen; commit
 *           proc 0; ++_commitDone; wait _commitDone target
 *
 * Barrier 2 (all commits visible before any next-cycle compute) is
 * the _commitDone counter itself: every participant — master
 * included — counts its commit, and a worker rolls over only once
 * the full cycle's count is in.  The batch thus pays one generation
 * signal per cycle (plus the counters) instead of two signals and
 * two counter resets, and the master never re-enters step().  The
 * done-counters are monotonic against per-thread targets, which is
 * what makes the reset-free roll-over safe: a worker's baseline read
 * at batch entry is stable because the master only bumps _computeGen
 * after the previous cycle's full commit count arrived.  _batchMore
 * is written by the master before the _commitGen release bump and
 * read by workers after its acquire, strictly before the master's
 * next write to it. */
void
ParallelCompiledEvaluator::workerLoop(size_t proc_index)
{
    const uint64_t participants = _procs.size();
    uint64_t seen_compute = 0, seen_commit = 0;
    while (true) {
        seen_compute = waitAbove(_computeGen, seen_compute);
        if (_shutdown.load(std::memory_order_relaxed))
            return;
        uint64_t commit_target =
            _commitDone.load(std::memory_order_acquire);
        while (true) {
            computeProc(_procs[proc_index]);
            _computeDone.fetch_add(1, std::memory_order_release);
            seen_commit = waitAbove(_commitGen, seen_commit);
            if (_shutdown.load(std::memory_order_relaxed))
                return;
            bool more = _batchMore;
            if (_doCommit)
                commitProc(_procs[proc_index]);
            _commitDone.fetch_add(1, std::memory_order_release);
            if (!more)
                break; // park at the next batch's compute rendezvous
            commit_target += participants;
            waitCount(_commitDone, commit_target);
        }
    }
}

SimStatus
ParallelCompiledEvaluator::step()
{
    return runBatch(1);
}

SimStatus
ParallelCompiledEvaluator::run(uint64_t max_cycles)
{
    return runBatch(max_cycles);
}

SimStatus
ParallelCompiledEvaluator::runBatch(uint64_t max_cycles)
{
    if (_status != SimStatus::Ok || max_cycles == 0)
        return _status;

    const uint64_t workers = _pool.size();

    // One pool command for the whole batch: workers enter their batch
    // loop and compute cycle 0; the master runs process 0 inline.
    _computeGen.fetch_add(1, std::memory_order_release);
    for (uint64_t left = max_cycles;; --left) {
        if (!_procs.empty())
            computeProc(_procs[0]);
        _computeTarget += workers;
        waitCount(_computeDone, _computeTarget);

        // Barrier 1 passed: every combinational value is visible.
        // Fire side effects in netlist order on the master thread — a
        // failed assert suppresses this cycle's displays, $finish and
        // commit, like the serial engines.  If firing throws (a
        // throwing onDisplay callback, allocation failure while
        // formatting), the commit rendezvous must still complete or
        // the workers stay parked at it and the next step()
        // deadlocks; the cycle is then neither committed nor counted
        // (and the display log rolled back), so a caller that catches
        // can retry it — though an external onDisplay sink may see
        // already-delivered lines again.
        const uint64_t *A = _arena.data();
        bool finished = false;
        std::exception_ptr thrown;
        try {
            _doCommit = _effects.fire(A, _cycle, _status,
                                      _failureMessage, _displayLog,
                                      onDisplay, finished);
        } catch (...) {
            thrown = std::current_exception();
            _doCommit = false;
        }

        // Commit phase: every process sends its owned registers /
        // memory writes into the shared state.  Workers continue into
        // the next cycle's compute iff the batch goes on.
        _batchMore = left > 1 && _doCommit && !finished && !thrown;
        _commitGen.fetch_add(1, std::memory_order_release);
        if (_doCommit && !_procs.empty())
            commitProc(_procs[0]);
        _commitDone.fetch_add(1, std::memory_order_release);
        _commitTarget += workers + 1;
        waitCount(_commitDone, _commitTarget);
        if (thrown)
            std::rethrow_exception(thrown);

        if (!_doCommit)
            return _status; // assertion failed: no commit, no cycle

        ++_cycle;
        if (finished) {
            _status = SimStatus::Finished;
            return _status;
        }
        if (left == 1)
            return _status;
    }
}

void
ParallelCompiledEvaluator::setInput(const std::string &name,
                                    const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
ParallelCompiledEvaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    lo::copy(&_arena[_sourceSlot[input]], value.limbs().data(),
             lo::nlimbs(value.width()));
}

BitVector
ParallelCompiledEvaluator::slotValue(uint32_t slot, unsigned width) const
{
    return tape::readSlot(&_arena[slot], width);
}

BitVector
ParallelCompiledEvaluator::regValue(RegId id) const
{
    MANTICORE_ASSERT(id < _netlist.numRegisters(), "bad register id");
    return slotValue(_regSlot[id], _netlist.reg(id).width);
}

BitVector
ParallelCompiledEvaluator::regValue(const std::string &name) const
{
    return regValue(resolveRegister(_netlist, name));
}

BitVector
ParallelCompiledEvaluator::memValue(MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].depth,
                     "memValue out of range");
    return _mems[id].value(addr);
}

size_t
ParallelCompiledEvaluator::tapeLength() const
{
    size_t n = 0;
    for (const Proc &p : _procs)
        n += p.tape.size();
    return n;
}

} // namespace manticore::netlist
