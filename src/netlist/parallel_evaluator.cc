#include "netlist/parallel_evaluator.hh"

#include <algorithm>
#include <exception>
#include <unordered_map>

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

namespace {

constexpr uint32_t kNoSlot = ~0u;

} // namespace

// ---------------------------------------------------------------------------
// Rendezvous waits (WaitPolicy::Spin | WaitPolicy::Block)
// ---------------------------------------------------------------------------

uint64_t
ParallelCompiledEvaluator::waitAboveBlocked(
    const std::atomic<uint64_t> &gen, uint64_t last) const
{
    uint64_t v;
    if ((v = gen.load(std::memory_order_acquire)) != last)
        return v;
    std::unique_lock<std::mutex> lk(_waitMx);
    _waitCv.wait(lk, [&] {
        return (v = gen.load(std::memory_order_acquire)) != last;
    });
    return v;
}

void
ParallelCompiledEvaluator::waitCountBlocked(
    const std::atomic<uint64_t> &counter, uint64_t target) const
{
    if (counter.load(std::memory_order_acquire) >= target)
        return;
    std::unique_lock<std::mutex> lk(_waitMx);
    _waitCv.wait(lk, [&] {
        return counter.load(std::memory_order_acquire) >= target;
    });
}

void
ParallelCompiledEvaluator::wakeBlocked() const
{
    // The empty critical section orders this wake after any peer that
    // checked the predicate (false) but has not yet parked: it holds
    // _waitMx between the check and the park, so by the time we can
    // take the lock it is either parked (notify reaches it) or has
    // seen the new counter value.
    { std::lock_guard<std::mutex> lk(_waitMx); }
    _waitCv.notify_all();
}

ParallelCompiledEvaluator::ParallelCompiledEvaluator(
    Netlist netlist, const EvalOptions &options)
    : _netlist(std::move(netlist)), _lanes(options.lanes),
      _padded(exec::paddedLaneCount(options.lanes)), _arena(_padded),
      _waitPolicy(options.waitPolicy)
{
    MANTICORE_ASSERT(_lanes >= 1, "ensemble needs at least one lane");
    _netlist.validate();
    unsigned hw = std::thread::hardware_concurrency();
    _numThreads = options.numThreads != 0 ? options.numThreads
                                          : std::max(1u, hw);
    _active = _lanes;
    _lane.resize(_lanes);
    _laneCommit.assign(_lanes, 0);
    _laneFinish.assign(_lanes, 0);
    compile(options.mergeAlgo);
    for (size_t p = 1; p < _procs.size(); ++p)
        _pool.emplace_back([this, p] { workerLoop(p); });
}

ParallelCompiledEvaluator::~ParallelCompiledEvaluator()
{
    // Workers always park at the compute rendezvous between steps;
    // bumping both generations with _shutdown set releases them from
    // either wait.
    _shutdown.store(true, std::memory_order_relaxed);
    _computeGen.fetch_add(1, std::memory_order_release);
    _commitGen.fetch_add(1, std::memory_order_release);
    wake();
    for (std::thread &t : _pool)
        t.join();
}

void
ParallelCompiledEvaluator::compile(MergeAlgo algo)
{
    NetlistPartition part = partitionNetlist(_netlist, _numThreads, algo);
    _stats = part.stats;
    _mems = tape::buildMemStates(_netlist, _padded);

    const auto &nodes = _netlist.nodes();

    // Shared source region: constants and inputs, written only at
    // build time / between steps.
    _sourceSlot.assign(nodes.size(), kNoSlot);
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].kind == OpKind::Const ||
            nodes[i].kind == OpKind::Input)
            _sourceSlot[i] = _arena.alloc(nodes[i].width);
    }

    // Shared register file, grouped by committing process and
    // cache-line aligned per group: the only shared slots written
    // after construction, each by exactly one process per cycle.
    _regSlot.assign(_netlist.numRegisters(), kNoSlot);
    for (const NetlistProcess &proc : part.processes) {
        _arena.align();
        for (RegId r : proc.registers) {
            MANTICORE_ASSERT(_regSlot[r] == kNoSlot,
                             "register owned by two processes");
            _regSlot[r] = _arena.alloc(_netlist.reg(r).width);
        }
    }
    for (size_t r = 0; r < _netlist.numRegisters(); ++r)
        MANTICORE_ASSERT(_regSlot[r] != kNoSlot, "unowned register");

    // Per-process private regions: cone node slots, then staging for
    // RegRead-sourced commit operands.  Lowering happens in the same
    // sweep — node ids are topologically ordered and cones are
    // operand-closed, so every operand slot is resolvable by the time
    // it is needed.
    int effects_proc = -1;
    std::unordered_map<NodeId, uint32_t> effects_local;
    _procs.resize(part.processes.size());
    for (size_t p = 0; p < part.processes.size(); ++p) {
        const NetlistProcess &src = part.processes[p];
        Proc &proc = _procs[p];
        _arena.align();

        std::unordered_map<NodeId, uint32_t> local;
        local.reserve(src.nodes.size() * 2);
        for (NodeId id : src.nodes)
            local[id] = _arena.alloc(nodes[id].width);

        auto resolve = [&](NodeId id) -> uint32_t {
            const Node &n = _netlist.node(id);
            if (n.kind == OpKind::RegRead)
                return _regSlot[n.regId];
            if (n.kind == OpKind::Const || n.kind == OpKind::Input)
                return _sourceSlot[id];
            auto it = local.find(id);
            MANTICORE_ASSERT(it != local.end(),
                             "operand escapes its process cone");
            return it->second;
        };

        proc.tape.reserve(src.nodes.size());
        for (NodeId id : src.nodes) {
            const Node &n = _netlist.node(id);
            uint32_t a = n.operands.size() > 0 ? resolve(n.operands[0]) : 0;
            uint32_t b = n.operands.size() > 1 ? resolve(n.operands[1]) : 0;
            uint32_t c = n.operands.size() > 2 ? resolve(n.operands[2]) : 0;
            proc.tape.push_back(
                tape::lower(_netlist, id, local[id], a, b, c, _mems));
        }

        // Commit operands that live in the shared register file are
        // staged into the private region pre-barrier; everything else
        // (private slots, stable constants/inputs) is read directly.
        std::unordered_map<NodeId, uint32_t> staged;
        auto commitSlot = [&](NodeId id) -> uint32_t {
            const Node &n = _netlist.node(id);
            if (n.kind != OpKind::RegRead)
                return resolve(id);
            auto it = staged.find(id);
            if (it != staged.end())
                return it->second;
            uint32_t slot = _arena.alloc(n.width);
            staged.emplace(id, slot);
            proc.stages.push_back({slot, _regSlot[n.regId],
                                   lo::nlimbs(n.width) * _lanes});
            return slot;
        };

        for (RegId r : src.registers) {
            const Register &reg = _netlist.reg(r);
            proc.regCommits.push_back({_regSlot[r], commitSlot(reg.next),
                                       lo::nlimbs(reg.width)});
        }
        for (uint32_t w : src.memWrites) {
            const MemWrite &mw = _netlist.memWrites()[w];
            proc.memCommits.push_back(
                {mw.mem, commitSlot(mw.addr), commitSlot(mw.data),
                 commitSlot(mw.enable),
                 lo::nlimbs(_netlist.node(mw.addr).width)});
        }

        if (src.effects) {
            effects_proc = static_cast<int>(p);
            effects_local = std::move(local);
        }
    }

    // Side effects, resolved against the effects process's region (or
    // shared slots); the master fires them per lane between the two
    // barriers.
    bool have_effects = !_netlist.asserts().empty() ||
                        !_netlist.displays().empty() ||
                        !_netlist.finishes().empty();
    if (have_effects) {
        MANTICORE_ASSERT(effects_proc != -1, "effects cone unassigned");
        _effects = tape::Effects::compile(
            _netlist, [&](NodeId id) -> uint32_t {
                const Node &n = _netlist.node(id);
                if (n.kind == OpKind::RegRead)
                    return _regSlot[n.regId];
                if (n.kind == OpKind::Const || n.kind == OpKind::Input)
                    return _sourceSlot[id];
                auto it = effects_local.find(id);
                MANTICORE_ASSERT(it != effects_local.end(),
                                 "effect node outside effects cone");
                return it->second;
            });
    }

    _arena.seal();

    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].kind == OpKind::Const)
            _arena.broadcast(_sourceSlot[i], nodes[i].value);
    for (size_t r = 0; r < _netlist.numRegisters(); ++r)
        _arena.broadcast(_regSlot[r],
                         _netlist.reg(static_cast<RegId>(r)).init);
}

void
ParallelCompiledEvaluator::computeTape(size_t proc_index)
{
    tape::run(_procs[proc_index].tape, _arena.data(), _mems, _padded);
}

void
ParallelCompiledEvaluator::computeProc(size_t proc_index)
{
    // Tape evaluation goes through the computeTape() hook so the AOT
    // subclass can dispatch a per-partition compiled cycle function;
    // the stage copies below are part of the protocol and stay here.
    computeTape(proc_index);
    uint64_t *A = _arena.data();
    // Staged blocks and their register-file sources are both
    // lane-strided with the same per-lane limb count, so one copy
    // (s.limbs spans every lane) moves the whole block.
    for (const StageCopy &s : _procs[proc_index].stages)
        lo::copy(A + s.dst, A + s.src, s.limbs);
}

void
ParallelCompiledEvaluator::commitProc(const Proc &proc)
{
    uint64_t *A = _arena.data();
    const unsigned L = _lanes;
    // Memory writes never read shared register-file slots (those were
    // staged), so intra-process commit order is free; registers and
    // memories owned by other processes are untouched by design.
    // Frozen lanes (finished / assert-failed) have _laneCommit
    // cleared by the master and are skipped.
    if (L == 1) {
        // Scalar fast path: commitProc is only called when _doCommit,
        // which at one lane IS lane 0's commit flag — no lane loops,
        // no flag loads.
        for (const MemCommit &w : proc.memCommits) {
            if (A[w.enable]) {
                tape::MemState &m = _mems[w.mem];
                uint64_t addr = A[w.addr] % m.depth;
                lo::copy(&m.words[addr * m.wordLimbs], A + w.data,
                         m.wordLimbs);
            }
        }
        for (const RegCommit &rc : proc.regCommits)
            lo::copy(A + rc.dst, A + rc.src, rc.limbs);
        return;
    }
    for (const MemCommit &w : proc.memCommits) {
        tape::MemState &m = _mems[w.mem];
        for (unsigned l = 0; l < L; ++l) {
            if (!_laneCommit[l] || !A[w.enable + l])
                continue;
            uint64_t addr =
                A[w.addr + static_cast<size_t>(l) * w.addrStride] %
                m.depth;
            lo::copy(m.word(addr, l),
                     A + w.data + static_cast<size_t>(l) * m.wordLimbs,
                     m.wordLimbs);
        }
    }
    if (_allCommit) {
        // Fast path (every lane commits — always true at lanes=1):
        // the src and dst blocks are lane-strided with the same
        // stride, one copy per register moves every lane.
        for (const RegCommit &rc : proc.regCommits)
            lo::copy(A + rc.dst, A + rc.src, rc.limbs * L);
    } else {
        for (const RegCommit &rc : proc.regCommits)
            for (unsigned l = 0; l < L; ++l)
                if (_laneCommit[l])
                    lo::copy(A + rc.dst +
                                 static_cast<size_t>(l) * rc.limbs,
                             A + rc.src +
                                 static_cast<size_t>(l) * rc.limbs,
                             rc.limbs);
    }
}

/* Batch protocol.  A run()/step() call issues ONE pool command: the
 * master bumps _computeGen once and every worker enters its batch
 * loop.  Within the batch, each cycle is
 *
 *   worker: compute; ++_computeDone; wait _commitGen; commit if
 *           _doCommit (honouring the per-lane _laneCommit flags);
 *           read _batchMore; ++_commitDone; if more: wait
 *           _commitDone == everyone, roll into the next compute
 *   master: compute proc 0; wait _computeDone target; fire effects
 *           per lane; publish _laneCommit/_doCommit/_batchMore; bump
 *           _commitGen; commit proc 0; ++_commitDone; wait
 *           _commitDone target
 *
 * Barrier 2 (all commits visible before any next-cycle compute) is
 * the _commitDone counter itself: every participant — master
 * included — counts its commit, and a worker rolls over only once
 * the full cycle's count is in.  The batch thus pays one generation
 * signal per cycle (plus the counters) instead of two signals and
 * two counter resets, and the master never re-enters step().  The
 * done-counters are monotonic against per-thread targets, which is
 * what makes the reset-free roll-over safe: a worker's baseline read
 * at batch entry is stable because the master only bumps _computeGen
 * after the previous cycle's full commit count arrived.  _batchMore
 * and the _laneCommit flags are written by the master before the
 * _commitGen release bump and read by workers after its acquire,
 * strictly before the master's next write to them.  Under
 * WaitPolicy::Block every one of these counter bumps is followed by
 * wake() so a parked peer re-checks its predicate. */
void
ParallelCompiledEvaluator::workerLoop(size_t proc_index)
{
    const uint64_t participants = _procs.size();
    uint64_t seen_compute = 0, seen_commit = 0;
    while (true) {
        seen_compute = waitAbove(_computeGen, seen_compute);
        if (_shutdown.load(std::memory_order_relaxed))
            return;
        uint64_t commit_target =
            _commitDone.load(std::memory_order_acquire);
        while (true) {
            computeProc(proc_index);
            _computeDone.fetch_add(1, std::memory_order_release);
            wake();
            seen_commit = waitAbove(_commitGen, seen_commit);
            if (_shutdown.load(std::memory_order_relaxed))
                return;
            bool more = _batchMore;
            if (_doCommit)
                commitProc(_procs[proc_index]);
            _commitDone.fetch_add(1, std::memory_order_release);
            wake();
            if (!more)
                break; // park at the next batch's compute rendezvous
            commit_target += participants;
            waitCount(_commitDone, commit_target);
        }
    }
}

void
ParallelCompiledEvaluator::recountActive()
{
    unsigned active = 0;
    for (unsigned l = 0; l < _lanes; ++l)
        if (_lane[l].status == SimStatus::Ok)
            ++active;
    _active = active;
}

SimStatus
ParallelCompiledEvaluator::step()
{
    return runBatch(1);
}

SimStatus
ParallelCompiledEvaluator::run(uint64_t max_cycles)
{
    return runBatch(max_cycles);
}

SimStatus
ParallelCompiledEvaluator::runBatchScalar(uint64_t max_cycles)
{
    // Single-lane fast path: the pre-ensemble master loop (no
    // per-lane flag vectors or loops) so the scalar engine keeps its
    // original per-cycle rendezvous cost.  The workers' scalar
    // commitProc path is gated on _doCommit alone, so the per-lane
    // commit flags are never consulted at one lane.  Must stay
    // behaviourally identical to the general loop below at lanes=1
    // (the ensemble tests pin this against the reference evaluator).
    LaneState &lane = _lane[0];
    const uint64_t workers = _pool.size();

    _computeGen.fetch_add(1, std::memory_order_release);
    wake();
    for (uint64_t left = max_cycles;; --left) {
        if (!_procs.empty())
            computeProc(0);
        _computeTarget += workers;
        waitCount(_computeDone, _computeTarget);

        const uint64_t *A = _arena.data();
        bool finished = false;
        std::exception_ptr thrown;
        try {
            _doCommit = _effects.fire(A, 0, lane.cycle, lane.status,
                                      lane.failureMessage,
                                      lane.displayLog, onDisplay,
                                      finished);
        } catch (...) {
            thrown = std::current_exception();
            _doCommit = false;
        }

        _batchMore = left > 1 && _doCommit && !finished && !thrown;
        _commitGen.fetch_add(1, std::memory_order_release);
        wake();
        if (_doCommit && !_procs.empty())
            commitProc(_procs[0]);
        _commitDone.fetch_add(1, std::memory_order_release);
        wake();
        _commitTarget += workers + 1;
        waitCount(_commitDone, _commitTarget);
        if (thrown)
            std::rethrow_exception(thrown);

        if (!_doCommit) {
            _active = 0; // assertion failed: no commit, no cycle
            return lane.status;
        }
        ++lane.cycle;
        ++_cycle;
        if (finished) {
            lane.status = SimStatus::Finished;
            _active = 0;
            return lane.status;
        }
        if (left == 1)
            return lane.status;
    }
}

SimStatus
ParallelCompiledEvaluator::runBatch(uint64_t max_cycles)
{
    if (_active == 0 || max_cycles == 0)
        return _lane[0].status;
    if (_lanes == 1)
        return runBatchScalar(max_cycles);

    const uint64_t workers = _pool.size();

    // One pool command for the whole batch: workers enter their batch
    // loop and compute cycle 0; the master runs process 0 inline.
    _computeGen.fetch_add(1, std::memory_order_release);
    wake();
    for (uint64_t left = max_cycles;; --left) {
        if (!_procs.empty())
            computeProc(0);
        _computeTarget += workers;
        waitCount(_computeDone, _computeTarget);

        // Barrier 1 passed: every combinational value is visible.
        // Fire side effects per active lane, in lane order and in
        // netlist order within a lane, on the master thread — a
        // failed assert suppresses that lane's displays, $finish and
        // commit, like the serial engines.  If firing throws (a
        // throwing onDisplay callback, allocation failure while
        // formatting), the commit rendezvous must still complete or
        // the workers stay parked at it and the next step()
        // deadlocks; the whole ensemble cycle is then neither
        // committed nor counted (and every lane's display log rolled
        // back), so a caller that catches can retry it — though an
        // external onDisplay sink may see already-delivered lines
        // again, and a lane whose assert failed before the throw
        // keeps that status (its failing cycle never commits).
        // Per-lane commit decision (shared with the serial engine via
        // Effects::fireLanes); on a throwing display sink the whole
        // ensemble cycle aborts, but the exception is held until the
        // commit rendezvous completed (see above).
        const uint64_t *A = _arena.data();
        tape::Effects::FireResult fired =
            _effects.fireLanes(A, _lanes, _lane.data(),
                               _laneCommit.data(), _laneFinish.data(),
                               onDisplay);
        std::exception_ptr thrown = fired.thrown;
        unsigned next_active = fired.committing - fired.finishing;
        _doCommit = fired.committing != 0;
        _allCommit = fired.committing == _lanes;

        // Commit phase: every process sends its owned registers /
        // memory writes (of the committing lanes) into the shared
        // state.  Workers continue into the next cycle's compute iff
        // the batch goes on.
        _batchMore = left > 1 && next_active > 0 && !thrown;
        _commitGen.fetch_add(1, std::memory_order_release);
        wake();
        if (_doCommit && !_procs.empty())
            commitProc(_procs[0]);
        _commitDone.fetch_add(1, std::memory_order_release);
        wake();
        _commitTarget += workers + 1;
        waitCount(_commitDone, _commitTarget);
        if (thrown) {
            recountActive();
            std::rethrow_exception(thrown);
        }

        bool advanced = false;
        for (unsigned l = 0; l < _lanes; ++l) {
            if (!_laneCommit[l])
                continue;
            ++_lane[l].cycle;
            advanced = true;
            if (_laneFinish[l])
                _lane[l].status = SimStatus::Finished;
        }
        if (advanced)
            ++_cycle;
        recountActive();

        if (!_batchMore)
            return _lane[0].status;
    }
}

void
ParallelCompiledEvaluator::setInput(const std::string &name,
                                    const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
ParallelCompiledEvaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _arena.broadcast(_sourceSlot[input], value);
}

void
ParallelCompiledEvaluator::driveInputLane(unsigned lane, NodeId input,
                                          const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _arena.write(_sourceSlot[input], lane, value);
}

SimStatus
ParallelCompiledEvaluator::laneStatus(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].status;
}

uint64_t
ParallelCompiledEvaluator::laneCycle(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].cycle;
}

const std::string &
ParallelCompiledEvaluator::laneFailureMessage(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].failureMessage;
}

const std::vector<std::string> &
ParallelCompiledEvaluator::laneDisplayLog(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].displayLog;
}

BitVector
ParallelCompiledEvaluator::regValue(RegId id) const
{
    return regValueLane(0, id);
}

BitVector
ParallelCompiledEvaluator::regValueLane(unsigned lane, RegId id) const
{
    MANTICORE_ASSERT(id < _netlist.numRegisters(), "bad register id");
    return _arena.read(_regSlot[id], _netlist.reg(id).width, lane);
}

BitVector
ParallelCompiledEvaluator::regValue(const std::string &name) const
{
    return regValue(resolveRegister(_netlist, name));
}

BitVector
ParallelCompiledEvaluator::memValue(MemId id, uint64_t addr) const
{
    return memValueLane(0, id, addr);
}

BitVector
ParallelCompiledEvaluator::memValueLane(unsigned lane, MemId id,
                                        uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].depth &&
                         lane < _lanes,
                     "memValue out of range");
    return _mems[id].value(addr, lane);
}

size_t
ParallelCompiledEvaluator::tapeLength() const
{
    size_t n = 0;
    for (const Proc &p : _procs)
        n += p.tape.size();
    return n;
}

// ---- checkpoint/restore hooks (see EvaluatorBase::saveLaneState) ----
// All called from the master thread between step()/run() calls, when
// the workers are parked on _computeGen: the shared arena, memory
// images and lane state are master-owned at that point.

BitVector
ParallelCompiledEvaluator::inputValueLane(unsigned lane,
                                          NodeId input) const
{
    return _arena.read(_sourceSlot[input], _netlist.node(input).width,
                       lane);
}

void
ParallelCompiledEvaluator::restoreReg(unsigned lane, RegId id,
                                      const BitVector &value)
{
    _arena.write(_regSlot[id], lane, value);
}

void
ParallelCompiledEvaluator::restoreMemWord(unsigned lane, MemId id,
                                          uint64_t addr,
                                          const BitVector &value)
{
    tape::MemState &ms = _mems[id];
    uint64_t *dst = ms.word(addr, lane);
    const std::vector<uint64_t> &limbs = value.limbs();
    for (unsigned i = 0; i < ms.wordLimbs; ++i)
        dst[i] = i < limbs.size() ? limbs[i] : 0;
}

void
ParallelCompiledEvaluator::restoreLaneMeta(unsigned lane, uint64_t cycle,
                                           SimStatus status,
                                           std::string failure,
                                           std::vector<std::string> log)
{
    LaneState &ls = _lane[lane];
    ls.cycle = cycle;
    ls.status = status;
    ls.failureMessage = std::move(failure);
    ls.displayLog = std::move(log);
    ls.logMark = ls.displayLog.size();
}

void
ParallelCompiledEvaluator::snapshotRestored()
{
    recountActive();
    std::fill(_laneCommit.begin(), _laneCommit.end(), 0);
    std::fill(_laneFinish.begin(), _laneFinish.end(), 0);
    uint64_t cycle = 0;
    for (const LaneState &ls : _lane)
        cycle = std::max(cycle, ls.cycle);
    _cycle = cycle;
}

} // namespace manticore::netlist
