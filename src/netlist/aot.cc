#include "netlist/aot.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <dlfcn.h>
#include <sys/utsname.h>
#include <unistd.h>

#include "support/hashing.hh"
#include "support/limbops.hh"
#include "support/logging.hh"
#include "support/subprocess.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;
namespace fs = ::std::filesystem;

namespace {

/** Where the emitted code finds support/limbops.hh: env override,
 *  else the source tree baked in by CMake. */
std::string
includeDir()
{
    if (const char *env = std::getenv("MANTICORE_AOT_INCLUDE"))
        return env;
#ifdef MANTICORE_AOT_INCLUDE_DIR
    return MANTICORE_AOT_INCLUDE_DIR;
#else
    return "";
#endif
}

/** Flags the toolchain probe compiles with (the scalar object flags
 *  plus -shared).  Fixed — independent of how this library was
 *  built — so a probe result holds for every object this process
 *  emits. */
const std::vector<std::string> &
probeFlags()
{
    static const std::vector<std::string> kFlags = {
        "-std=c++17", "-O2", "-fPIC", "-shared",
    };
    return kFlags;
}

/** Flags an emitted object is compiled with (also folded into its
 *  cache key).  Scalar objects keep the fixed -O2 of the original
 *  AOT engine; laned (padded_lanes > 1) objects compile -O3 plus the
 *  probed SIMD flags, like the manticore_simd kernels, so the
 *  constant-trip-count lane loops vectorize.  -shared is a link-step
 *  detail and deliberately not part of this list. */
std::vector<std::string>
objectFlags(const AotToolchain &tc, unsigned padded_lanes)
{
    std::vector<std::string> flags{
        "-std=c++17", padded_lanes == 1 ? "-O2" : "-O3", "-fPIC"};
    if (padded_lanes != 1)
        flags.insert(flags.end(), tc.simdFlags.begin(),
                     tc.simdFlags.end());
    return flags;
}

/** Host CPU model for the cache key: /proc/cpuinfo's model line
 *  where available, else the machine architecture. */
std::string
detectHostCpu()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        for (const char *prefix :
             {"model name", "Processor", "cpu model", "Hardware"}) {
            if (line.rfind(prefix, 0) != 0)
                continue;
            size_t colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            size_t start = line.find_first_not_of(" \t", colon + 1);
            if (start != std::string::npos)
                return line.substr(start);
        }
    }
    struct utsname u;
    if (uname(&u) == 0 && u.machine[0])
        return u.machine;
    return "unknown-cpu";
}

std::string
readFileAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << content;
        if (!out.flush())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
    return !ec;
}

/** First line of a (possibly multi-line) compiler diagnostic, capped
 *  for readable fatal()s. */
std::string
firstLine(const std::string &text, size_t cap = 200)
{
    size_t end = text.find('\n');
    std::string line =
        end == std::string::npos ? text : text.substr(0, end);
    if (line.size() > cap)
        line = line.substr(0, cap) + "...";
    return line;
}

/** Compile-and-dlopen probe of one candidate compiler: emitted code
 *  must build (including support/limbops.hh) into a shared object we
 *  can load and call. */
AotToolchain
probeOne(const std::string &cxx)
{
    AotToolchain tc;
    tc.compiler = cxx;

    std::string inc = includeDir();
    std::error_code ec;
    fs::path tmpdir = fs::temp_directory_path(ec);
    if (ec) {
        tc.message = cxx + " (no temp directory: " + ec.message() + ")";
        return tc;
    }
    std::string stem =
        (tmpdir / ("manticore-aot-probe-" +
                   std::to_string(static_cast<long>(getpid()))))
            .string();
    std::string src = stem + ".cc";
    std::string obj = stem + ".so";

    // The probe uses the same kernels the emitted code will: a
    // missing header or an exotic compiler shows up here, not at
    // simulation time.
    const std::string probe_src =
        "#include <cstdint>\n"
        "#include \"support/limbops.hh\"\n"
        "extern \"C\" unsigned manticore_aot_probe() {\n"
        "    uint64_t v[2] = {~0ull, 1ull};\n"
        "    return manticore::limbops::nlimbs(65) +\n"
        "           (manticore::limbops::reduceXor(v, 65) ? 1u : 0u);\n"
        "}\n";
    if (!writeFileAtomic(src, probe_src)) {
        tc.message = cxx + " (cannot write probe source to " + src + ")";
        return tc;
    }

    std::vector<std::string> argv{cxx};
    for (const std::string &f : probeFlags())
        argv.push_back(f);
    argv.push_back("-I");
    argv.push_back(inc);
    argv.push_back(src);
    argv.push_back("-o");
    argv.push_back(obj);
    CommandResult res = runCommand(argv);

    if (!res.ok()) {
        tc.message = cxx + " (" + firstLine(res.output) + ")";
        fs::remove(src, ec);
        return tc;
    }

    void *handle = dlopen(obj.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) {
        tc.message = cxx + " (dlopen: " + firstLine(dlerror()) + ")";
    } else {
        auto *fn = reinterpret_cast<unsigned (*)()>(
            dlsym(handle, "manticore_aot_probe"));
        if (!fn || fn() != 3)
            tc.message = cxx + " (probe object misbehaved)";
        else
            tc.ok = true;
        dlclose(handle);
    }

    // Which SIMD flags does this compiler accept?  Laned objects
    // compile -O3 + the survivors; a cross or exotic compiler that
    // rejects -march=native just loses the flag, not the engine.
    if (tc.ok) {
        for (const char *cand :
             {"-march=native", "-mprefer-vector-width=256"}) {
            std::vector<std::string> sargv{cxx, "-std=c++17", "-O3",
                                           "-fPIC", "-shared"};
            for (const std::string &f : tc.simdFlags)
                sargv.push_back(f);
            sargv.push_back(cand);
            sargv.push_back("-I");
            sargv.push_back(inc);
            sargv.push_back(src);
            sargv.push_back("-o");
            sargv.push_back(obj);
            if (runCommand(sargv).ok())
                tc.simdFlags.push_back(cand);
        }
    }
    fs::remove(src, ec);
    fs::remove(obj, ec);
    return tc;
}

// ---------------------------------------------------------------------------
// Codegen: one C++ statement per tape instruction, constants baked in
// ---------------------------------------------------------------------------

std::string
hexU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llxull",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
slot(uint32_t off)
{
    return "A[" + std::to_string(off) + "]";
}

std::string
ptr(uint32_t off)
{
    return "A + " + std::to_string(off);
}

/** The (possibly >64-bit) shift amount, mirroring
 *  tape.cc::shiftAmountLane: wide amounts that do not fit 64 bits
 *  shift everything out (spelled as `width`, which both shl/lshr and
 *  the narrow `amt >= width` guard treat as all-out). */
std::string
shiftAmount(const tape::Instr &in)
{
    if (in.bw <= 64)
        return slot(in.b);
    return "(lo::fitsUint64(" + ptr(in.b) + ", " +
           std::to_string(lo::nlimbs(in.bw)) + "u) ? " + slot(in.b) +
           " : " + std::to_string(in.width) + "ull)";
}

/** Emit the statement for one instruction.  Must mirror the L == 1
 *  instantiation of tape.cc's runImpl exactly — the randomized
 *  differential and the CrossCheck matrix pin this. */
void
emitInstr(std::ostream &os, const tape::Instr &in,
          const std::vector<tape::MemState> &mems)
{
    using tape::Op;
    const std::string dst = slot(in.dst);
    const std::string a = slot(in.a);
    const std::string b = slot(in.b);
    const std::string mask = hexU64(in.mask);
    const std::string W = std::to_string(in.width) + "u";
    const std::string AW = std::to_string(in.aw) + "u";
    const std::string BW = std::to_string(in.bw) + "u";

    os << "    ";
    switch (in.op) {
      case Op::NAdd:
        os << dst << " = (" << a << " + " << b << ") & " << mask << ";";
        break;
      case Op::NSub:
        os << dst << " = (" << a << " - " << b << ") & " << mask << ";";
        break;
      case Op::NMul:
        os << dst << " = (" << a << " * " << b << ") & " << mask << ";";
        break;
      case Op::NAnd:
        os << dst << " = " << a << " & " << b << ";";
        break;
      case Op::NOr:
        os << dst << " = " << a << " | " << b << ";";
        break;
      case Op::NXor:
        os << dst << " = " << a << " ^ " << b << ";";
        break;
      case Op::NNot:
        os << dst << " = ~" << a << " & " << mask << ";";
        break;
      case Op::NShl:
        os << "{ u64 amt = " << shiftAmount(in) << "; " << dst
           << " = amt >= " << in.width << "ull ? 0 : (" << a
           << " << amt) & " << mask << "; }";
        break;
      case Op::NLshr:
        os << "{ u64 amt = " << shiftAmount(in) << "; " << dst
           << " = amt >= " << in.width << "ull ? 0 : " << a
           << " >> amt; }";
        break;
      case Op::NEq:
        os << dst << " = " << a << " == " << b << ";";
        break;
      case Op::NUlt:
        os << dst << " = " << a << " < " << b << ";";
        break;
      case Op::NSlt: {
        std::string sbit = hexU64(1ull << (in.aw - 1));
        os << dst << " = (" << a << " ^ " << sbit << ") < (" << b
           << " ^ " << sbit << ");";
        break;
      }
      case Op::NMux:
        os << dst << " = " << a << " ? " << b << " : " << slot(in.c)
           << ";";
        break;
      case Op::NSlice:
        os << dst << " = (" << a << " >> " << in.lo << ") & " << mask
           << ";";
        break;
      case Op::NConcat:
        os << dst << " = (" << a << " << " << in.bw << ") | " << b
           << ";";
        break;
      case Op::NZExt:
        os << dst << " = " << a << ";";
        break;
      case Op::NSExt:
        if (in.aw < in.width) {
            std::string sbit = hexU64(1ull << (in.aw - 1));
            std::string fill = hexU64((~0ull << in.aw) & in.mask);
            os << "{ u64 v = " << a << "; " << dst << " = (v & " << sbit
               << ") ? (v | " << fill << ") : v; }";
        } else {
            os << dst << " = " << a << ";";
        }
        break;
      case Op::NRedOr:
        os << dst << " = " << a << " != 0;";
        break;
      case Op::NRedAnd:
        os << dst << " = " << a << " == " << mask << ";";
        break;
      case Op::NRedXor:
        os << dst << " = (u64)(__builtin_popcountll(" << a
           << ") & 1);";
        break;
      case Op::NMemRead:
        os << dst << " = M[" << in.lo << "][" << a << " % "
           << mems[in.lo].depth << "ull];";
        break;
      case Op::WAdd:
        os << "lo::add(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WSub:
        os << "lo::sub(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WMul:
        os << "lo::mul(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WAnd:
        os << "lo::bitAnd(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WOr:
        os << "lo::bitOr(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WXor:
        os << "lo::bitXor(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WNot:
        os << "lo::bitNot(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ");";
        break;
      case Op::WShl:
        os << "lo::shl(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << shiftAmount(in) << ", " << W << ");";
        break;
      case Op::WLshr:
        os << "lo::lshr(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << shiftAmount(in) << ", " << W << ");";
        break;
      case Op::WEq:
        os << dst << " = lo::eq(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WUlt:
        os << dst << " = lo::ult(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WSlt:
        os << dst << " = lo::slt(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WMux:
        os << "lo::copy(" << ptr(in.dst) << ", " << a << " ? "
           << ptr(in.b) << " : " << ptr(in.c) << ", "
           << lo::nlimbs(in.width) << "u);";
        break;
      case Op::WSlice:
        os << "lo::slice(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << AW << ", " << in.lo << "u, " << W << ");";
        break;
      case Op::WConcat:
        os << "lo::concat(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << AW << ", " << BW << ");";
        break;
      case Op::WZExt:
        os << "lo::zext(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ", " << AW << ");";
        break;
      case Op::WSExt:
        os << "lo::sext(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ", " << AW << ");";
        break;
      case Op::WRedOr:
        os << dst << " = lo::reduceOr(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WRedAnd:
        os << dst << " = lo::reduceAnd(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WRedXor:
        os << dst << " = lo::reduceXor(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WMemRead: {
        const tape::MemState &m = mems[in.lo];
        os << "lo::copy(" << ptr(in.dst) << ", M[" << in.lo << "] + ("
           << a << " % " << m.depth << "ull) * " << m.wordLimbs
           << "u, " << m.wordLimbs << "u);";
        break;
      }
    }
    os << "\n";
}

// ---------------------------------------------------------------------------
// Laned codegen: tape.cc runImpl<L> shapes with L a baked constant
// ---------------------------------------------------------------------------

std::string
laneIdx(uint32_t off, uint32_t stride)
{
    std::string s = std::to_string(off) + " + l";
    if (stride != 1)
        s += " * " + std::to_string(stride) + "u";
    return s;
}

std::string
laneSlot(uint32_t off, uint32_t stride)
{
    return "A[" + laneIdx(off, stride) + "]";
}

std::string
lanePtr(uint32_t off, uint32_t stride)
{
    return "A + " + laneIdx(off, stride);
}

/** Per-lane shift amount, mirroring tape.cc::shiftAmountLane (the
 *  lane stride of the amount operand is nlimbs(bw)). */
std::string
shiftAmountLaned(const tape::Instr &in)
{
    const uint32_t bs = lo::nlimbs(in.bw);
    if (in.bw <= 64)
        return laneSlot(in.b, bs);
    return "(lo::fitsUint64(" + lanePtr(in.b, bs) + ", " +
           std::to_string(bs) + "u) ? " + laneSlot(in.b, bs) + " : " +
           std::to_string(in.width) + "ull)";
}

/** Emit the statement(s) for one instruction at compile-time lane
 *  count L > 1.  Must mirror tape.cc's runImpl<L> exactly: narrow
 *  ops call the width-templated laned kernels, wide ops and memory
 *  reads become constant-trip-count per-lane loops with the arena
 *  lane strides baked in. */
void
emitInstrLaned(std::ostream &os, const tape::Instr &in,
               const std::vector<tape::MemState> &mems, unsigned L)
{
    using tape::Op;
    const std::string T = "<" + std::to_string(L) + ">";
    const std::string Lu = std::to_string(L) + "u";
    const std::string FOR =
        "for (unsigned l = 0; l < " + Lu + "; ++l) ";
    const std::string d = ptr(in.dst);
    const std::string a = ptr(in.a);
    const std::string b = ptr(in.b);
    const std::string mask = hexU64(in.mask);
    const std::string W = std::to_string(in.width) + "u";
    const std::string AW = std::to_string(in.aw) + "u";
    const std::string BW = std::to_string(in.bw) + "u";

    os << "    ";
    switch (in.op) {
      case Op::NAdd:
        os << "lo::addN" << T << "(" << d << ", " << a << ", " << b
           << ", " << mask << ", " << Lu << ");";
        break;
      case Op::NSub:
        os << "lo::subN" << T << "(" << d << ", " << a << ", " << b
           << ", " << mask << ", " << Lu << ");";
        break;
      case Op::NMul:
        os << "lo::mulN" << T << "(" << d << ", " << a << ", " << b
           << ", " << mask << ", " << Lu << ");";
        break;
      case Op::NAnd:
        os << "lo::andN" << T << "(" << d << ", " << a << ", " << b
           << ", " << Lu << ");";
        break;
      case Op::NOr:
        os << "lo::orN" << T << "(" << d << ", " << a << ", " << b
           << ", " << Lu << ");";
        break;
      case Op::NXor:
        os << "lo::xorN" << T << "(" << d << ", " << a << ", " << b
           << ", " << Lu << ");";
        break;
      case Op::NNot:
        os << "lo::notN" << T << "(" << d << ", " << a << ", " << mask
           << ", " << Lu << ");";
        break;
      case Op::NShl:
        os << FOR << "{ u64 amt = " << shiftAmountLaned(in) << "; "
           << laneSlot(in.dst, 1) << " = amt >= " << in.width
           << "ull ? 0 : (" << laneSlot(in.a, 1) << " << amt) & "
           << mask << "; }";
        break;
      case Op::NLshr:
        os << FOR << "{ u64 amt = " << shiftAmountLaned(in) << "; "
           << laneSlot(in.dst, 1) << " = amt >= " << in.width
           << "ull ? 0 : " << laneSlot(in.a, 1) << " >> amt; }";
        break;
      case Op::NEq:
        os << "lo::eqN" << T << "(" << d << ", " << a << ", " << b
           << ", " << Lu << ");";
        break;
      case Op::NUlt:
        os << "lo::ultN" << T << "(" << d << ", " << a << ", " << b
           << ", " << Lu << ");";
        break;
      case Op::NSlt:
        os << "lo::sltN" << T << "(" << d << ", " << a << ", " << b
           << ", " << hexU64(1ull << (in.aw - 1)) << ", " << Lu
           << ");";
        break;
      case Op::NMux:
        os << "lo::muxN" << T << "(" << d << ", " << a << ", " << b
           << ", " << ptr(in.c) << ", " << Lu << ");";
        break;
      case Op::NSlice:
        os << "lo::sliceN" << T << "(" << d << ", " << a << ", "
           << in.lo << "u, " << mask << ", " << Lu << ");";
        break;
      case Op::NConcat:
        os << "lo::concatN" << T << "(" << d << ", " << a << ", " << b
           << ", " << BW << ", " << Lu << ");";
        break;
      case Op::NZExt:
        os << "lo::copyN" << T << "(" << d << ", " << a << ", " << Lu
           << ");";
        break;
      case Op::NSExt:
        if (in.aw < in.width)
            os << "lo::sextN" << T << "(" << d << ", " << a << ", "
               << AW << ", " << mask << ", " << Lu << ");";
        else
            os << "lo::copyN" << T << "(" << d << ", " << a << ", "
               << Lu << ");";
        break;
      case Op::NRedOr:
        os << "lo::redOrN" << T << "(" << d << ", " << a << ", " << Lu
           << ");";
        break;
      case Op::NRedAnd:
        os << "lo::redAndN" << T << "(" << d << ", " << a << ", "
           << mask << ", " << Lu << ");";
        break;
      case Op::NRedXor:
        os << "lo::redXorN" << T << "(" << d << ", " << a << ", " << Lu
           << ");";
        break;
      case Op::NMemRead: {
        const uint32_t as = lo::nlimbs(in.aw);
        os << FOR << laneSlot(in.dst, 1) << " = M[" << in.lo << "][("
           << laneSlot(in.a, as) << " % " << mems[in.lo].depth
           << "ull) * " << Lu << " + l];";
        break;
      }
      case Op::WAdd:
      case Op::WSub:
      case Op::WMul:
      case Op::WAnd:
      case Op::WOr:
      case Op::WXor: {
        const uint32_t s = lo::nlimbs(in.width);
        const char *fn = in.op == Op::WAdd   ? "add"
                         : in.op == Op::WSub ? "sub"
                         : in.op == Op::WMul ? "mul"
                         : in.op == Op::WAnd ? "bitAnd"
                         : in.op == Op::WOr  ? "bitOr"
                                             : "bitXor";
        os << FOR << "lo::" << fn << "(" << lanePtr(in.dst, s) << ", "
           << lanePtr(in.a, s) << ", " << lanePtr(in.b, s) << ", " << W
           << ");";
        break;
      }
      case Op::WNot: {
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::bitNot(" << lanePtr(in.dst, s) << ", "
           << lanePtr(in.a, s) << ", " << W << ");";
        break;
      }
      case Op::WShl:
      case Op::WLshr: {
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::" << (in.op == Op::WShl ? "shl" : "lshr")
           << "(" << lanePtr(in.dst, s) << ", " << lanePtr(in.a, s)
           << ", " << shiftAmountLaned(in) << ", " << W << ");";
        break;
      }
      case Op::WEq:
      case Op::WUlt:
      case Op::WSlt: {
        const uint32_t s = lo::nlimbs(in.aw);
        const char *fn = in.op == Op::WEq    ? "eq"
                         : in.op == Op::WUlt ? "ult"
                                             : "slt";
        os << FOR << laneSlot(in.dst, 1) << " = lo::" << fn << "("
           << lanePtr(in.a, s) << ", " << lanePtr(in.b, s) << ", "
           << AW << ");";
        break;
      }
      case Op::WMux: {
        const uint32_t ss = lo::nlimbs(in.aw);
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::copy(" << lanePtr(in.dst, s) << ", "
           << laneSlot(in.a, ss) << " ? " << lanePtr(in.b, s) << " : "
           << lanePtr(in.c, s) << ", " << s << "u);";
        break;
      }
      case Op::WSlice: {
        const uint32_t as = lo::nlimbs(in.aw);
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::slice(" << lanePtr(in.dst, s) << ", "
           << lanePtr(in.a, as) << ", " << AW << ", " << in.lo
           << "u, " << W << ");";
        break;
      }
      case Op::WConcat: {
        const uint32_t as = lo::nlimbs(in.aw);
        const uint32_t bs = lo::nlimbs(in.bw);
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::concat(" << lanePtr(in.dst, s) << ", "
           << lanePtr(in.a, as) << ", " << lanePtr(in.b, bs) << ", "
           << AW << ", " << BW << ");";
        break;
      }
      case Op::WZExt:
      case Op::WSExt: {
        const uint32_t as = lo::nlimbs(in.aw);
        const uint32_t s = lo::nlimbs(in.width);
        os << FOR << "lo::"
           << (in.op == Op::WZExt ? "zext" : "sext") << "("
           << lanePtr(in.dst, s) << ", " << lanePtr(in.a, as) << ", "
           << W << ", " << AW << ");";
        break;
      }
      case Op::WRedOr:
      case Op::WRedAnd:
      case Op::WRedXor: {
        const uint32_t as = lo::nlimbs(in.aw);
        const char *fn = in.op == Op::WRedOr    ? "reduceOr"
                         : in.op == Op::WRedAnd ? "reduceAnd"
                                                : "reduceXor";
        os << FOR << laneSlot(in.dst, 1) << " = lo::" << fn << "("
           << lanePtr(in.a, as) << ", " << AW << ");";
        break;
      }
      case Op::WMemRead: {
        const uint32_t as = lo::nlimbs(in.aw);
        const tape::MemState &m = mems[in.lo];
        os << FOR << "lo::copy(" << lanePtr(in.dst, m.wordLimbs)
           << ", M[" << in.lo << "] + ((" << laneSlot(in.a, as)
           << " % " << m.depth << "ull) * " << Lu << " + l) * "
           << m.wordLimbs << "u, " << m.wordLimbs << "u);";
        break;
      }
    }
    os << "\n";
}

void
emitStmt(std::ostream &os, const tape::Instr &in,
         const std::vector<tape::MemState> &mems, unsigned lanes)
{
    if (lanes == 1)
        emitInstr(os, in, mems);
    else
        emitInstrLaned(os, in, mems, lanes);
}

// ---------------------------------------------------------------------------
// Translation units: single combined, per-chunk, and the chunk driver
// ---------------------------------------------------------------------------

/** One static function per ~1k statements bounds the host compiler's
 *  per-function work (large designs lower to tapes of tens of
 *  thousands of ops; one giant function makes -O2 register
 *  allocation superlinear) and is also the cold-start concurrency
 *  grain: each chunk can compile as its own translation unit. */
constexpr size_t kChunk = 1024;

size_t
chunkCountOf(size_t tape_len)
{
    return (tape_len + kChunk - 1) / kChunk;
}

/** What to emit: a tape slice, its memory geometry, the compile-time
 *  lane count and the exported entry-point name. */
struct EmitSpec
{
    const tape::Instr *instrs;
    size_t count;
    const std::vector<tape::MemState> *mems;
    unsigned lanes;
    std::string entry;
};

const char *
emitHeader()
{
    return "// Generated by manticore netlist.aot: the lowered flat\n"
           "// tape as straight-line C++, one statement per tape op,\n"
           "// arena offsets / widths / masks baked in.  Do not edit;\n"
           "// keyed by the manticore_aot_key definition at the end.\n"
           "#include <cstdint>\n"
           "#include \"support/limbops.hh\"\n"
           "\n"
           "namespace lo = ::manticore::limbops;\n"
           "using u64 = uint64_t;\n"
           "\n";
}

/** The whole tape as one translation unit (chunked into static
 *  functions).  Also the canonical source the cache key hashes,
 *  whether or not the build is split into chunk TUs. */
std::string
emitUnit(const EmitSpec &spec)
{
    std::ostringstream os;
    os << emitHeader();
    size_t chunks = chunkCountOf(spec.count);
    for (size_t c = 0; c < chunks; ++c) {
        os << "static void cycle_chunk" << c
           << "(u64 *A, const u64 *const *M)\n{\n"
              "    (void)A; (void)M;\n";
        size_t end = std::min(spec.count, (c + 1) * kChunk);
        for (size_t i = c * kChunk; i < end; ++i)
            emitStmt(os, spec.instrs[i], *spec.mems, spec.lanes);
        os << "}\n\n";
    }
    os << "extern \"C\" void " << spec.entry
       << "(u64 *A, const u64 *const *M)\n{\n";
    if (chunks == 0)
        os << "    (void)A; (void)M;\n";
    for (size_t c = 0; c < chunks; ++c)
        os << "    cycle_chunk" << c << "(A, M);\n";
    os << "}\n";
    return os.str();
}

/** One chunk as its own translation unit (exported with a _chunk<c>
 *  suffix so the driver TU can call it across TU boundaries). */
std::string
emitChunkTU(const EmitSpec &spec, size_t c)
{
    std::ostringstream os;
    os << emitHeader();
    os << "extern \"C\" void " << spec.entry << "_chunk" << c
       << "(u64 *A, const u64 *const *M)\n{\n"
          "    (void)A; (void)M;\n";
    size_t end = std::min(spec.count, (c + 1) * kChunk);
    for (size_t i = c * kChunk; i < end; ++i)
        emitStmt(os, spec.instrs[i], *spec.mems, spec.lanes);
    os << "}\n";
    return os.str();
}

/** The driver TU for a chunked build: declares every chunk entry and
 *  calls them in tape order.  Compiled as part of the link step. */
std::string
emitDriverTU(const EmitSpec &spec, size_t chunks)
{
    std::ostringstream os;
    os << "// Generated by manticore netlist.aot: chunk-TU driver.\n"
          "#include <cstdint>\n"
          "using u64 = uint64_t;\n"
          "\n";
    for (size_t c = 0; c < chunks; ++c)
        os << "extern \"C\" void " << spec.entry << "_chunk" << c
           << "(u64 *A, const u64 *const *M);\n";
    os << "\nextern \"C\" void " << spec.entry
       << "(u64 *A, const u64 *const *M)\n{\n";
    for (size_t c = 0; c < chunks; ++c)
        os << "    " << spec.entry << "_chunk" << c << "(A, M);\n";
    os << "}\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// Cache keys and concurrent compilation
// ---------------------------------------------------------------------------

/** Content-addressed cache key: the canonical generated source
 *  (which fully encodes the lowered tape, lane width and memory
 *  geometry), the kernel header it compiles against, the flags, the
 *  compiler, and the host CPU model — the laned objects are
 *  -march=native builds, so a cache directory shared across
 *  heterogeneous hosts must not dlopen another machine's object. */
std::string
objectKey(const std::string &source,
          const std::vector<std::string> &flags, const AotToolchain &tc)
{
    uint64_t hash = fnv1a64(source);
    hash = fnv1a64(readFileAll(includeDir() + "/support/limbops.hh"),
                   hash);
    for (const std::string &f : flags)
        hash = fnv1a64(f, hash);
    hash = fnv1a64(tc.compiler, hash);
    hash = fnv1a64(aotHostCpuModel(), hash);
    return hashHex(hash);
}

unsigned
buildJobs(unsigned requested, size_t tasks)
{
    unsigned jobs = requested != 0
                        ? requested
                        : std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(tasks, 1)));
}

/** Run the tasks on up to `jobs` threads (the caller's thread is one
 *  of them).  Tasks invoke support/subprocess, which is fork/exec —
 *  safe from concurrent std::threads. */
void
runConcurrently(std::vector<std::function<void()>> tasks, unsigned jobs)
{
    if (tasks.empty())
        return;
    if (jobs <= 1) {
        for (auto &task : tasks)
            task();
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < tasks.size();
             i = next.fetch_add(1))
            tasks[i]();
    };
    std::vector<std::thread> threads;
    for (unsigned j = 1; j < jobs; ++j)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();
}

CommandResult
runCompile(const std::string &cxx, const std::vector<std::string> &flags,
           const std::vector<std::string> &extra)
{
    std::vector<std::string> argv{cxx};
    argv.insert(argv.end(), flags.begin(), flags.end());
    argv.push_back("-I");
    argv.push_back(includeDir());
    argv.insert(argv.end(), extra.begin(), extra.end());
    return runCommand(argv);
}

} // namespace

const AotToolchain &
aotToolchain(const std::string &override_compiler)
{
    static std::mutex mutex;
    static std::map<std::string, AotToolchain> memo;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(override_compiler);
    if (it != memo.end())
        return it->second;

    std::vector<std::string> candidates;
    if (!override_compiler.empty()) {
        candidates.push_back(override_compiler);
    } else if (const char *env = std::getenv("MANTICORE_AOT_CXX")) {
        candidates.push_back(env);
    } else {
        candidates = {"c++", "g++", "clang++"};
    }

    AotToolchain tc;
    std::string probed;
    for (const std::string &cxx : candidates) {
        AotToolchain one = probeOne(cxx);
        if (one.ok) {
            tc = one;
            break;
        }
        if (!probed.empty())
            probed += ", ";
        probed += one.message;
    }
    if (!tc.ok)
        tc.message = "no working toolchain among: " + probed;
    return memo.emplace(override_compiler, std::move(tc))
        .first->second;
}

std::string
aotResolveCacheDir(const EvalOptions &options)
{
    if (!options.aotCacheDir.empty())
        return options.aotCacheDir;
    if (const char *env = std::getenv("MANTICORE_AOT_CACHE"))
        return env;
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp && *tmp ? tmp : "/tmp") +
           "/manticore-aot-cache-" +
           std::to_string(static_cast<long>(getuid()));
}

const std::string &
aotHostCpuModel()
{
    static const std::string kModel = detectHostCpu();
    return kModel;
}

AotEvaluator::AotEvaluator(Netlist netlist, const EvalOptions &options)
    : CompiledEvaluator(std::move(netlist), options)
{
    _memTable.reserve(_mems.size());
    for (const tape::MemState &m : _mems)
        _memTable.push_back(m.words.data());
    build(options);
}

AotEvaluator::~AotEvaluator()
{
    if (_handle)
        dlclose(_handle);
}

std::string
AotEvaluator::emitSource() const
{
    EmitSpec spec{_tape.data(), _tape.size(), &_mems, _padded,
                  "manticore_aot_cycle"};
    return emitUnit(spec);
}

bool
AotEvaluator::load(const std::string &path)
{
    void *handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle)
        return false;
    const char *key =
        static_cast<const char *>(dlsym(handle, "manticore_aot_key"));
    void *fn = dlsym(handle, "manticore_aot_cycle");
    if (!key || !fn || _key != key) {
        dlclose(handle);
        return false;
    }
    _handle = handle;
    _cycleFn = reinterpret_cast<CycleFn>(fn);
    _objectPath = path;
    return true;
}

void
AotEvaluator::build(const EvalOptions &options)
{
    const AotToolchain &tc = aotToolchain(options.aotCompiler);
    if (!tc.ok) {
        MANTICORE_WARN("netlist.aot: ", tc.message,
                       "; falling back to the interpreted tape");
        return;
    }

    const std::vector<std::string> flags = objectFlags(tc, _padded);
    std::string source = emitSource();
    _key = objectKey(source, flags, tc);

    std::string dir = aotResolveCacheDir(options);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        MANTICORE_WARN("netlist.aot: cannot create cache dir ", dir,
                       " (", ec.message(),
                       "); falling back to the interpreted tape");
        return;
    }
    std::string stem = dir + "/manticore-aot-" + _key;
    std::string obj = stem + ".so";

    // Warm path: a cached object whose embedded key matches.  A
    // truncated / corrupted / stale entry fails load() and is
    // rebuilt below.
    if (fs::exists(obj, ec) && load(obj)) {
        _cacheHit = true;
        return;
    }
    fs::remove(obj, ec);

    const std::string key_line =
        "\nextern \"C\" const char manticore_aot_key[] = \"" + _key +
        "\";\n";
    std::string obj_tmp =
        obj + ".tmp." + std::to_string(static_cast<long>(getpid()));
    EmitSpec spec{_tape.data(), _tape.size(), &_mems, _padded,
                  "manticore_aot_cycle"};
    const size_t chunks = chunkCountOf(_tape.size());

    if (chunks <= 1) {
        // One-chunk tape: a single combined compile+link invocation.
        std::string src = stem + ".cc";
        if (!writeFileAtomic(src, source + key_line)) {
            MANTICORE_WARN("netlist.aot: cannot write ", src,
                           "; falling back to the interpreted tape");
            return;
        }
        ++_compilerRuns;
        CommandResult res = runCompile(tc.compiler, flags,
                                       {"-shared", src, "-o", obj_tmp});
        if (!res.ok()) {
            fs::remove(obj_tmp, ec);
            MANTICORE_WARN("netlist.aot: ", tc.compiler,
                           " failed on the generated source (",
                           firstLine(res.output),
                           "); falling back to the interpreted tape");
            return;
        }
    } else {
        // Cold-start concurrency: every ≤1024-statement chunk is its
        // own translation unit; the chunk TUs compile through
        // concurrent subprocess invocations (bounded by aotJobs),
        // then the driver TU is compiled into the link step.
        std::vector<std::string> chunk_objs(chunks);
        std::vector<std::function<void()>> tasks;
        std::atomic<unsigned> runs{0};
        std::atomic<bool> failed{false};
        std::mutex err_mutex;
        std::string error;
        for (size_t c = 0; c < chunks; ++c) {
            std::string csrc =
                stem + ".chunk" + std::to_string(c) + ".cc";
            std::string cobj = obj_tmp + "." + std::to_string(c) + ".o";
            chunk_objs[c] = cobj;
            std::string csource = emitChunkTU(spec, c);
            tasks.push_back([csrc, cobj, csource, &flags, &runs,
                             &failed, &err_mutex, &error,
                             compiler = tc.compiler] {
                if (failed.load(std::memory_order_relaxed))
                    return;
                if (!writeFileAtomic(csrc, csource)) {
                    std::lock_guard<std::mutex> lock(err_mutex);
                    if (error.empty())
                        error = "cannot write " + csrc;
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
                runs.fetch_add(1, std::memory_order_relaxed);
                CommandResult res = runCompile(
                    compiler, flags, {"-c", csrc, "-o", cobj});
                if (!res.ok()) {
                    std::lock_guard<std::mutex> lock(err_mutex);
                    if (error.empty())
                        error = firstLine(res.output);
                    failed.store(true, std::memory_order_relaxed);
                }
            });
        }
        runConcurrently(std::move(tasks),
                        buildJobs(options.aotJobs, chunks));
        _compilerRuns += runs.load();
        if (failed.load()) {
            for (const std::string &o : chunk_objs)
                fs::remove(o, ec);
            MANTICORE_WARN("netlist.aot: ", tc.compiler,
                           " failed on the generated source (", error,
                           "); falling back to the interpreted tape");
            return;
        }
        std::string dsrc = stem + ".driver.cc";
        if (!writeFileAtomic(dsrc, emitDriverTU(spec, chunks) +
                                       key_line)) {
            for (const std::string &o : chunk_objs)
                fs::remove(o, ec);
            MANTICORE_WARN("netlist.aot: cannot write ", dsrc,
                           "; falling back to the interpreted tape");
            return;
        }
        std::vector<std::string> link{"-shared", dsrc};
        for (const std::string &o : chunk_objs)
            link.push_back(o);
        link.push_back("-o");
        link.push_back(obj_tmp);
        ++_compilerRuns;
        CommandResult res = runCompile(tc.compiler, flags, link);
        for (const std::string &o : chunk_objs)
            fs::remove(o, ec);
        if (!res.ok()) {
            fs::remove(obj_tmp, ec);
            MANTICORE_WARN("netlist.aot: ", tc.compiler,
                           " failed linking the chunk objects (",
                           firstLine(res.output),
                           "); falling back to the interpreted tape");
            return;
        }
    }

    fs::rename(obj_tmp, obj, ec);
    if (ec || !load(obj)) {
        fs::remove(obj_tmp, ec);
        MANTICORE_WARN("netlist.aot: cannot load ", obj,
                       "; falling back to the interpreted tape");
        return;
    }
}

void
AotEvaluator::evalCycle()
{
    if (_cycleFn)
        _cycleFn(_arena.data(), _memTable.data());
    else
        CompiledEvaluator::evalCycle();
}

// ---------------------------------------------------------------------------
// AotParallelEvaluator: per-partition compiled objects
// ---------------------------------------------------------------------------

AotParallelEvaluator::AotParallelEvaluator(Netlist netlist,
                                           const EvalOptions &options)
    : ParallelCompiledEvaluator(std::move(netlist), options)
{
    // The base constructor has lowered, partitioned and spawned the
    // worker pool — but the workers are parked on the batch
    // generation counter until the first run()/step(), so the
    // construction-time reads below and the fn-pointer installs are
    // master-owned.
    const std::vector<tape::MemState> &mems = memStates();
    _memTable.reserve(mems.size());
    for (const tape::MemState &m : mems)
        _memTable.push_back(m.words.data());
    _parts.resize(numProcesses());
    buildAll(options);
}

AotParallelEvaluator::~AotParallelEvaluator()
{
    // Workers are parked between batches and the base destructor
    // makes them exit without touching the tapes again, so nothing
    // can be inside a compiled cycle function while we unload.
    for (Part &p : _parts)
        if (p.handle)
            dlclose(p.handle);
}

std::string
AotParallelEvaluator::emitPartitionSource(size_t proc_index) const
{
    const std::vector<tape::Instr> &tape = procTape(proc_index);
    EmitSpec spec{tape.data(), tape.size(), &memStates(),
                  paddedLanes(),
                  "manticore_aot_cycle_p" + std::to_string(proc_index)};
    return emitUnit(spec);
}

const std::string &
AotParallelEvaluator::partitionKey(size_t proc_index) const
{
    MANTICORE_ASSERT(proc_index < _parts.size(), "partition ",
                     proc_index, " out of range");
    return _parts[proc_index].key;
}

const std::string &
AotParallelEvaluator::partitionObject(size_t proc_index) const
{
    MANTICORE_ASSERT(proc_index < _parts.size(), "partition ",
                     proc_index, " out of range");
    return _parts[proc_index].object;
}

bool
AotParallelEvaluator::loadPart(size_t proc_index,
                               const std::string &path)
{
    // RTLD_LOCAL keeps each object's manticore_aot_key (and entry
    // point) out of the global namespace, so K partition objects
    // coexist in one process.
    void *handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle)
        return false;
    const char *key =
        static_cast<const char *>(dlsym(handle, "manticore_aot_key"));
    std::string entry =
        "manticore_aot_cycle_p" + std::to_string(proc_index);
    void *fn = dlsym(handle, entry.c_str());
    if (!key || !fn || _parts[proc_index].key != key) {
        dlclose(handle);
        return false;
    }
    _parts[proc_index].handle = handle;
    _parts[proc_index].fn = reinterpret_cast<CycleFn>(fn);
    _parts[proc_index].object = path;
    ++_aotParts;
    return true;
}

void
AotParallelEvaluator::buildAll(const EvalOptions &options)
{
    const size_t n = _parts.size();
    if (n == 0)
        return;

    const AotToolchain &tc = aotToolchain(options.aotCompiler);
    if (!tc.ok) {
        MANTICORE_WARN("netlist.parallel.aot: ", tc.message,
                       "; falling back to the interpreted tapes");
        return;
    }

    const std::vector<std::string> flags =
        objectFlags(tc, paddedLanes());
    std::string dir = aotResolveCacheDir(options);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        MANTICORE_WARN("netlist.parallel.aot: cannot create cache dir ",
                       dir, " (", ec.message(),
                       "); falling back to the interpreted tapes");
        return;
    }

    // Pass 1 (master): emit every partition's source, compute its
    // key (each hashes that partition's own tape slice, so one
    // partition's corruption rebuilds one object), try the cache.
    struct Cold
    {
        size_t p;
        std::string src_text, src, obj, obj_tmp;
    };
    std::vector<Cold> cold;
    for (size_t p = 0; p < n; ++p) {
        std::string source = emitPartitionSource(p);
        _parts[p].key = objectKey(source, flags, tc);
        std::string stem = dir + "/manticore-aot-" + _parts[p].key;
        std::string obj = stem + ".so";
        if (fs::exists(obj, ec) && loadPart(p, obj))
            continue;
        fs::remove(obj, ec);
        Cold c;
        c.p = p;
        c.src_text = source +
                     "\nextern \"C\" const char manticore_aot_key[] = "
                     "\"" +
                     _parts[p].key + "\";\n";
        c.src = stem + ".cc";
        c.obj = obj;
        c.obj_tmp = obj + ".tmp." +
                    std::to_string(static_cast<long>(getpid())) + "." +
                    std::to_string(p);
        cold.push_back(std::move(c));
    }

    // Pass 2: cold builds run the toolchain concurrently — one
    // subprocess per partition object, bounded by aotJobs.
    std::atomic<unsigned> runs{0};
    std::vector<std::string> errors(n);
    std::vector<uint8_t> built(n, 0);
    std::vector<std::function<void()>> tasks;
    for (const Cold &c : cold) {
        tasks.push_back([&c, &flags, &runs, &errors, &built,
                         compiler = tc.compiler] {
            std::error_code tec;
            if (!writeFileAtomic(c.src, c.src_text)) {
                errors[c.p] = "cannot write " + c.src;
                return;
            }
            runs.fetch_add(1, std::memory_order_relaxed);
            CommandResult res = runCompile(
                compiler, flags, {"-shared", c.src, "-o", c.obj_tmp});
            if (!res.ok()) {
                fs::remove(c.obj_tmp, tec);
                errors[c.p] = firstLine(res.output);
                return;
            }
            fs::rename(c.obj_tmp, c.obj, tec);
            if (tec) {
                errors[c.p] = "cannot rename " + c.obj_tmp +
                              " into the cache (" + tec.message() + ")";
                fs::remove(c.obj_tmp, tec);
                return;
            }
            built[c.p] = 1;
        });
    }
    runConcurrently(std::move(tasks),
                    buildJobs(options.aotJobs, cold.size()));
    _compilerRuns += runs.load();

    // Pass 3 (master): dlopen the freshly built objects; a partition
    // whose object failed degrades alone — its computeTape stays on
    // the interpreted tape.
    for (const Cold &c : cold) {
        if (built[c.p] && loadPart(c.p, c.obj))
            continue;
        MANTICORE_WARN(
            "netlist.parallel.aot: partition ", c.p, ": ",
            errors[c.p].empty()
                ? std::string("object failed to load/verify")
                : errors[c.p],
            "; falling back to the interpreted tape");
    }
    _usingAot = _aotParts == n;
}

void
AotParallelEvaluator::computeTape(size_t proc_index)
{
    const Part &part = _parts[proc_index];
    if (part.fn)
        part.fn(arenaData(), _memTable.data());
    else
        ParallelCompiledEvaluator::computeTape(proc_index);
}

} // namespace manticore::netlist
