#include "netlist/aot.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include <dlfcn.h>
#include <unistd.h>

#include "support/hashing.hh"
#include "support/limbops.hh"
#include "support/logging.hh"
#include "support/subprocess.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;
namespace fs = ::std::filesystem;

namespace {

/** Where the emitted code finds support/limbops.hh: env override,
 *  else the source tree baked in by CMake. */
std::string
includeDir()
{
    if (const char *env = std::getenv("MANTICORE_AOT_INCLUDE"))
        return env;
#ifdef MANTICORE_AOT_INCLUDE_DIR
    return MANTICORE_AOT_INCLUDE_DIR;
#else
    return "";
#endif
}

/** Flags the emitted translation unit is always compiled with —
 *  fixed (independent of how this library was built) so the cache
 *  key, and therefore the cached object, is shared across host
 *  build configurations. */
const std::vector<std::string> &
compileFlags()
{
    static const std::vector<std::string> kFlags = {
        "-std=c++17", "-O2", "-fPIC", "-shared",
    };
    return kFlags;
}

std::string
readFileAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << content;
        if (!out.flush())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
    return !ec;
}

/** First line of a (possibly multi-line) compiler diagnostic, capped
 *  for readable fatal()s. */
std::string
firstLine(const std::string &text, size_t cap = 200)
{
    size_t end = text.find('\n');
    std::string line =
        end == std::string::npos ? text : text.substr(0, end);
    if (line.size() > cap)
        line = line.substr(0, cap) + "...";
    return line;
}

/** Compile-and-dlopen probe of one candidate compiler: emitted code
 *  must build (including support/limbops.hh) into a shared object we
 *  can load and call. */
AotToolchain
probeOne(const std::string &cxx)
{
    AotToolchain tc;
    tc.compiler = cxx;

    std::string inc = includeDir();
    std::error_code ec;
    fs::path tmpdir = fs::temp_directory_path(ec);
    if (ec) {
        tc.message = cxx + " (no temp directory: " + ec.message() + ")";
        return tc;
    }
    std::string stem =
        (tmpdir / ("manticore-aot-probe-" +
                   std::to_string(static_cast<long>(getpid()))))
            .string();
    std::string src = stem + ".cc";
    std::string obj = stem + ".so";

    // The probe uses the same kernels the emitted code will: a
    // missing header or an exotic compiler shows up here, not at
    // simulation time.
    const std::string probe_src =
        "#include <cstdint>\n"
        "#include \"support/limbops.hh\"\n"
        "extern \"C\" unsigned manticore_aot_probe() {\n"
        "    uint64_t v[2] = {~0ull, 1ull};\n"
        "    return manticore::limbops::nlimbs(65) +\n"
        "           (manticore::limbops::reduceXor(v, 65) ? 1u : 0u);\n"
        "}\n";
    if (!writeFileAtomic(src, probe_src)) {
        tc.message = cxx + " (cannot write probe source to " + src + ")";
        return tc;
    }

    std::vector<std::string> argv{cxx};
    for (const std::string &f : compileFlags())
        argv.push_back(f);
    argv.push_back("-I");
    argv.push_back(inc);
    argv.push_back(src);
    argv.push_back("-o");
    argv.push_back(obj);
    CommandResult res = runCommand(argv);

    if (!res.ok()) {
        tc.message = cxx + " (" + firstLine(res.output) + ")";
        fs::remove(src, ec);
        return tc;
    }

    void *handle = dlopen(obj.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) {
        tc.message = cxx + " (dlopen: " + firstLine(dlerror()) + ")";
    } else {
        auto *fn = reinterpret_cast<unsigned (*)()>(
            dlsym(handle, "manticore_aot_probe"));
        if (!fn || fn() != 3)
            tc.message = cxx + " (probe object misbehaved)";
        else
            tc.ok = true;
        dlclose(handle);
    }
    fs::remove(src, ec);
    fs::remove(obj, ec);
    return tc;
}

// ---------------------------------------------------------------------------
// Codegen: one C++ statement per tape instruction, constants baked in
// ---------------------------------------------------------------------------

std::string
hexU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llxull",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
slot(uint32_t off)
{
    return "A[" + std::to_string(off) + "]";
}

std::string
ptr(uint32_t off)
{
    return "A + " + std::to_string(off);
}

/** The (possibly >64-bit) shift amount, mirroring
 *  tape.cc::shiftAmountLane: wide amounts that do not fit 64 bits
 *  shift everything out (spelled as `width`, which both shl/lshr and
 *  the narrow `amt >= width` guard treat as all-out). */
std::string
shiftAmount(const tape::Instr &in)
{
    if (in.bw <= 64)
        return slot(in.b);
    return "(lo::fitsUint64(" + ptr(in.b) + ", " +
           std::to_string(lo::nlimbs(in.bw)) + "u) ? " + slot(in.b) +
           " : " + std::to_string(in.width) + "ull)";
}

/** Emit the statement for one instruction.  Must mirror the L == 1
 *  instantiation of tape.cc's runImpl exactly — the randomized
 *  differential and the CrossCheck matrix pin this. */
void
emitInstr(std::ostream &os, const tape::Instr &in,
          const std::vector<tape::MemState> &mems)
{
    using tape::Op;
    const std::string dst = slot(in.dst);
    const std::string a = slot(in.a);
    const std::string b = slot(in.b);
    const std::string mask = hexU64(in.mask);
    const std::string W = std::to_string(in.width) + "u";
    const std::string AW = std::to_string(in.aw) + "u";
    const std::string BW = std::to_string(in.bw) + "u";

    os << "    ";
    switch (in.op) {
      case Op::NAdd:
        os << dst << " = (" << a << " + " << b << ") & " << mask << ";";
        break;
      case Op::NSub:
        os << dst << " = (" << a << " - " << b << ") & " << mask << ";";
        break;
      case Op::NMul:
        os << dst << " = (" << a << " * " << b << ") & " << mask << ";";
        break;
      case Op::NAnd:
        os << dst << " = " << a << " & " << b << ";";
        break;
      case Op::NOr:
        os << dst << " = " << a << " | " << b << ";";
        break;
      case Op::NXor:
        os << dst << " = " << a << " ^ " << b << ";";
        break;
      case Op::NNot:
        os << dst << " = ~" << a << " & " << mask << ";";
        break;
      case Op::NShl:
        os << "{ u64 amt = " << shiftAmount(in) << "; " << dst
           << " = amt >= " << in.width << "ull ? 0 : (" << a
           << " << amt) & " << mask << "; }";
        break;
      case Op::NLshr:
        os << "{ u64 amt = " << shiftAmount(in) << "; " << dst
           << " = amt >= " << in.width << "ull ? 0 : " << a
           << " >> amt; }";
        break;
      case Op::NEq:
        os << dst << " = " << a << " == " << b << ";";
        break;
      case Op::NUlt:
        os << dst << " = " << a << " < " << b << ";";
        break;
      case Op::NSlt: {
        std::string sbit = hexU64(1ull << (in.aw - 1));
        os << dst << " = (" << a << " ^ " << sbit << ") < (" << b
           << " ^ " << sbit << ");";
        break;
      }
      case Op::NMux:
        os << dst << " = " << a << " ? " << b << " : " << slot(in.c)
           << ";";
        break;
      case Op::NSlice:
        os << dst << " = (" << a << " >> " << in.lo << ") & " << mask
           << ";";
        break;
      case Op::NConcat:
        os << dst << " = (" << a << " << " << in.bw << ") | " << b
           << ";";
        break;
      case Op::NZExt:
        os << dst << " = " << a << ";";
        break;
      case Op::NSExt:
        if (in.aw < in.width) {
            std::string sbit = hexU64(1ull << (in.aw - 1));
            std::string fill = hexU64((~0ull << in.aw) & in.mask);
            os << "{ u64 v = " << a << "; " << dst << " = (v & " << sbit
               << ") ? (v | " << fill << ") : v; }";
        } else {
            os << dst << " = " << a << ";";
        }
        break;
      case Op::NRedOr:
        os << dst << " = " << a << " != 0;";
        break;
      case Op::NRedAnd:
        os << dst << " = " << a << " == " << mask << ";";
        break;
      case Op::NRedXor:
        os << dst << " = (u64)(__builtin_popcountll(" << a
           << ") & 1);";
        break;
      case Op::NMemRead:
        os << dst << " = M[" << in.lo << "][" << a << " % "
           << mems[in.lo].depth << "ull];";
        break;
      case Op::WAdd:
        os << "lo::add(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WSub:
        os << "lo::sub(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WMul:
        os << "lo::mul(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WAnd:
        os << "lo::bitAnd(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WOr:
        os << "lo::bitOr(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WXor:
        os << "lo::bitXor(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << W << ");";
        break;
      case Op::WNot:
        os << "lo::bitNot(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ");";
        break;
      case Op::WShl:
        os << "lo::shl(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << shiftAmount(in) << ", " << W << ");";
        break;
      case Op::WLshr:
        os << "lo::lshr(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << shiftAmount(in) << ", " << W << ");";
        break;
      case Op::WEq:
        os << dst << " = lo::eq(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WUlt:
        os << dst << " = lo::ult(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WSlt:
        os << dst << " = lo::slt(" << ptr(in.a) << ", " << ptr(in.b)
           << ", " << AW << ");";
        break;
      case Op::WMux:
        os << "lo::copy(" << ptr(in.dst) << ", " << a << " ? "
           << ptr(in.b) << " : " << ptr(in.c) << ", "
           << lo::nlimbs(in.width) << "u);";
        break;
      case Op::WSlice:
        os << "lo::slice(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << AW << ", " << in.lo << "u, " << W << ");";
        break;
      case Op::WConcat:
        os << "lo::concat(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << ptr(in.b) << ", " << AW << ", " << BW << ");";
        break;
      case Op::WZExt:
        os << "lo::zext(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ", " << AW << ");";
        break;
      case Op::WSExt:
        os << "lo::sext(" << ptr(in.dst) << ", " << ptr(in.a) << ", "
           << W << ", " << AW << ");";
        break;
      case Op::WRedOr:
        os << dst << " = lo::reduceOr(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WRedAnd:
        os << dst << " = lo::reduceAnd(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WRedXor:
        os << dst << " = lo::reduceXor(" << ptr(in.a) << ", " << AW
           << ");";
        break;
      case Op::WMemRead: {
        const tape::MemState &m = mems[in.lo];
        os << "lo::copy(" << ptr(in.dst) << ", M[" << in.lo << "] + ("
           << a << " % " << m.depth << "ull) * " << m.wordLimbs
           << "u, " << m.wordLimbs << "u);";
        break;
      }
    }
    os << "\n";
}

} // namespace

const AotToolchain &
aotToolchain(const std::string &override_compiler)
{
    static std::mutex mutex;
    static std::map<std::string, AotToolchain> memo;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(override_compiler);
    if (it != memo.end())
        return it->second;

    std::vector<std::string> candidates;
    if (!override_compiler.empty()) {
        candidates.push_back(override_compiler);
    } else if (const char *env = std::getenv("MANTICORE_AOT_CXX")) {
        candidates.push_back(env);
    } else {
        candidates = {"c++", "g++", "clang++"};
    }

    AotToolchain tc;
    std::string probed;
    for (const std::string &cxx : candidates) {
        AotToolchain one = probeOne(cxx);
        if (one.ok) {
            tc = one;
            break;
        }
        if (!probed.empty())
            probed += ", ";
        probed += one.message;
    }
    if (!tc.ok)
        tc.message = "no working toolchain among: " + probed;
    return memo.emplace(override_compiler, std::move(tc))
        .first->second;
}

std::string
aotResolveCacheDir(const EvalOptions &options)
{
    if (!options.aotCacheDir.empty())
        return options.aotCacheDir;
    if (const char *env = std::getenv("MANTICORE_AOT_CACHE"))
        return env;
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp && *tmp ? tmp : "/tmp") +
           "/manticore-aot-cache-" +
           std::to_string(static_cast<long>(getuid()));
}

AotEvaluator::AotEvaluator(Netlist netlist, const EvalOptions &options)
    : CompiledEvaluator(std::move(netlist), options)
{
    MANTICORE_ASSERT(lanes() == 1,
                     "the AOT evaluator is single-lane (lanes=",
                     options.lanes, ")");
    _memTable.reserve(_mems.size());
    for (const tape::MemState &m : _mems)
        _memTable.push_back(m.words.data());
    build(options);
}

AotEvaluator::~AotEvaluator()
{
    if (_handle)
        dlclose(_handle);
}

std::string
AotEvaluator::emitSource() const
{
    // One static function per ~1k statements bounds the host
    // compiler's per-function work (large designs lower to tapes of
    // tens of thousands of ops; one giant function makes -O2
    // register allocation superlinear).
    static constexpr size_t kChunk = 1024;
    std::ostringstream os;
    os << "// Generated by manticore netlist.aot: the lowered flat\n"
          "// tape as straight-line C++, one statement per tape op,\n"
          "// arena offsets / widths / masks baked in.  Do not edit;\n"
          "// keyed by the manticore_aot_key definition at the end.\n"
          "#include <cstdint>\n"
          "#include \"support/limbops.hh\"\n"
          "\n"
          "namespace lo = ::manticore::limbops;\n"
          "using u64 = uint64_t;\n"
          "\n";

    size_t chunks = (_tape.size() + kChunk - 1) / kChunk;
    for (size_t c = 0; c < chunks; ++c) {
        os << "static void cycle_chunk" << c
           << "(u64 *A, const u64 *const *M)\n{\n"
              "    (void)A; (void)M;\n";
        size_t end = std::min(_tape.size(), (c + 1) * kChunk);
        for (size_t i = c * kChunk; i < end; ++i)
            emitInstr(os, _tape[i], _mems);
        os << "}\n\n";
    }

    os << "extern \"C\" void manticore_aot_cycle(u64 *A, "
          "const u64 *const *M)\n{\n";
    if (chunks == 0)
        os << "    (void)A; (void)M;\n";
    for (size_t c = 0; c < chunks; ++c)
        os << "    cycle_chunk" << c << "(A, M);\n";
    os << "}\n";
    return os.str();
}

bool
AotEvaluator::load(const std::string &path)
{
    void *handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle)
        return false;
    const char *key =
        static_cast<const char *>(dlsym(handle, "manticore_aot_key"));
    void *fn = dlsym(handle, "manticore_aot_cycle");
    if (!key || !fn || _key != key) {
        dlclose(handle);
        return false;
    }
    _handle = handle;
    _cycleFn = reinterpret_cast<CycleFn>(fn);
    _objectPath = path;
    return true;
}

void
AotEvaluator::build(const EvalOptions &options)
{
    const AotToolchain &tc = aotToolchain(options.aotCompiler);
    if (!tc.ok) {
        MANTICORE_WARN("netlist.aot: ", tc.message,
                       "; falling back to the interpreted tape");
        return;
    }

    // Cache key: the generated source (which fully encodes the
    // lowered tape and memory geometry), the kernel header it
    // compiles against, the compiler and the flags.  Any of these
    // changing must miss the cache.
    std::string source = emitSource();
    uint64_t hash = fnv1a64(source);
    hash = fnv1a64(readFileAll(includeDir() + "/support/limbops.hh"),
                   hash);
    for (const std::string &f : compileFlags())
        hash = fnv1a64(f, hash);
    hash = fnv1a64(tc.compiler, hash);
    _key = hashHex(hash);

    std::string dir = aotResolveCacheDir(options);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        MANTICORE_WARN("netlist.aot: cannot create cache dir ", dir,
                       " (", ec.message(),
                       "); falling back to the interpreted tape");
        return;
    }
    std::string stem = dir + "/manticore-aot-" + _key;
    std::string obj = stem + ".so";
    std::string src = stem + ".cc";

    // Warm path: a cached object whose embedded key matches.  A
    // truncated / corrupted / stale entry fails load() and is
    // rebuilt below.
    if (fs::exists(obj, ec) && load(obj)) {
        _cacheHit = true;
        return;
    }
    fs::remove(obj, ec);

    std::string full =
        source + "\nextern \"C\" const char manticore_aot_key[] = \"" +
        _key + "\";\n";
    if (!writeFileAtomic(src, full)) {
        MANTICORE_WARN("netlist.aot: cannot write ", src,
                       "; falling back to the interpreted tape");
        return;
    }

    std::string obj_tmp =
        obj + ".tmp." + std::to_string(static_cast<long>(getpid()));
    std::vector<std::string> argv{tc.compiler};
    for (const std::string &f : compileFlags())
        argv.push_back(f);
    argv.push_back("-I");
    argv.push_back(includeDir());
    argv.push_back(src);
    argv.push_back("-o");
    argv.push_back(obj_tmp);
    ++_compilerRuns;
    CommandResult res = runCommand(argv);
    if (!res.ok()) {
        fs::remove(obj_tmp, ec);
        MANTICORE_WARN("netlist.aot: ", tc.compiler,
                       " failed on the generated source (",
                       firstLine(res.output),
                       "); falling back to the interpreted tape");
        return;
    }
    fs::rename(obj_tmp, obj, ec);
    if (ec || !load(obj)) {
        fs::remove(obj_tmp, ec);
        MANTICORE_WARN("netlist.aot: cannot load ", obj,
                       "; falling back to the interpreted tape");
        return;
    }
}

void
AotEvaluator::evalCycle()
{
    if (_cycleFn)
        _cycleFn(_arena.data(), _memTable.data());
    else
        CompiledEvaluator::evalCycle();
}

} // namespace manticore::netlist
