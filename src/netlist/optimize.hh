/**
 * @file
 * Frontend netlist optimisations (the paper's frontend "performs a
 * few optimizations" before emitting netlist assembly, §6): constant
 * folding, structural common-subexpression elimination, and dead-code
 * elimination from the sinks (register nexts, memory writes, and
 * simulation side effects).  Registers and memories are preserved;
 * only combinational nodes are folded or dropped.
 */

#ifndef MANTICORE_NETLIST_OPTIMIZE_HH
#define MANTICORE_NETLIST_OPTIMIZE_HH

#include "netlist/netlist.hh"

namespace manticore::netlist {

struct NetlistOptStats
{
    size_t nodesBefore = 0;
    size_t nodesAfter = 0;
    size_t folded = 0;
    size_t csed = 0;
    size_t deadRemoved = 0;
};

/** Optimise the netlist, returning a new equivalent netlist and
 *  filling stats if given. */
Netlist optimizeNetlist(const Netlist &input,
                        NetlistOptStats *stats = nullptr);

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_OPTIMIZE_HH
