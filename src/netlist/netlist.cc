#include "netlist/netlist.hh"

#include <sstream>

#include "support/logging.hh"

namespace manticore::netlist {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Const: return "const";
      case OpKind::Input: return "input";
      case OpKind::RegRead: return "regread";
      case OpKind::MemRead: return "memread";
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::And: return "and";
      case OpKind::Or: return "or";
      case OpKind::Xor: return "xor";
      case OpKind::Not: return "not";
      case OpKind::Shl: return "shl";
      case OpKind::Lshr: return "lshr";
      case OpKind::Eq: return "eq";
      case OpKind::Ult: return "ult";
      case OpKind::Slt: return "slt";
      case OpKind::Mux: return "mux";
      case OpKind::Slice: return "slice";
      case OpKind::Concat: return "concat";
      case OpKind::ZExt: return "zext";
      case OpKind::SExt: return "sext";
      case OpKind::RedOr: return "redor";
      case OpKind::RedAnd: return "redand";
      case OpKind::RedXor: return "redxor";
    }
    return "?";
}

unsigned
opKindArity(OpKind kind)
{
    switch (kind) {
      case OpKind::Const:
      case OpKind::Input:
      case OpKind::RegRead:
        return 0;
      case OpKind::MemRead:
      case OpKind::Not:
      case OpKind::Slice:
      case OpKind::ZExt:
      case OpKind::SExt:
      case OpKind::RedOr:
      case OpKind::RedAnd:
      case OpKind::RedXor:
        return 1;
      case OpKind::Mux:
        return 3;
      default:
        return 2;
    }
}

NodeId
Netlist::addNode(Node node)
{
    MANTICORE_ASSERT(node.width > 0, "node must have a width");
    MANTICORE_ASSERT(node.operands.size() == opKindArity(node.kind),
                     "arity mismatch for ", opKindName(node.kind));
    for (NodeId op : node.operands)
        MANTICORE_ASSERT(op < _nodes.size(), "operand out of range");
    NodeId id = static_cast<NodeId>(_nodes.size());
    if (node.kind == OpKind::Input && !node.name.empty())
        _inputIndex.emplace(node.name, id);
    _nodes.push_back(std::move(node));
    return id;
}

RegId
Netlist::addRegister(Register reg)
{
    MANTICORE_ASSERT(reg.width > 0, "register must have a width");
    if (reg.init.width() == 0)
        reg.init = BitVector(reg.width);
    MANTICORE_ASSERT(reg.init.width() == reg.width,
                     "register init width mismatch for ", reg.name);
    RegId id = static_cast<RegId>(_registers.size());
    if (!reg.name.empty())
        _regIndex.emplace(reg.name, id);
    _registers.push_back(std::move(reg));

    Node read;
    read.kind = OpKind::RegRead;
    read.width = _registers[id].width;
    read.regId = id;
    read.name = _registers[id].name;
    _registers[id].current = addNode(std::move(read));
    return id;
}

MemId
Netlist::addMemory(Memory mem)
{
    MANTICORE_ASSERT(mem.width > 0 && mem.depth > 0,
                     "memory must have width and depth");
    if (mem.init.empty())
        mem.init.assign(mem.depth, BitVector(mem.width));
    MANTICORE_ASSERT(mem.init.size() == mem.depth,
                     "memory init size mismatch for ", mem.name);
    _memories.push_back(std::move(mem));
    return static_cast<MemId>(_memories.size()) - 1;
}

void
Netlist::connectNext(RegId reg, NodeId next)
{
    MANTICORE_ASSERT(reg < _registers.size(), "bad register id");
    MANTICORE_ASSERT(_registers[reg].next == kInvalidNode,
                     "register ", _registers[reg].name, " already wired");
    MANTICORE_ASSERT(next < _nodes.size(), "bad next node");
    MANTICORE_ASSERT(_nodes[next].width == _registers[reg].width,
                     "next width mismatch for ", _registers[reg].name);
    _registers[reg].next = next;
}

NodeId
Netlist::findInput(const std::string &name) const
{
    auto it = _inputIndex.find(name);
    return it == _inputIndex.end() ? kInvalidNode : it->second;
}

RegId
Netlist::findRegister(const std::string &name) const
{
    auto it = _regIndex.find(name);
    return it == _regIndex.end() ? kInvalidReg : it->second;
}

std::vector<std::string>
Netlist::inputNames() const
{
    std::vector<std::string> names;
    for (const Node &n : _nodes)
        if (n.kind == OpKind::Input)
            names.push_back(n.name);
    return names;
}

std::vector<std::string>
Netlist::registerNames() const
{
    std::vector<std::string> names;
    for (const Register &r : _registers)
        names.push_back(r.name);
    return names;
}

void
Netlist::validate() const
{
    for (size_t m = 0; m < _memories.size(); ++m) {
        const Memory &mem = _memories[m];
        MANTICORE_ASSERT(mem.width > 0, "memory ", mem.name,
                         " has zero width");
        MANTICORE_ASSERT(mem.depth > 0, "memory ", mem.name,
                         " has zero depth");
        MANTICORE_ASSERT(mem.init.size() == mem.depth,
                         "memory ", mem.name, " init size ",
                         mem.init.size(), " != depth ", mem.depth);
    }
    for (size_t i = 0; i < _nodes.size(); ++i) {
        const Node &n = _nodes[i];
        switch (n.kind) {
          case OpKind::Const:
            MANTICORE_ASSERT(n.value.width() == n.width,
                             "const width mismatch at node ", i);
            break;
          case OpKind::RegRead:
            MANTICORE_ASSERT(n.regId < _registers.size(),
                             "bad reg id at node ", i);
            break;
          case OpKind::MemRead: {
            MANTICORE_ASSERT(n.memId < _memories.size(),
                             "bad mem id at node ", i);
            const Memory &m = _memories[n.memId];
            MANTICORE_ASSERT(n.width == m.width,
                             "memread width mismatch at node ", i);
            break;
          }
          case OpKind::Add:
          case OpKind::Sub:
          case OpKind::Mul:
          case OpKind::And:
          case OpKind::Or:
          case OpKind::Xor: {
            unsigned w0 = _nodes[n.operands[0]].width;
            unsigned w1 = _nodes[n.operands[1]].width;
            MANTICORE_ASSERT(w0 == w1 && w0 == n.width,
                             "binary width mismatch at node ", i, " (",
                             opKindName(n.kind), ")");
            break;
          }
          case OpKind::Not:
            MANTICORE_ASSERT(_nodes[n.operands[0]].width == n.width,
                             "not width mismatch at node ", i);
            break;
          case OpKind::Shl:
          case OpKind::Lshr:
            MANTICORE_ASSERT(_nodes[n.operands[0]].width == n.width,
                             "shift width mismatch at node ", i);
            break;
          case OpKind::Eq:
          case OpKind::Ult:
          case OpKind::Slt:
            MANTICORE_ASSERT(n.width == 1, "compare must be 1-bit");
            MANTICORE_ASSERT(_nodes[n.operands[0]].width ==
                                 _nodes[n.operands[1]].width,
                             "compare operand mismatch at node ", i);
            break;
          case OpKind::Mux:
            MANTICORE_ASSERT(_nodes[n.operands[0]].width == 1,
                             "mux selector must be 1-bit at node ", i);
            MANTICORE_ASSERT(_nodes[n.operands[1]].width == n.width &&
                                 _nodes[n.operands[2]].width == n.width,
                             "mux width mismatch at node ", i);
            break;
          case OpKind::Slice:
            MANTICORE_ASSERT(n.lo + n.width <=
                                 _nodes[n.operands[0]].width,
                             "slice out of range at node ", i);
            break;
          case OpKind::Concat:
            MANTICORE_ASSERT(n.width == _nodes[n.operands[0]].width +
                                            _nodes[n.operands[1]].width,
                             "concat width mismatch at node ", i);
            break;
          case OpKind::ZExt:
          case OpKind::SExt:
            MANTICORE_ASSERT(n.width >= _nodes[n.operands[0]].width,
                             "ext must widen at node ", i);
            break;
          case OpKind::RedOr:
          case OpKind::RedAnd:
          case OpKind::RedXor:
            MANTICORE_ASSERT(n.width == 1, "reduction must be 1-bit");
            break;
          case OpKind::Input:
            break;
        }
    }
    for (const Register &r : _registers) {
        if (r.next == kInvalidNode)
            MANTICORE_FATAL("register ", r.name, " has no next value");
    }
    for (const MemWrite &w : _memWrites) {
        MANTICORE_ASSERT(w.mem < _memories.size(), "bad memwrite mem");
        MANTICORE_ASSERT(_nodes[w.data].width == _memories[w.mem].width,
                         "memwrite data width mismatch");
        MANTICORE_ASSERT(_nodes[w.enable].width == 1,
                         "memwrite enable must be 1-bit");
    }
    for (const Assert &a : _asserts) {
        MANTICORE_ASSERT(_nodes[a.enable].width == 1 &&
                             _nodes[a.cond].width == 1,
                         "assert operands must be 1-bit");
    }
    for (const Finish &f : _finishes)
        MANTICORE_ASSERT(_nodes[f.enable].width == 1,
                         "finish enable must be 1-bit");
    for (const Display &d : _displays)
        MANTICORE_ASSERT(_nodes[d.enable].width == 1,
                         "display enable must be 1-bit");
    // Acyclicity is established by construction: operands must exist
    // before a node is added, so node ids already form a topological
    // order and cycles are impossible.
}

std::vector<NodeId>
Netlist::topologicalOrder() const
{
    // Construction order is topological (operands precede users).
    std::vector<NodeId> order(_nodes.size());
    for (size_t i = 0; i < _nodes.size(); ++i)
        order[i] = static_cast<NodeId>(i);
    return order;
}

std::string
Netlist::toString() const
{
    std::ostringstream os;
    os << "netlist " << _name << " {\n";
    for (size_t i = 0; i < _registers.size(); ++i) {
        const Register &r = _registers[i];
        os << "  reg r" << i << " \"" << r.name << "\" width=" << r.width
           << " init=" << r.init.toString() << " next=n" << r.next
           << "\n";
    }
    for (size_t i = 0; i < _memories.size(); ++i) {
        const Memory &m = _memories[i];
        os << "  mem m" << i << " \"" << m.name << "\" width=" << m.width
           << " depth=" << m.depth << "\n";
    }
    for (size_t i = 0; i < _nodes.size(); ++i) {
        const Node &n = _nodes[i];
        os << "  n" << i << " = " << opKindName(n.kind) << " w"
           << n.width;
        if (n.kind == OpKind::Const)
            os << " " << n.value.toString();
        if (n.kind == OpKind::Slice)
            os << " lo=" << n.lo;
        if (n.kind == OpKind::RegRead)
            os << " r" << n.regId;
        if (n.kind == OpKind::MemRead)
            os << " m" << n.memId;
        for (NodeId op : n.operands)
            os << " n" << op;
        if (!n.name.empty())
            os << " ; " << n.name;
        os << "\n";
    }
    for (const MemWrite &w : _memWrites) {
        os << "  memwrite m" << w.mem << " addr=n" << w.addr << " data=n"
           << w.data << " en=n" << w.enable << "\n";
    }
    for (const Assert &a : _asserts) {
        os << "  assert en=n" << a.enable << " cond=n" << a.cond << " \""
           << a.message << "\"\n";
    }
    for (const Display &d : _displays) {
        os << "  display en=n" << d.enable << " \"" << d.format << "\"";
        for (NodeId arg : d.args)
            os << " n" << arg;
        os << "\n";
    }
    for (const Finish &f : _finishes)
        os << "  finish en=n" << f.enable << "\n";
    os << "}\n";
    return os.str();
}

} // namespace manticore::netlist
