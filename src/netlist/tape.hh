/**
 * @file
 * The flat op tape shared by both compiled netlist engines.
 *
 * A tape is an array of POD instructions, one per combinational node,
 * whose operands are limb offsets into a single uint64_t arena.  The
 * serial CompiledEvaluator lowers the whole netlist into one tape;
 * the ParallelCompiledEvaluator lowers one tape per partition, all
 * addressing disjoint regions of one shared arena.  Lowering
 * (`lower`) and execution (`run`) live here so the two engines cannot
 * drift apart semantically.
 *
 * Nodes of width <= 64 use specialised single-limb opcodes (no loops,
 * no function calls); wider nodes run the span kernels from
 * support/limbops.hh.
 */

#ifndef MANTICORE_NETLIST_TAPE_HH
#define MANTICORE_NETLIST_TAPE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"

namespace manticore::netlist::tape {

/** Tape opcodes: N* = single-limb fast path, W* = span kernels. */
enum class Op : uint8_t
{
    NAdd, NSub, NMul, NAnd, NOr, NXor, NNot,
    NShl, NLshr, NEq, NUlt, NSlt, NMux,
    NSlice, NConcat, NZExt, NSExt,
    NRedOr, NRedAnd, NRedXor, NMemRead,
    WAdd, WSub, WMul, WAnd, WOr, WXor, WNot,
    WShl, WLshr, WEq, WUlt, WSlt, WMux,
    WSlice, WConcat, WZExt, WSExt,
    WRedOr, WRedAnd, WRedXor, WMemRead,
};

/** One tape instruction.  dst/a/b/c are limb offsets into the
 *  arena; widths are bit widths; lo doubles as the slice low bit
 *  and the memory id for MemRead; mask is the result mask for
 *  narrow ops (the operand mask for narrow reductions). */
struct Instr
{
    Op op;
    uint32_t dst = 0;
    uint32_t a = 0, b = 0, c = 0;
    uint32_t width = 0;
    uint32_t aw = 0, bw = 0;
    uint32_t lo = 0;
    uint64_t mask = 0;
};

/** Dense limb-array image of one netlist memory. */
struct MemState
{
    unsigned width = 0;
    unsigned wordLimbs = 0;
    uint64_t depth = 0;
    std::vector<uint64_t> words; ///< depth * wordLimbs limbs

    /** Materialise the word at addr (must be < depth). */
    BitVector value(uint64_t addr) const;
};

/** Materialise a BitVector from an arena slot. */
BitVector readSlot(const uint64_t *slot, unsigned width);

/** Build the MemState images (init values applied) for a netlist. */
std::vector<MemState> buildMemStates(const Netlist &netlist);

/** Lower one combinational node to a tape instruction.  The caller
 *  resolves operand slots (dst, a, b, c) — that is the only part
 *  that differs between the serial arena layout and the parallel
 *  per-partition layout.  `id` must not be a source node
 *  (Const/Input/RegRead). */
Instr lower(const Netlist &netlist, NodeId id, uint32_t dst, uint32_t a,
            uint32_t b, uint32_t c, const std::vector<MemState> &mems);

/** Execute a tape against arena base pointer A.  Reads memory words
 *  but never writes them (memory commits are the engines' job). */
void run(const Instr *instrs, size_t count, uint64_t *A,
         const MemState *mems);

inline void
run(const std::vector<Instr> &tape, uint64_t *A,
    const std::vector<MemState> &mems)
{
    run(tape.data(), tape.size(), A, mems.data());
}

/** The netlist's side effects with node slots pre-resolved, shared by
 *  both compiled engines so the firing order and failure-message
 *  format cannot drift between them (the differential tests compare
 *  both verbatim). */
struct Effects
{
    struct EffAssert
    {
        uint32_t enable, cond; ///< slots (1-bit each)
        std::string message;
    };

    struct EffDisplay
    {
        uint32_t enable; ///< slot
        std::string format;
        std::vector<uint32_t> argSlots;
        std::vector<uint32_t> argWidths;
    };

    std::vector<EffAssert> asserts;
    std::vector<EffDisplay> displays;
    std::vector<uint32_t> finishes; ///< enable slots

    /** Collect the netlist's asserts/displays/finishes, resolving
     *  node ids to arena slots through `slot`. */
    static Effects compile(const Netlist &netlist,
                           const std::function<uint32_t(NodeId)> &slot);

    /** Fire against this cycle's values, reproducing the reference
     *  evaluator's order: asserts first — a failure sets status and
     *  the failure message and returns false, telling the caller to
     *  suppress displays, $finish and the commit — then displays
     *  (appended to `log` and passed to `on_display` if set), then
     *  $finish (sets `finished`). */
    bool fire(const uint64_t *A, uint64_t cycle, SimStatus &status,
              std::string &failure_message,
              std::vector<std::string> &log,
              const std::function<void(const std::string &)> &on_display,
              bool &finished) const;
};

} // namespace manticore::netlist::tape

#endif // MANTICORE_NETLIST_TAPE_HH
