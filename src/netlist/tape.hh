/**
 * @file
 * The flat op tape shared by both compiled netlist engines.
 *
 * A tape is an array of POD instructions, one per combinational node,
 * whose operands are limb offsets into a single uint64_t arena (see
 * arena.hh).  The serial CompiledEvaluator lowers the whole netlist
 * into one tape; the ParallelCompiledEvaluator lowers one tape per
 * partition, all addressing disjoint regions of one shared arena.
 * Lowering (`lower`) and execution (`run`) live here so the two
 * engines cannot drift apart semantically.
 *
 * Nodes of width <= 64 use specialised single-limb opcodes (no loops,
 * no function calls); wider nodes run the span kernels from
 * support/limbops.hh.
 *
 * The arena may hold an N-lane ensemble (N decoupled simulations,
 * lane-strided: lane l of a node's value sits l * nlimbs(width) limbs
 * after lane 0).  run() then executes each decoded op across all
 * lanes before advancing the tape — one dispatch amortised over N
 * simulations — with per-operand lane strides hoisted out of the
 * lane loop.  The single-lane instantiation folds the lane loops
 * away and is codegen-identical to the pre-ensemble executor.
 */

#ifndef MANTICORE_NETLIST_TAPE_HH
#define MANTICORE_NETLIST_TAPE_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"

namespace manticore::netlist::tape {

/** Tape opcodes: N* = single-limb fast path, W* = span kernels. */
enum class Op : uint8_t
{
    NAdd, NSub, NMul, NAnd, NOr, NXor, NNot,
    NShl, NLshr, NEq, NUlt, NSlt, NMux,
    NSlice, NConcat, NZExt, NSExt,
    NRedOr, NRedAnd, NRedXor, NMemRead,
    WAdd, WSub, WMul, WAnd, WOr, WXor, WNot,
    WShl, WLshr, WEq, WUlt, WSlt, WMux,
    WSlice, WConcat, WZExt, WSExt,
    WRedOr, WRedAnd, WRedXor, WMemRead,
};

/** One tape instruction.  dst/a/b/c are limb offsets into the
 *  arena; widths are bit widths; lo doubles as the slice low bit
 *  and the memory id for MemRead; mask is the result mask for
 *  narrow ops (the operand mask for narrow reductions). */
struct Instr
{
    Op op;
    uint32_t dst = 0;
    uint32_t a = 0, b = 0, c = 0;
    uint32_t width = 0;
    uint32_t aw = 0, bw = 0;
    uint32_t lo = 0;
    uint64_t mask = 0;
};

/** Dense limb-array image of one netlist memory, one image per
 *  ensemble lane (lanes contiguous per word, like the arena). */
struct MemState
{
    unsigned width = 0;
    unsigned wordLimbs = 0;
    unsigned lanes = 1;
    uint64_t depth = 0;
    std::vector<uint64_t> words; ///< depth * lanes * wordLimbs limbs

    const uint64_t *
    word(uint64_t addr, unsigned lane) const
    {
        return &words[(addr * lanes + lane) * wordLimbs];
    }

    uint64_t *
    word(uint64_t addr, unsigned lane)
    {
        return &words[(addr * lanes + lane) * wordLimbs];
    }

    /** Materialise one lane's word at addr (must be < depth). */
    BitVector value(uint64_t addr, unsigned lane = 0) const;
};

/** Materialise a BitVector from an arena slot. */
BitVector readSlot(const uint64_t *slot, unsigned width);

/** Build the MemState images (init values applied, replicated into
 *  every lane) for a netlist. */
std::vector<MemState> buildMemStates(const Netlist &netlist,
                                     unsigned lanes = 1);

/** Lower one combinational node to a tape instruction.  The caller
 *  resolves operand slots (dst, a, b, c) — that is the only part
 *  that differs between the serial arena layout and the parallel
 *  per-partition layout.  `id` must not be a source node
 *  (Const/Input/RegRead). */
Instr lower(const Netlist &netlist, NodeId id, uint32_t dst, uint32_t a,
            uint32_t b, uint32_t c, const std::vector<MemState> &mems);

/** The two executor instantiations behind run(): the single-lane
 *  tape (codegen-identical to the pre-ensemble executor) and the
 *  dynamic-width ensemble tape.  Call run() instead. */
void runScalar(const Instr *instrs, size_t count, uint64_t *A,
               const MemState *mems);
void runEnsemble(const Instr *instrs, size_t count, uint64_t *A,
                 const MemState *mems, unsigned lanes);

/** Execute a tape against arena base pointer A, advancing all
 *  `lanes` simulations per decoded op.  Reads memory words but never
 *  writes them (memory commits are the engines' job).  The MemStates
 *  must carry the same lane count.  Inline dispatch so single-lane
 *  engines pay one direct call per batch segment. */
inline void
run(const Instr *instrs, size_t count, uint64_t *A,
    const MemState *mems, unsigned lanes = 1)
{
    if (lanes == 1)
        runScalar(instrs, count, A, mems);
    else
        runEnsemble(instrs, count, A, mems, lanes);
}

inline void
run(const std::vector<Instr> &tape, uint64_t *A,
    const std::vector<MemState> &mems, unsigned lanes = 1)
{
    run(tape.data(), tape.size(), A, mems.data(), lanes);
}

/** The netlist's side effects with node slots pre-resolved, shared by
 *  both compiled engines so the firing order and failure-message
 *  format cannot drift between them (the differential tests compare
 *  both verbatim). */
struct Effects
{
    struct EffAssert
    {
        uint32_t enable, cond; ///< slots (1-bit each)
        std::string message;
    };

    struct EffDisplay
    {
        uint32_t enable; ///< slot
        std::string format;
        std::vector<uint32_t> argSlots;
        std::vector<uint32_t> argWidths;
    };

    std::vector<EffAssert> asserts;
    std::vector<EffDisplay> displays;
    std::vector<uint32_t> finishes; ///< enable slots

    /** True when the list can neither fail nor log — firing reduces
     *  to anyFinish() and the cycle always commits. */
    bool
    onlyFinishes() const
    {
        return asserts.empty() && displays.empty();
    }

    /** Fast path valid under onlyFinishes(): does any $finish fire
     *  for `lane` against this cycle's values? */
    bool
    anyFinish(const uint64_t *A, unsigned lane) const
    {
        for (uint32_t en : finishes)
            if (A[en + lane])
                return true;
        return false;
    }

    /** Collect the netlist's asserts/displays/finishes, resolving
     *  node ids to arena slots through `slot`. */
    static Effects compile(const Netlist &netlist,
                           const std::function<uint32_t(NodeId)> &slot);

    /** Fire one lane against this cycle's values, reproducing the
     *  reference evaluator's order: asserts first — a failure sets
     *  status and the failure message and returns false, telling the
     *  caller to suppress displays, $finish and the commit for that
     *  lane — then displays (appended to `log` and passed to
     *  `on_display` if set), then $finish (sets `finished`).  The
     *  stored slots are lane-0 offsets; `lane` indexes into the
     *  lane-strided arena (single-lane engines pass 0). */
    bool fire(const uint64_t *A, unsigned lane, uint64_t cycle,
              SimStatus &status, std::string &failure_message,
              std::vector<std::string> &log,
              const std::function<void(const std::string &)> &on_display,
              bool &finished) const;

    /** Result of an ensemble firing pass. */
    struct FireResult
    {
        /// Set if a display sink threw: every lane's log was rolled
        /// back to its pre-cycle mark and all commit flags cleared
        /// (the whole ensemble cycle aborts, retryable; sink lines
        /// already delivered are redelivered — at-least-once).  The
        /// exception is RETURNED rather than thrown so an engine
        /// with a rendezvous to complete can delay the rethrow.
        std::exception_ptr thrown;
        unsigned committing = 0; ///< lanes with commit[l] set
        unsigned finishing = 0;  ///< lanes with finish[l] set
    };

    /** Fire every active lane in lane order, filling the per-lane
     *  commit and $finish flags — THE ensemble commit decision,
     *  shared by both compiled engines so it cannot drift.  Frozen
     *  lanes get commit[l] = 0; a lane whose assert failed before a
     *  later lane's throw keeps that status (its failing cycle never
     *  commits anyway). */
    FireResult
    fireLanes(const uint64_t *A, unsigned lanes, LaneState *lane,
              uint8_t *commit, uint8_t *finish,
              const std::function<void(const std::string &)> &on_display)
        const;
};

} // namespace manticore::netlist::tape

#endif // MANTICORE_NETLIST_TAPE_HH
