#include "netlist/optimize.hh"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"

namespace manticore::netlist {

namespace {

/** Structural key for CSE. */
struct NodeKey
{
    OpKind kind;
    unsigned width;
    unsigned lo;
    uint32_t aux; ///< regId / memId
    std::vector<NodeId> operands;
    BitVector value;

    bool
    operator==(const NodeKey &o) const
    {
        return kind == o.kind && width == o.width && lo == o.lo &&
               aux == o.aux && operands == o.operands &&
               value == o.value;
    }
};

struct NodeKeyHash
{
    size_t
    operator()(const NodeKey &k) const
    {
        size_t h = static_cast<size_t>(k.kind) * 0x9e3779b97f4a7c15ull;
        auto mix = [&](size_t v) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        };
        mix(k.width);
        mix(k.lo);
        mix(k.aux);
        for (NodeId op : k.operands)
            mix(op);
        mix(k.value.hash());
        return h;
    }
};

/** Evaluate a node whose operands are all constants. */
BitVector
foldNode(const Node &n, const std::vector<const BitVector *> &ops)
{
    switch (n.kind) {
      case OpKind::Add: return ops[0]->add(*ops[1]);
      case OpKind::Sub: return ops[0]->sub(*ops[1]);
      case OpKind::Mul: return ops[0]->mul(*ops[1]);
      case OpKind::And: return ops[0]->bitAnd(*ops[1]);
      case OpKind::Or: return ops[0]->bitOr(*ops[1]);
      case OpKind::Xor: return ops[0]->bitXor(*ops[1]);
      case OpKind::Not: return ops[0]->bitNot();
      case OpKind::Shl:
        return ops[0]->shl(ops[1]->fitsUint64() ? ops[1]->toUint64()
                                                : n.width);
      case OpKind::Lshr:
        return ops[0]->lshr(ops[1]->fitsUint64() ? ops[1]->toUint64()
                                                 : n.width);
      case OpKind::Eq: return ops[0]->eq(*ops[1]);
      case OpKind::Ult: return ops[0]->ult(*ops[1]);
      case OpKind::Slt: return ops[0]->slt(*ops[1]);
      case OpKind::Mux:
        return ops[0]->isZero() ? *ops[2] : *ops[1];
      case OpKind::Slice: return ops[0]->slice(n.lo, n.width);
      case OpKind::Concat: return ops[0]->concat(*ops[1]);
      case OpKind::ZExt: return ops[0]->resize(n.width);
      case OpKind::SExt: return ops[0]->sext(n.width);
      case OpKind::RedOr: return ops[0]->reduceOr();
      case OpKind::RedAnd: return ops[0]->reduceAnd();
      case OpKind::RedXor: return ops[0]->reduceXor();
      default:
        MANTICORE_PANIC("unfoldable node");
    }
}

bool
isFoldable(OpKind kind)
{
    switch (kind) {
      case OpKind::Const:
      case OpKind::Input:
      case OpKind::RegRead:
      case OpKind::MemRead:
        return false;
      default:
        return true;
    }
}

} // namespace

Netlist
optimizeNetlist(const Netlist &input, NetlistOptStats *stats)
{
    input.validate();
    NetlistOptStats local;
    local.nodesBefore = input.numNodes();

    // --- Pass 1 (forward): fold + CSE, building a remap old->new in a
    // fresh netlist.  Registers/memories are re-created first so ids
    // are stable.
    Netlist out(input.name());
    for (const Register &r : input.registers()) {
        Register copy = r;
        copy.current = kInvalidNode;
        copy.next = kInvalidNode;
        out.addRegister(std::move(copy)); // creates a new RegRead node
    }
    for (const Memory &m : input.memories())
        out.addMemory(m);

    // Liveness (backward over construction order): sinks first.
    std::vector<bool> live(input.numNodes(), false);
    auto mark = [&](NodeId id) { live[id] = true; };
    for (const Register &r : input.registers())
        mark(r.next);
    for (const MemWrite &w : input.memWrites()) {
        mark(w.addr);
        mark(w.data);
        mark(w.enable);
    }
    for (const Display &d : input.displays()) {
        mark(d.enable);
        for (NodeId a : d.args)
            mark(a);
    }
    for (const Assert &a : input.asserts()) {
        mark(a.enable);
        mark(a.cond);
    }
    for (const Finish &f : input.finishes())
        mark(f.enable);
    for (size_t i = input.numNodes(); i-- > 0;) {
        if (!live[i])
            continue;
        for (NodeId op : input.node(static_cast<NodeId>(i)).operands)
            live[op] = true;
    }

    std::vector<NodeId> remap(input.numNodes(), kInvalidNode);
    std::unordered_map<NodeKey, NodeId, NodeKeyHash> cse;
    std::unordered_map<BitVector, NodeId> const_pool;

    auto intern_const = [&](const BitVector &v) -> NodeId {
        auto it = const_pool.find(v);
        if (it != const_pool.end())
            return it->second;
        Node c;
        c.kind = OpKind::Const;
        c.width = v.width();
        c.value = v;
        NodeId id = out.addNode(std::move(c));
        const_pool.emplace(v, id);
        return id;
    };

    for (NodeId id = 0; id < input.numNodes(); ++id) {
        if (!live[id]) {
            ++local.deadRemoved;
            continue;
        }
        const Node &n = input.node(id);
        if (n.kind == OpKind::RegRead) {
            remap[id] = out.reg(n.regId).current;
            continue;
        }
        if (n.kind == OpKind::Const) {
            remap[id] = intern_const(n.value);
            continue;
        }

        // Try constant folding.
        if (isFoldable(n.kind)) {
            bool all_const = true;
            std::vector<const BitVector *> vals;
            for (NodeId op : n.operands) {
                const Node &mapped = out.node(remap[op]);
                if (mapped.kind != OpKind::Const) {
                    all_const = false;
                    break;
                }
                vals.push_back(&mapped.value);
            }
            if (all_const && !n.operands.empty()) {
                remap[id] = intern_const(foldNode(n, vals));
                ++local.folded;
                continue;
            }
        }

        Node copy = n;
        for (NodeId &op : copy.operands)
            op = remap[op];

        NodeKey key{copy.kind, copy.width, copy.lo,
                    copy.kind == OpKind::MemRead ? copy.memId
                                                 : kInvalidReg,
                    copy.operands, copy.value};
        auto it = cse.find(key);
        if (it != cse.end()) {
            remap[id] = it->second;
            ++local.csed;
            continue;
        }
        NodeId fresh = out.addNode(std::move(copy));
        cse.emplace(std::move(key), fresh);
        remap[id] = fresh;
    }

    // --- Rewire sinks.
    for (size_t r = 0; r < input.numRegisters(); ++r)
        out.connectNext(static_cast<RegId>(r),
                        remap[input.reg(static_cast<RegId>(r)).next]);
    for (const MemWrite &w : input.memWrites())
        out.addMemWrite(
            {w.mem, remap[w.addr], remap[w.data], remap[w.enable]});
    for (const Display &d : input.displays()) {
        Display copy = d;
        copy.enable = remap[d.enable];
        for (NodeId &a : copy.args)
            a = remap[a];
        out.addDisplay(std::move(copy));
    }
    for (const Assert &a : input.asserts())
        out.addAssert({remap[a.enable], remap[a.cond], a.message});
    for (const Finish &f : input.finishes())
        out.addFinish({remap[f.enable]});

    out.validate();
    local.nodesAfter = out.numNodes();
    if (stats)
        *stats = local;
    return out;
}

} // namespace manticore::netlist
