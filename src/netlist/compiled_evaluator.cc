#include "netlist/compiled_evaluator.hh"

#include "netlist/parallel_evaluator.hh"
#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

CompiledEvaluator::CompiledEvaluator(Netlist netlist)
    : _netlist(std::move(netlist))
{
    _netlist.validate();
    compile();
}

void
CompiledEvaluator::compile()
{
    const auto &nodes = _netlist.nodes();

    // Arena layout: every node gets a private fixed limb span.
    _slotOf.resize(nodes.size());
    uint64_t offset = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        _slotOf[i] = static_cast<uint32_t>(offset);
        offset += lo::nlimbs(nodes[i].width);
    }
    _arena.assign(offset, 0);

    // Constants are written once, here; register current slots start
    // at their init values; inputs start at zero (as the reference
    // evaluator's _inputs do).
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const) {
            lo::copy(&_arena[_slotOf[i]], n.value.limbs().data(),
                     lo::nlimbs(n.width));
        }
    }
    for (const Register &r : _netlist.registers()) {
        lo::copy(&_arena[_slotOf[r.current]], r.init.limbs().data(),
                 lo::nlimbs(r.width));
    }

    // Memories become dense limb arrays.
    _mems = tape::buildMemStates(_netlist);

    // Lower each combinational node to one tape instruction.  Node ids
    // are already topologically ordered (operands precede users).
    _tape.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const || n.kind == OpKind::Input ||
            n.kind == OpKind::RegRead)
            continue; // no tape entry; slot written out-of-band
        uint32_t a = n.operands.size() > 0 ? _slotOf[n.operands[0]] : 0;
        uint32_t b = n.operands.size() > 1 ? _slotOf[n.operands[1]] : 0;
        uint32_t c = n.operands.size() > 2 ? _slotOf[n.operands[2]] : 0;
        _tape.push_back(tape::lower(_netlist, static_cast<NodeId>(i),
                                    _slotOf[i], a, b, c, _mems));
    }

    // Register commits.  The current slot doubles as register storage,
    // so a commit whose next value is itself a RegRead slot must be
    // double-buffered through _staging (the reference evaluator reads
    // all pre-commit values; see step()).
    uint32_t staging_limbs = 0;
    for (const Register &r : _netlist.registers()) {
        RegCommit rc;
        rc.dst = _slotOf[r.current];
        rc.src = _slotOf[r.next];
        rc.limbs = lo::nlimbs(r.width);
        if (_netlist.node(r.next).kind == OpKind::RegRead) {
            rc.staging = staging_limbs;
            staging_limbs += rc.limbs;
        } else {
            rc.staging = kNoStaging;
        }
        _regCommits.push_back(rc);
    }
    _staging.assign(staging_limbs, 0);

    for (const MemWrite &w : _netlist.memWrites()) {
        MemCommit mc;
        mc.mem = w.mem;
        mc.addr = _slotOf[w.addr];
        mc.data = _slotOf[w.data];
        mc.enable = _slotOf[w.enable];
        _memCommits.push_back(mc);
    }

    _effects = tape::Effects::compile(
        _netlist, [this](NodeId id) { return _slotOf[id]; });
}

SimStatus
CompiledEvaluator::step()
{
    if (_status != SimStatus::Ok)
        return _status;

    tape::run(_tape, _arena.data(), _mems);

    const uint64_t *A = _arena.data();

    // Side effects observe this cycle's combinational values, in the
    // same order as the reference evaluator; a failed assert
    // suppresses displays, $finish and the commit.
    bool finished = false;
    if (!_effects.fire(A, _cycle, _status, _failureMessage, _displayLog,
                       onDisplay, finished))
        return _status;

    // Commit.  Memory writes read node slots, so they must run before
    // register commits overwrite the RegRead slots; register commits
    // whose source is itself a RegRead slot go through _staging.  Both
    // reproduce the reference semantics of committing against the
    // pre-commit combinational snapshot.
    for (const MemCommit &w : _memCommits) {
        if (_arena[w.enable]) {
            tape::MemState &m = _mems[w.mem];
            uint64_t addr = _arena[w.addr] % m.depth;
            lo::copy(&m.words[addr * m.wordLimbs], &_arena[w.data],
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : _regCommits)
        if (rc.staging != kNoStaging)
            lo::copy(&_staging[rc.staging], &_arena[rc.src], rc.limbs);
    for (const RegCommit &rc : _regCommits) {
        if (rc.staging != kNoStaging)
            lo::copy(&_arena[rc.dst], &_staging[rc.staging], rc.limbs);
        else
            lo::copy(&_arena[rc.dst], &_arena[rc.src], rc.limbs);
    }

    ++_cycle;
    if (finished)
        _status = SimStatus::Finished;
    return _status;
}

SimStatus
CompiledEvaluator::run(uint64_t max_cycles)
{
    // Devirtualised batch loop: one call drives the whole batch
    // through the non-virtual step body.
    for (uint64_t i = 0;
         i < max_cycles && _status == SimStatus::Ok; ++i)
        CompiledEvaluator::step();
    return _status;
}

void
CompiledEvaluator::setInput(const std::string &name, const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
CompiledEvaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    lo::copy(&_arena[_slotOf[input]], value.limbs().data(),
             lo::nlimbs(value.width()));
}

BitVector
CompiledEvaluator::slotValue(uint32_t slot, unsigned width) const
{
    return tape::readSlot(&_arena[slot], width);
}

BitVector
CompiledEvaluator::regValue(RegId id) const
{
    MANTICORE_ASSERT(id < _netlist.numRegisters(), "bad register id");
    const Register &r = _netlist.reg(id);
    return slotValue(_slotOf[r.current], r.width);
}

BitVector
CompiledEvaluator::regValue(const std::string &name) const
{
    return regValue(resolveRegister(_netlist, name));
}

BitVector
CompiledEvaluator::memValue(MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].depth,
                     "memValue out of range");
    return _mems[id].value(addr);
}

BitVector
CompiledEvaluator::nodeValue(NodeId id) const
{
    MANTICORE_ASSERT(id < _netlist.numNodes(), "bad node id");
    return slotValue(_slotOf[id], _netlist.node(id).width);
}

const char *
evalModeName(EvalMode mode)
{
    switch (mode) {
      case EvalMode::Reference: return "reference";
      case EvalMode::Compiled: return "compiled";
      case EvalMode::Parallel: return "parallel";
    }
    return "?";
}

bool
parseEvalMode(const std::string &name, EvalMode &mode)
{
    for (EvalMode m : {EvalMode::Reference, EvalMode::Compiled,
                       EvalMode::Parallel}) {
        if (name == evalModeName(m)) {
            mode = m;
            return true;
        }
    }
    return false;
}

std::unique_ptr<EvaluatorBase>
makeEvaluator(Netlist netlist, EvalMode mode, const EvalOptions &options)
{
    switch (mode) {
      case EvalMode::Reference:
        return std::make_unique<Evaluator>(std::move(netlist));
      case EvalMode::Compiled:
        return std::make_unique<CompiledEvaluator>(std::move(netlist));
      case EvalMode::Parallel:
        return std::make_unique<ParallelCompiledEvaluator>(
            std::move(netlist), options);
    }
    MANTICORE_FATAL("unknown evaluator mode");
}

} // namespace manticore::netlist
