#include "netlist/compiled_evaluator.hh"

#include <algorithm>

#include "netlist/aot.hh"
#include "netlist/parallel_evaluator.hh"
#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

CompiledEvaluator::CompiledEvaluator(Netlist netlist,
                                     const EvalOptions &options)
    : _netlist(std::move(netlist)), _lanes(options.lanes),
      _padded(exec::paddedLaneCount(options.lanes)), _arena(_padded)
{
    MANTICORE_ASSERT(_lanes >= 1, "ensemble needs at least one lane");
    _netlist.validate();
    _active = _lanes;
    _lane.resize(_lanes);
    _laneCommit.assign(_lanes, 0);
    _laneFinish.assign(_lanes, 0);
    compile();
}

void
CompiledEvaluator::compile()
{
    const auto &nodes = _netlist.nodes();

    // Arena layout: every node gets a private lane-strided limb
    // block (lane l of node i at _slotOf[i] + l * nlimbs(width)).
    _slotOf.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i)
        _slotOf[i] = _arena.alloc(nodes[i].width);
    _arena.seal();

    // Constants are written once, here, into every lane; register
    // current slots start at their init values; inputs start at zero
    // (as the reference evaluator's _inputs do).
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const)
            _arena.broadcast(_slotOf[i], n.value);
    }
    for (const Register &r : _netlist.registers())
        _arena.broadcast(_slotOf[r.current], r.init);

    // Memories become dense limb arrays, one image per lane
    // (including the frozen padded lanes — the tape reads them).
    _mems = tape::buildMemStates(_netlist, _padded);

    // Lower each combinational node to one tape instruction.  Node ids
    // are already topologically ordered (operands precede users).
    _tape.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const || n.kind == OpKind::Input ||
            n.kind == OpKind::RegRead)
            continue; // no tape entry; slot written out-of-band
        uint32_t a = n.operands.size() > 0 ? _slotOf[n.operands[0]] : 0;
        uint32_t b = n.operands.size() > 1 ? _slotOf[n.operands[1]] : 0;
        uint32_t c = n.operands.size() > 2 ? _slotOf[n.operands[2]] : 0;
        _tape.push_back(tape::lower(_netlist, static_cast<NodeId>(i),
                                    _slotOf[i], a, b, c, _mems));
    }

    // Register commits.  The current slot doubles as register storage,
    // so a commit whose next value is itself a RegRead slot must be
    // double-buffered through _staging (the reference evaluator reads
    // all pre-commit values; see stepOnce()).  Staged blocks are
    // lane-strided like the arena.
    uint32_t staging_limbs = 0;
    for (const Register &r : _netlist.registers()) {
        RegCommit rc;
        rc.dst = _slotOf[r.current];
        rc.src = _slotOf[r.next];
        rc.limbs = lo::nlimbs(r.width);
        if (_netlist.node(r.next).kind == OpKind::RegRead) {
            rc.staging = staging_limbs;
            staging_limbs += rc.limbs * _lanes;
        } else {
            rc.staging = kNoStaging;
        }
        _regCommits.push_back(rc);
    }
    _staging.assign(staging_limbs, 0);

    for (const MemWrite &w : _netlist.memWrites()) {
        MemCommit mc;
        mc.mem = w.mem;
        mc.addr = _slotOf[w.addr];
        mc.data = _slotOf[w.data];
        mc.enable = _slotOf[w.enable];
        mc.addrStride = lo::nlimbs(_netlist.node(w.addr).width);
        _memCommits.push_back(mc);
    }

    _effects = tape::Effects::compile(
        _netlist, [this](NodeId id) { return _slotOf[id]; });
}

void
CompiledEvaluator::commitLane(unsigned lane)
{
    uint64_t *A = _arena.data();
    // Memory writes read node slots, so they must run before register
    // commits overwrite the RegRead slots; register commits whose
    // source is itself a RegRead slot go through _staging.  Both
    // reproduce the reference semantics of committing against the
    // pre-commit combinational snapshot.
    for (const MemCommit &w : _memCommits) {
        if (A[w.enable + lane]) {
            tape::MemState &m = _mems[w.mem];
            uint64_t addr =
                A[w.addr + static_cast<size_t>(lane) * w.addrStride] %
                m.depth;
            lo::copy(m.word(addr, lane),
                     A + w.data + static_cast<size_t>(lane) * m.wordLimbs,
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : _regCommits)
        if (rc.staging != kNoStaging)
            lo::copy(&_staging[rc.staging + lane * rc.limbs],
                     A + rc.src + static_cast<size_t>(lane) * rc.limbs,
                     rc.limbs);
    for (const RegCommit &rc : _regCommits) {
        uint64_t *dst = A + rc.dst + static_cast<size_t>(lane) * rc.limbs;
        if (rc.staging != kNoStaging)
            lo::copy(dst, &_staging[rc.staging + lane * rc.limbs],
                     rc.limbs);
        else
            lo::copy(dst,
                     A + rc.src + static_cast<size_t>(lane) * rc.limbs,
                     rc.limbs);
    }
}

void
CompiledEvaluator::commitAll()
{
    // All lanes commit: the staged blocks and register blocks are
    // lane-strided with the same stride, so each moves as one
    // limbs * lanes copy; memory writes keep per-lane enables.
    uint64_t *A = _arena.data();
    const unsigned L = _lanes;
    for (const MemCommit &w : _memCommits) {
        tape::MemState &m = _mems[w.mem];
        for (unsigned l = 0; l < L; ++l) {
            if (!A[w.enable + l])
                continue;
            uint64_t addr =
                A[w.addr + static_cast<size_t>(l) * w.addrStride] %
                m.depth;
            lo::copy(m.word(addr, l),
                     A + w.data + static_cast<size_t>(l) * m.wordLimbs,
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : _regCommits)
        if (rc.staging != kNoStaging)
            lo::copy(&_staging[rc.staging], A + rc.src, rc.limbs * L);
    for (const RegCommit &rc : _regCommits) {
        if (rc.staging != kNoStaging)
            lo::copy(A + rc.dst, &_staging[rc.staging], rc.limbs * L);
        else
            lo::copy(A + rc.dst, A + rc.src, rc.limbs * L);
    }
}

void
CompiledEvaluator::recountActive()
{
    unsigned active = 0;
    for (unsigned l = 0; l < _lanes; ++l)
        if (_lane[l].status == SimStatus::Ok)
            ++active;
    _active = active;
}

void
CompiledEvaluator::evalCycle()
{
    // tape::run folds to the scalar executor at _padded == 1, so the
    // single-lane path keeps its pre-ensemble codegen.
    tape::run(_tape.data(), _tape.size(), _arena.data(), _mems.data(),
              _padded);
}

void
CompiledEvaluator::stepScalar()
{
    // Single-lane fast path: the pre-ensemble per-cycle shape (no
    // per-lane flag vectors, no active-lane recount, no lane-offset
    // arithmetic) so the scalar engine keeps its original per-cycle
    // cost on overhead-bound designs.  stepOnce() is the general
    // N-lane body; the two must stay behaviourally identical at one
    // lane (the ensemble tests pin lanes=1 against the reference
    // evaluator).  The tape evaluation itself goes through the
    // evalCycle() hook — one virtual call per cycle — so the AOT
    // engine can swap the executor without touching effects/commits.
    evalCycle();
    uint64_t *A = _arena.data();
    LaneState &lane = _lane[0];

    bool finished = false;
    if (!_effects.fire(A, 0, lane.cycle, lane.status,
                       lane.failureMessage, lane.displayLog, onDisplay,
                       finished)) {
        _active = 0; // assert failed: no commit, no cycle
        return;
    }

    // The lane-0 commit with the lane arithmetic folded out (the
    // same mem-writes / staging / registers order as commitLane).
    for (const MemCommit &w : _memCommits) {
        if (A[w.enable]) {
            tape::MemState &m = _mems[w.mem];
            uint64_t addr = A[w.addr] % m.depth;
            lo::copy(&m.words[addr * m.wordLimbs], A + w.data,
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : _regCommits)
        if (rc.staging != kNoStaging)
            lo::copy(&_staging[rc.staging], A + rc.src, rc.limbs);
    for (const RegCommit &rc : _regCommits) {
        if (rc.staging != kNoStaging)
            lo::copy(A + rc.dst, &_staging[rc.staging], rc.limbs);
        else
            lo::copy(A + rc.dst, A + rc.src, rc.limbs);
    }

    ++lane.cycle;
    ++_cycle;
    if (finished) {
        lane.status = SimStatus::Finished;
        _active = 0;
    }
}

void
CompiledEvaluator::stepOnce()
{
    // Compute every lane (frozen lanes are recomputed harmlessly:
    // their commits and effects below are skipped), then fire each
    // active lane's side effects in lane order against this cycle's
    // values — the same order as the reference evaluator within each
    // lane; a failed assert suppresses that lane's displays, $finish
    // and commit.  The tape evaluation goes through the evalCycle()
    // hook so the AOT engine's laned cycle function covers ensembles
    // too.
    evalCycle();
    const uint64_t *A = _arena.data();

    // Fused fast path: no asserts or displays (nothing can fail,
    // throw or log) and no frozen lanes — every lane commits as a
    // whole block and firing is just the $finish-enable checks.
    // Semantically identical to fireLanes + the general commit below
    // for this case; it exists because on overhead-bound designs the
    // per-cycle bookkeeping rivals the compute.
    if (_active == _lanes && _effects.onlyFinishes()) {
        unsigned finishing = 0;
        for (unsigned l = 0; l < _lanes; ++l) {
            bool fin = _effects.anyFinish(A, l);
            _laneFinish[l] = fin;
            finishing += fin;
        }
        commitAll();
        ++_cycle;
        if (finishing == 0) {
            for (unsigned l = 0; l < _lanes; ++l)
                ++_lane[l].cycle;
            return;
        }
        for (unsigned l = 0; l < _lanes; ++l) {
            ++_lane[l].cycle;
            if (_laneFinish[l])
                _lane[l].status = SimStatus::Finished;
        }
        _active = _lanes - finishing;
        return;
    }

    // Per-lane commit decision (shared with the parallel engine via
    // Effects::fireLanes); a throwing display sink aborts the whole
    // ensemble cycle — logs rolled back, nothing commits — so the
    // caller can retry it.
    tape::Effects::FireResult fired =
        _effects.fireLanes(A, _lanes, _lane.data(), _laneCommit.data(),
                           _laneFinish.data(), onDisplay);
    if (fired.thrown) {
        recountActive();
        std::rethrow_exception(fired.thrown);
    }

    if (fired.committing == _lanes) {
        // Every lane commits (the common case while no lane has
        // terminated): registers and staging move as whole
        // lane-strided blocks instead of per-lane copies.
        commitAll();
    } else {
        for (unsigned l = 0; l < _lanes; ++l)
            if (_laneCommit[l])
                commitLane(l);
    }
    unsigned active = 0;
    for (unsigned l = 0; l < _lanes; ++l) {
        if (_laneCommit[l]) {
            ++_lane[l].cycle;
            if (_laneFinish[l])
                _lane[l].status = SimStatus::Finished;
        }
        active += _lane[l].status == SimStatus::Ok;
    }
    _active = active;
    if (fired.committing != 0)
        ++_cycle;
}

SimStatus
CompiledEvaluator::step()
{
    if (_active != 0) {
        if (_lanes == 1)
            stepScalar();
        else
            stepOnce();
    }
    return _lane[0].status;
}

SimStatus
CompiledEvaluator::run(uint64_t max_cycles)
{
    // Devirtualised batch loop: one call drives the whole batch
    // through the non-virtual step body, until every lane is
    // terminal or the batch ends.
    if (_lanes == 1) {
        for (uint64_t i = 0; i < max_cycles && _active != 0; ++i)
            stepScalar();
    } else {
        for (uint64_t i = 0; i < max_cycles && _active != 0; ++i)
            stepOnce();
    }
    return _lane[0].status;
}

void
CompiledEvaluator::setInput(const std::string &name, const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
CompiledEvaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _arena.broadcast(_slotOf[input], value);
}

void
CompiledEvaluator::driveInputLane(unsigned lane, NodeId input,
                                  const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _arena.write(_slotOf[input], lane, value);
}

SimStatus
CompiledEvaluator::laneStatus(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].status;
}

uint64_t
CompiledEvaluator::laneCycle(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].cycle;
}

const std::string &
CompiledEvaluator::laneFailureMessage(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].failureMessage;
}

const std::vector<std::string> &
CompiledEvaluator::laneDisplayLog(unsigned lane) const
{
    MANTICORE_ASSERT(lane < _lanes, "bad lane ", lane);
    return _lane[lane].displayLog;
}

BitVector
CompiledEvaluator::regValue(RegId id) const
{
    return regValueLane(0, id);
}

BitVector
CompiledEvaluator::regValueLane(unsigned lane, RegId id) const
{
    MANTICORE_ASSERT(id < _netlist.numRegisters(), "bad register id");
    const Register &r = _netlist.reg(id);
    return _arena.read(_slotOf[r.current], r.width, lane);
}

BitVector
CompiledEvaluator::regValue(const std::string &name) const
{
    return regValue(resolveRegister(_netlist, name));
}

BitVector
CompiledEvaluator::memValue(MemId id, uint64_t addr) const
{
    return memValueLane(0, id, addr);
}

BitVector
CompiledEvaluator::memValueLane(unsigned lane, MemId id,
                                uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].depth &&
                         lane < _lanes,
                     "memValue out of range");
    return _mems[id].value(addr, lane);
}

BitVector
CompiledEvaluator::nodeValue(NodeId id, unsigned lane) const
{
    MANTICORE_ASSERT(id < _netlist.numNodes() && lane < _lanes,
                     "bad node id / lane");
    return _arena.read(_slotOf[id], _netlist.node(id).width, lane);
}

const char *
evalModeName(EvalMode mode)
{
    switch (mode) {
      case EvalMode::Reference: return "reference";
      case EvalMode::Compiled: return "compiled";
      case EvalMode::Parallel: return "parallel";
      case EvalMode::Aot: return "aot";
    }
    return "?";
}

bool
parseEvalMode(const std::string &name, EvalMode &mode)
{
    for (EvalMode m : {EvalMode::Reference, EvalMode::Compiled,
                       EvalMode::Parallel, EvalMode::Aot}) {
        if (name == evalModeName(m)) {
            mode = m;
            return true;
        }
    }
    return false;
}

// ---- checkpoint/restore hooks (see EvaluatorBase::saveLaneState) ----

BitVector
CompiledEvaluator::inputValueLane(unsigned lane, NodeId input) const
{
    return _arena.read(_slotOf[input], _netlist.node(input).width, lane);
}

void
CompiledEvaluator::restoreReg(unsigned lane, RegId id,
                              const BitVector &value)
{
    _arena.write(_slotOf[_netlist.reg(id).current], lane, value);
}

void
CompiledEvaluator::restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                                  const BitVector &value)
{
    tape::MemState &ms = _mems[id];
    uint64_t *dst = ms.word(addr, lane);
    const std::vector<uint64_t> &limbs = value.limbs();
    for (unsigned i = 0; i < ms.wordLimbs; ++i)
        dst[i] = i < limbs.size() ? limbs[i] : 0;
}

void
CompiledEvaluator::restoreLaneMeta(unsigned lane, uint64_t cycle,
                                   SimStatus status, std::string failure,
                                   std::vector<std::string> log)
{
    LaneState &ls = _lane[lane];
    ls.cycle = cycle;
    ls.status = status;
    ls.failureMessage = std::move(failure);
    ls.displayLog = std::move(log);
    ls.logMark = ls.displayLog.size();
}

void
CompiledEvaluator::snapshotRestored()
{
    recountActive();
    std::fill(_laneCommit.begin(), _laneCommit.end(), 0);
    std::fill(_laneFinish.begin(), _laneFinish.end(), 0);
    uint64_t cycle = 0;
    for (const LaneState &ls : _lane)
        cycle = std::max(cycle, ls.cycle);
    _cycle = cycle;
}

std::unique_ptr<EvaluatorBase>
makeEvaluator(Netlist netlist, EvalMode mode, const EvalOptions &options)
{
    switch (mode) {
      case EvalMode::Reference:
        if (options.lanes != 1)
            MANTICORE_FATAL("the reference evaluator has no ensemble "
                            "mode (lanes=", options.lanes,
                            "); use compiled or parallel");
        return std::make_unique<Evaluator>(std::move(netlist));
      case EvalMode::Compiled:
        return std::make_unique<CompiledEvaluator>(std::move(netlist),
                                                   options);
      case EvalMode::Parallel:
        if (options.aot) {
            // Strict availability, as for EvalMode::Aot below: a
            // caller who ASKED for per-partition AOT gets an
            // actionable error, not a silent interpreter.
            const AotToolchain &tc = aotToolchain(options.aotCompiler);
            if (!tc.ok)
                MANTICORE_FATAL(
                    "netlist.parallel.aot needs a working host C++ "
                    "compiler: ", tc.message,
                    " -- set $MANTICORE_AOT_CXX or "
                    "EvalOptions::aotCompiler, or use "
                    "netlist.parallel");
            return std::make_unique<AotParallelEvaluator>(
                std::move(netlist), options);
        }
        return std::make_unique<ParallelCompiledEvaluator>(
            std::move(netlist), options);
      case EvalMode::Aot: {
        // Strict availability at the factory/registry boundary: a
        // caller who ASKED for netlist.aot gets an actionable error,
        // not a silent interpreter.  (Direct AotEvaluator
        // construction degrades gracefully instead — see aot.hh.)
        const AotToolchain &tc = aotToolchain(options.aotCompiler);
        if (!tc.ok)
            MANTICORE_FATAL(
                "netlist.aot needs a working host C++ compiler: ",
                tc.message,
                " -- set $MANTICORE_AOT_CXX or "
                "EvalOptions::aotCompiler, or use netlist.compiled");
        return std::make_unique<AotEvaluator>(std::move(netlist),
                                              options);
      }
    }
    MANTICORE_FATAL("unknown evaluator mode");
}

} // namespace manticore::netlist
