#include "netlist/compiled_evaluator.hh"

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

CompiledEvaluator::CompiledEvaluator(Netlist netlist)
    : _netlist(std::move(netlist))
{
    _netlist.validate();
    compile();
}

void
CompiledEvaluator::compile()
{
    const auto &nodes = _netlist.nodes();

    // Arena layout: every node gets a private fixed limb span.
    _slotOf.resize(nodes.size());
    uint64_t offset = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        _slotOf[i] = static_cast<uint32_t>(offset);
        offset += lo::nlimbs(nodes[i].width);
    }
    _arena.assign(offset, 0);

    // Constants are written once, here; register current slots start
    // at their init values; inputs start at zero (as the reference
    // evaluator's _inputs do).
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const) {
            lo::copy(&_arena[_slotOf[i]], n.value.limbs().data(),
                     lo::nlimbs(n.width));
        }
    }
    for (const Register &r : _netlist.registers()) {
        lo::copy(&_arena[_slotOf[r.current]], r.init.limbs().data(),
                 lo::nlimbs(r.width));
    }

    // Memories become dense limb arrays.
    _mems.reserve(_netlist.numMemories());
    for (const Memory &m : _netlist.memories()) {
        MemState ms;
        ms.width = m.width;
        ms.wordLimbs = lo::nlimbs(m.width);
        ms.depth = m.depth;
        ms.words.assign(static_cast<size_t>(ms.depth) * ms.wordLimbs, 0);
        for (unsigned a = 0; a < m.depth; ++a)
            lo::copy(&ms.words[static_cast<size_t>(a) * ms.wordLimbs],
                     m.init[a].limbs().data(), ms.wordLimbs);
        _mems.push_back(std::move(ms));
    }

    // Lower each combinational node to one tape instruction.  Node ids
    // are already topologically ordered (operands precede users).
    _tape.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.kind == OpKind::Const || n.kind == OpKind::Input ||
            n.kind == OpKind::RegRead)
            continue; // no tape entry; slot written out-of-band

        Instr in;
        in.dst = _slotOf[i];
        in.width = n.width;
        in.mask = lo::topMask(n.width);
        if (!n.operands.empty()) {
            in.a = _slotOf[n.operands[0]];
            in.aw = nodes[n.operands[0]].width;
        }
        if (n.operands.size() > 1) {
            in.b = _slotOf[n.operands[1]];
            in.bw = nodes[n.operands[1]].width;
        }
        if (n.operands.size() > 2)
            in.c = _slotOf[n.operands[2]];

        bool narrow = n.width <= 64;       // result fits one limb
        bool narrow_a = in.aw <= 64;       // operand 0 fits one limb

        switch (n.kind) {
          case OpKind::Add: in.op = narrow ? Op::NAdd : Op::WAdd; break;
          case OpKind::Sub: in.op = narrow ? Op::NSub : Op::WSub; break;
          case OpKind::Mul: in.op = narrow ? Op::NMul : Op::WMul; break;
          case OpKind::And: in.op = narrow ? Op::NAnd : Op::WAnd; break;
          case OpKind::Or: in.op = narrow ? Op::NOr : Op::WOr; break;
          case OpKind::Xor: in.op = narrow ? Op::NXor : Op::WXor; break;
          case OpKind::Not: in.op = narrow ? Op::NNot : Op::WNot; break;
          case OpKind::Shl: in.op = narrow ? Op::NShl : Op::WShl; break;
          case OpKind::Lshr:
            in.op = narrow ? Op::NLshr : Op::WLshr;
            break;
          case OpKind::Eq: in.op = narrow_a ? Op::NEq : Op::WEq; break;
          case OpKind::Ult: in.op = narrow_a ? Op::NUlt : Op::WUlt; break;
          case OpKind::Slt: in.op = narrow_a ? Op::NSlt : Op::WSlt; break;
          case OpKind::Mux: in.op = narrow ? Op::NMux : Op::WMux; break;
          case OpKind::Slice:
            in.lo = n.lo;
            in.op = narrow_a ? Op::NSlice : Op::WSlice;
            break;
          case OpKind::Concat:
            in.op = narrow ? Op::NConcat : Op::WConcat;
            break;
          case OpKind::ZExt:
            in.op = narrow ? Op::NZExt : Op::WZExt;
            break;
          case OpKind::SExt:
            in.op = narrow ? Op::NSExt : Op::WSExt;
            break;
          case OpKind::RedOr:
            in.op = narrow_a ? Op::NRedOr : Op::WRedOr;
            break;
          case OpKind::RedAnd:
            in.op = narrow_a ? Op::NRedAnd : Op::WRedAnd;
            in.mask = lo::topMask(in.aw); // operand mask
            break;
          case OpKind::RedXor:
            in.op = narrow_a ? Op::NRedXor : Op::WRedXor;
            break;
          case OpKind::MemRead:
            in.lo = n.memId;
            in.op = _mems[n.memId].wordLimbs == 1 ? Op::NMemRead
                                                  : Op::WMemRead;
            break;
          case OpKind::Const:
          case OpKind::Input:
          case OpKind::RegRead:
            continue; // unreachable
        }
        _tape.push_back(in);
    }

    // Register commits.  The current slot doubles as register storage,
    // so a commit whose next value is itself a RegRead slot must be
    // double-buffered through _staging (the reference evaluator reads
    // all pre-commit values; see step()).
    uint32_t staging_limbs = 0;
    for (const Register &r : _netlist.registers()) {
        RegCommit rc;
        rc.dst = _slotOf[r.current];
        rc.src = _slotOf[r.next];
        rc.limbs = lo::nlimbs(r.width);
        if (_netlist.node(r.next).kind == OpKind::RegRead) {
            rc.staging = staging_limbs;
            staging_limbs += rc.limbs;
        } else {
            rc.staging = kNoStaging;
        }
        _regCommits.push_back(rc);
    }
    _staging.assign(staging_limbs, 0);

    for (const MemWrite &w : _netlist.memWrites()) {
        MemCommit mc;
        mc.mem = w.mem;
        mc.addr = _slotOf[w.addr];
        mc.data = _slotOf[w.data];
        mc.enable = _slotOf[w.enable];
        _memCommits.push_back(mc);
    }

    for (const Assert &a : _netlist.asserts()) {
        EffAssert ea;
        ea.enable = _slotOf[a.enable];
        ea.cond = _slotOf[a.cond];
        ea.message = a.message;
        _asserts.push_back(std::move(ea));
    }
    for (const Display &d : _netlist.displays()) {
        EffDisplay ed;
        ed.enable = _slotOf[d.enable];
        ed.format = d.format;
        for (NodeId arg : d.args) {
            ed.argSlots.push_back(_slotOf[arg]);
            ed.argWidths.push_back(_netlist.node(arg).width);
        }
        _displays.push_back(std::move(ed));
    }
    for (const Finish &f : _netlist.finishes())
        _finishes.push_back(_slotOf[f.enable]);
}

uint64_t
CompiledEvaluator::shiftAmount(const Instr &in) const
{
    // Mirrors the reference: amounts that do not fit 64 bits shift
    // everything out.
    const uint64_t *b = &_arena[in.b];
    if (in.bw <= 64 || lo::fitsUint64(b, lo::nlimbs(in.bw)))
        return b[0];
    return in.width;
}

void
CompiledEvaluator::runTape()
{
    uint64_t *A = _arena.data();
    for (const Instr &in : _tape) {
        switch (in.op) {
          case Op::NAdd:
            A[in.dst] = (A[in.a] + A[in.b]) & in.mask;
            break;
          case Op::NSub:
            A[in.dst] = (A[in.a] - A[in.b]) & in.mask;
            break;
          case Op::NMul:
            A[in.dst] = (A[in.a] * A[in.b]) & in.mask;
            break;
          case Op::NAnd: A[in.dst] = A[in.a] & A[in.b]; break;
          case Op::NOr: A[in.dst] = A[in.a] | A[in.b]; break;
          case Op::NXor: A[in.dst] = A[in.a] ^ A[in.b]; break;
          case Op::NNot: A[in.dst] = ~A[in.a] & in.mask; break;
          case Op::NShl: {
            uint64_t amt = shiftAmount(in);
            A[in.dst] = amt >= in.width ? 0
                                        : (A[in.a] << amt) & in.mask;
            break;
          }
          case Op::NLshr: {
            uint64_t amt = shiftAmount(in);
            A[in.dst] = amt >= in.width ? 0 : A[in.a] >> amt;
            break;
          }
          case Op::NEq: A[in.dst] = A[in.a] == A[in.b]; break;
          case Op::NUlt: A[in.dst] = A[in.a] < A[in.b]; break;
          case Op::NSlt: {
            uint64_t sbit = 1ull << (in.aw - 1);
            A[in.dst] = (A[in.a] ^ sbit) < (A[in.b] ^ sbit);
            break;
          }
          case Op::NMux:
            A[in.dst] = A[in.a] ? A[in.b] : A[in.c];
            break;
          case Op::NSlice:
            A[in.dst] = (A[in.a] >> in.lo) & in.mask;
            break;
          case Op::NConcat:
            A[in.dst] = (A[in.a] << in.bw) | A[in.b];
            break;
          case Op::NZExt: A[in.dst] = A[in.a]; break;
          case Op::NSExt: {
            uint64_t v = A[in.a];
            if (in.aw < in.width && ((v >> (in.aw - 1)) & 1))
                v |= (~0ull << in.aw) & in.mask;
            A[in.dst] = v;
            break;
          }
          case Op::NRedOr: A[in.dst] = A[in.a] != 0; break;
          case Op::NRedAnd: A[in.dst] = A[in.a] == in.mask; break;
          case Op::NRedXor:
            A[in.dst] =
                static_cast<unsigned>(__builtin_popcountll(A[in.a])) & 1u;
            break;
          case Op::NMemRead: {
            const MemState &m = _mems[in.lo];
            A[in.dst] = m.words[A[in.a] % m.depth];
            break;
          }
          case Op::WAdd: lo::add(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WSub: lo::sub(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WMul: lo::mul(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WAnd: lo::bitAnd(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WOr: lo::bitOr(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WXor: lo::bitXor(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WNot: lo::bitNot(A + in.dst, A + in.a, in.width); break;
          case Op::WShl:
            lo::shl(A + in.dst, A + in.a, shiftAmount(in), in.width);
            break;
          case Op::WLshr:
            lo::lshr(A + in.dst, A + in.a, shiftAmount(in), in.width);
            break;
          case Op::WEq:
            A[in.dst] = lo::eq(A + in.a, A + in.b, in.aw);
            break;
          case Op::WUlt:
            A[in.dst] = lo::ult(A + in.a, A + in.b, in.aw);
            break;
          case Op::WSlt:
            A[in.dst] = lo::slt(A + in.a, A + in.b, in.aw);
            break;
          case Op::WMux: {
            const uint64_t *src = A[in.a] ? A + in.b : A + in.c;
            lo::copy(A + in.dst, src, lo::nlimbs(in.width));
            break;
          }
          case Op::WSlice:
            lo::slice(A + in.dst, A + in.a, in.aw, in.lo, in.width);
            break;
          case Op::WConcat:
            lo::concat(A + in.dst, A + in.a, A + in.b, in.aw, in.bw);
            break;
          case Op::WZExt:
            lo::zext(A + in.dst, A + in.a, in.width, in.aw);
            break;
          case Op::WSExt:
            lo::sext(A + in.dst, A + in.a, in.width, in.aw);
            break;
          case Op::WRedOr:
            A[in.dst] = lo::reduceOr(A + in.a, in.aw);
            break;
          case Op::WRedAnd:
            A[in.dst] = lo::reduceAnd(A + in.a, in.aw);
            break;
          case Op::WRedXor:
            A[in.dst] = lo::reduceXor(A + in.a, in.aw);
            break;
          case Op::WMemRead: {
            const MemState &m = _mems[in.lo];
            uint64_t addr = A[in.a] % m.depth;
            lo::copy(A + in.dst, &m.words[addr * m.wordLimbs],
                     m.wordLimbs);
            break;
          }
        }
    }
}

SimStatus
CompiledEvaluator::step()
{
    if (_status != SimStatus::Ok)
        return _status;

    runTape();

    const uint64_t *A = _arena.data();

    // Side effects observe this cycle's combinational values, in the
    // same order as the reference evaluator.
    for (const EffAssert &a : _asserts) {
        if (A[a.enable] && !A[a.cond]) {
            _status = SimStatus::AssertFailed;
            _failureMessage = "cycle " + std::to_string(_cycle) +
                              ": assertion failed: " + a.message;
            return _status;
        }
    }
    for (const EffDisplay &d : _displays) {
        if (A[d.enable]) {
            std::vector<BitVector> args;
            args.reserve(d.argSlots.size());
            for (size_t i = 0; i < d.argSlots.size(); ++i)
                args.push_back(slotValue(d.argSlots[i], d.argWidths[i]));
            std::string line = Evaluator::formatDisplay(d.format, args);
            _displayLog.push_back(line);
            if (onDisplay)
                onDisplay(line);
        }
    }
    bool finished = false;
    for (uint32_t en : _finishes)
        if (A[en])
            finished = true;

    // Commit.  Memory writes read node slots, so they must run before
    // register commits overwrite the RegRead slots; register commits
    // whose source is itself a RegRead slot go through _staging.  Both
    // reproduce the reference semantics of committing against the
    // pre-commit combinational snapshot.
    for (const MemCommit &w : _memCommits) {
        if (_arena[w.enable]) {
            MemState &m = _mems[w.mem];
            uint64_t addr = _arena[w.addr] % m.depth;
            lo::copy(&m.words[addr * m.wordLimbs], &_arena[w.data],
                     m.wordLimbs);
        }
    }
    for (const RegCommit &rc : _regCommits)
        if (rc.staging != kNoStaging)
            lo::copy(&_staging[rc.staging], &_arena[rc.src], rc.limbs);
    for (const RegCommit &rc : _regCommits) {
        if (rc.staging != kNoStaging)
            lo::copy(&_arena[rc.dst], &_staging[rc.staging], rc.limbs);
        else
            lo::copy(&_arena[rc.dst], &_arena[rc.src], rc.limbs);
    }

    ++_cycle;
    if (finished)
        _status = SimStatus::Finished;
    return _status;
}

void
CompiledEvaluator::setInput(const std::string &name, const BitVector &value)
{
    NodeId id = resolveInput(_netlist, name, value);
    lo::copy(&_arena[_slotOf[id]], value.limbs().data(),
             lo::nlimbs(value.width()));
}

BitVector
CompiledEvaluator::slotValue(uint32_t slot, unsigned width) const
{
    std::vector<uint64_t> limbs(&_arena[slot],
                                &_arena[slot] + lo::nlimbs(width));
    return BitVector::fromLimbs(width, limbs);
}

BitVector
CompiledEvaluator::regValue(RegId id) const
{
    MANTICORE_ASSERT(id < _netlist.numRegisters(), "bad register id");
    const Register &r = _netlist.reg(id);
    return slotValue(_slotOf[r.current], r.width);
}

BitVector
CompiledEvaluator::regValue(const std::string &name) const
{
    RegId id = _netlist.findRegister(name);
    if (id == kInvalidReg)
        MANTICORE_FATAL("no such register: ", name);
    return regValue(id);
}

BitVector
CompiledEvaluator::memValue(MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].depth,
                     "memValue out of range");
    const MemState &m = _mems[id];
    std::vector<uint64_t> limbs(
        &m.words[addr * m.wordLimbs],
        &m.words[addr * m.wordLimbs] + m.wordLimbs);
    return BitVector::fromLimbs(m.width, limbs);
}

BitVector
CompiledEvaluator::nodeValue(NodeId id) const
{
    MANTICORE_ASSERT(id < _netlist.numNodes(), "bad node id");
    return slotValue(_slotOf[id], _netlist.node(id).width);
}

const char *
evalModeName(EvalMode mode)
{
    switch (mode) {
      case EvalMode::Reference: return "reference";
      case EvalMode::Compiled: return "compiled";
    }
    return "?";
}

std::unique_ptr<EvaluatorBase>
makeEvaluator(Netlist netlist, EvalMode mode)
{
    switch (mode) {
      case EvalMode::Reference:
        return std::make_unique<Evaluator>(std::move(netlist));
      case EvalMode::Compiled:
        return std::make_unique<CompiledEvaluator>(std::move(netlist));
    }
    MANTICORE_FATAL("unknown evaluator mode");
}

} // namespace manticore::netlist
