#include "netlist/tape.hh"

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist::tape {

namespace lo = ::manticore::limbops;

std::vector<MemState>
buildMemStates(const Netlist &netlist, unsigned lanes)
{
    std::vector<MemState> mems;
    mems.reserve(netlist.numMemories());
    for (const Memory &m : netlist.memories()) {
        MemState ms;
        ms.width = m.width;
        ms.wordLimbs = lo::nlimbs(m.width);
        ms.lanes = lanes;
        ms.depth = m.depth;
        ms.words.assign(static_cast<size_t>(ms.depth) * lanes *
                            ms.wordLimbs,
                        0);
        for (unsigned a = 0; a < m.depth; ++a)
            lo::broadcast(ms.word(a, 0), m.init[a].limbs().data(),
                          ms.wordLimbs, lanes);
        mems.push_back(std::move(ms));
    }
    return mems;
}

Instr
lower(const Netlist &netlist, NodeId id, uint32_t dst, uint32_t a,
      uint32_t b, uint32_t c, const std::vector<MemState> &mems)
{
    const Node &n = netlist.node(id);
    Instr in;
    in.dst = dst;
    in.a = a;
    in.b = b;
    in.c = c;
    in.width = n.width;
    in.mask = lo::topMask(n.width);
    if (!n.operands.empty())
        in.aw = netlist.node(n.operands[0]).width;
    if (n.operands.size() > 1)
        in.bw = netlist.node(n.operands[1]).width;

    bool narrow = n.width <= 64;   // result fits one limb
    bool narrow_a = in.aw <= 64;   // operand 0 fits one limb

    switch (n.kind) {
      case OpKind::Add: in.op = narrow ? Op::NAdd : Op::WAdd; break;
      case OpKind::Sub: in.op = narrow ? Op::NSub : Op::WSub; break;
      case OpKind::Mul: in.op = narrow ? Op::NMul : Op::WMul; break;
      case OpKind::And: in.op = narrow ? Op::NAnd : Op::WAnd; break;
      case OpKind::Or: in.op = narrow ? Op::NOr : Op::WOr; break;
      case OpKind::Xor: in.op = narrow ? Op::NXor : Op::WXor; break;
      case OpKind::Not: in.op = narrow ? Op::NNot : Op::WNot; break;
      case OpKind::Shl: in.op = narrow ? Op::NShl : Op::WShl; break;
      case OpKind::Lshr:
        in.op = narrow ? Op::NLshr : Op::WLshr;
        break;
      case OpKind::Eq: in.op = narrow_a ? Op::NEq : Op::WEq; break;
      case OpKind::Ult: in.op = narrow_a ? Op::NUlt : Op::WUlt; break;
      case OpKind::Slt: in.op = narrow_a ? Op::NSlt : Op::WSlt; break;
      case OpKind::Mux: in.op = narrow ? Op::NMux : Op::WMux; break;
      case OpKind::Slice:
        in.lo = n.lo;
        in.op = narrow_a ? Op::NSlice : Op::WSlice;
        break;
      case OpKind::Concat:
        in.op = narrow ? Op::NConcat : Op::WConcat;
        break;
      case OpKind::ZExt:
        in.op = narrow ? Op::NZExt : Op::WZExt;
        break;
      case OpKind::SExt:
        in.op = narrow ? Op::NSExt : Op::WSExt;
        break;
      case OpKind::RedOr:
        in.op = narrow_a ? Op::NRedOr : Op::WRedOr;
        break;
      case OpKind::RedAnd:
        in.op = narrow_a ? Op::NRedAnd : Op::WRedAnd;
        in.mask = lo::topMask(in.aw); // operand mask
        break;
      case OpKind::RedXor:
        in.op = narrow_a ? Op::NRedXor : Op::WRedXor;
        break;
      case OpKind::MemRead:
        in.lo = n.memId;
        in.op = mems[n.memId].wordLimbs == 1 ? Op::NMemRead
                                             : Op::WMemRead;
        break;
      case OpKind::Const:
      case OpKind::Input:
      case OpKind::RegRead:
        MANTICORE_FATAL("source node has no tape lowering");
    }
    return in;
}

BitVector
readSlot(const uint64_t *slot, unsigned width)
{
    std::vector<uint64_t> limbs(slot, slot + lo::nlimbs(width));
    return BitVector::fromLimbs(width, limbs);
}

BitVector
MemState::value(uint64_t addr, unsigned lane) const
{
    return readSlot(word(addr, lane), width);
}

Effects
Effects::compile(const Netlist &netlist,
                 const std::function<uint32_t(NodeId)> &slot)
{
    Effects e;
    for (const Assert &a : netlist.asserts())
        e.asserts.push_back({slot(a.enable), slot(a.cond), a.message});
    for (const Display &d : netlist.displays()) {
        EffDisplay ed;
        ed.enable = slot(d.enable);
        ed.format = d.format;
        for (NodeId arg : d.args) {
            ed.argSlots.push_back(slot(arg));
            ed.argWidths.push_back(netlist.node(arg).width);
        }
        e.displays.push_back(std::move(ed));
    }
    for (const Finish &f : netlist.finishes())
        e.finishes.push_back(slot(f.enable));
    return e;
}

bool
Effects::fire(const uint64_t *A, unsigned lane, uint64_t cycle,
              SimStatus &status, std::string &failure_message,
              std::vector<std::string> &log,
              const std::function<void(const std::string &)> &on_display,
              bool &finished) const
{
    // Enable/cond slots are 1-bit, so their lane stride is one limb;
    // display arguments stride by their own limb counts.
    for (const EffAssert &a : asserts) {
        if (A[a.enable + lane] && !A[a.cond + lane]) {
            status = SimStatus::AssertFailed;
            failure_message = "cycle " + std::to_string(cycle) +
                              ": assertion failed: " + a.message;
            return false;
        }
    }
    // If a display sink throws, roll the log back so the engine's own
    // transcript stays exact when the caller retries the cycle.  An
    // external on_display sink cannot be un-notified: lines delivered
    // before the throw are redelivered on retry (at-least-once).
    size_t mark = log.size();
    try {
        for (const EffDisplay &d : displays) {
            if (A[d.enable + lane]) {
                std::vector<BitVector> args;
                args.reserve(d.argSlots.size());
                for (size_t i = 0; i < d.argSlots.size(); ++i)
                    args.push_back(readSlot(
                        A + d.argSlots[i] +
                            static_cast<size_t>(lane) *
                                lo::nlimbs(d.argWidths[i]),
                        d.argWidths[i]));
                std::string line =
                    Evaluator::formatDisplay(d.format, args);
                log.push_back(line);
                if (on_display)
                    on_display(line);
            }
        }
    } catch (...) {
        log.resize(mark);
        throw;
    }
    for (uint32_t en : finishes)
        if (A[en + lane])
            finished = true;
    return true;
}

Effects::FireResult
Effects::fireLanes(
    const uint64_t *A, unsigned lanes, LaneState *lane,
    uint8_t *commit, uint8_t *finish,
    const std::function<void(const std::string &)> &on_display) const
{
    FireResult result;
    if (onlyFinishes()) {
        // Nothing can fail, throw or log: every active lane commits
        // and firing collapses to the $finish-enable checks.
        for (unsigned l = 0; l < lanes; ++l) {
            bool active = lane[l].status == SimStatus::Ok;
            bool fin = active && anyFinish(A, l);
            commit[l] = active;
            finish[l] = fin;
            result.committing += active;
            result.finishing += fin;
        }
        return result;
    }
    for (unsigned l = 0; l < lanes; ++l) {
        commit[l] = 0;
        finish[l] = 0;
        lane[l].logMark = lane[l].displayLog.size();
    }
    try {
        for (unsigned l = 0; l < lanes; ++l) {
            LaneState &ls = lane[l];
            if (ls.status != SimStatus::Ok)
                continue;
            bool fin = false;
            bool ok = fire(A, l, ls.cycle, ls.status, ls.failureMessage,
                           ls.displayLog, on_display, fin);
            commit[l] = ok;
            finish[l] = fin;
            result.committing += ok;
            result.finishing += fin;
        }
    } catch (...) {
        for (unsigned l = 0; l < lanes; ++l) {
            lane[l].displayLog.resize(lane[l].logMark);
            commit[l] = 0;
        }
        result.thrown = std::current_exception();
        result.committing = 0;
        result.finishing = 0;
    }
    return result;
}

namespace {

uint64_t
shiftAmountLane(const Instr &in, const uint64_t *A, unsigned lane,
                uint32_t bstride)
{
    // Mirrors the reference: amounts that do not fit 64 bits shift
    // everything out.
    const uint64_t *b = A + in.b + static_cast<size_t>(lane) * bstride;
    if (in.bw <= 64 || lo::fitsUint64(b, lo::nlimbs(in.bw)))
        return b[0];
    return in.width;
}

/** The executor, templated on the lane count: kLanes == 1 is the
 *  scalar instantiation (the lane loops and per-operand strides fold
 *  away, keeping single-simulation codegen identical to the
 *  pre-ensemble tape); kLanes == 0 takes the width from `dyn_lanes`
 *  and advances every lane of the ensemble per decoded op.  Narrow
 *  ops stream the laned single-limb kernels from support/limbops.hh
 *  (unit stride — one op's N lane values are N consecutive limbs);
 *  wide ops loop the span kernels over the lanes with each operand's
 *  stride hoisted out of the loop. */
/** noinline: each instantiation keeps its own code so the compiler
 *  cannot cross-jump the two big switch bodies into shared tails,
 *  which would put extra jumps on the single-lane hot path. */
template <unsigned kLanes>
__attribute__((noinline)) void
runImpl(const Instr *instrs, size_t count, uint64_t *A,
        const MemState *mems, unsigned dyn_lanes)
{
    const unsigned L = kLanes != 0 ? kLanes : dyn_lanes;
    for (size_t i = 0; i < count; ++i) {
        const Instr &in = instrs[i];
        switch (in.op) {
          case Op::NAdd:
            lo::addN<kLanes>(A + in.dst, A + in.a, A + in.b, in.mask, L);
            break;
          case Op::NSub:
            lo::subN<kLanes>(A + in.dst, A + in.a, A + in.b, in.mask, L);
            break;
          case Op::NMul:
            lo::mulN<kLanes>(A + in.dst, A + in.a, A + in.b, in.mask, L);
            break;
          case Op::NAnd: lo::andN<kLanes>(A + in.dst, A + in.a, A + in.b, L); break;
          case Op::NOr: lo::orN<kLanes>(A + in.dst, A + in.a, A + in.b, L); break;
          case Op::NXor: lo::xorN<kLanes>(A + in.dst, A + in.a, A + in.b, L); break;
          case Op::NNot: lo::notN<kLanes>(A + in.dst, A + in.a, in.mask, L); break;
          case Op::NShl: {
            const uint32_t bs = lo::nlimbs(in.bw);
            for (unsigned l = 0; l < L; ++l) {
                uint64_t amt = shiftAmountLane(in, A, l, bs);
                A[in.dst + l] =
                    amt >= in.width ? 0 : (A[in.a + l] << amt) & in.mask;
            }
            break;
          }
          case Op::NLshr: {
            const uint32_t bs = lo::nlimbs(in.bw);
            for (unsigned l = 0; l < L; ++l) {
                uint64_t amt = shiftAmountLane(in, A, l, bs);
                A[in.dst + l] = amt >= in.width ? 0 : A[in.a + l] >> amt;
            }
            break;
          }
          case Op::NEq: lo::eqN<kLanes>(A + in.dst, A + in.a, A + in.b, L); break;
          case Op::NUlt: lo::ultN<kLanes>(A + in.dst, A + in.a, A + in.b, L); break;
          case Op::NSlt:
            lo::sltN<kLanes>(A + in.dst, A + in.a, A + in.b,
                     1ull << (in.aw - 1), L);
            break;
          case Op::NMux:
            lo::muxN<kLanes>(A + in.dst, A + in.a, A + in.b, A + in.c, L);
            break;
          case Op::NSlice:
            lo::sliceN<kLanes>(A + in.dst, A + in.a, in.lo, in.mask, L);
            break;
          case Op::NConcat:
            lo::concatN<kLanes>(A + in.dst, A + in.a, A + in.b, in.bw, L);
            break;
          case Op::NZExt: lo::copyN<kLanes>(A + in.dst, A + in.a, L); break;
          case Op::NSExt:
            if (in.aw < in.width)
                lo::sextN<kLanes>(A + in.dst, A + in.a, in.aw, in.mask, L);
            else
                lo::copyN<kLanes>(A + in.dst, A + in.a, L);
            break;
          case Op::NRedOr: lo::redOrN<kLanes>(A + in.dst, A + in.a, L); break;
          case Op::NRedAnd:
            lo::redAndN<kLanes>(A + in.dst, A + in.a, in.mask, L);
            break;
          case Op::NRedXor: lo::redXorN<kLanes>(A + in.dst, A + in.a, L); break;
          case Op::NMemRead: {
            const MemState &m = mems[in.lo];
            const uint32_t as = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] =
                    m.words[(A[in.a + l * as] % m.depth) * L + l];
            break;
          }
          case Op::WAdd: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::add(A + in.dst + l * s, A + in.a + l * s,
                        A + in.b + l * s, in.width);
            break;
          }
          case Op::WSub: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::sub(A + in.dst + l * s, A + in.a + l * s,
                        A + in.b + l * s, in.width);
            break;
          }
          case Op::WMul: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::mul(A + in.dst + l * s, A + in.a + l * s,
                        A + in.b + l * s, in.width);
            break;
          }
          case Op::WAnd: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::bitAnd(A + in.dst + l * s, A + in.a + l * s,
                           A + in.b + l * s, in.width);
            break;
          }
          case Op::WOr: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::bitOr(A + in.dst + l * s, A + in.a + l * s,
                          A + in.b + l * s, in.width);
            break;
          }
          case Op::WXor: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::bitXor(A + in.dst + l * s, A + in.a + l * s,
                           A + in.b + l * s, in.width);
            break;
          }
          case Op::WNot: {
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::bitNot(A + in.dst + l * s, A + in.a + l * s,
                           in.width);
            break;
          }
          case Op::WShl: {
            const uint32_t s = lo::nlimbs(in.width);
            const uint32_t bs = lo::nlimbs(in.bw);
            for (unsigned l = 0; l < L; ++l)
                lo::shl(A + in.dst + l * s, A + in.a + l * s,
                        shiftAmountLane(in, A, l, bs), in.width);
            break;
          }
          case Op::WLshr: {
            const uint32_t s = lo::nlimbs(in.width);
            const uint32_t bs = lo::nlimbs(in.bw);
            for (unsigned l = 0; l < L; ++l)
                lo::lshr(A + in.dst + l * s, A + in.a + l * s,
                         shiftAmountLane(in, A, l, bs), in.width);
            break;
          }
          case Op::WEq: {
            const uint32_t s = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] =
                    lo::eq(A + in.a + l * s, A + in.b + l * s, in.aw);
            break;
          }
          case Op::WUlt: {
            const uint32_t s = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] =
                    lo::ult(A + in.a + l * s, A + in.b + l * s, in.aw);
            break;
          }
          case Op::WSlt: {
            const uint32_t s = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] =
                    lo::slt(A + in.a + l * s, A + in.b + l * s, in.aw);
            break;
          }
          case Op::WMux: {
            const uint32_t ss = lo::nlimbs(in.aw); // select stride
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l) {
                const uint64_t *src = A[in.a + l * ss]
                                          ? A + in.b + l * s
                                          : A + in.c + l * s;
                lo::copy(A + in.dst + l * s, src, s);
            }
            break;
          }
          case Op::WSlice: {
            const uint32_t as = lo::nlimbs(in.aw);
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::slice(A + in.dst + l * s, A + in.a + l * as, in.aw,
                          in.lo, in.width);
            break;
          }
          case Op::WConcat: {
            const uint32_t as = lo::nlimbs(in.aw);
            const uint32_t bs = lo::nlimbs(in.bw);
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::concat(A + in.dst + l * s, A + in.a + l * as,
                           A + in.b + l * bs, in.aw, in.bw);
            break;
          }
          case Op::WZExt: {
            const uint32_t as = lo::nlimbs(in.aw);
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::zext(A + in.dst + l * s, A + in.a + l * as,
                         in.width, in.aw);
            break;
          }
          case Op::WSExt: {
            const uint32_t as = lo::nlimbs(in.aw);
            const uint32_t s = lo::nlimbs(in.width);
            for (unsigned l = 0; l < L; ++l)
                lo::sext(A + in.dst + l * s, A + in.a + l * as,
                         in.width, in.aw);
            break;
          }
          case Op::WRedOr: {
            const uint32_t as = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] = lo::reduceOr(A + in.a + l * as, in.aw);
            break;
          }
          case Op::WRedAnd: {
            const uint32_t as = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] = lo::reduceAnd(A + in.a + l * as, in.aw);
            break;
          }
          case Op::WRedXor: {
            const uint32_t as = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l)
                A[in.dst + l] = lo::reduceXor(A + in.a + l * as, in.aw);
            break;
          }
          case Op::WMemRead: {
            const MemState &m = mems[in.lo];
            const uint32_t as = lo::nlimbs(in.aw);
            for (unsigned l = 0; l < L; ++l) {
                uint64_t addr = A[in.a + l * as] % m.depth;
                lo::copy(A + in.dst + l * m.wordLimbs,
                         m.word(addr, l), m.wordLimbs);
            }
            break;
          }
        }
    }
}

} // namespace

void
runScalar(const Instr *instrs, size_t count, uint64_t *A,
          const MemState *mems)
{
    runImpl<1>(instrs, count, A, mems, 1);
}

void
runEnsemble(const Instr *instrs, size_t count, uint64_t *A,
            const MemState *mems, unsigned lanes)
{
    // Constant-width instantiations for the common power-of-two lane
    // counts: the lane loops unroll / vectorise with a known trip
    // count, which matters most on short tapes where the loop
    // control would otherwise rival the op itself.
    switch (lanes) {
      case 2: return runImpl<2>(instrs, count, A, mems, 2);
      case 4: return runImpl<4>(instrs, count, A, mems, 4);
      case 8: return runImpl<8>(instrs, count, A, mems, 8);
      case 16: return runImpl<16>(instrs, count, A, mems, 16);
      default: return runImpl<0>(instrs, count, A, mems, lanes);
    }
}

} // namespace manticore::netlist::tape
