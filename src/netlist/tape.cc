#include "netlist/tape.hh"

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist::tape {

namespace lo = ::manticore::limbops;

std::vector<MemState>
buildMemStates(const Netlist &netlist)
{
    std::vector<MemState> mems;
    mems.reserve(netlist.numMemories());
    for (const Memory &m : netlist.memories()) {
        MemState ms;
        ms.width = m.width;
        ms.wordLimbs = lo::nlimbs(m.width);
        ms.depth = m.depth;
        ms.words.assign(static_cast<size_t>(ms.depth) * ms.wordLimbs, 0);
        for (unsigned a = 0; a < m.depth; ++a)
            lo::copy(&ms.words[static_cast<size_t>(a) * ms.wordLimbs],
                     m.init[a].limbs().data(), ms.wordLimbs);
        mems.push_back(std::move(ms));
    }
    return mems;
}

Instr
lower(const Netlist &netlist, NodeId id, uint32_t dst, uint32_t a,
      uint32_t b, uint32_t c, const std::vector<MemState> &mems)
{
    const Node &n = netlist.node(id);
    Instr in;
    in.dst = dst;
    in.a = a;
    in.b = b;
    in.c = c;
    in.width = n.width;
    in.mask = lo::topMask(n.width);
    if (!n.operands.empty())
        in.aw = netlist.node(n.operands[0]).width;
    if (n.operands.size() > 1)
        in.bw = netlist.node(n.operands[1]).width;

    bool narrow = n.width <= 64;   // result fits one limb
    bool narrow_a = in.aw <= 64;   // operand 0 fits one limb

    switch (n.kind) {
      case OpKind::Add: in.op = narrow ? Op::NAdd : Op::WAdd; break;
      case OpKind::Sub: in.op = narrow ? Op::NSub : Op::WSub; break;
      case OpKind::Mul: in.op = narrow ? Op::NMul : Op::WMul; break;
      case OpKind::And: in.op = narrow ? Op::NAnd : Op::WAnd; break;
      case OpKind::Or: in.op = narrow ? Op::NOr : Op::WOr; break;
      case OpKind::Xor: in.op = narrow ? Op::NXor : Op::WXor; break;
      case OpKind::Not: in.op = narrow ? Op::NNot : Op::WNot; break;
      case OpKind::Shl: in.op = narrow ? Op::NShl : Op::WShl; break;
      case OpKind::Lshr:
        in.op = narrow ? Op::NLshr : Op::WLshr;
        break;
      case OpKind::Eq: in.op = narrow_a ? Op::NEq : Op::WEq; break;
      case OpKind::Ult: in.op = narrow_a ? Op::NUlt : Op::WUlt; break;
      case OpKind::Slt: in.op = narrow_a ? Op::NSlt : Op::WSlt; break;
      case OpKind::Mux: in.op = narrow ? Op::NMux : Op::WMux; break;
      case OpKind::Slice:
        in.lo = n.lo;
        in.op = narrow_a ? Op::NSlice : Op::WSlice;
        break;
      case OpKind::Concat:
        in.op = narrow ? Op::NConcat : Op::WConcat;
        break;
      case OpKind::ZExt:
        in.op = narrow ? Op::NZExt : Op::WZExt;
        break;
      case OpKind::SExt:
        in.op = narrow ? Op::NSExt : Op::WSExt;
        break;
      case OpKind::RedOr:
        in.op = narrow_a ? Op::NRedOr : Op::WRedOr;
        break;
      case OpKind::RedAnd:
        in.op = narrow_a ? Op::NRedAnd : Op::WRedAnd;
        in.mask = lo::topMask(in.aw); // operand mask
        break;
      case OpKind::RedXor:
        in.op = narrow_a ? Op::NRedXor : Op::WRedXor;
        break;
      case OpKind::MemRead:
        in.lo = n.memId;
        in.op = mems[n.memId].wordLimbs == 1 ? Op::NMemRead
                                             : Op::WMemRead;
        break;
      case OpKind::Const:
      case OpKind::Input:
      case OpKind::RegRead:
        MANTICORE_FATAL("source node has no tape lowering");
    }
    return in;
}

BitVector
readSlot(const uint64_t *slot, unsigned width)
{
    std::vector<uint64_t> limbs(slot, slot + lo::nlimbs(width));
    return BitVector::fromLimbs(width, limbs);
}

BitVector
MemState::value(uint64_t addr) const
{
    return readSlot(&words[addr * wordLimbs], width);
}

Effects
Effects::compile(const Netlist &netlist,
                 const std::function<uint32_t(NodeId)> &slot)
{
    Effects e;
    for (const Assert &a : netlist.asserts())
        e.asserts.push_back({slot(a.enable), slot(a.cond), a.message});
    for (const Display &d : netlist.displays()) {
        EffDisplay ed;
        ed.enable = slot(d.enable);
        ed.format = d.format;
        for (NodeId arg : d.args) {
            ed.argSlots.push_back(slot(arg));
            ed.argWidths.push_back(netlist.node(arg).width);
        }
        e.displays.push_back(std::move(ed));
    }
    for (const Finish &f : netlist.finishes())
        e.finishes.push_back(slot(f.enable));
    return e;
}

bool
Effects::fire(const uint64_t *A, uint64_t cycle, SimStatus &status,
              std::string &failure_message,
              std::vector<std::string> &log,
              const std::function<void(const std::string &)> &on_display,
              bool &finished) const
{
    for (const EffAssert &a : asserts) {
        if (A[a.enable] && !A[a.cond]) {
            status = SimStatus::AssertFailed;
            failure_message = "cycle " + std::to_string(cycle) +
                              ": assertion failed: " + a.message;
            return false;
        }
    }
    // If a display sink throws, roll the log back so the engine's own
    // transcript stays exact when the caller retries the cycle.  An
    // external on_display sink cannot be un-notified: lines delivered
    // before the throw are redelivered on retry (at-least-once).
    size_t mark = log.size();
    try {
        for (const EffDisplay &d : displays) {
            if (A[d.enable]) {
                std::vector<BitVector> args;
                args.reserve(d.argSlots.size());
                for (size_t i = 0; i < d.argSlots.size(); ++i)
                    args.push_back(
                        readSlot(A + d.argSlots[i], d.argWidths[i]));
                std::string line =
                    Evaluator::formatDisplay(d.format, args);
                log.push_back(line);
                if (on_display)
                    on_display(line);
            }
        }
    } catch (...) {
        log.resize(mark);
        throw;
    }
    for (uint32_t en : finishes)
        if (A[en])
            finished = true;
    return true;
}

namespace {

uint64_t
shiftAmount(const Instr &in, const uint64_t *A)
{
    // Mirrors the reference: amounts that do not fit 64 bits shift
    // everything out.
    const uint64_t *b = A + in.b;
    if (in.bw <= 64 || lo::fitsUint64(b, lo::nlimbs(in.bw)))
        return b[0];
    return in.width;
}

} // namespace

void
run(const Instr *instrs, size_t count, uint64_t *A, const MemState *mems)
{
    for (size_t i = 0; i < count; ++i) {
        const Instr &in = instrs[i];
        switch (in.op) {
          case Op::NAdd:
            A[in.dst] = (A[in.a] + A[in.b]) & in.mask;
            break;
          case Op::NSub:
            A[in.dst] = (A[in.a] - A[in.b]) & in.mask;
            break;
          case Op::NMul:
            A[in.dst] = (A[in.a] * A[in.b]) & in.mask;
            break;
          case Op::NAnd: A[in.dst] = A[in.a] & A[in.b]; break;
          case Op::NOr: A[in.dst] = A[in.a] | A[in.b]; break;
          case Op::NXor: A[in.dst] = A[in.a] ^ A[in.b]; break;
          case Op::NNot: A[in.dst] = ~A[in.a] & in.mask; break;
          case Op::NShl: {
            uint64_t amt = shiftAmount(in, A);
            A[in.dst] = amt >= in.width ? 0
                                        : (A[in.a] << amt) & in.mask;
            break;
          }
          case Op::NLshr: {
            uint64_t amt = shiftAmount(in, A);
            A[in.dst] = amt >= in.width ? 0 : A[in.a] >> amt;
            break;
          }
          case Op::NEq: A[in.dst] = A[in.a] == A[in.b]; break;
          case Op::NUlt: A[in.dst] = A[in.a] < A[in.b]; break;
          case Op::NSlt: {
            uint64_t sbit = 1ull << (in.aw - 1);
            A[in.dst] = (A[in.a] ^ sbit) < (A[in.b] ^ sbit);
            break;
          }
          case Op::NMux:
            A[in.dst] = A[in.a] ? A[in.b] : A[in.c];
            break;
          case Op::NSlice:
            A[in.dst] = (A[in.a] >> in.lo) & in.mask;
            break;
          case Op::NConcat:
            A[in.dst] = (A[in.a] << in.bw) | A[in.b];
            break;
          case Op::NZExt: A[in.dst] = A[in.a]; break;
          case Op::NSExt: {
            uint64_t v = A[in.a];
            if (in.aw < in.width && ((v >> (in.aw - 1)) & 1))
                v |= (~0ull << in.aw) & in.mask;
            A[in.dst] = v;
            break;
          }
          case Op::NRedOr: A[in.dst] = A[in.a] != 0; break;
          case Op::NRedAnd: A[in.dst] = A[in.a] == in.mask; break;
          case Op::NRedXor:
            A[in.dst] =
                static_cast<unsigned>(__builtin_popcountll(A[in.a])) & 1u;
            break;
          case Op::NMemRead: {
            const MemState &m = mems[in.lo];
            A[in.dst] = m.words[A[in.a] % m.depth];
            break;
          }
          case Op::WAdd: lo::add(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WSub: lo::sub(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WMul: lo::mul(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WAnd: lo::bitAnd(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WOr: lo::bitOr(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WXor: lo::bitXor(A + in.dst, A + in.a, A + in.b, in.width); break;
          case Op::WNot: lo::bitNot(A + in.dst, A + in.a, in.width); break;
          case Op::WShl:
            lo::shl(A + in.dst, A + in.a, shiftAmount(in, A), in.width);
            break;
          case Op::WLshr:
            lo::lshr(A + in.dst, A + in.a, shiftAmount(in, A), in.width);
            break;
          case Op::WEq:
            A[in.dst] = lo::eq(A + in.a, A + in.b, in.aw);
            break;
          case Op::WUlt:
            A[in.dst] = lo::ult(A + in.a, A + in.b, in.aw);
            break;
          case Op::WSlt:
            A[in.dst] = lo::slt(A + in.a, A + in.b, in.aw);
            break;
          case Op::WMux: {
            const uint64_t *src = A[in.a] ? A + in.b : A + in.c;
            lo::copy(A + in.dst, src, lo::nlimbs(in.width));
            break;
          }
          case Op::WSlice:
            lo::slice(A + in.dst, A + in.a, in.aw, in.lo, in.width);
            break;
          case Op::WConcat:
            lo::concat(A + in.dst, A + in.a, A + in.b, in.aw, in.bw);
            break;
          case Op::WZExt:
            lo::zext(A + in.dst, A + in.a, in.width, in.aw);
            break;
          case Op::WSExt:
            lo::sext(A + in.dst, A + in.a, in.width, in.aw);
            break;
          case Op::WRedOr:
            A[in.dst] = lo::reduceOr(A + in.a, in.aw);
            break;
          case Op::WRedAnd:
            A[in.dst] = lo::reduceAnd(A + in.a, in.aw);
            break;
          case Op::WRedXor:
            A[in.dst] = lo::reduceXor(A + in.a, in.aw);
            break;
          case Op::WMemRead: {
            const MemState &m = mems[in.lo];
            uint64_t addr = A[in.a] % m.depth;
            lo::copy(A + in.dst, &m.words[addr * m.wordLimbs],
                     m.wordLimbs);
            break;
          }
        }
    }
}

} // namespace manticore::netlist::tape
