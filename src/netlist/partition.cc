#include "netlist/partition.hh"

#include <algorithm>
#include <unordered_set>

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore::netlist {

namespace lo = ::manticore::limbops;

namespace {

/** Per-node evaluation-cost proxy: the limb count, so a 200-bit
 *  multiply weighs more than a 1-bit AND (the netlist analogue of the
 *  compiler's instruction count, which is also per-16-bit-chunk). */
unsigned
nodeWeight(const Netlist &nl, NodeId id)
{
    return lo::nlimbs(nl.node(id).width);
}

bool
isSource(OpKind kind)
{
    return kind == OpKind::Const || kind == OpKind::Input ||
           kind == OpKind::RegRead;
}

/** One pre-merge process: a sink's backward combinational cone. */
struct Seed
{
    std::vector<NodeId> nodes;    ///< sorted, combinational only
    std::vector<RegId> registers; ///< owned commits
    std::vector<uint32_t> memWrites;
    std::vector<RegId> reads;     ///< registers whose current feeds it
    bool effects = false;
};

/** Backward closure from `sinks` over combinational nodes.  Sink
 *  nodes that are themselves sources contribute a read (RegRead) but
 *  no cone node.  Node duplication across seeds is free, so each
 *  closure is independent (no anchored-union fixpoint needed — the
 *  anchoring constraints are folded into seed construction). */
Seed
makeCone(const Netlist &nl, const std::vector<NodeId> &sinks)
{
    Seed seed;
    std::unordered_set<NodeId> visited;
    std::unordered_set<RegId> reads;
    std::vector<NodeId> stack;
    auto push = [&](NodeId id) {
        const Node &n = nl.node(id);
        if (n.kind == OpKind::RegRead) {
            reads.insert(n.regId);
            return;
        }
        if (isSource(n.kind))
            return;
        if (visited.insert(id).second)
            stack.push_back(id);
    };
    for (NodeId s : sinks)
        push(s);
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        seed.nodes.push_back(id);
        for (NodeId operand : nl.node(id).operands)
            push(operand);
    }
    std::sort(seed.nodes.begin(), seed.nodes.end());
    seed.reads.assign(reads.begin(), reads.end());
    std::sort(seed.reads.begin(), seed.reads.end());
    return seed;
}

std::vector<Seed>
split(const Netlist &nl)
{
    std::vector<Seed> seeds;

    // One seed per register: the cone of its next-value.
    for (size_t r = 0; r < nl.numRegisters(); ++r) {
        Seed s = makeCone(nl, {nl.reg(static_cast<RegId>(r)).next});
        s.registers.push_back(static_cast<RegId>(r));
        seeds.push_back(std::move(s));
    }

    // One seed per written memory: all its writes stay together so
    // same-address commits apply in the netlist's program order.
    std::vector<std::vector<uint32_t>> writes_of(nl.numMemories());
    for (size_t w = 0; w < nl.memWrites().size(); ++w)
        writes_of[nl.memWrites()[w].mem].push_back(
            static_cast<uint32_t>(w));
    for (size_t m = 0; m < nl.numMemories(); ++m) {
        if (writes_of[m].empty())
            continue;
        std::vector<NodeId> sinks;
        for (uint32_t w : writes_of[m]) {
            const MemWrite &mw = nl.memWrites()[w];
            sinks.push_back(mw.addr);
            sinks.push_back(mw.data);
            sinks.push_back(mw.enable);
        }
        Seed s = makeCone(nl, sinks);
        s.memWrites = writes_of[m];
        seeds.push_back(std::move(s));
    }

    // One seed for every side effect (the paper's single privileged
    // process): the master fires them in deterministic netlist order,
    // reading this process's slots.
    std::vector<NodeId> effect_sinks;
    for (const Assert &a : nl.asserts()) {
        effect_sinks.push_back(a.enable);
        effect_sinks.push_back(a.cond);
    }
    for (const Display &d : nl.displays()) {
        effect_sinks.push_back(d.enable);
        for (NodeId arg : d.args)
            effect_sinks.push_back(arg);
    }
    for (const Finish &f : nl.finishes())
        effect_sinks.push_back(f.enable);
    if (!effect_sinks.empty()) {
        Seed s = makeCone(nl, effect_sinks);
        s.effects = true;
        seeds.push_back(std::move(s));
    }
    return seeds;
}

std::vector<uint32_t>
sortedUnion(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

/** Merging machinery shared by both algorithms — the compiler
 *  Merger's structure with registers in place of 16-bit chunks and
 *  limb-weighted costs. */
class Merger
{
  public:
    Merger(const Netlist &nl, std::vector<Seed> seeds)
        : _nl(nl), _procs(std::move(seeds))
    {
        _alive.assign(_procs.size(), true);
        _aliveCount = _procs.size();
        _weight.resize(_procs.size());
        for (size_t p = 0; p < _procs.size(); ++p) {
            size_t w = 0;
            for (NodeId id : _procs[p].nodes)
                w += nodeWeight(_nl, id);
            _weight[p] = w;
        }
        buildCommunication();
    }

    size_t splitEdges() const { return _splitEdges; }

    /** Cost model: weighted nodes + sends (§6.1). */
    size_t cost(int p) const { return _weight[p] + sends(p); }

    size_t
    sends(int p) const
    {
        size_t n = 0;
        for (RegId r : _procs[p].registers)
            n += static_cast<size_t>(regLimbs(r)) * foreignReaders(r, p, p);
        return n;
    }

    size_t
    mergedCost(int a, int b) const
    {
        // Weighted union of the node sets (shared nodes deduplicate).
        size_t w = 0;
        const auto &na = _procs[a].nodes, &nb = _procs[b].nodes;
        size_t i = 0, j = 0;
        while (i < na.size() && j < nb.size()) {
            NodeId id;
            if (na[i] == nb[j]) {
                id = na[i];
                ++i;
                ++j;
            } else if (na[i] < nb[j]) {
                id = na[i++];
            } else {
                id = nb[j++];
            }
            w += nodeWeight(_nl, id);
        }
        for (; i < na.size(); ++i)
            w += nodeWeight(_nl, na[i]);
        for (; j < nb.size(); ++j)
            w += nodeWeight(_nl, nb[j]);

        for (int p : {a, b})
            for (RegId r : _procs[p].registers)
                w += static_cast<size_t>(regLimbs(r)) *
                     foreignReaders(r, a, b);
        return w;
    }

    void
    merge(int a, int b)
    {
        MANTICORE_ASSERT(a != b && _alive[a] && _alive[b], "bad merge");
        Seed &pa = _procs[a];
        Seed &pb = _procs[b];
        pa.nodes = sortedUnion(pa.nodes, pb.nodes);
        size_t w = 0;
        for (NodeId id : pa.nodes)
            w += nodeWeight(_nl, id);
        _weight[a] = w;
        pa.registers.insert(pa.registers.end(), pb.registers.begin(),
                            pb.registers.end());
        pa.memWrites = sortedUnion(pa.memWrites, pb.memWrites);
        pa.effects |= pb.effects;
        // Re-point b's readership at a.
        for (RegId r : pb.reads) {
            auto &rd = _readers[r];
            rd.erase(std::remove(rd.begin(), rd.end(), b), rd.end());
            if (std::find(rd.begin(), rd.end(), a) == rd.end())
                rd.push_back(a);
        }
        pa.reads = sortedUnion(pa.reads, pb.reads);
        pb = Seed{};
        for (int n : _neighbors[b]) {
            auto &nn = _neighbors[n];
            nn.erase(b);
            if (n != a) {
                nn.insert(a);
                _neighbors[a].insert(n);
            }
        }
        _neighbors[a].erase(a);
        _neighbors[b].clear();
        _alive[b] = false;
        --_aliveCount;
    }

    size_t aliveCount() const { return _aliveCount; }
    bool alive(int p) const { return _alive[p]; }
    size_t numProcs() const { return _procs.size(); }
    const std::unordered_set<int> &neighbors(int p) const
    {
        return _neighbors[p];
    }

    NetlistPartition
    finish(size_t split_count, size_t split_edges)
    {
        NetlistPartition part;
        part.stats.splitProcesses = split_count;
        part.stats.splitEdges = split_edges;
        size_t netlist_instances = 0;
        for (size_t p = 0; p < _procs.size(); ++p) {
            if (!_alive[p])
                continue;
            size_t c = cost(static_cast<int>(p));
            part.stats.estimatedMaxCost =
                std::max(part.stats.estimatedMaxCost, c);
            part.stats.totalCost += c;
            part.stats.estimatedSends += sends(static_cast<int>(p));
            netlist_instances += _procs[p].nodes.size();
            NetlistProcess proc;
            proc.nodes = std::move(_procs[p].nodes);
            proc.registers = std::move(_procs[p].registers);
            std::sort(proc.registers.begin(), proc.registers.end());
            proc.memWrites = std::move(_procs[p].memWrites);
            proc.effects = _procs[p].effects;
            part.processes.push_back(std::move(proc));
        }
        part.stats.mergedProcesses = part.processes.size();
        size_t live = 0;
        for (const Node &n : _nl.nodes())
            if (!isSource(n.kind))
                ++live;
        part.stats.duplicatedNodes =
            netlist_instances > live ? netlist_instances - live : 0;
        return part;
    }

  private:
    unsigned regLimbs(RegId r) const
    {
        return lo::nlimbs(_nl.reg(r).width);
    }

    /** Readers of register r outside the (a, b) pair being costed. */
    size_t
    foreignReaders(RegId r, int a, int b) const
    {
        size_t n = 0;
        for (int p : _readers[r])
            if (p != a && p != b)
                ++n;
        return n;
    }

    void
    buildCommunication()
    {
        _readers.assign(_nl.numRegisters(), {});
        _neighbors.assign(_procs.size(), {});
        std::vector<int> owner(_nl.numRegisters(), -1);
        for (size_t p = 0; p < _procs.size(); ++p) {
            for (RegId r : _procs[p].registers)
                owner[r] = static_cast<int>(p);
            for (RegId r : _procs[p].reads)
                _readers[r].push_back(static_cast<int>(p));
        }
        for (size_t r = 0; r < _nl.numRegisters(); ++r) {
            for (int rd : _readers[r]) {
                if (rd != owner[r]) {
                    _neighbors[owner[r]].insert(rd);
                    _neighbors[rd].insert(owner[r]);
                    ++_splitEdges;
                }
            }
        }
    }

    const Netlist &_nl;
    std::vector<Seed> _procs;
    std::vector<size_t> _weight;
    std::vector<bool> _alive;
    size_t _aliveCount = 0;
    /// Per register: processes reading its current value.
    std::vector<std::vector<int>> _readers;
    std::vector<std::unordered_set<int>> _neighbors;
    size_t _splitEdges = 0;
};

/** Communication-aware balanced merging (B): repeatedly merge the
 *  cheapest process with the partner minimising the merged cost —
 *  neighbours preferred (shared registers stop being sends), plus the
 *  smallest outsider so hub-and-spoke designs don't accrete onto the
 *  hub.  Past the process budget, keep merging only while it cannot
 *  create a new straggler. */
void
mergeBalanced(Merger &m, unsigned num_processes)
{
    while (m.aliveCount() > 1) {
        int best_p = -1;
        size_t best_cost = 0;
        size_t max_cost = 0;
        for (size_t p = 0; p < m.numProcs(); ++p) {
            if (!m.alive(static_cast<int>(p)))
                continue;
            size_t c = m.cost(static_cast<int>(p));
            max_cost = std::max(max_cost, c);
            if (best_p == -1 || c < best_cost) {
                best_p = static_cast<int>(p);
                best_cost = c;
            }
        }

        int best_q = -1;
        size_t best_merged = 0;
        auto consider = [&](int q) {
            if (q == best_p || !m.alive(q))
                return;
            size_t c = m.mergedCost(best_p, q);
            if (best_q == -1 || c < best_merged) {
                best_q = q;
                best_merged = c;
            }
        };
        for (int q : m.neighbors(best_p))
            consider(q);
        int smallest_other = -1;
        size_t smallest_cost = 0;
        for (size_t q = 0; q < m.numProcs(); ++q) {
            int qi = static_cast<int>(q);
            if (qi == best_p || !m.alive(qi) ||
                m.neighbors(best_p).count(qi))
                continue;
            size_t c = m.cost(qi);
            if (smallest_other == -1 || c < smallest_cost) {
                smallest_other = qi;
                smallest_cost = c;
            }
        }
        if (smallest_other != -1)
            consider(smallest_other);
        if (best_q == -1)
            break;

        if (m.aliveCount() > num_processes) {
            m.merge(best_p, best_q);
        } else if (best_merged <= max_cost) {
            m.merge(best_p, best_q);
        } else {
            break;
        }
    }
}

/** Longest-processing-time-first bin packing (L), oblivious to
 *  communication: place the largest un-binned process into the
 *  least-loaded bin. */
void
mergeLpt(Merger &m, unsigned num_processes)
{
    std::vector<int> order;
    for (size_t p = 0; p < m.numProcs(); ++p)
        if (m.alive(static_cast<int>(p)))
            order.push_back(static_cast<int>(p));
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return m.cost(a) > m.cost(b);
    });

    size_t bins = std::min<size_t>(num_processes, order.size());
    std::vector<int> bin_repr;
    std::vector<size_t> bin_load;
    for (int p : order) {
        if (bin_repr.size() < bins) {
            bin_repr.push_back(p);
            bin_load.push_back(m.cost(p));
            continue;
        }
        size_t best = 0;
        for (size_t b = 1; b < bin_repr.size(); ++b)
            if (bin_load[b] < bin_load[best])
                best = b;
        // LPT uses the linear cost estimate when packing.
        bin_load[best] += m.cost(p);
        m.merge(bin_repr[best], p);
    }
}

} // namespace

NetlistPartition
partitionNetlist(const Netlist &netlist, unsigned num_processes,
                 MergeAlgo algo)
{
    MANTICORE_ASSERT(num_processes >= 1, "need at least one process");
    std::vector<Seed> seeds = split(netlist);
    if (seeds.empty())
        return {};

    Merger merger(netlist, std::move(seeds));
    size_t split_count = merger.numProcs();
    size_t split_edges = merger.splitEdges();
    if (algo == MergeAlgo::Balanced)
        mergeBalanced(merger, num_processes);
    else
        mergeLpt(merger, num_processes);

    NetlistPartition part = merger.finish(split_count, split_edges);
    MANTICORE_ASSERT(part.processes.size() <= num_processes,
                     "merge produced too many processes");
    return part;
}

} // namespace manticore::netlist
