/**
 * @file
 * Cycle-accurate evaluators for the word-level netlist IR.
 *
 * Two engines implement the same EvaluatorBase interface:
 *
 *  - Evaluator: the "netlist interpreter" of §6 of the paper — a slow
 *    but obviously-correct executable semantics used to validate every
 *    compiler pass and both execution engines against.  It walks the
 *    Node graph directly and allocates a fresh BitVector per node per
 *    cycle.
 *
 *  - CompiledEvaluator (compiled_evaluator.hh): the netlist lowered
 *    once to a flat op tape over a preallocated limb arena — zero
 *    allocations and no Node/string access in the hot loop.
 *
 * A third engine, ParallelCompiledEvaluator (parallel_evaluator.hh),
 * partitions the netlist and evaluates one tape per partition on a
 * persistent worker pool with the paper's two-barrier Vcycle
 * structure (§6.1).
 *
 * makeEvaluator() picks an engine at runtime so harnesses can compare
 * them (see src/netlist/README.md).
 */

#ifndef MANTICORE_NETLIST_EVALUATOR_HH
#define MANTICORE_NETLIST_EVALUATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/lane_state.hh"
#include "netlist/netlist.hh"
#include "support/mergealgo.hh"

namespace manticore::support {
class ByteWriter;
class ByteReader;
} // namespace manticore::support

namespace manticore::netlist {

// The per-lane run model (status enum, LaneState block, frozen-lane
// semantics) lives in the shared lane-execution layer; the netlist
// family keeps the unqualified names.
using SimStatus = exec::SimStatus;
using LaneState = exec::LaneState;

/** Common interface of the reference and compiled evaluators.
 *
 *  The compiled engines can run an N-lane *ensemble*: N decoupled
 *  simulations of the same netlist advanced together (lane-strided
 *  state, see arena.hh), each lane with its own stimulus, status,
 *  cycle count, failure message and display transcript.  The plain
 *  (un-suffixed) accessors always mean lane 0, and driving an input
 *  through them broadcasts to every lane, so a single-lane caller
 *  never notices the ensemble dimension; the lane-indexed virtuals
 *  below default to lane-0-only for engines without an ensemble
 *  mode. */
class EvaluatorBase
{
  public:
    virtual ~EvaluatorBase() = default;

    /** Drive a free input (applies from the next step() onward).  On
     *  an ensemble this broadcasts to every lane. */
    virtual void setInput(const std::string &name,
                          const BitVector &value) = 0;

    /** Drive a free input by node id (as returned by
     *  Netlist::findInput) — the string-free fast path behind
     *  engine::Engine::setInput.  The id must name an Input node and
     *  the value must match its width.  On an ensemble this
     *  broadcasts to every lane. */
    virtual void driveInput(NodeId input, const BitVector &value) = 0;

    /** Number of ensemble lanes (decoupled simulations); 1 unless
     *  the engine was built with EvalOptions::lanes > 1. */
    virtual unsigned lanes() const { return 1; }

    /** Drive one lane's copy of a free input.  Engines without an
     *  ensemble mode accept lane 0 only. */
    virtual void driveInputLane(unsigned lane, NodeId input,
                                const BitVector &value);

    // Per-lane views of the run state.  Lane 0 is always identical
    // to the un-suffixed accessors; a lane that finished or failed
    // is frozen (its cycle count and state stop advancing) while the
    // other lanes continue.
    virtual SimStatus laneStatus(unsigned lane) const;
    virtual uint64_t laneCycle(unsigned lane) const;
    virtual const std::string &laneFailureMessage(unsigned lane) const;
    virtual const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const;
    virtual BitVector regValueLane(unsigned lane, RegId id) const;
    virtual BitVector memValueLane(unsigned lane, MemId id,
                                   uint64_t addr) const;

    /** Simulate one clock cycle: evaluate the DAG, emit side effects,
     *  commit registers and memory writes. */
    virtual SimStatus step() = 0;

    /** Step up to max_cycles or until $finish / assert failure.
     *  Engines with a native batch mode (the compiled tape, the
     *  partition-parallel pool) override this; the result is
     *  cycle-exact with a step() loop either way. */
    virtual SimStatus
    run(uint64_t max_cycles)
    {
        for (uint64_t i = 0; i < max_cycles && status() == SimStatus::Ok;
             ++i)
            step();
        return status();
    }

    virtual uint64_t cycle() const = 0;
    virtual SimStatus status() const = 0;
    virtual const std::string &failureMessage() const = 0;

    virtual BitVector regValue(RegId id) const = 0;
    virtual BitVector regValue(const std::string &name) const = 0;
    virtual BitVector memValue(MemId id, uint64_t addr) const = 0;

    /** Display lines emitted so far (also passed to onDisplay). */
    virtual const std::vector<std::string> &displayLog() const = 0;

    /** Optional callback invoked for each $display line. */
    std::function<void(const std::string &)> onDisplay;

    // ---- checkpoint/restore (engine::Snapshot plumbing) -----------
    // One canonical per-lane byte format for the whole netlist
    // family, implemented ONCE here against the small virtual
    // accessors/setters below, so a snapshot saved on any netlist
    // engine restores on any other (and across lane counts — the
    // basis of engine::forkLanes).  Serialized per lane: input
    // drive, register file, memory images, and the lane's run state.
    // Combinational values are NOT state (every engine recomputes
    // them before use each step) and constants are rebroadcast at
    // compile, so neither is saved.

    /** Does this evaluator implement the snapshot setters? */
    virtual bool snapshotSupported() const { return false; }
    /** Serialize one lane's architectural state (canonical format). */
    void saveLaneState(unsigned lane, support::ByteWriter &w) const;
    /** Restore one lane from the canonical format; mismatches against
     *  this evaluator's netlist (counts, widths, unknown nodes) are a
     *  loud fatal().  Call snapshotRestored() once after the last
     *  lane. */
    void restoreLaneState(unsigned lane, support::ByteReader &r);
    /** Post-restore fixup: recompute engine-level cycle, active-lane
     *  counts, and per-cycle transients. */
    virtual void snapshotRestored() {}

  protected:
    // Snapshot accessors/setters each engine supplies (only called
    // when snapshotSupported()); defaults fatal.
    virtual const Netlist &snapshotNetlist() const;
    virtual BitVector inputValueLane(unsigned lane, NodeId input) const;
    virtual void restoreReg(unsigned lane, RegId id,
                            const BitVector &value);
    virtual void restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                                const BitVector &value);
    virtual void restoreLaneMeta(unsigned lane, uint64_t cycle,
                                 SimStatus status, std::string failure,
                                 std::vector<std::string> log);

    /** Shared setInput validation: resolve an input by name and check
     *  the driven width.  Unknown names and bad widths are
     *  user-facing fatal()s listing the valid input names. */
    static NodeId resolveInput(const Netlist &netlist,
                               const std::string &name,
                               const BitVector &value);

    /** Shared regValue(name) validation: unknown names are a
     *  user-facing fatal() listing the valid register names. */
    static RegId resolveRegister(const Netlist &netlist,
                                 const std::string &name);
};

/** Which evaluator engine makeEvaluator() should build. */
enum class EvalMode
{
    Reference, ///< graph-walking Evaluator (allocating, obviously correct)
    Compiled,  ///< tape/arena CompiledEvaluator (zero-allocation)
    Parallel,  ///< partition-parallel tapes on a worker pool (§6.1)
    Aot,       ///< tape AOT-compiled to a dlopen'd cycle function (aot.hh)
};

const char *evalModeName(EvalMode mode);

/** Parse "reference" / "compiled" / "parallel" / "aot" (the
 *  evalModeName spellings) into an EvalMode; returns false on
 *  anything else. */
bool parseEvalMode(const std::string &name, EvalMode &mode);

/** How the parallel evaluator's rendezvous waits for its peers. */
enum class WaitPolicy
{
    /// Spin with periodic yields: lowest latency, burns the core.
    Spin,
    /// Park on a condition variable: frees the core between phases —
    /// for oversubscribed hosts where idle partitions would otherwise
    /// steal cycles from the partitions still computing.
    Block,
};

/** Engine options; the compiled engines consult lanes, only
 *  EvalMode::Parallel consults the rest. */
struct EvalOptions
{
    /// Worker-pool size (and partition-count bound); 0 means
    /// std::thread::hardware_concurrency().
    unsigned numThreads = 0;
    /// Partition merge strategy (§6.1 / Fig. 9): the paper's
    /// communication-aware Balanced heuristic or the LPT baseline.
    MergeAlgo mergeAlgo = MergeAlgo::Balanced;
    /// Ensemble width: advance N decoupled simulations per step —
    /// one tape dispatch (and, for Parallel, one two-barrier
    /// rendezvous) amortised over N lanes.  Compiled engines only;
    /// EvalMode::Reference rejects lanes != 1.
    unsigned lanes = 1;
    /// Rendezvous wait policy (EvalMode::Parallel only).
    WaitPolicy waitPolicy = WaitPolicy::Spin;
    /// EvalMode::Parallel only: evaluate each partition's tape
    /// through a per-partition AOT-compiled object (the
    /// "netlist.parallel.aot" registry variant).  The rendezvous
    /// protocol is untouched; only the compute phase's executor
    /// changes (see src/netlist/aot.hh).
    bool aot = false;
    /// AOT modes: object-cache directory override.  Empty means
    /// $MANTICORE_AOT_CACHE, then a per-user directory under
    /// $TMPDIR (see src/netlist/aot.hh for the resolution order).
    std::string aotCacheDir;
    /// AOT modes: host C++ compiler override.  Empty means
    /// $MANTICORE_AOT_CXX, then the first of c++ / g++ / clang++
    /// that passes the toolchain probe.
    std::string aotCompiler;
    /// AOT modes: cold-build concurrency — chunked translation units
    /// and per-partition objects compile through up to this many
    /// concurrent compiler processes (0 = hardware concurrency).
    unsigned aotJobs = 0;
};

/** Build an evaluator over (a copy of) the netlist in the given mode. */
std::unique_ptr<EvaluatorBase> makeEvaluator(Netlist netlist,
                                             EvalMode mode,
                                             const EvalOptions &options = {});

class Evaluator : public EvaluatorBase
{
  public:
    /** The evaluator keeps its own copy of the netlist, so callers
     *  may pass temporaries. */
    explicit Evaluator(Netlist netlist);

    void setInput(const std::string &name, const BitVector &value) override;
    void driveInput(NodeId input, const BitVector &value) override;
    SimStatus step() override;

    uint64_t cycle() const override { return _cycle; }
    SimStatus status() const override { return _status; }
    const std::string &failureMessage() const override
    {
        return _failureMessage;
    }

    BitVector regValue(RegId id) const override { return _regs[id]; }
    BitVector regValue(const std::string &name) const override;
    BitVector memValue(MemId id, uint64_t addr) const override;

    /** Combinational value of a node as of the last completed step. */
    const BitVector &nodeValue(NodeId id) const { return _values[id]; }

    const std::vector<std::string> &displayLog() const override
    {
        return _displayLog;
    }

    /** Render a display format string against argument values. */
    static std::string formatDisplay(const std::string &format,
                                     const std::vector<BitVector> &args);

    bool snapshotSupported() const override { return true; }

  private:
    const Netlist &snapshotNetlist() const override { return _netlist; }
    BitVector inputValueLane(unsigned lane, NodeId input) const override;
    void restoreReg(unsigned lane, RegId id,
                    const BitVector &value) override;
    void restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                        const BitVector &value) override;
    void restoreLaneMeta(unsigned lane, uint64_t cycle, SimStatus status,
                         std::string failure,
                         std::vector<std::string> log) override;

    void evaluateNodes();

    Netlist _netlist;
    std::vector<BitVector> _regs;
    std::vector<std::vector<BitVector>> _mems;
    std::vector<BitVector> _values;
    std::vector<BitVector> _inputs; ///< per-node current input drive
    uint64_t _cycle = 0;
    SimStatus _status = SimStatus::Ok;
    std::string _failureMessage;
    std::vector<std::string> _displayLog;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_EVALUATOR_HH
