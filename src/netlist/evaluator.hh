/**
 * @file
 * Reference cycle-accurate evaluator for the word-level netlist IR.
 *
 * This is the "netlist interpreter" of §6 of the paper: a slow but
 * obviously-correct executable semantics used to validate every
 * compiler pass and both execution engines (the ISA interpreter and
 * the machine simulator) against.
 */

#ifndef MANTICORE_NETLIST_EVALUATOR_HH
#define MANTICORE_NETLIST_EVALUATOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace manticore::netlist {

enum class SimStatus
{
    Ok,           ///< still running
    Finished,     ///< a $finish fired
    AssertFailed, ///< an assertion failed
};

class Evaluator
{
  public:
    /** The evaluator keeps its own copy of the netlist, so callers
     *  may pass temporaries. */
    explicit Evaluator(Netlist netlist);

    /** Drive a free input (applies from the next step() onward). */
    void setInput(const std::string &name, const BitVector &value);

    /** Simulate one clock cycle: evaluate the DAG, emit side effects,
     *  commit registers and memory writes. */
    SimStatus step();

    /** Step up to max_cycles or until $finish / assert failure. */
    SimStatus run(uint64_t max_cycles);

    uint64_t cycle() const { return _cycle; }
    SimStatus status() const { return _status; }
    const std::string &failureMessage() const { return _failureMessage; }

    const BitVector &regValue(RegId id) const { return _regs[id]; }
    const BitVector &regValue(const std::string &name) const;
    const BitVector &memValue(MemId id, uint64_t addr) const;

    /** Combinational value of a node as of the last completed step. */
    const BitVector &nodeValue(NodeId id) const { return _values[id]; }

    /** Display lines emitted so far (also passed to onDisplay). */
    const std::vector<std::string> &displayLog() const { return _displayLog; }

    /** Optional callback invoked for each $display line. */
    std::function<void(const std::string &)> onDisplay;

    /** Render a display format string against argument values. */
    static std::string formatDisplay(const std::string &format,
                                     const std::vector<BitVector> &args);

  private:
    void evaluateNodes();

    Netlist _netlist;
    std::vector<BitVector> _regs;
    std::vector<std::vector<BitVector>> _mems;
    std::vector<BitVector> _values;
    std::vector<BitVector> _inputs; ///< per-node current input drive
    uint64_t _cycle = 0;
    SimStatus _status = SimStatus::Ok;
    std::string _failureMessage;
    std::vector<std::string> _displayLog;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_EVALUATOR_HH
