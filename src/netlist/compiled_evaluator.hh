/**
 * @file
 * Zero-allocation compiled tape evaluator for the word-level netlist,
 * generalised to an N-lane ensemble.
 *
 * The constructor lowers the netlist once into
 *
 *  - a single contiguous uint64_t ensemble arena (see arena.hh)
 *    holding every node's value as a fixed lane-strided limb block
 *    (Const slots written once and broadcast, Input slots written by
 *    setInput, RegRead slots doubling as the register storage), and
 *  - a flat array of POD instructions (the "tape", see tape.hh), one
 *    per combinational node, dispatched by a switch in a tight loop
 *    that advances every lane per decoded op.
 *
 * Side effects (asserts / displays / $finish / register commit /
 * memory writes) are precompiled into effect lists with node slots
 * already resolved, so the hot loop never touches a Node, a
 * std::string, or the heap.  With EvalOptions::lanes == N the engine
 * advances N decoupled simulations per step — shared stimulus via
 * the broadcasting setInput, per-lane stimulus via driveInputLane —
 * and every lane carries its own status / cycle count / failure
 * message / display transcript, so one lane finishing or failing an
 * assertion freezes only that lane.  The default single-lane build
 * is bit- and codegen-identical to the pre-ensemble evaluator.
 *
 * See src/netlist/README.md for the layout and the measured speedup
 * over the reference Evaluator.  The partition-parallel variant of
 * this engine lives in parallel_evaluator.hh.
 */

#ifndef MANTICORE_NETLIST_COMPILED_EVALUATOR_HH
#define MANTICORE_NETLIST_COMPILED_EVALUATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/padding.hh"
#include "netlist/arena.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "netlist/tape.hh"

namespace manticore::netlist {

class CompiledEvaluator : public EvaluatorBase
{
  public:
    /** Keeps its own copy of the netlist (cold data only: the copy is
     *  consulted by name-based accessors, never by the hot loop).
     *  options.lanes selects the ensemble width. */
    explicit CompiledEvaluator(Netlist netlist,
                               const EvalOptions &options = {});

    void setInput(const std::string &name, const BitVector &value) override;
    void driveInput(NodeId input, const BitVector &value) override;
    SimStatus step() override;
    /** Batched stepping: one virtual call per batch, devirtualised
     *  step loop inside; an ensemble advances until every lane is
     *  terminal or the batch ends. */
    SimStatus run(uint64_t max_cycles) override;

    /** Completed cycles of the most-advanced lane (== lane 0's count
     *  on a single-lane engine). */
    uint64_t cycle() const override { return _cycle; }
    SimStatus status() const override { return _lane[0].status; }
    const std::string &failureMessage() const override
    {
        return _lane[0].failureMessage;
    }

    BitVector regValue(RegId id) const override;
    BitVector regValue(const std::string &name) const override;
    BitVector memValue(MemId id, uint64_t addr) const override;

    // Ensemble views (lane 0 == the scalar API).
    unsigned lanes() const override { return _lanes; }
    void driveInputLane(unsigned lane, NodeId input,
                        const BitVector &value) override;
    SimStatus laneStatus(unsigned lane) const override;
    uint64_t laneCycle(unsigned lane) const override;
    const std::string &laneFailureMessage(unsigned lane) const override;
    const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const override;
    BitVector regValueLane(unsigned lane, RegId id) const override;
    BitVector memValueLane(unsigned lane, MemId id,
                           uint64_t addr) const override;

    /** Debug accessor: the node's current arena slot contents for one
     *  lane.  For combinational nodes this is the value of the last
     *  completed step, like Evaluator::nodeValue; but because RegRead
     *  slots double as register storage (and Input slots are written
     *  by setInput directly), those two kinds reflect the
     *  *post-commit* / latest-driven value rather than the pre-commit
     *  snapshot the reference evaluator keeps.  Use regValue() for
     *  committed register state — it is identical across both
     *  engines. */
    BitVector nodeValue(NodeId id, unsigned lane = 0) const;

    const std::vector<std::string> &displayLog() const override
    {
        return _lane[0].displayLog;
    }

    /** Introspection for tests and benches. */
    size_t tapeLength() const { return _tape.size(); }
    size_t arenaLimbs() const { return _arena.limbs(); }

    bool snapshotSupported() const override { return true; }
    /** Recount active lanes, reset per-cycle transients, and
     *  recompute the engine-level (max-lane) cycle. */
    void snapshotRestored() override;

  protected:
    const Netlist &snapshotNetlist() const override { return _netlist; }
    BitVector inputValueLane(unsigned lane, NodeId input) const override;
    void restoreReg(unsigned lane, RegId id,
                    const BitVector &value) override;
    void restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                        const BitVector &value) override;
    void restoreLaneMeta(unsigned lane, uint64_t cycle, SimStatus status,
                         std::string failure,
                         std::vector<std::string> log) override;

    /** Evaluate the combinational tape for one cycle (every _padded
     *  lane) — the ONLY hot-loop hook a subclass may replace.  The
     *  default runs the interpreted tape (tape::run, which folds to
     *  the scalar executor at one lane); AotEvaluator (aot.hh) swaps
     *  in a dlopen'd straight-line cycle function emitted at the
     *  padded lane width.  Effects, commits and lane bookkeeping
     *  stay in this class so an executor swap cannot drift
     *  semantically. */
    virtual void evalCycle();

    struct RegCommit
    {
        uint32_t dst;     ///< current (RegRead) slot
        uint32_t src;     ///< next-value slot
        uint32_t limbs;   ///< per lane (also the lane stride)
        uint32_t staging; ///< offset into _staging, or kNoStaging
    };
    static constexpr uint32_t kNoStaging = ~0u;

    struct MemCommit
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< slots
        uint32_t addrStride;         ///< addr operand's lane stride
    };

    void compile();
    void stepScalar(); ///< single-lane fast path (pre-ensemble shape)
    void stepOnce();   ///< general N-lane step
    void commitLane(unsigned lane);
    void commitAll(); ///< whole-block commits when every lane commits
    void recountActive();

    Netlist _netlist; ///< cold copy for name/width lookups only

    // _lanes is the requested (API-visible) ensemble width; _padded
    // is the instantiated kernel width it is padded up to (see
    // exec/padding.hh).  The arena, memory images and tape execution
    // use _padded so the vectorised lane loops never run a scalar
    // tail; effects, commits, stats and snapshots use _lanes, so the
    // padded lanes are born frozen at their init state and are
    // invisible to every observer.
    unsigned _lanes;
    unsigned _padded;
    Arena _arena;
    std::vector<uint32_t> _slotOf; ///< node id -> lane-0 limb offset
    std::vector<tape::Instr> _tape;
    std::vector<tape::MemState> _mems;
    std::vector<RegCommit> _regCommits;
    std::vector<uint64_t> _staging; ///< double-buffer for reg commits
    std::vector<MemCommit> _memCommits;
    tape::Effects _effects;

    // Per-lane run state; _cycle is the engine-level (max-lane) view.
    uint64_t _cycle = 0;
    unsigned _active; ///< lanes not yet finished/failed
    std::vector<LaneState> _lane;
    std::vector<uint8_t> _laneCommit; ///< this cycle's commit flags
    std::vector<uint8_t> _laneFinish; ///< this cycle's $finish flags
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_COMPILED_EVALUATOR_HH
