/**
 * @file
 * Zero-allocation compiled tape evaluator for the word-level netlist.
 *
 * The constructor lowers the netlist once into
 *
 *  - a single contiguous uint64_t arena holding every node's value as
 *    a fixed limb span (Const slots written once, Input slots written
 *    by setInput, RegRead slots doubling as the register storage), and
 *  - a flat array of POD instructions (the "tape", see tape.hh), one
 *    per combinational node, dispatched by a switch in a tight loop.
 *
 * Side effects (asserts / displays / $finish / register commit /
 * memory writes) are precompiled into effect lists with node slots
 * already resolved, so the hot loop never touches a Node, a
 * std::string, or the heap.
 *
 * See src/netlist/README.md for the layout and the measured speedup
 * over the reference Evaluator.  The partition-parallel variant of
 * this engine lives in parallel_evaluator.hh.
 */

#ifndef MANTICORE_NETLIST_COMPILED_EVALUATOR_HH
#define MANTICORE_NETLIST_COMPILED_EVALUATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "netlist/tape.hh"

namespace manticore::netlist {

class CompiledEvaluator : public EvaluatorBase
{
  public:
    /** Keeps its own copy of the netlist (cold data only: the copy is
     *  consulted by name-based accessors, never by the hot loop). */
    explicit CompiledEvaluator(Netlist netlist);

    void setInput(const std::string &name, const BitVector &value) override;
    void driveInput(NodeId input, const BitVector &value) override;
    SimStatus step() override;
    /** Batched stepping: one virtual call per batch, devirtualised
     *  step loop inside. */
    SimStatus run(uint64_t max_cycles) override;

    uint64_t cycle() const override { return _cycle; }
    SimStatus status() const override { return _status; }
    const std::string &failureMessage() const override
    {
        return _failureMessage;
    }

    BitVector regValue(RegId id) const override;
    BitVector regValue(const std::string &name) const override;
    BitVector memValue(MemId id, uint64_t addr) const override;

    /** Debug accessor: the node's current arena slot contents.  For
     *  combinational nodes this is the value of the last completed
     *  step, like Evaluator::nodeValue; but because RegRead slots
     *  double as register storage (and Input slots are written by
     *  setInput directly), those two kinds reflect the *post-commit* /
     *  latest-driven value rather than the pre-commit snapshot the
     *  reference evaluator keeps.  Use regValue() for committed
     *  register state — it is identical across both engines. */
    BitVector nodeValue(NodeId id) const;

    const std::vector<std::string> &displayLog() const override
    {
        return _displayLog;
    }

    /** Introspection for tests and benches. */
    size_t tapeLength() const { return _tape.size(); }
    size_t arenaLimbs() const { return _arena.size(); }

  private:
    struct RegCommit
    {
        uint32_t dst;     ///< current (RegRead) slot
        uint32_t src;     ///< next-value slot
        uint32_t limbs;
        uint32_t staging; ///< offset into _staging, or kNoStaging
    };
    static constexpr uint32_t kNoStaging = ~0u;

    struct MemCommit
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< slots
    };

    void compile();
    BitVector slotValue(uint32_t slot, unsigned width) const;

    Netlist _netlist; ///< cold copy for name/width lookups only

    std::vector<uint64_t> _arena;
    std::vector<uint32_t> _slotOf; ///< node id -> arena limb offset
    std::vector<tape::Instr> _tape;
    std::vector<tape::MemState> _mems;
    std::vector<RegCommit> _regCommits;
    std::vector<uint64_t> _staging; ///< double-buffer for reg commits
    std::vector<MemCommit> _memCommits;
    tape::Effects _effects;

    uint64_t _cycle = 0;
    SimStatus _status = SimStatus::Ok;
    std::string _failureMessage;
    std::vector<std::string> _displayLog;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_COMPILED_EVALUATOR_HH
