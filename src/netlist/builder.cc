#include "netlist/builder.hh"

#include "support/logging.hh"

namespace manticore::netlist {

Signal
CircuitBuilder::makeNode(OpKind kind, unsigned width,
                         std::vector<NodeId> operands, unsigned lo)
{
    Node n;
    n.kind = kind;
    n.width = width;
    n.operands = std::move(operands);
    n.lo = lo;
    NodeId id = _netlist.addNode(std::move(n));
    return Signal(this, id, width);
}

Signal
CircuitBuilder::lit(unsigned width, uint64_t value)
{
    return lit(BitVector(width, value));
}

Signal
CircuitBuilder::lit(const BitVector &value)
{
    Node n;
    n.kind = OpKind::Const;
    n.width = value.width();
    n.value = value;
    NodeId id = _netlist.addNode(std::move(n));
    return Signal(this, id, value.width());
}

Signal
CircuitBuilder::input(const std::string &name, unsigned width)
{
    Node n;
    n.kind = OpKind::Input;
    n.width = width;
    n.name = name;
    NodeId id = _netlist.addNode(std::move(n));
    return Signal(this, id, width);
}

RegHandle
CircuitBuilder::reg(const std::string &name, unsigned width, uint64_t init)
{
    return reg(name, BitVector(width, init));
}

RegHandle
CircuitBuilder::reg(const std::string &name, const BitVector &init)
{
    Register r;
    r.name = name;
    r.width = init.width();
    r.init = init;
    RegId id = _netlist.addRegister(std::move(r));
    return RegHandle(this, id);
}

void
CircuitBuilder::next(RegHandle r, Signal v)
{
    MANTICORE_ASSERT(r._builder == this && v._builder == this,
                     "cross-builder wiring");
    _netlist.connectNext(r._id, v._id);
}

MemHandle
CircuitBuilder::memory(const std::string &name, unsigned width,
                       unsigned depth, std::vector<BitVector> init)
{
    Memory m;
    m.name = name;
    m.width = width;
    m.depth = depth;
    m.init = std::move(init);
    MemId id = _netlist.addMemory(std::move(m));
    return MemHandle(this, id);
}

Signal
CircuitBuilder::mux(Signal sel, Signal then_v, Signal else_v)
{
    MANTICORE_ASSERT(sel._width == 1, "mux selector must be 1-bit");
    MANTICORE_ASSERT(then_v._width == else_v._width, "mux arm widths");
    return makeNode(OpKind::Mux, then_v._width,
                    {sel._id, then_v._id, else_v._id});
}

Signal
CircuitBuilder::cat(Signal hi, Signal lo)
{
    return makeNode(OpKind::Concat, hi._width + lo._width,
                    {hi._id, lo._id});
}

Signal
CircuitBuilder::cat(const std::vector<Signal> &parts)
{
    MANTICORE_ASSERT(!parts.empty(), "cat of nothing");
    Signal acc = parts.front();
    for (size_t i = 1; i < parts.size(); ++i)
        acc = cat(acc, parts[i]);
    return acc;
}

void
CircuitBuilder::assertAlways(Signal enable, Signal cond, std::string message)
{
    Assert a;
    a.enable = enable._id;
    a.cond = cond._id;
    a.message = std::move(message);
    _netlist.addAssert(std::move(a));
}

void
CircuitBuilder::display(Signal enable, std::string format,
                        std::vector<Signal> args)
{
    Display d;
    d.enable = enable._id;
    d.format = std::move(format);
    for (Signal s : args)
        d.args.push_back(s._id);
    _netlist.addDisplay(std::move(d));
}

void
CircuitBuilder::finish(Signal enable)
{
    Finish f;
    f.enable = enable._id;
    _netlist.addFinish(f);
}

Netlist
CircuitBuilder::build()
{
    _netlist.validate();
    return std::move(_netlist);
}

namespace {

Signal
binaryOp(CircuitBuilder *b, OpKind kind, Signal a, Signal o)
{
    MANTICORE_ASSERT(a.width() == o.width(), "width mismatch in ",
                     opKindName(kind), ": ", a.width(), " vs ", o.width());
    return b->makeNode(kind, a.width(), {a.id(), o.id()});
}

Signal
compareOp(CircuitBuilder *b, OpKind kind, Signal a, Signal o)
{
    MANTICORE_ASSERT(a.width() == o.width(), "compare width mismatch");
    return b->makeNode(kind, 1, {a.id(), o.id()});
}

} // namespace

Signal Signal::operator+(Signal o) const
{ return binaryOp(_builder, OpKind::Add, *this, o); }

Signal Signal::operator-(Signal o) const
{ return binaryOp(_builder, OpKind::Sub, *this, o); }

Signal Signal::operator*(Signal o) const
{ return binaryOp(_builder, OpKind::Mul, *this, o); }

Signal Signal::operator&(Signal o) const
{ return binaryOp(_builder, OpKind::And, *this, o); }

Signal Signal::operator|(Signal o) const
{ return binaryOp(_builder, OpKind::Or, *this, o); }

Signal Signal::operator^(Signal o) const
{ return binaryOp(_builder, OpKind::Xor, *this, o); }

Signal
Signal::operator~() const
{
    return _builder->makeNode(OpKind::Not, _width, {_id});
}

Signal
Signal::operator!() const
{
    MANTICORE_ASSERT(_width == 1, "logical not needs a 1-bit signal");
    return ~(*this);
}

Signal Signal::operator==(Signal o) const
{ return compareOp(_builder, OpKind::Eq, *this, o); }

Signal
Signal::operator!=(Signal o) const
{
    return !(*this == o);
}

Signal Signal::operator<(Signal o) const
{ return compareOp(_builder, OpKind::Ult, *this, o); }

Signal
Signal::operator>=(Signal o) const
{
    return !(*this < o);
}

Signal
Signal::shl(Signal amount) const
{
    return _builder->makeNode(OpKind::Shl, _width, {_id, amount._id});
}

Signal
Signal::lshr(Signal amount) const
{
    return _builder->makeNode(OpKind::Lshr, _width, {_id, amount._id});
}

Signal
Signal::shl(unsigned amount) const
{
    return shl(_builder->lit(32, amount));
}

Signal
Signal::lshr(unsigned amount) const
{
    return lshr(_builder->lit(32, amount));
}

Signal
Signal::slice(unsigned lo, unsigned len) const
{
    MANTICORE_ASSERT(lo + len <= _width, "slice out of range");
    return _builder->makeNode(OpKind::Slice, len, {_id}, lo);
}

Signal
Signal::zext(unsigned new_width) const
{
    if (new_width == _width)
        return *this;
    MANTICORE_ASSERT(new_width > _width, "zext must widen");
    return _builder->makeNode(OpKind::ZExt, new_width, {_id});
}

Signal
Signal::sext(unsigned new_width) const
{
    if (new_width == _width)
        return *this;
    MANTICORE_ASSERT(new_width > _width, "sext must widen");
    return _builder->makeNode(OpKind::SExt, new_width, {_id});
}

Signal
Signal::reduceOr() const
{
    return _builder->makeNode(OpKind::RedOr, 1, {_id});
}

Signal
Signal::reduceAnd() const
{
    return _builder->makeNode(OpKind::RedAnd, 1, {_id});
}

Signal
Signal::reduceXor() const
{
    return _builder->makeNode(OpKind::RedXor, 1, {_id});
}

Signal
RegHandle::read() const
{
    const Register &r = _builder->_netlist.reg(_id);
    return Signal(_builder, r.current, r.width);
}

Signal
MemHandle::read(Signal addr) const
{
    const Memory &m = _builder->_netlist.memory(_id);
    Node n;
    n.kind = OpKind::MemRead;
    n.width = m.width;
    n.memId = _id;
    n.operands = {addr.id()};
    NodeId id = _builder->_netlist.addNode(std::move(n));
    return Signal(_builder, id, m.width);
}

void
MemHandle::write(Signal addr, Signal data, Signal enable) const
{
    MemWrite w;
    w.mem = _id;
    w.addr = addr.id();
    w.data = data.id();
    w.enable = enable.id();
    _builder->_netlist.addMemWrite(w);
}

} // namespace manticore::netlist
