/**
 * @file
 * CircuitBuilder: an embedded C++ DSL for describing single-clock RTL
 * designs, producing a Netlist.  This is the repository's substitute
 * for the paper's Yosys Verilog frontend (DESIGN.md §1): benchmarks are
 * written as C++ generator functions over this API instead of Verilog
 * sources.
 *
 * Example (the paper's Listing 2 EvenOdd module):
 * @code
 *   CircuitBuilder b("even_odd");
 *   auto counter = b.reg("counter", 16);
 *   b.next(counter, counter.read() + b.lit(16, 1));
 *   Signal is_even = ~counter.read().bit(0);
 *   b.display(is_even, "%d is an even number", {counter.read()});
 *   b.display(!is_even, "%d is an odd number", {counter.read()});
 *   b.finish(counter.read() == b.lit(16, 20));
 *   Netlist nl = b.finish();
 * @endcode
 */

#ifndef MANTICORE_NETLIST_BUILDER_HH
#define MANTICORE_NETLIST_BUILDER_HH

#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace manticore::netlist {

class CircuitBuilder;

/** A typed wire in the circuit under construction.  Signals are cheap
 *  value types (builder pointer + node id) with operator overloads for
 *  the common combinational operations. */
class Signal
{
  public:
    Signal() = default;
    Signal(CircuitBuilder *builder, NodeId id, unsigned width)
        : _builder(builder), _id(id), _width(width)
    {}

    NodeId id() const { return _id; }
    unsigned width() const { return _width; }
    bool valid() const { return _builder != nullptr; }

    Signal operator+(Signal o) const;
    Signal operator-(Signal o) const;
    Signal operator*(Signal o) const;
    Signal operator&(Signal o) const;
    Signal operator|(Signal o) const;
    Signal operator^(Signal o) const;
    Signal operator~() const;
    /** Logical not of a 1-bit signal. */
    Signal operator!() const;
    Signal operator==(Signal o) const;
    Signal operator!=(Signal o) const;
    /** Unsigned less-than. */
    Signal operator<(Signal o) const;
    Signal operator>=(Signal o) const;

    /** Dynamic shifts (amount is a signal). */
    Signal shl(Signal amount) const;
    Signal lshr(Signal amount) const;
    /** Constant shifts. */
    Signal shl(unsigned amount) const;
    Signal lshr(unsigned amount) const;

    /** Bits [lo, lo+len). */
    Signal slice(unsigned lo, unsigned len) const;
    /** Single bit as a 1-bit signal. */
    Signal bit(unsigned i) const { return slice(i, 1); }
    Signal zext(unsigned new_width) const;
    Signal sext(unsigned new_width) const;
    /** Truncate to the low new_width bits. */
    Signal trunc(unsigned new_width) const { return slice(0, new_width); }
    Signal reduceOr() const;
    Signal reduceAnd() const;
    Signal reduceXor() const;

  private:
    friend class CircuitBuilder;
    CircuitBuilder *_builder = nullptr;
    NodeId _id = kInvalidNode;
    unsigned _width = 0;
};

/** Handle to a register: read its current value, assign its next. */
class RegHandle
{
  public:
    RegHandle() = default;
    RegHandle(CircuitBuilder *builder, RegId id) : _builder(builder), _id(id) {}
    Signal read() const;
    RegId id() const { return _id; }

  private:
    friend class CircuitBuilder;
    CircuitBuilder *_builder = nullptr;
    RegId _id = kInvalidReg;
};

/** Handle to an on-chip memory (async read, sync predicated write). */
class MemHandle
{
  public:
    MemHandle() = default;
    MemHandle(CircuitBuilder *builder, MemId id) : _builder(builder), _id(id) {}
    Signal read(Signal addr) const;
    void write(Signal addr, Signal data, Signal enable) const;
    MemId id() const { return _id; }

  private:
    friend class CircuitBuilder;
    CircuitBuilder *_builder = nullptr;
    MemId _id = kInvalidReg;
};

class CircuitBuilder
{
  public:
    explicit CircuitBuilder(std::string name) : _netlist(std::move(name)) {}

    /** Literal constant. */
    Signal lit(unsigned width, uint64_t value);
    Signal lit(const BitVector &value);
    /** Free design input (testbench-driven; defaults to 0). */
    Signal input(const std::string &name, unsigned width);

    RegHandle reg(const std::string &name, unsigned width,
                  uint64_t init = 0);
    RegHandle reg(const std::string &name, const BitVector &init);
    void next(RegHandle r, Signal v);

    MemHandle memory(const std::string &name, unsigned width,
                     unsigned depth,
                     std::vector<BitVector> init = {});

    Signal mux(Signal sel, Signal then_v, Signal else_v);
    Signal cat(Signal hi, Signal lo);
    /** Concatenate many signals; front of the list is the MSB side. */
    Signal cat(const std::vector<Signal> &parts);

    void assertAlways(Signal enable, Signal cond, std::string message);
    void display(Signal enable, std::string format,
                 std::vector<Signal> args);
    void finish(Signal enable);

    /** Validate and return the finished netlist. */
    Netlist build();

    Netlist &netlist() { return _netlist; }

    Signal makeNode(OpKind kind, unsigned width,
                    std::vector<NodeId> operands, unsigned lo = 0);

  private:
    friend class Signal;
    friend class RegHandle;
    friend class MemHandle;
    Netlist _netlist;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_BUILDER_HH
