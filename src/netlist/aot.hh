/**
 * @file
 * Dispatch-free AOT-compiled netlist simulation with a hashed object
 * cache — the "netlist.aot" engine.
 *
 * The CompiledEvaluator already lowers the netlist to a flat op tape
 * whose every instruction maps 1:1 onto a support/limbops.hh kernel,
 * but the executor still pays one indirect dispatch (a switch on the
 * opcode) per op per cycle.  AotEvaluator removes that last
 * interpretive cost Verilator-style: it walks the lowered tape once
 * and emits straight-line C++ — one statement per instruction, with
 * arena offsets, widths, limb counts, masks and memory geometry all
 * baked in as constants — invokes the host C++ toolchain to build a
 * shared object, dlopen()s it, and installs the resulting
 *
 *     extern "C" void manticore_aot_cycle(uint64_t *A,
 *                                         const uint64_t *const *M);
 *
 * as the per-cycle executor behind CompiledEvaluator::evalCycle().
 * Everything else — effects, register/memory commits, probes, stats,
 * batched run(n) — is inherited unchanged, so the AOT engine cannot
 * drift semantically from the interpreted tape.
 *
 * **Object cache.**  Compiled objects are cached on disk, keyed by a
 * content hash (FNV-1a 64) of (generated source, limbops.hh content,
 * compiler path, compile flags): a regression farm pays codegen once
 * per design, not per run.  Every object embeds its own key as
 * `extern "C" const char manticore_aot_key[]`, verified after
 * dlopen — a truncated, corrupted or stale cache entry fails the
 * check, is unlinked, and is rebuilt.  Cache directory resolution:
 * EvalOptions::aotCacheDir, else $MANTICORE_AOT_CACHE, else
 * ${TMPDIR:-/tmp}/manticore-aot-cache-<uid>.
 *
 * **Degradation.**  Direct construction degrades gracefully: if the
 * toolchain probe, the compile or the dlopen fails, the evaluator
 * warns once and falls back to the interpreted tape
 * (tape::runScalar) with identical results.  The factory/registry
 * path (makeEvaluator(EvalMode::Aot) / engine::create("netlist.aot"))
 * is strict instead: a caller who asked for AOT by name gets a fatal
 * naming the probed toolchain.
 *
 * Env knobs: $MANTICORE_AOT_CXX (compiler override),
 * $MANTICORE_AOT_CACHE (cache dir), $MANTICORE_AOT_INCLUDE (where
 * the emitted code finds support/limbops.hh; defaults to this source
 * tree, baked in at build time).
 */

#ifndef MANTICORE_NETLIST_AOT_HH
#define MANTICORE_NETLIST_AOT_HH

#include <string>
#include <vector>

#include "netlist/compiled_evaluator.hh"

namespace manticore::netlist {

/** Result of probing one host C++ toolchain: can it compile the
 *  emitted code (including support/limbops.hh) into a loadable
 *  shared object? */
struct AotToolchain
{
    bool ok = false;
    /// The working compiler command (when ok).
    std::string compiler;
    /// When !ok: every candidate probed and why it failed — the
    /// actionable part of the registry's failure message.
    std::string message;
};

/** Probe the host toolchain (memoized per override string, so the
 *  compile-and-dlopen probe runs once per process).  Candidates, in
 *  order: `override_compiler` if non-empty, else $MANTICORE_AOT_CXX,
 *  else c++ / g++ / clang++. */
const AotToolchain &aotToolchain(const std::string &override_compiler = "");

/** Resolved object-cache directory for the given options (see file
 *  header for the resolution order).  Exposed for benches/tests. */
std::string aotResolveCacheDir(const EvalOptions &options);

class AotEvaluator : public CompiledEvaluator
{
  public:
    /** Lowers the netlist (CompiledEvaluator), then emits, compiles
     *  (or loads from cache) and installs the AOT cycle function.
     *  Single-lane only; any failure along the toolchain path warns
     *  and leaves the interpreted tape in place. */
    explicit AotEvaluator(Netlist netlist,
                          const EvalOptions &options = {});
    ~AotEvaluator() override;

    AotEvaluator(const AotEvaluator &) = delete;
    AotEvaluator &operator=(const AotEvaluator &) = delete;

    /** True when the dlopen'd cycle function is installed (false on
     *  the interpreted-tape fallback path). */
    bool usingAot() const { return _cycleFn != nullptr; }
    /** Compiler invocations this construction performed: 0 on a
     *  cache hit or fallback, 1 on a cold build (2 if a corrupted
     *  entry forced a rebuild after an attempted load). */
    unsigned compilerInvocations() const { return _compilerRuns; }
    /** True when the object was loaded from the on-disk cache
     *  without invoking the compiler. */
    bool cacheHit() const { return _cacheHit; }
    /** Cache key (16 hex digits) of this design's object. */
    const std::string &cacheKey() const { return _key; }
    /** Path of the cached shared object ("" on fallback). */
    const std::string &objectPath() const { return _objectPath; }

    /** The generated C++ (without the trailing key definition):
     *  exposed for tests and the README's emitted-code example. */
    std::string emitSource() const;

  protected:
    void evalCycle() override;

  private:
    using CycleFn = void (*)(uint64_t *, const uint64_t *const *);

    void build(const EvalOptions &options);
    /** dlopen `path`, verify the embedded key, resolve the entry
     *  point.  Returns false (and closes the handle) on any
     *  mismatch. */
    bool load(const std::string &path);

    CycleFn _cycleFn = nullptr;
    void *_handle = nullptr;
    /// Per-memory word-array base pointers (stable after
    /// construction), passed to the cycle function as M.
    std::vector<const uint64_t *> _memTable;
    std::string _key;
    std::string _objectPath;
    unsigned _compilerRuns = 0;
    bool _cacheHit = false;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_AOT_HH
