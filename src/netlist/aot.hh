/**
 * @file
 * Dispatch-free AOT-compiled netlist simulation with a hashed object
 * cache — the "netlist.aot" and "netlist.parallel.aot" engines.
 *
 * The CompiledEvaluator already lowers the netlist to a flat op tape
 * whose every instruction maps 1:1 onto a support/limbops.hh kernel,
 * but the executor still pays one indirect dispatch (a switch on the
 * opcode) per op per cycle.  AotEvaluator removes that last
 * interpretive cost Verilator-style: it walks the lowered tape once
 * and emits straight-line C++ — one statement per instruction, with
 * arena offsets, widths, limb counts, masks and memory geometry all
 * baked in as constants — invokes the host C++ toolchain to build a
 * shared object, dlopen()s it, and installs the resulting
 *
 *     extern "C" void manticore_aot_cycle(uint64_t *A,
 *                                         const uint64_t *const *M);
 *
 * as the per-cycle executor behind CompiledEvaluator::evalCycle().
 * Everything else — effects, register/memory commits, probes, stats,
 * batched run(n) — is inherited unchanged, so the AOT engine cannot
 * drift semantically from the interpreted tape.
 *
 * **Laned ensembles.**  With EvalOptions::lanes == N the emitted
 * source takes the (padded) lane count as a compile-time constant:
 * narrow ops become calls to the width-templated laned kernels
 * (lo::addN<L> and friends) and wide ops become constant-trip-count
 * per-lane loops with the exec::Arena lane strides baked in — the
 * same shapes as tape.cc's runImpl<L>, so the laned object is
 * semantically pinned to the interpreted ensemble.  Laned objects
 * compile -O3 plus the probed SIMD flags (-march=native where
 * supported), like the manticore_simd kernels, so AOT ensembles
 * vectorize instead of falling back to a scalar loop.
 *
 * **Per-partition objects.**  AotParallelEvaluator extends the
 * partition-parallel engine the same way: each partition's tape is
 * emitted as its own translation unit exposing
 *
 *     extern "C" void manticore_aot_cycle_p<K>(uint64_t *A,
 *                                              const uint64_t *const *M);
 *
 * compiled into its own cached object (cold builds for K partitions
 * run the toolchain concurrently), and dispatched behind
 * ParallelCompiledEvaluator::computeTape() — workers run
 * straight-line compiled code inside the existing two-barrier
 * Vcycle, with the commit/rendezvous protocol untouched.
 *
 * **Object cache.**  Compiled objects are cached on disk, keyed by a
 * content hash (FNV-1a 64) of (generated source, limbops.hh content,
 * compiler path, compile flags, host CPU model): a regression farm
 * pays codegen once per design, not per run, and a cache directory
 * shared across heterogeneous hosts cannot dlopen an object built
 * for another microarchitecture (the laned objects are -march=native
 * builds).  Per-partition keys hash the partition's own emitted
 * source, so one partition's corruption rebuilds one object.  Every
 * object embeds its own key as
 * `extern "C" const char manticore_aot_key[]`, verified after
 * dlopen — a truncated, corrupted or stale cache entry fails the
 * check, is unlinked, and is rebuilt.  Cache directory resolution:
 * EvalOptions::aotCacheDir, else $MANTICORE_AOT_CACHE, else
 * ${TMPDIR:-/tmp}/manticore-aot-cache-<uid>.
 *
 * **Cold-start concurrency.**  Large tapes are emitted as ≤1024-
 * statement chunk functions; each chunk is its own translation unit
 * and the chunk TUs (like the K per-partition objects) compile
 * through concurrent support/subprocess invocations, bounded by
 * EvalOptions::aotJobs (0 = hardware concurrency).
 *
 * **Degradation.**  Direct construction degrades gracefully: if the
 * toolchain probe, the compile or the dlopen fails, the evaluator
 * warns once and falls back to the interpreted tape with identical
 * results (the parallel variant falls back per partition).  The
 * factory/registry path (makeEvaluator / engine::create) is strict
 * instead: a caller who asked for AOT by name gets a fatal naming
 * the probed toolchain.
 *
 * Env knobs: $MANTICORE_AOT_CXX (compiler override),
 * $MANTICORE_AOT_CACHE (cache dir), $MANTICORE_AOT_INCLUDE (where
 * the emitted code finds support/limbops.hh; defaults to this source
 * tree, baked in at build time).
 */

#ifndef MANTICORE_NETLIST_AOT_HH
#define MANTICORE_NETLIST_AOT_HH

#include <string>
#include <vector>

#include "netlist/compiled_evaluator.hh"
#include "netlist/parallel_evaluator.hh"

namespace manticore::netlist {

/** Result of probing one host C++ toolchain: can it compile the
 *  emitted code (including support/limbops.hh) into a loadable
 *  shared object? */
struct AotToolchain
{
    bool ok = false;
    /// The working compiler command (when ok).
    std::string compiler;
    /// When !ok: every candidate probed and why it failed — the
    /// actionable part of the registry's failure message.
    std::string message;
    /// Probed SIMD flags (subset of -march=native,
    /// -mprefer-vector-width=256 this compiler accepts) that laned
    /// (lanes > 1) objects are compiled with on top of -O3.
    std::vector<std::string> simdFlags;
};

/** Probe the host toolchain (memoized per override string, so the
 *  compile-and-dlopen probe runs once per process).  Candidates, in
 *  order: `override_compiler` if non-empty, else $MANTICORE_AOT_CXX,
 *  else c++ / g++ / clang++. */
const AotToolchain &aotToolchain(const std::string &override_compiler = "");

/** Resolved object-cache directory for the given options (see file
 *  header for the resolution order).  Exposed for benches/tests. */
std::string aotResolveCacheDir(const EvalOptions &options);

/** Host CPU model string folded into every object-cache key (from
 *  /proc/cpuinfo, else the machine architecture), memoized.
 *  Exposed for tests and cache diagnostics. */
const std::string &aotHostCpuModel();

class AotEvaluator : public CompiledEvaluator
{
  public:
    /** Lowers the netlist (CompiledEvaluator), then emits, compiles
     *  (or loads from cache) and installs the AOT cycle function at
     *  the padded ensemble width (scalar when lanes == 1).  Any
     *  failure along the toolchain path warns and leaves the
     *  interpreted tape in place. */
    explicit AotEvaluator(Netlist netlist,
                          const EvalOptions &options = {});
    ~AotEvaluator() override;

    AotEvaluator(const AotEvaluator &) = delete;
    AotEvaluator &operator=(const AotEvaluator &) = delete;

    /** True when the dlopen'd cycle function is installed (false on
     *  the interpreted-tape fallback path). */
    bool usingAot() const { return _cycleFn != nullptr; }
    /** Compiler invocations this construction performed: 0 on a
     *  cache hit or fallback; a cold build runs one invocation per
     *  ≤1024-statement chunk TU plus the link (a single combined
     *  invocation for one-chunk tapes). */
    unsigned compilerInvocations() const { return _compilerRuns; }
    /** True when the object was loaded from the on-disk cache
     *  without invoking the compiler. */
    bool cacheHit() const { return _cacheHit; }
    /** Cache key (16 hex digits) of this design's object. */
    const std::string &cacheKey() const { return _key; }
    /** Path of the cached shared object ("" on fallback). */
    const std::string &objectPath() const { return _objectPath; }

    /** The generated C++ (without the trailing key definition), at
     *  this evaluator's padded lane width: exposed for tests and the
     *  README's emitted-code example. */
    std::string emitSource() const;

  protected:
    void evalCycle() override;

  private:
    using CycleFn = void (*)(uint64_t *, const uint64_t *const *);

    void build(const EvalOptions &options);
    /** dlopen `path`, verify the embedded key, resolve the entry
     *  point.  Returns false (and closes the handle) on any
     *  mismatch. */
    bool load(const std::string &path);

    CycleFn _cycleFn = nullptr;
    void *_handle = nullptr;
    /// Per-memory word-array base pointers (stable after
    /// construction), passed to the cycle function as M.
    std::vector<const uint64_t *> _memTable;
    std::string _key;
    std::string _objectPath;
    unsigned _compilerRuns = 0;
    bool _cacheHit = false;
};

/** Partition-parallel evaluation with per-partition AOT objects —
 *  the "netlist.parallel.aot" engine.  Construction lowers and
 *  partitions exactly like the base class (the worker pool is
 *  already parked when the derived constructor runs), then emits one
 *  translation unit per partition tape, compiles the cold ones
 *  concurrently, and installs each object's manticore_aot_cycle_p<K>
 *  behind the computeTape() hook.  Partitions whose object cannot be
 *  built or loaded fall back to the interpreted tape individually;
 *  the rendezvous protocol, commits and effects are inherited
 *  untouched, so determinism across thread counts and wait policies
 *  is inherited too. */
class AotParallelEvaluator : public ParallelCompiledEvaluator
{
  public:
    explicit AotParallelEvaluator(Netlist netlist,
                                  const EvalOptions &options = {});
    ~AotParallelEvaluator() override;

    AotParallelEvaluator(const AotParallelEvaluator &) = delete;
    AotParallelEvaluator &operator=(const AotParallelEvaluator &) = delete;

    /** True when EVERY partition dispatches its compiled object. */
    bool usingAot() const { return _usingAot; }
    /** Partitions with a compiled cycle function installed. */
    unsigned aotPartitions() const { return _aotParts; }
    /** Total compiler invocations across all partitions: 0 when
     *  every object came from the cache (or on fallback). */
    unsigned compilerInvocations() const { return _compilerRuns; }
    /** True when every partition object was loaded from the on-disk
     *  cache without invoking the compiler. */
    bool cacheHit() const { return _usingAot && _compilerRuns == 0; }
    /** Cache key of one partition's object ("" on fallback). */
    const std::string &partitionKey(size_t proc_index) const;
    /** Path of one partition's cached object ("" on fallback). */
    const std::string &partitionObject(size_t proc_index) const;

    /** The generated C++ for one partition (without the trailing key
     *  definition): exposed for tests and the README example. */
    std::string emitPartitionSource(size_t proc_index) const;

  protected:
    void computeTape(size_t proc_index) override;

  private:
    using CycleFn = void (*)(uint64_t *, const uint64_t *const *);

    struct Part
    {
        CycleFn fn = nullptr;
        void *handle = nullptr;
        std::string key;
        std::string object;
    };

    void buildAll(const EvalOptions &options);
    bool loadPart(size_t proc_index, const std::string &path);

    std::vector<Part> _parts;
    /// Per-memory word-array base pointers (stable after
    /// construction), passed to every partition's cycle function.
    std::vector<const uint64_t *> _memTable;
    unsigned _aotParts = 0;
    unsigned _compilerRuns = 0;
    bool _usingAot = false;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_AOT_HH
