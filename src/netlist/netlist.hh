/**
 * @file
 * Word-level netlist intermediate representation.
 *
 * This is the compiler's input format and the output format of the
 * CircuitBuilder DSL (our substitute for the paper's Yosys Verilog
 * frontend, see DESIGN.md §1).  A netlist is a DAG of combinational
 * word-level operations whose sources are constants, design inputs,
 * register current-values and asynchronous memory reads, and whose
 * sinks are register next-values, memory writes, and simulation
 * side effects ($display / $finish / assertions).
 *
 * Mirroring §2.1 of the paper, splitting each register into a current
 * (RegRead node) and next (Register::next edge) value makes the graph
 * acyclic; a simulated cycle evaluates the DAG, then commits all nexts.
 */

#ifndef MANTICORE_NETLIST_NETLIST_HH
#define MANTICORE_NETLIST_NETLIST_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/bitvector.hh"

namespace manticore::netlist {

using NodeId = uint32_t;
using RegId = uint32_t;
using MemId = uint32_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr NodeId kInvalidReg = std::numeric_limits<RegId>::max();

/** Combinational operation kinds.  All arithmetic is unsigned and
 *  width-preserving except where noted. */
enum class OpKind : uint8_t
{
    Const,   ///< literal; Node::value holds it
    Input,   ///< free design input (testbench-driven)
    RegRead, ///< current value of Node::regId
    MemRead, ///< asynchronous read of Node::memId at operand 0
    Add,     ///< operands (a, b)
    Sub,
    Mul,     ///< truncating multiply
    And,
    Or,
    Xor,
    Not,     ///< operand (a)
    Shl,     ///< (a, amount); amount is any width, >=width(a) -> 0
    Lshr,
    Eq,      ///< (a, b) -> 1 bit
    Ult,
    Slt,
    Mux,     ///< (sel[1], then, else)
    Slice,   ///< (a); bits [lo, lo+width)
    Concat,  ///< (hi, lo); width = w(hi)+w(lo)
    ZExt,    ///< (a); width >= w(a)
    SExt,
    RedOr,   ///< (a) -> 1 bit
    RedAnd,
    RedXor,
};

const char *opKindName(OpKind kind);

/** Number of operands each kind expects (Const/Input/RegRead: 0). */
unsigned opKindArity(OpKind kind);

struct Node
{
    OpKind kind;
    unsigned width = 0;
    std::vector<NodeId> operands;
    BitVector value;   ///< Const payload
    unsigned lo = 0;   ///< Slice low bit
    RegId regId = kInvalidReg;
    MemId memId = kInvalidReg;
    std::string name;  ///< optional debug name (Inputs are named)
};

struct Register
{
    std::string name;
    unsigned width = 0;
    BitVector init;
    NodeId current = kInvalidNode; ///< the RegRead node
    NodeId next = kInvalidNode;    ///< combinational next value (required)
};

struct Memory
{
    std::string name;
    unsigned width = 0;
    unsigned depth = 0;
    std::vector<BitVector> init; ///< optional; zero-filled otherwise
};

/** Synchronous, predicated memory write committed at end of cycle. */
struct MemWrite
{
    MemId mem = kInvalidReg;
    NodeId addr = kInvalidNode;
    NodeId data = kInvalidNode;
    NodeId enable = kInvalidNode; ///< 1-bit
};

/** $display-style side effect: when enable is 1, report args. */
struct Display
{
    NodeId enable = kInvalidNode;
    std::string format; ///< "%d"-style placeholders, one per arg
    std::vector<NodeId> args;
};

/** $finish: stop simulation when enable is 1. */
struct Finish
{
    NodeId enable = kInvalidNode;
};

/** Assertion: when enable is 1, cond must be 1; mirrors the paper's
 *  Expect instruction (exception on mismatch). */
struct Assert
{
    NodeId enable = kInvalidNode;
    NodeId cond = kInvalidNode;
    std::string message;
};

class Netlist
{
  public:
    explicit Netlist(std::string name = "top") : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    NodeId addNode(Node node);
    RegId addRegister(Register reg);
    MemId addMemory(Memory mem);
    void addMemWrite(MemWrite write) { _memWrites.push_back(write); }
    void addDisplay(Display d) { _displays.push_back(std::move(d)); }
    void addFinish(Finish f) { _finishes.push_back(f); }
    void addAssert(Assert a) { _asserts.push_back(std::move(a)); }

    /** Wire a register's next-value edge (must be done exactly once). */
    void connectNext(RegId reg, NodeId next);

    const Node &node(NodeId id) const { return _nodes[id]; }
    Node &node(NodeId id) { return _nodes[id]; }
    const Register &reg(RegId id) const { return _registers[id]; }
    const Memory &memory(MemId id) const { return _memories[id]; }

    size_t numNodes() const { return _nodes.size(); }
    size_t numRegisters() const { return _registers.size(); }
    size_t numMemories() const { return _memories.size(); }

    const std::vector<Node> &nodes() const { return _nodes; }
    const std::vector<Register> &registers() const { return _registers; }
    const std::vector<Memory> &memories() const { return _memories; }
    const std::vector<MemWrite> &memWrites() const { return _memWrites; }
    const std::vector<Display> &displays() const { return _displays; }
    const std::vector<Finish> &finishes() const { return _finishes; }
    const std::vector<Assert> &asserts() const { return _asserts; }

    /** O(1) name lookups (first definition wins when names repeat,
     *  matching what a linear scan used to return).  Missing names
     *  yield kInvalidNode / kInvalidReg. */
    NodeId findInput(const std::string &name) const;
    RegId findRegister(const std::string &name) const;

    /** All input / register names in definition order (used by the
     *  "no such input/register" diagnostics and the engine layer's
     *  name tables). */
    std::vector<std::string> inputNames() const;
    std::vector<std::string> registerNames() const;

    /** Structural validation: widths, arities, wired registers, no
     *  combinational cycles.  Calls fatal() on the first violation. */
    void validate() const;

    /** Topological order over all nodes (sources first).  Requires a
     *  valid (acyclic) netlist. */
    std::vector<NodeId> topologicalOrder() const;

    /** Human-readable dump for debugging and golden tests. */
    std::string toString() const;

  private:
    std::string _name;
    std::vector<Node> _nodes;
    std::vector<Register> _registers;
    std::vector<Memory> _memories;
    std::vector<MemWrite> _memWrites;
    std::vector<Display> _displays;
    std::vector<Finish> _finishes;
    std::vector<Assert> _asserts;
    std::unordered_map<std::string, NodeId> _inputIndex;
    std::unordered_map<std::string, RegId> _regIndex;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_NETLIST_HH
