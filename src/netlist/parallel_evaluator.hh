/**
 * @file
 * Partition-parallel compiled tape evaluator (§6.1 of the paper,
 * carried to host threads): the netlist is split into balanced
 * processes by netlist/partition.hh, each process is lowered to its
 * own flat op tape over a private limb region, and a persistent
 * worker pool evaluates all tapes every cycle with the paper's
 * two-barrier Vcycle structure:
 *
 *   compute phase   every process runs its tape, reading the shared
 *                   register file / inputs / constants / memories and
 *                   writing only its private region; it then stages
 *                   copies of any RegRead-sourced commit operands.
 *   barrier 1       all processes computed; the master (calling)
 *                   thread fires side effects in netlist order and
 *                   decides which lanes commit.
 *   commit phase    each process commits the registers and memory
 *                   writes it owns into the shared register file /
 *                   memory images (the cross-process "SENDs").
 *   barrier 2       the Vcycle is complete.
 *
 * Everything lives in ONE ensemble arena (arena.hh) split into a
 * shared source region (constants, inputs, the register file grouped
 * by owner and cache-line aligned) and per-process private regions,
 * so tape instructions address any operand by global limb offset and
 * the compute phase is race-free by construction: private regions are
 * written only by their owner, shared slots only between barriers by
 * the unique owner of each register / memory.
 *
 * With EvalOptions::lanes == N the arena holds an N-lane ensemble —
 * N decoupled simulations advanced by the SAME two-barrier Vcycle,
 * so the rendezvous cost per simulated cycle drops by a factor of N.
 * Each lane carries its own status / cycle / failure message /
 * display transcript; a lane that finishes or fails an assertion is
 * frozen (the master clears its commit flag) while the remaining
 * lanes keep running.  EvalOptions::waitPolicy selects how the
 * rendezvous waits: Spin (lowest latency) or Block (condition
 * variable — idle partitions release their core on oversubscribed
 * hosts).
 *
 * The engine is cycle-exact with the reference Evaluator per lane
 * (including side-effect ordering and pre-commit snapshot semantics)
 * and deterministic across runs, thread counts and wait policies.
 */

#ifndef MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH
#define MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/padding.hh"
#include "netlist/arena.hh"
#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "netlist/partition.hh"
#include "netlist/tape.hh"

namespace manticore::netlist {

class ParallelCompiledEvaluator : public EvaluatorBase
{
  public:
    /** Keeps its own copy of the netlist (cold data only).  options
     *  bounds the worker-pool size (0 = hardware concurrency), picks
     *  the merge strategy, the ensemble width and the rendezvous
     *  wait policy. */
    explicit ParallelCompiledEvaluator(Netlist netlist,
                                       const EvalOptions &options = {});
    ~ParallelCompiledEvaluator() override;

    ParallelCompiledEvaluator(const ParallelCompiledEvaluator &) = delete;
    ParallelCompiledEvaluator &
    operator=(const ParallelCompiledEvaluator &) = delete;

    void setInput(const std::string &name, const BitVector &value) override;
    void driveInput(NodeId input, const BitVector &value) override;
    SimStatus step() override;
    /** Batched stepping: the whole batch runs as ONE worker-pool
     *  command, so the pool pays one wake-up rendezvous per batch and
     *  one (not two) generation signal per cycle — workers roll from
     *  the commit of cycle k straight into the compute of cycle k+1
     *  (see the batch protocol notes above workerLoop).  Cycle-exact
     *  with a step() loop, including side-effect order and the
     *  no-commit-after-failed-assert rule; an ensemble batch runs
     *  until every lane is terminal or the batch ends. */
    SimStatus run(uint64_t max_cycles) override;

    /** Completed cycles of the most-advanced lane. */
    uint64_t cycle() const override { return _cycle; }
    SimStatus status() const override { return _lane[0].status; }
    const std::string &failureMessage() const override
    {
        return _lane[0].failureMessage;
    }

    BitVector regValue(RegId id) const override;
    BitVector regValue(const std::string &name) const override;
    BitVector memValue(MemId id, uint64_t addr) const override;

    // Ensemble views (lane 0 == the scalar API).
    unsigned lanes() const override { return _lanes; }
    void driveInputLane(unsigned lane, NodeId input,
                        const BitVector &value) override;
    SimStatus laneStatus(unsigned lane) const override;
    uint64_t laneCycle(unsigned lane) const override;
    const std::string &laneFailureMessage(unsigned lane) const override;
    const std::vector<std::string> &
    laneDisplayLog(unsigned lane) const override;
    BitVector regValueLane(unsigned lane, RegId id) const override;
    BitVector memValueLane(unsigned lane, MemId id,
                           uint64_t addr) const override;

    const std::vector<std::string> &displayLog() const override
    {
        return _lane[0].displayLog;
    }

    bool snapshotSupported() const override { return true; }
    /** Recount active lanes and recompute the engine-level cycle.
     *  Safe from the master thread: workers are parked between
     *  step()/run() calls, so the arena and lane state are
     *  master-owned here. */
    void snapshotRestored() override;

    /** Introspection for tests and benches. */
    size_t numProcesses() const { return _procs.size(); }
    unsigned numThreads() const { return _numThreads; }
    /** Threads this evaluator actually OWNS (spawned pool workers —
     *  the master runs process 0 inline, so this is numThreads()-1,
     *  and 0 when numThreads == 1).  The multi-tenant service relies
     *  on the zero-owned-threads mode: with EvalOptions::numThreads
     *  = 1 every cycle executes entirely on the calling thread, i.e.
     *  on whatever scheduler worker borrowed the session (see
     *  src/service/scheduler.hh). */
    size_t ownedThreads() const { return _pool.size(); }
    WaitPolicy waitPolicy() const { return _waitPolicy; }
    const NetlistPartitionStats &partitionStats() const { return _stats; }
    size_t tapeLength() const; ///< total instructions across processes
    size_t arenaLimbs() const { return _arena.limbs(); }

  protected:
    const Netlist &snapshotNetlist() const override { return _netlist; }
    BitVector inputValueLane(unsigned lane, NodeId input) const override;
    void restoreReg(unsigned lane, RegId id,
                    const BitVector &value) override;
    void restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                        const BitVector &value) override;
    void restoreLaneMeta(unsigned lane, uint64_t cycle, SimStatus status,
                         std::string failure,
                         std::vector<std::string> log) override;

    /** Evaluate one process's combinational tape for one cycle
     *  (every _padded lane) — the ONLY hot-loop hook a subclass may
     *  replace, the partition-parallel analogue of
     *  CompiledEvaluator::evalCycle().  The default runs the
     *  interpreted tape; AotParallelEvaluator (aot.hh) dispatches a
     *  per-partition dlopen'd cycle function.  Called concurrently
     *  from the worker pool (and from the master for process 0), so
     *  an override must only read shared state and write the
     *  process's private arena region — exactly what the emitted
     *  tape code does.  Stage copies, commits, effects and the
     *  two-barrier rendezvous stay in this class, so an executor
     *  swap cannot drift semantically or break the protocol. */
    virtual void computeTape(size_t proc_index);

    // Read-only introspection for the AOT subclass's per-partition
    // codegen (workers are parked between step()/run() calls, so
    // construction-time reads are master-owned).
    const std::vector<tape::Instr> &procTape(size_t p) const
    {
        return _procs[p].tape;
    }
    const std::vector<tape::MemState> &memStates() const { return _mems; }
    uint64_t *arenaData() { return _arena.data(); }
    unsigned paddedLanes() const { return _padded; }

  private:
    /** Pre-barrier copy of a shared (RegRead) commit operand into the
     *  process's private staging, so the commit phase never reads a
     *  slot another process may be committing.  Both blocks are
     *  lane-strided with the same stride, so one copy of `limbs`
     *  (pre-multiplied: per-lane limb count x lanes) moves every
     *  lane. */
    struct StageCopy
    {
        uint32_t dst, src, limbs;
    };

    struct RegCommit
    {
        uint32_t dst;   ///< shared register-file slot (owned)
        uint32_t src;   ///< private, staged, or stable shared slot
        uint32_t limbs; ///< per lane (also the lane stride)
    };

    struct MemCommit
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< private/staged/stable slots
        uint32_t addrStride;         ///< addr operand's lane stride
    };

    /** One partition process, fully lowered. */
    struct Proc
    {
        std::vector<tape::Instr> tape;
        std::vector<StageCopy> stages;
        std::vector<RegCommit> regCommits;
        std::vector<MemCommit> memCommits;
    };

    void compile(MergeAlgo algo);
    void computeProc(size_t proc_index);
    void commitProc(const Proc &proc);
    void workerLoop(size_t proc_index);
    SimStatus runBatch(uint64_t max_cycles);
    SimStatus runBatchScalar(uint64_t max_cycles); ///< 1-lane fast path
    void recountActive();

    // Rendezvous waits honouring the configured WaitPolicy: Spin
    // spins with periodic yields; Block parks on _waitCv after a
    // failed predicate check under _waitMx.  wake() is called after
    // every counter bump that a blocked peer may be waiting on (the
    // empty lock/unlock before notify_all closes the
    // checked-then-parked race).
    // The Spin paths are inline: they sit on the per-cycle rendezvous
    // hot path; the Block (condvar) halves live out of line.
    uint64_t
    waitAbove(const std::atomic<uint64_t> &gen, uint64_t last) const
    {
        if (_waitPolicy == WaitPolicy::Spin) {
            // Spin-then-yield keeps oversubscribed (or single-core)
            // hosts making progress, as in baseline's worker pool.
            uint64_t v;
            unsigned spins = 0;
            while ((v = gen.load(std::memory_order_acquire)) == last) {
                if (++spins > 256) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
            return v;
        }
        return waitAboveBlocked(gen, last);
    }

    void
    waitCount(const std::atomic<uint64_t> &counter, uint64_t target) const
    {
        if (_waitPolicy == WaitPolicy::Spin) {
            unsigned spins = 0;
            while (counter.load(std::memory_order_acquire) < target) {
                if (++spins > 256) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
            return;
        }
        waitCountBlocked(counter, target);
    }

    void
    wake() const // inline Spin no-op: the rendezvous hot path
    {
        if (_waitPolicy == WaitPolicy::Block)
            wakeBlocked();
    }

    uint64_t waitAboveBlocked(const std::atomic<uint64_t> &gen,
                              uint64_t last) const;
    void waitCountBlocked(const std::atomic<uint64_t> &counter,
                          uint64_t target) const;
    void wakeBlocked() const;

    Netlist _netlist; ///< cold copy for name/width lookups only

    // Requested vs padded ensemble width: the arena, memory images
    // and tape execution run _padded lanes (see exec/padding.hh);
    // effects, commits, stats and snapshots see only _lanes, so the
    // padded lanes stay frozen at init and invisible.
    unsigned _lanes;
    unsigned _padded;
    Arena _arena;
    std::vector<uint32_t> _sourceSlot; ///< node id -> slot (Const/Input)
    std::vector<uint32_t> _regSlot;    ///< reg id -> register-file slot
    std::vector<tape::MemState> _mems;
    std::vector<Proc> _procs;
    tape::Effects _effects;
    NetlistPartitionStats _stats;
    unsigned _numThreads = 1;
    WaitPolicy _waitPolicy = WaitPolicy::Spin;

    // Two-barrier worker-pool rendezvous.  The master participates by
    // running process 0 inline; workers run processes 1..N-1.  All
    // cross-thread data movement is ordered through the release/
    // acquire chains on these counters.  _computeGen starts a batch
    // (workers park on it between run()/step() calls); within a batch
    // only _commitGen advances per cycle, and the done-counters count
    // monotonically against master-side targets so no per-cycle reset
    // is needed.
    std::atomic<uint64_t> _computeGen{0};
    std::atomic<uint64_t> _commitGen{0};
    std::atomic<uint64_t> _computeDone{0};
    std::atomic<uint64_t> _commitDone{0};
    std::atomic<bool> _shutdown{false};
    bool _doCommit = false;  ///< any lane commits (master->workers,
                             ///< ordered by _commitGen)
    bool _allCommit = false; ///< every lane commits (fast path)
    bool _batchMore = false; ///< more cycles in this batch
    std::vector<uint8_t> _laneCommit; ///< per-lane commit flags (same
                                      ///< ordering as _doCommit)
    uint64_t _computeTarget = 0; ///< master-only done-counter targets
    uint64_t _commitTarget = 0;
    mutable std::mutex _waitMx;             ///< WaitPolicy::Block only
    mutable std::condition_variable _waitCv;
    std::vector<std::thread> _pool;

    // Per-lane run state; _cycle is the engine-level (max-lane) view.
    uint64_t _cycle = 0;
    unsigned _active; ///< lanes not yet finished/failed
    std::vector<LaneState> _lane;
    std::vector<uint8_t> _laneFinish; ///< this cycle's $finish flags
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH
