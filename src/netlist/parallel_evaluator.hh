/**
 * @file
 * Partition-parallel compiled tape evaluator (§6.1 of the paper,
 * carried to host threads): the netlist is split into balanced
 * processes by netlist/partition.hh, each process is lowered to its
 * own flat op tape over a private limb region, and a persistent
 * worker pool evaluates all tapes every cycle with the paper's
 * two-barrier Vcycle structure:
 *
 *   compute phase   every process runs its tape, reading the shared
 *                   register file / inputs / constants / memories and
 *                   writing only its private region; it then stages
 *                   copies of any RegRead-sourced commit operands.
 *   barrier 1       all processes computed; the master (calling)
 *                   thread fires side effects in netlist order and
 *                   decides whether to commit.
 *   commit phase    each process commits the registers and memory
 *                   writes it owns into the shared register file /
 *                   memory images (the cross-process "SENDs").
 *   barrier 2       the Vcycle is complete.
 *
 * Everything lives in ONE uint64_t arena split into a shared source
 * region (constants, inputs, the register file grouped by owner and
 * cache-line aligned) and per-process private regions, so tape
 * instructions address any operand by global limb offset and the
 * compute phase is race-free by construction: private regions are
 * written only by their owner, shared slots only between barriers by
 * the unique owner of each register / memory.
 *
 * The engine is cycle-exact with the reference Evaluator (including
 * side-effect ordering and pre-commit snapshot semantics) and
 * deterministic across runs and thread counts.
 */

#ifndef MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH
#define MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "netlist/evaluator.hh"
#include "netlist/netlist.hh"
#include "netlist/partition.hh"
#include "netlist/tape.hh"

namespace manticore::netlist {

class ParallelCompiledEvaluator : public EvaluatorBase
{
  public:
    /** Keeps its own copy of the netlist (cold data only).  options
     *  bounds the worker-pool size (0 = hardware concurrency) and
     *  picks the merge strategy. */
    explicit ParallelCompiledEvaluator(Netlist netlist,
                                       const EvalOptions &options = {});
    ~ParallelCompiledEvaluator() override;

    ParallelCompiledEvaluator(const ParallelCompiledEvaluator &) = delete;
    ParallelCompiledEvaluator &
    operator=(const ParallelCompiledEvaluator &) = delete;

    void setInput(const std::string &name, const BitVector &value) override;
    void driveInput(NodeId input, const BitVector &value) override;
    SimStatus step() override;
    /** Batched stepping: the whole batch runs as ONE worker-pool
     *  command, so the pool pays one wake-up rendezvous per batch and
     *  one (not two) generation signal per cycle — workers roll from
     *  the commit of cycle k straight into the compute of cycle k+1
     *  (see the batch protocol notes above workerLoop).  Cycle-exact
     *  with a step() loop, including side-effect order and the
     *  no-commit-after-failed-assert rule. */
    SimStatus run(uint64_t max_cycles) override;

    uint64_t cycle() const override { return _cycle; }
    SimStatus status() const override { return _status; }
    const std::string &failureMessage() const override
    {
        return _failureMessage;
    }

    BitVector regValue(RegId id) const override;
    BitVector regValue(const std::string &name) const override;
    BitVector memValue(MemId id, uint64_t addr) const override;

    const std::vector<std::string> &displayLog() const override
    {
        return _displayLog;
    }

    /** Introspection for tests and benches. */
    size_t numProcesses() const { return _procs.size(); }
    unsigned numThreads() const { return _numThreads; }
    const NetlistPartitionStats &partitionStats() const { return _stats; }
    size_t tapeLength() const; ///< total instructions across processes
    size_t arenaLimbs() const { return _arena.size(); }

  private:
    /** Pre-barrier copy of a shared (RegRead) commit operand into the
     *  process's private staging, so the commit phase never reads a
     *  slot another process may be committing. */
    struct StageCopy
    {
        uint32_t dst, src, limbs;
    };

    struct RegCommit
    {
        uint32_t dst; ///< shared register-file slot (owned)
        uint32_t src; ///< private, staged, or stable shared slot
        uint32_t limbs;
    };

    struct MemCommit
    {
        uint32_t mem;
        uint32_t addr, data, enable; ///< private/staged/stable slots
    };

    /** One partition process, fully lowered. */
    struct Proc
    {
        std::vector<tape::Instr> tape;
        std::vector<StageCopy> stages;
        std::vector<RegCommit> regCommits;
        std::vector<MemCommit> memCommits;
    };

    void compile(MergeAlgo algo);
    void computeProc(const Proc &proc);
    void commitProc(const Proc &proc);
    void workerLoop(size_t proc_index);
    SimStatus runBatch(uint64_t max_cycles);
    BitVector slotValue(uint32_t slot, unsigned width) const;

    Netlist _netlist; ///< cold copy for name/width lookups only

    std::vector<uint64_t> _arena;
    std::vector<uint32_t> _sourceSlot; ///< node id -> slot (Const/Input)
    std::vector<uint32_t> _regSlot;    ///< reg id -> register-file slot
    std::vector<tape::MemState> _mems;
    std::vector<Proc> _procs;
    tape::Effects _effects;
    NetlistPartitionStats _stats;
    unsigned _numThreads = 1;

    // Two-barrier worker-pool rendezvous.  The master participates by
    // running process 0 inline; workers run processes 1..N-1.  All
    // cross-thread data movement is ordered through the release/
    // acquire chains on these counters.  _computeGen starts a batch
    // (workers park on it between run()/step() calls); within a batch
    // only _commitGen advances per cycle, and the done-counters count
    // monotonically against master-side targets so no per-cycle reset
    // is needed.
    std::atomic<uint64_t> _computeGen{0};
    std::atomic<uint64_t> _commitGen{0};
    std::atomic<uint64_t> _computeDone{0};
    std::atomic<uint64_t> _commitDone{0};
    std::atomic<bool> _shutdown{false};
    bool _doCommit = false;  ///< master->workers, ordered by _commitGen
    bool _batchMore = false; ///< more cycles in this batch (same ordering)
    uint64_t _computeTarget = 0; ///< master-only done-counter targets
    uint64_t _commitTarget = 0;
    std::vector<std::thread> _pool;

    uint64_t _cycle = 0;
    SimStatus _status = SimStatus::Ok;
    std::string _failureMessage;
    std::vector<std::string> _displayLog;
};

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_PARALLEL_EVALUATOR_HH
