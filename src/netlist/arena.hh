/**
 * @file
 * Compatibility alias: the ensemble arena moved to the shared
 * lane-execution layer (see src/exec/arena.hh for the layout
 * contract).  The netlist engines keep addressing it under the old
 * name.
 */

#ifndef MANTICORE_NETLIST_ARENA_HH
#define MANTICORE_NETLIST_ARENA_HH

#include "exec/arena.hh"

namespace manticore::netlist {

using Arena = exec::Arena;

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_ARENA_HH
