/**
 * @file
 * Netlist-level partitioning for the parallel compiled evaluator —
 * the §6.1 split/merge pipeline of compiler/partition.{hh,cc} adapted
 * to operate on netlist node cones instead of lowered instructions.
 *
 * Splitting mirrors the paper's constraints at netlist granularity:
 *
 *  - one seed (maximal process) per register, holding the backward
 *    combinational cone of its next-value — node duplication is
 *    allowed, so cones are independent and no anchored-union fixpoint
 *    is needed;
 *  - all writes to the same memory stay together (commit ordering of
 *    same-address writes must match the netlist's program order);
 *    asynchronous MemReads are free and may be duplicated, because
 *    memory words are read-only during the compute phase;
 *  - all side effects (asserts / displays / $finish) stay together —
 *    the analogue of the paper's single privileged process — so the
 *    master thread can fire them in deterministic netlist order.
 *
 * Cross-partition dataflow is therefore restricted to end-of-Vcycle
 * register commits (the evaluator's shared register file), exactly
 * the SEND-at-barrier structure of the paper; `estimatedSends` counts
 * those (owner, foreign-reader) register words.
 *
 * Merging provides the same two strategies as the ISA-level
 * partitioner: the communication-aware balanced heuristic (B) and the
 * communication-oblivious LPT baseline (L) of §7.8.1 / Fig. 9.
 */

#ifndef MANTICORE_NETLIST_PARTITION_HH
#define MANTICORE_NETLIST_PARTITION_HH

#include <cstdint>
#include <vector>

#include "netlist/netlist.hh"
#include "support/mergealgo.hh"

namespace manticore::netlist {

struct NetlistPartitionStats
{
    /// Split-graph size before merging (the netlist analogue of
    /// Table 8's |V| and |E|).
    size_t splitProcesses = 0;
    size_t splitEdges = 0;
    /// After merging.
    size_t mergedProcesses = 0;
    /// Register-file words written by an owner and read by another
    /// process (the evaluator's analogue of Table 4's SENDs).
    size_t estimatedSends = 0;
    /// Estimated cost (weighted nodes + sends) of the straggler.
    size_t estimatedMaxCost = 0;
    /// Sum of per-process costs (the serial work the partition would
    /// re-execute; estimatedMaxCost/totalCost bounds the speedup).
    size_t totalCost = 0;
    /// Node instances beyond the netlist's own count (duplication).
    size_t duplicatedNodes = 0;
};

/** One final process of the merged partition. */
struct NetlistProcess
{
    /// Combinational nodes to evaluate, ascending id (node ids are
    /// topologically ordered, so this is also execution order).
    /// Source nodes (Const/Input/RegRead) never appear.
    std::vector<NodeId> nodes;
    /// Registers whose commit this process owns.
    std::vector<RegId> registers;
    /// Indices into Netlist::memWrites() this process applies, in
    /// program order.  All writes to one memory land in one process.
    std::vector<uint32_t> memWrites;
    /// True for the (single) process holding the side-effect cone.
    bool effects = false;
};

struct NetlistPartition
{
    std::vector<NetlistProcess> processes;
    NetlistPartitionStats stats;
};

/** Split into per-sink cones and merge down to at most num_processes
 *  (>= 1).  Dead nodes feeding no register / memory write / effect
 *  are dropped.  A netlist with no sinks yields zero processes. */
NetlistPartition partitionNetlist(const Netlist &netlist,
                                  unsigned num_processes, MergeAlgo algo);

} // namespace manticore::netlist

#endif // MANTICORE_NETLIST_PARTITION_HH
