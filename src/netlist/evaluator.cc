#include "netlist/evaluator.hh"

#include "support/logging.hh"
#include "support/namelist.hh"

namespace manticore::netlist {

Evaluator::Evaluator(Netlist netlist) : _netlist(std::move(netlist))
{
    _netlist.validate();
    for (const Register &r : _netlist.registers())
        _regs.push_back(r.init);
    for (const Memory &m : _netlist.memories())
        _mems.push_back(m.init);
    _values.resize(_netlist.numNodes());
    _inputs.resize(_netlist.numNodes());
    for (size_t i = 0; i < _netlist.numNodes(); ++i) {
        const Node &n = _netlist.node(i);
        if (n.kind == OpKind::Input)
            _inputs[i] = BitVector(n.width);
    }
}

NodeId
EvaluatorBase::resolveInput(const Netlist &netlist, const std::string &name,
                            const BitVector &value)
{
    NodeId id = netlist.findInput(name);
    if (id == kInvalidNode)
        MANTICORE_FATAL("no such input: ", name, " (valid inputs: ",
                        formatNameList(netlist.inputNames()), ")");
    if (value.width() != netlist.node(id).width)
        MANTICORE_FATAL("input width mismatch for ", name, ": driven ",
                        value.width(), " bits, declared ",
                        netlist.node(id).width);
    return id;
}

RegId
EvaluatorBase::resolveRegister(const Netlist &netlist,
                               const std::string &name)
{
    RegId id = netlist.findRegister(name);
    if (id == kInvalidReg)
        MANTICORE_FATAL("no such register: ", name, " (valid registers: ",
                        formatNameList(netlist.registerNames()), ")");
    return id;
}

// Lane-indexed defaults: engines without an ensemble mode have
// exactly one lane, so lane 0 aliases the scalar accessors and any
// other lane is a caller bug.

void
EvaluatorBase::driveInputLane(unsigned lane, NodeId input,
                              const BitVector &value)
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " driven");
    driveInput(input, value);
}

SimStatus
EvaluatorBase::laneStatus(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return status();
}

uint64_t
EvaluatorBase::laneCycle(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return cycle();
}

const std::string &
EvaluatorBase::laneFailureMessage(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return failureMessage();
}

const std::vector<std::string> &
EvaluatorBase::laneDisplayLog(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return displayLog();
}

BitVector
EvaluatorBase::regValueLane(unsigned lane, RegId id) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return regValue(id);
}

BitVector
EvaluatorBase::memValueLane(unsigned lane, MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return memValue(id, addr);
}

void
Evaluator::setInput(const std::string &name, const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
Evaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _inputs[input] = value;
}

void
Evaluator::evaluateNodes()
{
    const auto &nodes = _netlist.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        auto op = [&](unsigned k) -> const BitVector & {
            return _values[n.operands[k]];
        };
        switch (n.kind) {
          case OpKind::Const: _values[i] = n.value; break;
          case OpKind::Input: _values[i] = _inputs[i]; break;
          case OpKind::RegRead: _values[i] = _regs[n.regId]; break;
          case OpKind::MemRead: {
            const auto &mem = _mems[n.memId];
            if (mem.empty()) { // guarded against in validate()
                _values[i] = BitVector(n.width);
                break;
            }
            uint64_t addr = op(0).toUint64() % mem.size();
            _values[i] = mem[addr];
            break;
          }
          case OpKind::Add: _values[i] = op(0).add(op(1)); break;
          case OpKind::Sub: _values[i] = op(0).sub(op(1)); break;
          case OpKind::Mul: _values[i] = op(0).mul(op(1)); break;
          case OpKind::And: _values[i] = op(0).bitAnd(op(1)); break;
          case OpKind::Or: _values[i] = op(0).bitOr(op(1)); break;
          case OpKind::Xor: _values[i] = op(0).bitXor(op(1)); break;
          case OpKind::Not: _values[i] = op(0).bitNot(); break;
          case OpKind::Shl: {
            const BitVector &amt = op(1);
            uint64_t a = amt.fitsUint64() ? amt.toUint64() : n.width;
            _values[i] = op(0).shl(a);
            break;
          }
          case OpKind::Lshr: {
            const BitVector &amt = op(1);
            uint64_t a = amt.fitsUint64() ? amt.toUint64() : n.width;
            _values[i] = op(0).lshr(a);
            break;
          }
          case OpKind::Eq: _values[i] = op(0).eq(op(1)); break;
          case OpKind::Ult: _values[i] = op(0).ult(op(1)); break;
          case OpKind::Slt: _values[i] = op(0).slt(op(1)); break;
          case OpKind::Mux:
            _values[i] = op(0).isZero() ? op(2) : op(1);
            break;
          case OpKind::Slice: _values[i] = op(0).slice(n.lo, n.width); break;
          case OpKind::Concat: _values[i] = op(0).concat(op(1)); break;
          case OpKind::ZExt: _values[i] = op(0).resize(n.width); break;
          case OpKind::SExt: _values[i] = op(0).sext(n.width); break;
          case OpKind::RedOr: _values[i] = op(0).reduceOr(); break;
          case OpKind::RedAnd: _values[i] = op(0).reduceAnd(); break;
          case OpKind::RedXor: _values[i] = op(0).reduceXor(); break;
        }
    }
}

std::string
Evaluator::formatDisplay(const std::string &format,
                         const std::vector<BitVector> &args)
{
    std::string out;
    size_t arg = 0;
    for (size_t i = 0; i < format.size(); ++i) {
        if (format[i] == '%' && i + 1 < format.size()) {
            char spec = format[i + 1];
            if (spec == '%') {
                out.push_back('%');
                ++i;
                continue;
            }
            if (spec == 'd' || spec == 'x' || spec == 'h' || spec == 'b') {
                MANTICORE_ASSERT(arg < args.size(),
                                 "too few display arguments");
                const BitVector &v = args[arg++];
                if (spec == 'd' && v.fitsUint64())
                    out += std::to_string(v.toUint64());
                else
                    out += v.toString();
                ++i;
                continue;
            }
        }
        out.push_back(format[i]);
    }
    return out;
}

SimStatus
Evaluator::step()
{
    if (_status != SimStatus::Ok)
        return _status;

    evaluateNodes();

    // Side effects observe this cycle's combinational values.
    for (const Assert &a : _netlist.asserts()) {
        if (!_values[a.enable].isZero() && _values[a.cond].isZero()) {
            _status = SimStatus::AssertFailed;
            _failureMessage = "cycle " + std::to_string(_cycle) +
                              ": assertion failed: " + a.message;
            return _status;
        }
    }
    for (const Display &d : _netlist.displays()) {
        if (!_values[d.enable].isZero()) {
            std::vector<BitVector> args;
            for (NodeId arg : d.args)
                args.push_back(_values[arg]);
            std::string line = formatDisplay(d.format, args);
            _displayLog.push_back(line);
            if (onDisplay)
                onDisplay(line);
        }
    }
    bool finished = false;
    for (const Finish &f : _netlist.finishes())
        if (!_values[f.enable].isZero())
            finished = true;

    // Commit: registers then memory writes (all reads already done).
    for (size_t r = 0; r < _regs.size(); ++r)
        _regs[r] = _values[_netlist.reg(static_cast<RegId>(r)).next];
    for (const MemWrite &w : _netlist.memWrites()) {
        if (!_values[w.enable].isZero()) {
            auto &mem = _mems[w.mem];
            if (mem.empty()) // guarded against in validate()
                continue;
            uint64_t addr = _values[w.addr].toUint64() % mem.size();
            mem[addr] = _values[w.data];
        }
    }

    ++_cycle;
    if (finished)
        _status = SimStatus::Finished;
    return _status;
}

BitVector
Evaluator::regValue(const std::string &name) const
{
    return _regs[resolveRegister(_netlist, name)];
}

BitVector
Evaluator::memValue(MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].size(),
                     "memValue out of range");
    return _mems[id][addr];
}

} // namespace manticore::netlist
