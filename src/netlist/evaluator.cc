#include "netlist/evaluator.hh"

#include "support/bytestream.hh"
#include "support/limbops.hh"
#include "support/logging.hh"
#include "support/namelist.hh"

namespace manticore::netlist {

namespace {

void
writeValueLimbs(support::ByteWriter &w, const BitVector &value)
{
    for (uint64_t limb : value.limbs())
        w.u64(limb);
}

BitVector
readValueLimbs(support::ByteReader &r, unsigned width)
{
    std::vector<uint64_t> limbs(limbops::nlimbs(width));
    for (uint64_t &limb : limbs)
        limb = r.u64();
    return BitVector::fromLimbs(width, limbs);
}

} // namespace

Evaluator::Evaluator(Netlist netlist) : _netlist(std::move(netlist))
{
    _netlist.validate();
    for (const Register &r : _netlist.registers())
        _regs.push_back(r.init);
    for (const Memory &m : _netlist.memories())
        _mems.push_back(m.init);
    _values.resize(_netlist.numNodes());
    _inputs.resize(_netlist.numNodes());
    for (size_t i = 0; i < _netlist.numNodes(); ++i) {
        const Node &n = _netlist.node(i);
        if (n.kind == OpKind::Input)
            _inputs[i] = BitVector(n.width);
    }
}

NodeId
EvaluatorBase::resolveInput(const Netlist &netlist, const std::string &name,
                            const BitVector &value)
{
    NodeId id = netlist.findInput(name);
    if (id == kInvalidNode)
        MANTICORE_FATAL("no such input: ", name, " (valid inputs: ",
                        formatNameList(netlist.inputNames()), ")");
    if (value.width() != netlist.node(id).width)
        MANTICORE_FATAL("input width mismatch for ", name, ": driven ",
                        value.width(), " bits, declared ",
                        netlist.node(id).width);
    return id;
}

RegId
EvaluatorBase::resolveRegister(const Netlist &netlist,
                               const std::string &name)
{
    RegId id = netlist.findRegister(name);
    if (id == kInvalidReg)
        MANTICORE_FATAL("no such register: ", name, " (valid registers: ",
                        formatNameList(netlist.registerNames()), ")");
    return id;
}

// Lane-indexed defaults: engines without an ensemble mode have
// exactly one lane, so lane 0 aliases the scalar accessors and any
// other lane is a caller bug.

void
EvaluatorBase::driveInputLane(unsigned lane, NodeId input,
                              const BitVector &value)
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " driven");
    driveInput(input, value);
}

SimStatus
EvaluatorBase::laneStatus(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return status();
}

uint64_t
EvaluatorBase::laneCycle(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return cycle();
}

const std::string &
EvaluatorBase::laneFailureMessage(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return failureMessage();
}

const std::vector<std::string> &
EvaluatorBase::laneDisplayLog(unsigned lane) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return displayLog();
}

BitVector
EvaluatorBase::regValueLane(unsigned lane, RegId id) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return regValue(id);
}

BitVector
EvaluatorBase::memValueLane(unsigned lane, MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane, lane ", lane,
                     " read");
    return memValue(id, addr);
}

// ---- checkpoint/restore ----------------------------------------------
// The ONE canonical per-lane serialization for the netlist family,
// written against the virtual accessors/setters so every evaluator
// (reference, compiled, parallel, AOT) shares the exact byte format.

const Netlist &
EvaluatorBase::snapshotNetlist() const
{
    MANTICORE_PANIC("snapshotNetlist() called on an evaluator without "
                    "snapshot support");
}

BitVector
EvaluatorBase::inputValueLane(unsigned, NodeId) const
{
    MANTICORE_PANIC("inputValueLane() called on an evaluator without "
                    "snapshot support");
}

void
EvaluatorBase::restoreReg(unsigned, RegId, const BitVector &)
{
    MANTICORE_PANIC("restoreReg() called on an evaluator without "
                    "snapshot support");
}

void
EvaluatorBase::restoreMemWord(unsigned, MemId, uint64_t, const BitVector &)
{
    MANTICORE_PANIC("restoreMemWord() called on an evaluator without "
                    "snapshot support");
}

void
EvaluatorBase::restoreLaneMeta(unsigned, uint64_t, SimStatus, std::string,
                               std::vector<std::string>)
{
    MANTICORE_PANIC("restoreLaneMeta() called on an evaluator without "
                    "snapshot support");
}

void
EvaluatorBase::saveLaneState(unsigned lane, support::ByteWriter &w) const
{
    MANTICORE_ASSERT(snapshotSupported(),
                     "saveLaneState on a snapshot-less evaluator");
    const Netlist &nl = snapshotNetlist();

    uint32_t ninputs = 0;
    for (const Node &n : nl.nodes())
        if (n.kind == OpKind::Input)
            ++ninputs;
    w.u32(ninputs);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        const Node &n = nl.node(id);
        if (n.kind != OpKind::Input)
            continue;
        w.u32(id);
        writeValueLimbs(w, inputValueLane(lane, id).resize(n.width));
    }

    w.u32(static_cast<uint32_t>(nl.numRegisters()));
    for (RegId id = 0; id < nl.numRegisters(); ++id)
        writeValueLimbs(w, regValueLane(lane, id));

    w.u32(static_cast<uint32_t>(nl.numMemories()));
    for (MemId id = 0; id < nl.numMemories(); ++id) {
        const Memory &m = nl.memory(id);
        w.u32(m.width);
        w.u64(m.depth);
        for (uint64_t addr = 0; addr < m.depth; ++addr)
            writeValueLimbs(w, memValueLane(lane, id, addr));
    }

    w.u64(laneCycle(lane));
    w.u8(static_cast<uint8_t>(laneStatus(lane)));
    w.str(laneFailureMessage(lane));
    const std::vector<std::string> &log = laneDisplayLog(lane);
    w.u32(static_cast<uint32_t>(log.size()));
    for (const std::string &line : log)
        w.str(line);
}

void
EvaluatorBase::restoreLaneState(unsigned lane, support::ByteReader &r)
{
    MANTICORE_ASSERT(snapshotSupported(),
                     "restoreLaneState on a snapshot-less evaluator");
    const Netlist &nl = snapshotNetlist();

    uint32_t ninputs = r.u32();
    for (uint32_t i = 0; i < ninputs; ++i) {
        NodeId id = r.u32();
        if (id >= nl.numNodes() || nl.node(id).kind != OpKind::Input)
            MANTICORE_FATAL("snapshot/design mismatch: node ", id,
                            " is not an input of design '", nl.name(),
                            "' — refusing to restore");
        driveInputLane(lane, id, readValueLimbs(r, nl.node(id).width));
    }

    uint32_t nregs = r.u32();
    if (nregs != nl.numRegisters())
        MANTICORE_FATAL("snapshot/design mismatch: snapshot has ", nregs,
                        " register(s), design '", nl.name(), "' has ",
                        nl.numRegisters(), " — refusing to restore");
    for (RegId id = 0; id < nregs; ++id)
        restoreReg(lane, id, readValueLimbs(r, nl.reg(id).width));

    uint32_t nmems = r.u32();
    if (nmems != nl.numMemories())
        MANTICORE_FATAL("snapshot/design mismatch: snapshot has ", nmems,
                        " memorie(s), design '", nl.name(), "' has ",
                        nl.numMemories(), " — refusing to restore");
    for (MemId id = 0; id < nmems; ++id) {
        const Memory &m = nl.memory(id);
        uint32_t width = r.u32();
        uint64_t depth = r.u64();
        if (width != m.width || depth != m.depth)
            MANTICORE_FATAL("snapshot/design mismatch: memory '", m.name,
                            "' is ", width, "x", depth,
                            " in the snapshot, ", m.width, "x", m.depth,
                            " in design '", nl.name(),
                            "' — refusing to restore");
        for (uint64_t addr = 0; addr < depth; ++addr)
            restoreMemWord(lane, id, addr, readValueLimbs(r, m.width));
    }

    uint64_t cycle = r.u64();
    auto status = static_cast<SimStatus>(r.u8());
    std::string failure = r.str();
    uint32_t nlog = r.u32();
    std::vector<std::string> log;
    log.reserve(nlog);
    for (uint32_t i = 0; i < nlog; ++i)
        log.push_back(r.str());
    restoreLaneMeta(lane, cycle, status, std::move(failure),
                    std::move(log));
}

// Reference Evaluator snapshot hooks: plain container writes.

BitVector
Evaluator::inputValueLane(unsigned lane, NodeId input) const
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane");
    return _inputs[input];
}

void
Evaluator::restoreReg(unsigned lane, RegId id, const BitVector &value)
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane");
    _regs[id] = value;
}

void
Evaluator::restoreMemWord(unsigned lane, MemId id, uint64_t addr,
                          const BitVector &value)
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane");
    _mems[id][addr] = value;
}

void
Evaluator::restoreLaneMeta(unsigned lane, uint64_t cycle, SimStatus status,
                           std::string failure,
                           std::vector<std::string> log)
{
    MANTICORE_ASSERT(lane == 0, "engine has 1 lane");
    _cycle = cycle;
    _status = status;
    _failureMessage = std::move(failure);
    _displayLog = std::move(log);
}

void
Evaluator::setInput(const std::string &name, const BitVector &value)
{
    driveInput(resolveInput(_netlist, name, value), value);
}

void
Evaluator::driveInput(NodeId input, const BitVector &value)
{
    MANTICORE_ASSERT(input < _netlist.numNodes() &&
                         _netlist.node(input).kind == OpKind::Input &&
                         _netlist.node(input).width == value.width(),
                     "bad driveInput target");
    _inputs[input] = value;
}

void
Evaluator::evaluateNodes()
{
    const auto &nodes = _netlist.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        auto op = [&](unsigned k) -> const BitVector & {
            return _values[n.operands[k]];
        };
        switch (n.kind) {
          case OpKind::Const: _values[i] = n.value; break;
          case OpKind::Input: _values[i] = _inputs[i]; break;
          case OpKind::RegRead: _values[i] = _regs[n.regId]; break;
          case OpKind::MemRead: {
            const auto &mem = _mems[n.memId];
            if (mem.empty()) { // guarded against in validate()
                _values[i] = BitVector(n.width);
                break;
            }
            uint64_t addr = op(0).toUint64() % mem.size();
            _values[i] = mem[addr];
            break;
          }
          case OpKind::Add: _values[i] = op(0).add(op(1)); break;
          case OpKind::Sub: _values[i] = op(0).sub(op(1)); break;
          case OpKind::Mul: _values[i] = op(0).mul(op(1)); break;
          case OpKind::And: _values[i] = op(0).bitAnd(op(1)); break;
          case OpKind::Or: _values[i] = op(0).bitOr(op(1)); break;
          case OpKind::Xor: _values[i] = op(0).bitXor(op(1)); break;
          case OpKind::Not: _values[i] = op(0).bitNot(); break;
          case OpKind::Shl: {
            const BitVector &amt = op(1);
            uint64_t a = amt.fitsUint64() ? amt.toUint64() : n.width;
            _values[i] = op(0).shl(a);
            break;
          }
          case OpKind::Lshr: {
            const BitVector &amt = op(1);
            uint64_t a = amt.fitsUint64() ? amt.toUint64() : n.width;
            _values[i] = op(0).lshr(a);
            break;
          }
          case OpKind::Eq: _values[i] = op(0).eq(op(1)); break;
          case OpKind::Ult: _values[i] = op(0).ult(op(1)); break;
          case OpKind::Slt: _values[i] = op(0).slt(op(1)); break;
          case OpKind::Mux:
            _values[i] = op(0).isZero() ? op(2) : op(1);
            break;
          case OpKind::Slice: _values[i] = op(0).slice(n.lo, n.width); break;
          case OpKind::Concat: _values[i] = op(0).concat(op(1)); break;
          case OpKind::ZExt: _values[i] = op(0).resize(n.width); break;
          case OpKind::SExt: _values[i] = op(0).sext(n.width); break;
          case OpKind::RedOr: _values[i] = op(0).reduceOr(); break;
          case OpKind::RedAnd: _values[i] = op(0).reduceAnd(); break;
          case OpKind::RedXor: _values[i] = op(0).reduceXor(); break;
        }
    }
}

std::string
Evaluator::formatDisplay(const std::string &format,
                         const std::vector<BitVector> &args)
{
    std::string out;
    size_t arg = 0;
    for (size_t i = 0; i < format.size(); ++i) {
        if (format[i] == '%' && i + 1 < format.size()) {
            char spec = format[i + 1];
            if (spec == '%') {
                out.push_back('%');
                ++i;
                continue;
            }
            if (spec == 'd' || spec == 'x' || spec == 'h' || spec == 'b') {
                MANTICORE_ASSERT(arg < args.size(),
                                 "too few display arguments");
                const BitVector &v = args[arg++];
                if (spec == 'd' && v.fitsUint64())
                    out += std::to_string(v.toUint64());
                else
                    out += v.toString();
                ++i;
                continue;
            }
        }
        out.push_back(format[i]);
    }
    return out;
}

SimStatus
Evaluator::step()
{
    if (_status != SimStatus::Ok)
        return _status;

    evaluateNodes();

    // Side effects observe this cycle's combinational values.
    for (const Assert &a : _netlist.asserts()) {
        if (!_values[a.enable].isZero() && _values[a.cond].isZero()) {
            _status = SimStatus::AssertFailed;
            _failureMessage = "cycle " + std::to_string(_cycle) +
                              ": assertion failed: " + a.message;
            return _status;
        }
    }
    for (const Display &d : _netlist.displays()) {
        if (!_values[d.enable].isZero()) {
            std::vector<BitVector> args;
            for (NodeId arg : d.args)
                args.push_back(_values[arg]);
            std::string line = formatDisplay(d.format, args);
            _displayLog.push_back(line);
            if (onDisplay)
                onDisplay(line);
        }
    }
    bool finished = false;
    for (const Finish &f : _netlist.finishes())
        if (!_values[f.enable].isZero())
            finished = true;

    // Commit: registers then memory writes (all reads already done).
    for (size_t r = 0; r < _regs.size(); ++r)
        _regs[r] = _values[_netlist.reg(static_cast<RegId>(r)).next];
    for (const MemWrite &w : _netlist.memWrites()) {
        if (!_values[w.enable].isZero()) {
            auto &mem = _mems[w.mem];
            if (mem.empty()) // guarded against in validate()
                continue;
            uint64_t addr = _values[w.addr].toUint64() % mem.size();
            mem[addr] = _values[w.data];
        }
    }

    ++_cycle;
    if (finished)
        _status = SimStatus::Finished;
    return _status;
}

BitVector
Evaluator::regValue(const std::string &name) const
{
    return _regs[resolveRegister(_netlist, name)];
}

BitVector
Evaluator::memValue(MemId id, uint64_t addr) const
{
    MANTICORE_ASSERT(id < _mems.size() && addr < _mems[id].size(),
                     "memValue out of range");
    return _mems[id][addr];
}

} // namespace manticore::netlist
