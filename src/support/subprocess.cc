#include "support/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace manticore {

CommandResult
runCommand(const std::vector<std::string> &argv)
{
    CommandResult result;
    if (argv.empty()) {
        result.output = "empty command";
        return result;
    }

    int fds[2];
    if (pipe(fds) != 0) {
        result.output = std::strerror(errno);
        return result;
    }

    pid_t pid = fork();
    if (pid < 0) {
        result.output = std::strerror(errno);
        close(fds[0]);
        close(fds[1]);
        return result;
    }

    if (pid == 0) {
        // Child: stdout and stderr both into the pipe's write end.
        close(fds[0]);
        dup2(fds[1], STDOUT_FILENO);
        dup2(fds[1], STDERR_FILENO);
        close(fds[1]);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        execvp(args[0], args.data());
        // exec failed: report through the pipe and exit 127 like a
        // shell would.
        const char *err = std::strerror(errno);
        (void)!write(STDERR_FILENO, args[0], std::strlen(args[0]));
        (void)!write(STDERR_FILENO, ": ", 2);
        (void)!write(STDERR_FILENO, err, std::strlen(err));
        _exit(127);
    }

    close(fds[1]);
    static constexpr size_t kMaxOutput = 64 * 1024;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fds[0], buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        if (result.output.size() < kMaxOutput)
            result.output.append(
                buf, static_cast<size_t>(n) <
                             kMaxOutput - result.output.size()
                         ? static_cast<size_t>(n)
                         : kMaxOutput - result.output.size());
    }
    close(fds[0]);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR)
        continue;
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

} // namespace manticore
