/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user-facing errors (clean
 * exit), warn()/inform() for status messages.
 */

#ifndef MANTICORE_SUPPORT_LOGGING_HH
#define MANTICORE_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace manticore {

/** Terminate with an internal-error message; use for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with a user-error message; use for bad inputs/configs. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr without stopping. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace manticore

#define MANTICORE_PANIC(...) \
    ::manticore::panicImpl(__FILE__, __LINE__, \
                           ::manticore::detail::formatAll(__VA_ARGS__))

#define MANTICORE_FATAL(...) \
    ::manticore::fatalImpl(__FILE__, __LINE__, \
                           ::manticore::detail::formatAll(__VA_ARGS__))

#define MANTICORE_WARN(...) \
    ::manticore::warnImpl(::manticore::detail::formatAll(__VA_ARGS__))

#define MANTICORE_INFORM(...) \
    ::manticore::informImpl(::manticore::detail::formatAll(__VA_ARGS__))

/** Assert that must hold regardless of user input (internal invariant). */
#define MANTICORE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MANTICORE_PANIC("assertion failed: " #cond " ", \
                            ::manticore::detail::formatAll(__VA_ARGS__)); \
        } \
    } while (0)

#endif // MANTICORE_SUPPORT_LOGGING_HH
