/**
 * @file
 * Partition-merge strategy selector, shared by the ISA-level
 * partitioner (compiler/partition.hh) and the netlist-level
 * partitioner behind the parallel evaluator (netlist/partition.hh).
 * Both implement the same pair of §6.1 strategies, so harnesses sweep
 * one enum across both layers.
 */

#ifndef MANTICORE_SUPPORT_MERGEALGO_HH
#define MANTICORE_SUPPORT_MERGEALGO_HH

namespace manticore {

enum class MergeAlgo
{
    Balanced, ///< communication-aware balanced merging (B)
    Lpt,      ///< longest-processing-time-first bin packing (L)
};

inline const char *
mergeAlgoName(MergeAlgo algo)
{
    return algo == MergeAlgo::Balanced ? "balanced" : "lpt";
}

} // namespace manticore

#endif // MANTICORE_SUPPORT_MERGEALGO_HH
