/**
 * @file
 * Content hashing for on-disk caches: 64-bit FNV-1a over byte
 * streams plus hex formatting.  Used by the AOT engine to key
 * compiled shared objects on (generated source, limbops version,
 * compiler, flags) — see src/netlist/aot.hh.  Not cryptographic; a
 * collision costs a stale simulation artifact, which the embedded
 * key symbol check in the AOT loader turns into a recompile.
 */

#ifndef MANTICORE_SUPPORT_HASHING_HH
#define MANTICORE_SUPPORT_HASHING_HH

#include <cstdint>
#include <cstddef>
#include <string>

namespace manticore {

/** Incremental FNV-1a 64: fold more bytes into a running hash. */
inline uint64_t
fnv1a64(const void *data, size_t size,
        uint64_t hash = 0xcbf29ce484222325ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

inline uint64_t
fnv1a64(const std::string &s, uint64_t hash = 0xcbf29ce484222325ull)
{
    return fnv1a64(s.data(), s.size(), hash);
}

/** Fixed-width (16 digit) lowercase hex spelling of a hash. */
inline std::string
hashHex(uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace manticore

#endif // MANTICORE_SUPPORT_HASHING_HH
