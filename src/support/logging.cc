#include "support/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace manticore {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace manticore
