/**
 * @file
 * Minimal synchronous subprocess runner: fork/execvp a command,
 * capture its combined stdout+stderr, wait for exit.  Used by the
 * AOT engine to invoke the host C++ toolchain (see
 * src/netlist/aot.hh); deliberately tiny — no shell, no pipes into
 * the child, no async — because a compiler invocation is all the
 * repository needs.
 */

#ifndef MANTICORE_SUPPORT_SUBPROCESS_HH
#define MANTICORE_SUPPORT_SUBPROCESS_HH

#include <string>
#include <vector>

namespace manticore {

struct CommandResult
{
    /// Child exit code; -1 when the command could not be spawned or
    /// exited abnormally (signal).
    int exitCode = -1;
    /// Combined stdout + stderr of the child (head-capped so a
    /// runaway child cannot exhaust memory).
    std::string output;

    bool ok() const { return exitCode == 0; }
};

/** Run `argv` (argv[0] is resolved through $PATH) and wait for it.
 *  Never throws and never fatals: toolchain availability is probed
 *  through this, so failure to spawn is an ordinary result. */
CommandResult runCommand(const std::vector<std::string> &argv);

} // namespace manticore

#endif // MANTICORE_SUPPORT_SUBPROCESS_HH
