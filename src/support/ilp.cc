#include "support/ilp.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace manticore {

int
IlpProblem::addVariable(double objective)
{
    _objective.push_back(objective);
    return static_cast<int>(_objective.size()) - 1;
}

void
IlpProblem::addConstraint(const std::vector<int> &vars,
                          const std::vector<double> &coeffs, double bound)
{
    MANTICORE_ASSERT(vars.size() == coeffs.size(), "row size mismatch");
    for (double c : coeffs)
        MANTICORE_ASSERT(c >= 0.0, "ILP solver requires coeffs >= 0");
    _rowVars.push_back(vars);
    _rowCoeffs.push_back(coeffs);
    _bounds.push_back(bound);
}

void
IlpProblem::addAtMostOne(const std::vector<int> &vars)
{
    addConstraint(vars, std::vector<double>(vars.size(), 1.0), 1.0);
}

namespace {

/** Branch-and-bound search state shared across the recursion. */
struct SearchState
{
    const IlpProblem *prob;
    /// Variables ordered by decreasing objective (branch order).
    std::vector<int> order;
    /// Remaining objective mass from a given order position onward.
    std::vector<double> suffixProfit;
    /// Slack left in each constraint row.
    std::vector<double> slack;
    std::vector<bool> current;
    std::vector<bool> best;
    double currentProfit = 0.0;
    double bestProfit = -1.0;
    uint64_t nodes = 0;
    uint64_t budget = 0;
    bool aborted = false;
    std::vector<std::vector<int>> varRows;
};

/** True if setting var to one keeps all of its rows feasible. */
bool
fits(const SearchState &st, int var)
{
    const auto &prob = *st.prob;
    for (int row : st.varRows[var]) {
        const auto &rv = prob._rowVars[row];
        const auto &rc = prob._rowCoeffs[row];
        double coeff = 0.0;
        for (size_t i = 0; i < rv.size(); ++i) {
            if (rv[i] == var) {
                coeff = rc[i];
                break;
            }
        }
        if (coeff > st.slack[row] + 1e-9)
            return false;
    }
    return true;
}

void
apply(SearchState &st, int var, int dir)
{
    const auto &prob = *st.prob;
    for (int row : st.varRows[var]) {
        const auto &rv = prob._rowVars[row];
        const auto &rc = prob._rowCoeffs[row];
        for (size_t i = 0; i < rv.size(); ++i) {
            if (rv[i] == var) {
                st.slack[row] -= dir * rc[i];
                break;
            }
        }
    }
}

void
branch(SearchState &st, size_t pos)
{
    if (st.aborted)
        return;
    if (++st.nodes > st.budget) {
        st.aborted = true;
        return;
    }
    if (st.currentProfit > st.bestProfit) {
        st.bestProfit = st.currentProfit;
        st.best = st.current;
    }
    if (pos >= st.order.size())
        return;
    // Prune: even taking every remaining variable cannot beat the best.
    if (st.currentProfit + st.suffixProfit[pos] <= st.bestProfit + 1e-12)
        return;

    int var = st.order[pos];
    // Try x=1 first (profit-greedy order makes this the promising side).
    if (st.prob->_objective[var] > 0 && fits(st, var)) {
        apply(st, var, +1);
        st.current[var] = true;
        st.currentProfit += st.prob->_objective[var];
        branch(st, pos + 1);
        st.currentProfit -= st.prob->_objective[var];
        st.current[var] = false;
        apply(st, var, -1);
    }
    branch(st, pos + 1);
}

} // namespace

IlpSolution
IlpSolver::solve(const IlpProblem &problem) const
{
    int n = problem.numVariables();
    SearchState st;
    st.prob = &problem;
    st.budget = _nodeBudget;
    st.slack = problem._bounds;
    st.current.assign(n, false);
    st.best.assign(n, false);

    st.varRows.assign(n, {});
    for (int row = 0; row < problem.numConstraints(); ++row)
        for (int v : problem._rowVars[row])
            st.varRows[v].push_back(row);

    st.order.resize(n);
    std::iota(st.order.begin(), st.order.end(), 0);
    std::sort(st.order.begin(), st.order.end(), [&](int a, int b) {
        return problem._objective[a] > problem._objective[b];
    });

    st.suffixProfit.assign(n + 1, 0.0);
    for (int i = n - 1; i >= 0; --i) {
        double obj = problem._objective[st.order[i]];
        st.suffixProfit[i] = st.suffixProfit[i + 1] + std::max(0.0, obj);
    }

    st.bestProfit = 0.0;
    branch(st, 0);

    IlpSolution sol;
    sol.assignment = st.best;
    sol.objective = st.bestProfit;
    sol.provenOptimal = !st.aborted;
    sol.nodesExplored = st.nodes;
    return sol;
}

} // namespace manticore
