/**
 * @file
 * Non-allocating kernels over little-endian 64-bit limb spans — the
 * zero-allocation core that BitVector and the compiled netlist
 * evaluator share.  Every function writes its result into caller
 * storage; none allocates.  A value of width w occupies nlimbs(w)
 * limbs and keeps all bits above w at zero (the same invariant
 * BitVector maintains); every kernel that can produce high garbage
 * re-masks before returning.
 *
 * Unless noted otherwise the destination span must not alias the
 * sources (the compiled evaluator's arena gives every node a private
 * slot, so this holds by construction there).
 */

#ifndef MANTICORE_SUPPORT_LIMBOPS_HH
#define MANTICORE_SUPPORT_LIMBOPS_HH

#include <cstddef>
#include <cstdint>

namespace manticore::limbops {

inline unsigned
nlimbs(unsigned width)
{
    return (width + 63) / 64;
}

/** Mask covering the valid bits of the top limb of a width-w value. */
inline uint64_t
topMask(unsigned width)
{
    unsigned rem = width % 64;
    return rem == 0 ? ~0ull : (~0ull >> (64 - rem));
}

inline void
maskTop(uint64_t *v, unsigned width)
{
    if (width != 0)
        v[nlimbs(width) - 1] &= topMask(width);
}

inline void
clear(uint64_t *d, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        d[i] = 0;
}

/** d and s may alias (copy is limb-by-limb forward). */
inline void
copy(uint64_t *d, const uint64_t *s, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        d[i] = s[i];
}

inline bool
isZero(const uint64_t *s, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        if (s[i] != 0)
            return false;
    return true;
}

inline bool
fitsUint64(const uint64_t *s, unsigned n)
{
    for (unsigned i = 1; i < n; ++i)
        if (s[i] != 0)
            return false;
    return true;
}

inline void
add(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    unsigned __int128 carry = 0;
    for (unsigned i = 0; i < n; ++i) {
        unsigned __int128 s = carry;
        s += a[i];
        s += b[i];
        d[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    maskTop(d, width);
}

inline void
sub(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    unsigned __int128 borrow = 0;
    for (unsigned i = 0; i < n; ++i) {
        unsigned __int128 x = static_cast<unsigned __int128>(a[i]);
        x -= b[i];
        x -= borrow;
        d[i] = static_cast<uint64_t>(x);
        borrow = (x >> 64) ? 1 : 0;
    }
    maskTop(d, width);
}

/** Truncating schoolbook multiply; d must not alias a or b. */
inline void
mul(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    clear(d, n);
    for (unsigned i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        uint64_t carry = 0;
        for (unsigned j = 0; i + j < n; ++j) {
            unsigned __int128 cur = d[i + j];
            cur += static_cast<unsigned __int128>(a[i]) * b[j];
            cur += carry;
            d[i + j] = static_cast<uint64_t>(cur);
            carry = static_cast<uint64_t>(cur >> 64);
        }
    }
    maskTop(d, width);
}

inline void
bitAnd(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        d[i] = a[i] & b[i];
}

inline void
bitOr(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        d[i] = a[i] | b[i];
}

inline void
bitXor(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        d[i] = a[i] ^ b[i];
}

inline void
bitNot(uint64_t *d, const uint64_t *a, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        d[i] = ~a[i];
    maskTop(d, width);
}

/** Left shift by a dynamic amount; amounts >= width yield zero.
 *  d must not alias a. */
inline void
shl(uint64_t *d, const uint64_t *a, uint64_t amount, unsigned width)
{
    unsigned n = nlimbs(width);
    if (amount >= width) {
        clear(d, n);
        return;
    }
    unsigned limb_shift = static_cast<unsigned>(amount / 64);
    unsigned bit_shift = static_cast<unsigned>(amount % 64);
    for (unsigned i = n; i-- > limb_shift;) {
        uint64_t v = a[i - limb_shift] << bit_shift;
        if (bit_shift != 0 && i > limb_shift)
            v |= a[i - limb_shift - 1] >> (64 - bit_shift);
        d[i] = v;
    }
    for (unsigned i = 0; i < limb_shift && i < n; ++i)
        d[i] = 0;
    maskTop(d, width);
}

/** Logical right shift; amounts >= width yield zero.  d must not
 *  alias a. */
inline void
lshr(uint64_t *d, const uint64_t *a, uint64_t amount, unsigned width)
{
    unsigned n = nlimbs(width);
    if (amount >= width) {
        clear(d, n);
        return;
    }
    unsigned limb_shift = static_cast<unsigned>(amount / 64);
    unsigned bit_shift = static_cast<unsigned>(amount % 64);
    for (unsigned i = 0; i + limb_shift < n; ++i) {
        uint64_t v = a[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < n)
            v |= a[i + limb_shift + 1] << (64 - bit_shift);
        d[i] = v;
    }
    for (unsigned i = n - limb_shift; i < n; ++i)
        d[i] = 0;
}

inline bool
eq(const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

inline bool
ult(const uint64_t *a, const uint64_t *b, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = n; i-- > 0;)
        if (a[i] != b[i])
            return a[i] < b[i];
    return false;
}

inline bool
slt(const uint64_t *a, const uint64_t *b, unsigned width)
{
    bool sa = (a[(width - 1) / 64] >> ((width - 1) % 64)) & 1;
    bool sb = (b[(width - 1) / 64] >> ((width - 1) % 64)) & 1;
    if (sa != sb)
        return sa;
    return ult(a, b, width);
}

/** Extract bits [lo, lo+len) of a width-src_width value into d.
 *  d must not alias s. */
inline void
slice(uint64_t *d, const uint64_t *s, unsigned src_width, unsigned lo,
      unsigned len)
{
    unsigned sn = nlimbs(src_width);
    unsigned dn = nlimbs(len);
    unsigned limb_shift = lo / 64;
    unsigned bit_shift = lo % 64;
    for (unsigned i = 0; i < dn; ++i) {
        uint64_t v = 0;
        if (i + limb_shift < sn) {
            v = s[i + limb_shift] >> bit_shift;
            if (bit_shift != 0 && i + limb_shift + 1 < sn)
                v |= s[i + limb_shift + 1] << (64 - bit_shift);
        }
        d[i] = v;
    }
    maskTop(d, len);
}

/** Zero-extend (or truncate) a width-sw value into a width-dw slot. */
inline void
zext(uint64_t *d, const uint64_t *s, unsigned dw, unsigned sw)
{
    unsigned dn = nlimbs(dw);
    unsigned sn = nlimbs(sw);
    unsigned n = dn < sn ? dn : sn;
    for (unsigned i = 0; i < n; ++i)
        d[i] = s[i];
    for (unsigned i = n; i < dn; ++i)
        d[i] = 0;
    maskTop(d, dw);
}

/** Sign-extend (or truncate) a width-sw value into a width-dw slot. */
inline void
sext(uint64_t *d, const uint64_t *s, unsigned dw, unsigned sw)
{
    zext(d, s, dw, sw);
    if (dw <= sw || sw == 0)
        return;
    bool sign = (s[(sw - 1) / 64] >> ((sw - 1) % 64)) & 1;
    if (!sign)
        return;
    // Fill bits [sw, dw) with ones.
    unsigned dn = nlimbs(dw);
    unsigned limb = sw / 64;
    d[limb] |= ~0ull << (sw % 64);
    for (unsigned i = limb + 1; i < dn; ++i)
        d[i] = ~0ull;
    maskTop(d, dw);
}

/** Concatenate hi (width hw) over lo (width lw) into a hw+lw value.
 *  d must not alias hi or lo. */
inline void
concat(uint64_t *d, const uint64_t *hi, const uint64_t *lo, unsigned hw,
       unsigned lw)
{
    unsigned dw = hw + lw;
    zext(d, lo, dw, lw);
    unsigned dn = nlimbs(dw);
    unsigned hn = nlimbs(hw);
    unsigned limb_off = lw / 64;
    unsigned sh = lw % 64;
    for (unsigned j = 0; j < hn; ++j) {
        if (limb_off + j < dn)
            d[limb_off + j] |= hi[j] << sh;
        if (sh != 0 && limb_off + j + 1 < dn)
            d[limb_off + j + 1] |= hi[j] >> (64 - sh);
    }
    maskTop(d, dw);
}

inline bool
reduceOr(const uint64_t *s, unsigned width)
{
    return !isZero(s, nlimbs(width));
}

inline bool
reduceAnd(const uint64_t *s, unsigned width)
{
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i + 1 < n; ++i)
        if (s[i] != ~0ull)
            return false;
    return s[n - 1] == topMask(width);
}

inline bool
reduceXor(const uint64_t *s, unsigned width)
{
    unsigned parity = 0;
    unsigned n = nlimbs(width);
    for (unsigned i = 0; i < n; ++i)
        parity ^= static_cast<unsigned>(__builtin_popcountll(s[i]));
    return parity & 1u;
}

// ---------------------------------------------------------------------------
// N-lane ensemble kernels
// ---------------------------------------------------------------------------
//
// The ensemble arena stores N independent simulations lane-strided:
// lane l of a word lives nlimbs(width) limbs after lane l-1, so for
// the single-limb (width <= 64) values that dominate real designs the
// lanes of one word are N consecutive limbs.  These kernels execute
// one decoded op across all lanes with a unit stride — a shape the
// compiler auto-vectorises — so the per-op dispatch cost is paid once
// per N simulations.
//
// Each kernel is templated on the compile-time lane count L so the
// lane loop has a KNOWN trip count: at the instantiated ensemble
// widths {2, 4, 8, 16} (see exec/padding.hh — requested counts are
// padded up so these are the only widths that run) the loop compiles
// to straight vector ops with no remainder, and at L == 1 it folds to
// the scalar op (the tape keeps its pre-ensemble codegen for
// single-lane engines).  L == 0 takes the width from the trailing
// `lanes` argument — the dynamic fallback for >16-lane ensembles,
// whose padded counts are multiples of 16 so the vectorised body
// still never runs a scalar tail.
//
// MANTICORE_LANED marks the per-lane loops with GCC/Clang ivdep-style
// pragmas where available: the engines allocate every destination
// slot privately (see arena.hh), so lanes never alias.

#if defined(__clang__)
#define MANTICORE_LANED _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define MANTICORE_LANED _Pragma("GCC ivdep")
#else
#define MANTICORE_LANED
#endif

template <unsigned L>
inline void
addN(uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask,
     unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (a[l] + b[l]) & mask;
}

template <unsigned L>
inline void
subN(uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask,
     unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (a[l] - b[l]) & mask;
}

template <unsigned L>
inline void
mulN(uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t mask,
     unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (a[l] * b[l]) & mask;
}

template <unsigned L>
inline void
andN(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] & b[l];
}

template <unsigned L>
inline void
orN(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] | b[l];
}

template <unsigned L>
inline void
xorN(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] ^ b[l];
}

template <unsigned L>
inline void
notN(uint64_t *d, const uint64_t *a, uint64_t mask, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = ~a[l] & mask;
}

template <unsigned L>
inline void
eqN(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] == b[l];
}

template <unsigned L>
inline void
ultN(uint64_t *d, const uint64_t *a, const uint64_t *b, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] < b[l];
}

/** sbit is the operand sign bit (1 << (aw - 1)). */
template <unsigned L>
inline void
sltN(uint64_t *d, const uint64_t *a, const uint64_t *b, uint64_t sbit,
     unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (a[l] ^ sbit) < (b[l] ^ sbit);
}

template <unsigned L>
inline void
muxN(uint64_t *d, const uint64_t *sel, const uint64_t *t,
     const uint64_t *e, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = sel[l] ? t[l] : e[l];
}

template <unsigned L>
inline void
sliceN(uint64_t *d, const uint64_t *a, unsigned lo, uint64_t mask,
       unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (a[l] >> lo) & mask;
}

template <unsigned L>
inline void
concatN(uint64_t *d, const uint64_t *hi, const uint64_t *lo_,
        unsigned lw, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = (hi[l] << lw) | lo_[l];
}

template <unsigned L>
inline void
copyN(uint64_t *d, const uint64_t *a, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l];
}

/** Single-limb sign extension; requires aw < result width (callers
 *  lower the aw == width case to a plain copy). */
template <unsigned L>
inline void
sextN(uint64_t *d, const uint64_t *a, unsigned aw, uint64_t mask,
      unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    uint64_t sbit = 1ull << (aw - 1);
    uint64_t fill = (~0ull << aw) & mask;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l) {
        uint64_t v = a[l];
        d[l] = (v & sbit) ? (v | fill) : v;
    }
}

template <unsigned L>
inline void
redOrN(uint64_t *d, const uint64_t *a, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] != 0;
}

/** mask covers the operand's valid bits. */
template <unsigned L>
inline void
redAndN(uint64_t *d, const uint64_t *a, uint64_t mask, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] = a[l] == mask;
}

template <unsigned L>
inline void
redXorN(uint64_t *d, const uint64_t *a, unsigned lanes)
{
    const unsigned n = L != 0 ? L : lanes;
    MANTICORE_LANED
    for (unsigned l = 0; l < n; ++l)
        d[l] =
            static_cast<unsigned>(__builtin_popcountll(a[l])) & 1u;
}

/** Replicate one limbs-long word into every lane of a lane-strided
 *  block (constants / shared stimulus). */
inline void
broadcast(uint64_t *d, const uint64_t *s, unsigned limbs, unsigned lanes)
{
    for (unsigned l = 0; l < lanes; ++l)
        copy(d + static_cast<size_t>(l) * limbs, s, limbs);
}

} // namespace manticore::limbops

#endif // MANTICORE_SUPPORT_LIMBOPS_HH
