/**
 * @file
 * Deterministic xoshiro256** random-number generator.  Everything in
 * the repository that needs randomness (workload generators, property
 * tests) uses this so that runs are reproducible from a seed.
 */

#ifndef MANTICORE_SUPPORT_RNG_HH
#define MANTICORE_SUPPORT_RNG_HH

#include <cstdint>

namespace manticore {

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x6d616e7469636f72ull) // "manticor"
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        uint64_t z = seed;
        for (auto &s : _state) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            s = x ^ (x >> 31);
        }
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(_state[1] * 5, 7) * 9;
        uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). */
    uint64_t
    below(uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    bool chance(double p) { return (next() >> 11) * 0x1.0p-53 < p; }

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t _state[4];
};

} // namespace manticore

#endif // MANTICORE_SUPPORT_RNG_HH
