/**
 * @file
 * Minimal little-endian byte (de)serialization used by the engine
 * snapshot machinery (see engine/snapshot.hh).
 *
 * ByteWriter appends into a caller-owned std::vector<uint8_t> so a
 * long-lived Snapshot reuses its capacity across saves — after the
 * first save of a given engine the hot path is pure memcpy, no
 * allocation.  ByteReader is a bounds-checked cursor over a byte
 * span; running past the end is a loud fatal() (a truncated or
 * corrupt snapshot must never be silently half-restored).
 */

#ifndef MANTICORE_SUPPORT_BYTESTREAM_HH
#define MANTICORE_SUPPORT_BYTESTREAM_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace manticore::support {

class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &out) : _out(out) {}

    void
    bytes(const void *data, size_t size)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        _out.insert(_out.end(), p, p + size);
    }

    void u8(uint8_t v) { _out.push_back(v); }
    void u16(uint16_t v) { pod(v); }
    void u32(uint32_t v) { pod(v); }
    void u64(uint64_t v) { pod(v); }

    /** u32 length + raw bytes. */
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    size_t size() const { return _out.size(); }

  private:
    template <typename T>
    void
    pod(T v)
    {
        // Little-endian on every supported host; memcpy keeps it
        // alignment-safe.
        uint8_t buf[sizeof(T)];
        std::memcpy(buf, &v, sizeof(T));
        bytes(buf, sizeof(T));
    }

    std::vector<uint8_t> &_out;
};

class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : _data(data), _size(size)
    {}
    explicit ByteReader(const std::vector<uint8_t> &data)
        : ByteReader(data.data(), data.size())
    {}

    void
    bytes(void *out, size_t size)
    {
        if (_pos + size > _size)
            MANTICORE_FATAL("snapshot truncated: need ", size,
                            " byte(s) at offset ", _pos, " of ", _size);
        std::memcpy(out, _data + _pos, size);
        _pos += size;
    }

    uint8_t
    u8()
    {
        uint8_t v;
        bytes(&v, 1);
        return v;
    }
    uint16_t u16() { return pod<uint16_t>(); }
    uint32_t u32() { return pod<uint32_t>(); }
    uint64_t u64() { return pod<uint64_t>(); }

    std::string
    str()
    {
        uint32_t n = u32();
        if (_pos + n > _size)
            MANTICORE_FATAL("snapshot truncated: string of ", n,
                            " byte(s) at offset ", _pos, " of ", _size);
        std::string s(reinterpret_cast<const char *>(_data + _pos), n);
        _pos += n;
        return s;
    }

    size_t remaining() const { return _size - _pos; }
    bool done() const { return _pos == _size; }

  private:
    template <typename T>
    T
    pod()
    {
        T v;
        bytes(&v, sizeof(T));
        return v;
    }

    const uint8_t *_data;
    size_t _size;
    size_t _pos = 0;
};

} // namespace manticore::support

#endif // MANTICORE_SUPPORT_BYTESTREAM_HH
