/**
 * @file
 * Arbitrary-width bit vector used as the value type of the word-level
 * netlist IR and its reference evaluator.
 *
 * Semantics mirror Verilog packed vectors with unsigned arithmetic:
 * every value has an explicit width in bits; arithmetic and logic
 * operations are width-preserving and wrap modulo 2^width; comparisons
 * return a 1-bit value.  Storage is little-endian in 64-bit limbs with
 * all bits above the width kept at zero (a class invariant).
 */

#ifndef MANTICORE_SUPPORT_BITVECTOR_HH
#define MANTICORE_SUPPORT_BITVECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace manticore {

class BitVector
{
  public:
    /** Construct a zero value of the given width (width 0 is allowed
     *  only as a default-constructed placeholder). */
    explicit BitVector(unsigned width = 0);

    /** Construct from a uint64, truncated to the given width. */
    BitVector(unsigned width, uint64_t value);

    /** Build from explicit limbs (little-endian); truncates to width. */
    static BitVector fromLimbs(unsigned width,
                               const std::vector<uint64_t> &limbs);

    /** Parse from a binary string, MSB first, e.g. "1010" (width 4). */
    static BitVector fromBinaryString(const std::string &bits);

    /** All-ones value of the given width. */
    static BitVector ones(unsigned width);

    unsigned width() const { return _width; }
    bool isZero() const;

    /** Value of bit i (0 = LSB). */
    bool bit(unsigned i) const;

    /** Set bit i to v (i must be < width). */
    void setBit(unsigned i, bool v);

    /** Low 64 bits of the value. */
    uint64_t toUint64() const;

    /** True if the value fits in 64 bits. */
    bool fitsUint64() const;

    /** Arithmetic (width-preserving, operands must have equal width). */
    BitVector add(const BitVector &o) const;
    BitVector sub(const BitVector &o) const;
    BitVector mul(const BitVector &o) const;

    /** Bitwise logic (width-preserving, equal widths). */
    BitVector bitAnd(const BitVector &o) const;
    BitVector bitOr(const BitVector &o) const;
    BitVector bitXor(const BitVector &o) const;
    BitVector bitNot() const;

    /** Shifts by a dynamic amount; shifts >= width yield zero. */
    BitVector shl(uint64_t amount) const;
    BitVector lshr(uint64_t amount) const;

    /** Comparisons; result is a 1-bit vector. */
    BitVector eq(const BitVector &o) const;
    BitVector ult(const BitVector &o) const;
    BitVector slt(const BitVector &o) const;

    /** Extract bits [lo, lo+len) as a new value of width len. */
    BitVector slice(unsigned lo, unsigned len) const;

    /** Concatenate: this becomes the high part, o the low part. */
    BitVector concat(const BitVector &o) const;

    /** Zero-extend or truncate to a new width. */
    BitVector resize(unsigned new_width) const;

    /** Sign-extend (from current MSB) or truncate to a new width. */
    BitVector sext(unsigned new_width) const;

    /** OR/AND/XOR reduction over all bits; result is 1-bit. */
    BitVector reduceOr() const;
    BitVector reduceAnd() const;
    BitVector reduceXor() const;

    bool operator==(const BitVector &o) const;
    bool operator!=(const BitVector &o) const { return !(*this == o); }

    /** Hex string, e.g. "16'h00ff". */
    std::string toString() const;

    /** Stable hash for use in value-numbering tables. */
    size_t hash() const;

    const std::vector<uint64_t> &limbs() const { return _limbs; }

  private:
    void maskTop();
    static unsigned limbCount(unsigned width) { return (width + 63) / 64; }

    unsigned _width;
    std::vector<uint64_t> _limbs;
};

} // namespace manticore

namespace std {
template <>
struct hash<manticore::BitVector>
{
    size_t
    operator()(const manticore::BitVector &v) const
    {
        return v.hash();
    }
};
} // namespace std

#endif // MANTICORE_SUPPORT_BITVECTOR_HH
