/**
 * @file
 * A small exact 0/1 integer-linear-program solver used by custom
 * function synthesis (§6.2 of the paper) to select a maximum-saving set
 * of non-overlapping MFFCs.
 *
 * The model is: maximize c.x subject to A.x <= b with x binary and all
 * constraint coefficients non-negative (a set-packing structure).  The
 * solver runs branch-and-bound with a remaining-profit upper bound and
 * falls back to its own greedy incumbent when the node budget runs out,
 * so it always returns a feasible solution and reports whether it is
 * provably optimal.
 */

#ifndef MANTICORE_SUPPORT_ILP_HH
#define MANTICORE_SUPPORT_ILP_HH

#include <cstdint>
#include <vector>

namespace manticore {

class IlpProblem
{
  public:
    /** Add a binary variable with the given objective weight; returns
     *  its index. */
    int addVariable(double objective);

    /** Add a constraint sum(coeff_i * x_{var_i}) <= bound.  Coefficients
     *  must be non-negative. */
    void addConstraint(const std::vector<int> &vars,
                       const std::vector<double> &coeffs, double bound);

    /** Convenience: at most one of the given variables may be set. */
    void addAtMostOne(const std::vector<int> &vars);

    int numVariables() const { return static_cast<int>(_objective.size()); }
    int numConstraints() const { return static_cast<int>(_bounds.size()); }

    // Solver-facing internals (read-only in practice; exposed because
    // the branch-and-bound search walks them directly).
    std::vector<double> _objective;
    /// Per-constraint sparse rows.
    std::vector<std::vector<int>> _rowVars;
    std::vector<std::vector<double>> _rowCoeffs;
    std::vector<double> _bounds;
    /// Per-variable list of constraints it appears in (built on solve).
    std::vector<std::vector<int>> _varRows;
};

struct IlpSolution
{
    std::vector<bool> assignment;
    double objective = 0.0;
    /// True when branch-and-bound finished within its node budget.
    bool provenOptimal = false;
    uint64_t nodesExplored = 0;
};

class IlpSolver
{
  public:
    /** @param node_budget maximum number of branch-and-bound nodes
     *  before falling back to the best incumbent found so far. */
    explicit IlpSolver(uint64_t node_budget = 2'000'000)
        : _nodeBudget(node_budget)
    {}

    IlpSolution solve(const IlpProblem &problem) const;

  private:
    uint64_t _nodeBudget;
};

} // namespace manticore

#endif // MANTICORE_SUPPORT_ILP_HH
