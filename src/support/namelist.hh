/**
 * @file
 * Tiny helper for user-facing "no such X" diagnostics: format a list
 * of valid names, capped so errors against huge designs stay
 * readable.  Shared by the netlist evaluators' input/register lookup
 * errors and the engine layer's bindInput/probe/create errors.
 */

#ifndef MANTICORE_SUPPORT_NAMELIST_HH
#define MANTICORE_SUPPORT_NAMELIST_HH

#include <string>
#include <vector>

namespace manticore {

/** "a, b, c" — or "a, b, ... (17 total)" past `cap` entries; "none"
 *  when the list is empty. */
inline std::string
formatNameList(const std::vector<std::string> &names, size_t cap = 32)
{
    if (names.empty())
        return "none";
    std::string out;
    size_t shown = names.size() > cap ? cap : names.size();
    for (size_t i = 0; i < shown; ++i) {
        if (i)
            out += ", ";
        out += names[i];
    }
    if (shown < names.size())
        out += ", ... (" + std::to_string(names.size()) + " total)";
    return out;
}

} // namespace manticore

#endif // MANTICORE_SUPPORT_NAMELIST_HH
