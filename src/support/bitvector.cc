#include "support/bitvector.hh"

#include <algorithm>

#include "support/limbops.hh"
#include "support/logging.hh"

namespace manticore {

BitVector::BitVector(unsigned width)
    : _width(width), _limbs(limbCount(width), 0)
{
}

BitVector::BitVector(unsigned width, uint64_t value)
    : _width(width), _limbs(limbCount(width), 0)
{
    MANTICORE_ASSERT(width > 0, "value constructor needs a width");
    _limbs[0] = value;
    maskTop();
}

BitVector
BitVector::fromLimbs(unsigned width, const std::vector<uint64_t> &limbs)
{
    BitVector v(width);
    for (size_t i = 0; i < v._limbs.size() && i < limbs.size(); ++i)
        v._limbs[i] = limbs[i];
    v.maskTop();
    return v;
}

BitVector
BitVector::fromBinaryString(const std::string &bits)
{
    MANTICORE_ASSERT(!bits.empty(), "empty binary string");
    BitVector v(static_cast<unsigned>(bits.size()));
    for (size_t i = 0; i < bits.size(); ++i) {
        char c = bits[bits.size() - 1 - i];
        MANTICORE_ASSERT(c == '0' || c == '1', "bad binary digit: ", c);
        if (c == '1')
            v.setBit(static_cast<unsigned>(i), true);
    }
    return v;
}

BitVector
BitVector::ones(unsigned width)
{
    BitVector v(width);
    for (auto &l : v._limbs)
        l = ~0ull;
    v.maskTop();
    return v;
}

void
BitVector::maskTop()
{
    if (_width == 0)
        return;
    unsigned rem = _width % 64;
    if (rem != 0)
        _limbs.back() &= (~0ull >> (64 - rem));
}

bool
BitVector::isZero() const
{
    for (auto l : _limbs)
        if (l != 0)
            return false;
    return true;
}

bool
BitVector::bit(unsigned i) const
{
    MANTICORE_ASSERT(i < _width, "bit index ", i, " out of width ", _width);
    return (_limbs[i / 64] >> (i % 64)) & 1ull;
}

void
BitVector::setBit(unsigned i, bool v)
{
    MANTICORE_ASSERT(i < _width, "bit index ", i, " out of width ", _width);
    uint64_t mask = 1ull << (i % 64);
    if (v)
        _limbs[i / 64] |= mask;
    else
        _limbs[i / 64] &= ~mask;
}

uint64_t
BitVector::toUint64() const
{
    return _limbs.empty() ? 0 : _limbs[0];
}

bool
BitVector::fitsUint64() const
{
    for (size_t i = 1; i < _limbs.size(); ++i)
        if (_limbs[i] != 0)
            return false;
    return true;
}

BitVector
BitVector::add(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "add width mismatch: ", _width,
                     " vs ", o._width);
    BitVector r(_width);
    limbops::add(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::sub(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "sub width mismatch");
    BitVector r(_width);
    limbops::sub(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::mul(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "mul width mismatch");
    BitVector r(_width);
    limbops::mul(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::bitAnd(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "and width mismatch");
    BitVector r(_width);
    limbops::bitAnd(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::bitOr(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "or width mismatch");
    BitVector r(_width);
    limbops::bitOr(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::bitXor(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "xor width mismatch");
    BitVector r(_width);
    limbops::bitXor(r._limbs.data(), _limbs.data(), o._limbs.data(), _width);
    return r;
}

BitVector
BitVector::bitNot() const
{
    BitVector r(_width);
    limbops::bitNot(r._limbs.data(), _limbs.data(), _width);
    return r;
}

BitVector
BitVector::shl(uint64_t amount) const
{
    BitVector r(_width);
    if (_width != 0)
        limbops::shl(r._limbs.data(), _limbs.data(), amount, _width);
    return r;
}

BitVector
BitVector::lshr(uint64_t amount) const
{
    BitVector r(_width);
    if (_width != 0)
        limbops::lshr(r._limbs.data(), _limbs.data(), amount, _width);
    return r;
}

BitVector
BitVector::eq(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "eq width mismatch");
    return BitVector(1, _limbs == o._limbs ? 1 : 0);
}

BitVector
BitVector::ult(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "ult width mismatch");
    for (size_t i = _limbs.size(); i-- > 0;) {
        if (_limbs[i] != o._limbs[i])
            return BitVector(1, _limbs[i] < o._limbs[i] ? 1 : 0);
    }
    return BitVector(1, 0);
}

BitVector
BitVector::slt(const BitVector &o) const
{
    MANTICORE_ASSERT(_width == o._width, "slt width mismatch");
    bool sa = bit(_width - 1);
    bool sb = o.bit(_width - 1);
    if (sa != sb)
        return BitVector(1, sa ? 1 : 0);
    return ult(o);
}

BitVector
BitVector::slice(unsigned lo, unsigned len) const
{
    MANTICORE_ASSERT(len > 0 && lo + len <= _width, "slice [", lo, "+:",
                     len, "] out of width ", _width);
    return lshr(lo).resize(len);
}

BitVector
BitVector::concat(const BitVector &o) const
{
    BitVector r = resize(_width + o._width).shl(o._width);
    BitVector low = o.resize(_width + o._width);
    return r.bitOr(low);
}

BitVector
BitVector::resize(unsigned new_width) const
{
    BitVector r(new_width);
    size_t n = std::min(r._limbs.size(), _limbs.size());
    for (size_t i = 0; i < n; ++i)
        r._limbs[i] = _limbs[i];
    r.maskTop();
    return r;
}

BitVector
BitVector::sext(unsigned new_width) const
{
    if (new_width <= _width)
        return resize(new_width);
    BitVector r = resize(new_width);
    if (_width > 0 && bit(_width - 1)) {
        for (unsigned i = _width; i < new_width; ++i)
            r.setBit(i, true);
    }
    return r;
}

BitVector
BitVector::reduceOr() const
{
    return BitVector(1, isZero() ? 0 : 1);
}

BitVector
BitVector::reduceAnd() const
{
    return BitVector(1, *this == ones(_width) ? 1 : 0);
}

BitVector
BitVector::reduceXor() const
{
    unsigned parity = 0;
    for (auto l : _limbs)
        parity ^= static_cast<unsigned>(__builtin_popcountll(l)) & 1u;
    return BitVector(1, parity & 1u);
}

bool
BitVector::operator==(const BitVector &o) const
{
    return _width == o._width && _limbs == o._limbs;
}

std::string
BitVector::toString() const
{
    static const char *digits = "0123456789abcdef";
    std::string hex;
    unsigned nibbles = (_width + 3) / 4;
    for (unsigned i = 0; i < nibbles; ++i) {
        unsigned lo = i * 4;
        unsigned len = std::min(4u, _width - lo);
        uint64_t nib = lshr(lo).toUint64() & ((1u << len) - 1);
        hex.push_back(digits[nib]);
    }
    std::reverse(hex.begin(), hex.end());
    return std::to_string(_width) + "'h" + hex;
}

size_t
BitVector::hash() const
{
    size_t h = _width * 0x9e3779b97f4a7c15ull;
    for (auto l : _limbs) {
        h ^= l + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

} // namespace manticore
