#include "isa/tape_interpreter.hh"

#include <algorithm>

#include "exec/padding.hh"
#include "isa/exec_semantics.hh"
#include "support/bytestream.hh"
#include "support/limbops.hh" // MANTICORE_LANED
#include "support/logging.hh"

namespace manticore::isa {

namespace ex = exec;

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Reference: return "reference";
      case ExecMode::Tape: return "tape";
    }
    return "?";
}

bool
parseExecMode(const std::string &name, ExecMode &mode)
{
    for (ExecMode m : {ExecMode::Reference, ExecMode::Tape}) {
        if (name == execModeName(m)) {
            mode = m;
            return true;
        }
    }
    return false;
}

std::unique_ptr<InterpreterBase>
makeInterpreter(const Program &program, const MachineConfig &config,
                ExecMode mode, unsigned lanes)
{
    MANTICORE_ASSERT(lanes >= 1, "lanes must be >= 1");
    switch (mode) {
      case ExecMode::Reference:
        if (lanes != 1)
            MANTICORE_FATAL("the reference interpreter is scalar-only "
                            "(lanes=", lanes, " requested); use the "
                            "tape engine for ensembles");
        return std::make_unique<Interpreter>(program, config);
      case ExecMode::Tape:
        return std::make_unique<TapeInterpreter>(program, config,
                                                 lanes);
    }
    MANTICORE_PANIC("bad ExecMode");
}

namespace {

/// Base tape opcodes: the ISA minus NOP, in isa::Opcode order.
enum : uint8_t
{
    kSet, kMov, kAdd, kAddc, kSub, kSubb, kMul, kMulh,
    kAnd, kOr, kXor, kSll, kSrl, kSeq, kSltu, kSlts,
    kMux, kSlice, kCust, kLld, kLst, kGld, kGst, kPred,
    kSend, kExpect,
    kNumBase, // 26
};

/// Fused-pair codes: every ordered pair over the kNumPairable hottest
/// opcodes gets its own code, kPairBase + first*kNumPairable + second.
constexpr unsigned kNumPairable = 14;
constexpr uint8_t kPairBase = kNumBase; // 26..221

/// Same-opcode run codes: kRunBase + base code.  Emitted for runs of
/// length >= 3, and for length-2 runs of opcodes outside the pairable
/// set (a pairable length-2 run fuses into a pair instead).
constexpr uint8_t kRunBase = kPairBase + kNumPairable * kNumPairable;

/// Pair-table index per base code, -1 if the code does not pair.
/// Membership follows the opcode mix of compiled designs (SEND / ADD /
/// AND / SLICE / SEQ / CUST / MUX dominate; see src/isa/README.md).
constexpr int kPairIdx[kNumBase] = {
    /*Set*/ 0,   /*Mov*/ 1,  /*Add*/ 2,   /*Addc*/ 3, /*Sub*/ -1,
    /*Subb*/ -1, /*Mul*/ 4,  /*Mulh*/ 5,  /*And*/ 6,  /*Or*/ -1,
    /*Xor*/ 7,   /*Sll*/ 12, /*Srl*/ -1,  /*Seq*/ 8,  /*Sltu*/ -1,
    /*Slts*/ -1, /*Mux*/ 9,  /*Slice*/ 10, /*Cust*/ 11, /*Lld*/ -1,
    /*Lst*/ -1,  /*Gld*/ -1, /*Gst*/ -1,  /*Pred*/ -1, /*Send*/ 13,
    /*Expect*/ -1,
};

static_assert(kRunBase + kNumBase - 1 <= 0xff,
              "tape code space overflows a byte");

// The lowering maps base codes as int(Opcode) - 1; pin the enum order
// so an opcode inserted or reordered in isa.hh fails the build here
// instead of silently miswiring every handler after it.
#define MANTICORE_CODE_CHECK(NAME) \
    static_assert(k##NAME == static_cast<int>(Opcode::NAME) - 1, \
                  "tape base code out of sync with isa::Opcode: " #NAME);
MANTICORE_CODE_CHECK(Set) MANTICORE_CODE_CHECK(Mov)
MANTICORE_CODE_CHECK(Add) MANTICORE_CODE_CHECK(Addc)
MANTICORE_CODE_CHECK(Sub) MANTICORE_CODE_CHECK(Subb)
MANTICORE_CODE_CHECK(Mul) MANTICORE_CODE_CHECK(Mulh)
MANTICORE_CODE_CHECK(And) MANTICORE_CODE_CHECK(Or)
MANTICORE_CODE_CHECK(Xor) MANTICORE_CODE_CHECK(Sll)
MANTICORE_CODE_CHECK(Srl) MANTICORE_CODE_CHECK(Seq)
MANTICORE_CODE_CHECK(Sltu) MANTICORE_CODE_CHECK(Slts)
MANTICORE_CODE_CHECK(Mux) MANTICORE_CODE_CHECK(Slice)
MANTICORE_CODE_CHECK(Cust) MANTICORE_CODE_CHECK(Lld)
MANTICORE_CODE_CHECK(Lst) MANTICORE_CODE_CHECK(Gld)
MANTICORE_CODE_CHECK(Gst) MANTICORE_CODE_CHECK(Pred)
MANTICORE_CODE_CHECK(Send) MANTICORE_CODE_CHECK(Expect)
#undef MANTICORE_CODE_CHECK
static_assert(kNumBase == static_cast<int>(Opcode::NumOpcodes) - 1,
              "tape base code count out of sync with isa::Opcode");

} // namespace

TapeInterpreter::TapeInterpreter(const Program &program,
                                 const MachineConfig &config,
                                 unsigned lanes)
    : _program(program), _config(config), _lanes(lanes),
      _padded(manticore::exec::paddedLaneCount(lanes))
{
    validate(program, config);
    MANTICORE_ASSERT(lanes >= 1, "lanes must be >= 1");
    if (lanes > 16)
        MANTICORE_FATAL("isa.tape ensembles cap at 16 lanes (",
                        lanes, " requested): the executor instantiates "
                        "fixed-width masked lane loops");

    // One flat register array for all processes; slot 0 is a shared
    // constant zero that absent (kNoReg) operands resolve to, so the
    // hot loop needs no bounds or presence checks.  Every stateful
    // array is lane-strided by _padded (element i of lane l at
    // i * _padded + l); at width 1 that IS the scalar layout.
    const size_t P = _padded;
    std::vector<uint32_t> sizes = ex::registerFileSizes(program);
    size_t num_procs = program.processes.size();
    _regBase.resize(num_procs);
    _regCount.resize(num_procs);
    uint32_t next = 1;
    for (size_t i = 0; i < num_procs; ++i) {
        _regBase[i] = next;
        _regCount[i] = sizes[i];
        next += sizes[i];
    }
    _regs.assign(next * P, 0);
    _scratch.assign(static_cast<size_t>(num_procs) *
                        config.scratchSize * P,
                    0);
    _pred.assign(num_procs * P, 0);

    // Broadcast the initial state across all lanes, padding included
    // (padded lanes never commit, but their slots are read by the
    // masked lane loops and must hold deterministic values).
    for (size_t i = 0; i < num_procs; ++i) {
        const Process &p = program.processes[i];
        for (const auto &[reg, v] : p.init)
            for (size_t l = 0; l < P; ++l)
                _regs[(_regBase[i] + reg) * P + l] = v;
        for (size_t a = 0; a < p.scratchInit.size(); ++a)
            for (size_t l = 0; l < P; ++l)
                _scratch[(i * config.scratchSize + a) * P + l] =
                    p.scratchInit[a];
    }
    if (P == 1) {
        for (const auto &[addr, value] : program.globalInit)
            _global.write(addr, value);
    } else {
        _laneGlobal.resize(P);
        for (auto &g : _laneGlobal)
            for (const auto &[addr, value] : program.globalInit)
                g.write(addr, value);
        _laneVcycle.assign(P, 0);
        _laneStatus.assign(P, RunStatus::Running);
        _laneInstret.assign(P, 0);
        _laneSends.assign(P, 0);
        for (size_t l = _lanes; l < P; ++l)
            _laneStatus[l] = RunStatus::Finished; // padding: born frozen
    }

    for (uint32_t pid = 0; pid < num_procs; ++pid)
        lowerProcess(pid, program);

    // The SEND message buffer is lane-strided too (message i of lane
    // l at i * P + l); lowering reserved one scalar entry per SEND.
    if (P > 1)
        _epilogue.values.assign(_epilogue.slots.size() * P, 0);
}

void
TapeInterpreter::lowerProcess(uint32_t pid, const Program &program)
{
    const Process &p = program.processes[pid];
    uint32_t base = _regBase[pid];

    // One 16-mask block per referenced CFU slot: mask[idx] bit i =
    // lut[i] bit idx, so out = OR_idx (minterm_idx(a,b,c,d) &
    // mask[idx]) reproduces CustomFunction::apply bit-exactly with
    // word-wide branchless arithmetic.
    std::vector<uint32_t> cfu_offset(p.functions.size(), ~0u);
    auto cfuMaskOffset = [&](uint16_t slot) -> uint32_t {
        if (cfu_offset[slot] != ~0u)
            return cfu_offset[slot];
        uint32_t off = static_cast<uint32_t>(_cfuMasks.size());
        const auto &lut = p.functions[slot].lut;
        for (unsigned idx = 0; idx < 16; ++idx) {
            uint16_t m = 0;
            for (unsigned lane = 0; lane < 16; ++lane)
                m |= static_cast<uint16_t>((lut[lane] >> idx) & 1)
                     << lane;
            _cfuMasks.push_back(m);
        }
        cfu_offset[slot] = off;
        return off;
    };

    auto src = [&](Reg r) -> uint32_t {
        return r == kNoReg ? 0 : base + r;
    };
    auto dstSlot = [&](const Instruction &inst) -> uint32_t {
        MANTICORE_ASSERT(inst.rd != kNoReg && inst.rd < _regCount[pid],
                         "bad destination in process ", pid, ": ",
                         inst.toString());
        return base + inst.rd;
    };

    // 1. Pre-decode, eliding NOP schedule padding: one element per
    //    real instruction, operands resolved to flat register slots.
    std::vector<Op> lowered;
    lowered.reserve(p.body.size());
    for (const Instruction &inst : p.body) {
        if (inst.opcode == Opcode::Nop) {
            ++_nopsElided;
            continue;
        }
        Op op{};
        op.imm = inst.imm;
        op.run = 1;
        op.a = src(inst.rs1);
        op.b = src(inst.rs2);
        op.c = src(inst.rs3);
        op.d = src(inst.rs4);
        // Base codes mirror isa::Opcode order (minus NOP).
        op.code =
            static_cast<uint8_t>(static_cast<int>(inst.opcode) - 1);
        switch (inst.opcode) {
          case Opcode::Slice:
            // Pre-expand lo/len into shift + mask constants.
            op.dst = dstSlot(inst);
            op.shift = static_cast<uint8_t>(inst.sliceLo());
            op.mask = ex::sliceMask(inst.sliceLen());
            break;
          case Opcode::Cust:
            // Resolve the CFU slot: pre-expand its per-lane LUTs into
            // the 16 Shannon minterm masks the fast apply path
            // consumes (aux holds the mask-block offset).
            op.dst = dstSlot(inst);
            op.aux = cfuMaskOffset(inst.imm);
            break;
          case Opcode::Lld:
            op.dst = dstSlot(inst);
            op.aux = pid * _config.scratchSize;
            break;
          case Opcode::Lst:
            op.aux = pid * _config.scratchSize;
            break;
          case Opcode::Send:
            // Resolve the target register slot now; reserve one
            // message buffer entry per static SEND (every SEND
            // executes once per Vcycle, so the dynamic message list
            // is the static one, in the same order).
            op.aux = static_cast<uint32_t>(_epilogue.slots.size());
            MANTICORE_ASSERT(inst.rd != kNoReg &&
                                 inst.rd < _regCount[inst.target],
                             "bad SEND target register: ",
                             inst.toString());
            _epilogue.slots.push_back(_regBase[inst.target] + inst.rd);
            _epilogue.values.push_back(0);
            break;
          case Opcode::Gst:
          case Opcode::Pred:
            break; // no destination
          case Opcode::Expect:
            op.aux = pid;
            break;
          case Opcode::NumOpcodes:
          case Opcode::Nop:
            MANTICORE_PANIC("bad opcode");
          default:
            op.dst = dstSlot(inst);
            break;
        }
        lowered.push_back(op);
    }

    // 2. Batch dispatches: a maximal same-opcode run of length >= 3
    //    becomes one run-head dispatch looping over its (in-stream)
    //    tail; otherwise two adjacent pairable ops fuse into a single
    //    pair-coded element.  Both execute strictly in order, so
    //    dependent neighbours need no special casing.
    size_t range_begin = _ops.size();
    uint32_t covered = 0;
    uint32_t covered_sends = 0;
    size_t i = 0, n = lowered.size();
    while (i < n) {
        uint8_t code = lowered[i].code;
        size_t run = 1;
        if (code != kExpect)
            while (i + run < n && lowered[i + run].code == code)
                ++run;
        run = std::min<size_t>(run, 0xffff);
        if (run >= 3) {
            Op head = lowered[i];
            head.code = static_cast<uint8_t>(kRunBase + code);
            head.run = static_cast<uint16_t>(run);
            _ops.push_back(head);
            _instrPrefix.push_back(++covered);
            covered_sends += code == kSend;
            _sendPrefix.push_back(covered_sends);
            for (size_t t = 1; t < run; ++t) {
                _ops.push_back(lowered[i + t]);
                _instrPrefix.push_back(++covered);
                covered_sends += code == kSend;
                _sendPrefix.push_back(covered_sends);
            }
            ++_dispatches;
            i += run;
        } else if (i + 1 < n && kPairIdx[code] >= 0 &&
                   kPairIdx[lowered[i + 1].code] >= 0) {
            Op fused = lowered[i];
            const Op &s = lowered[i + 1];
            fused.code = static_cast<uint8_t>(
                kPairBase +
                kPairIdx[code] * static_cast<int>(kNumPairable) +
                kPairIdx[s.code]);
            fused.shift2 = s.shift;
            fused.mask2 = s.mask;
            fused.imm2 = s.imm;
            fused.dst2 = s.dst;
            fused.a2 = s.a;
            fused.b2 = s.b;
            fused.c2 = s.c;
            fused.d2 = s.d;
            fused.aux2 = s.aux;
            _ops.push_back(fused);
            covered += 2;
            _instrPrefix.push_back(covered);
            covered_sends += (code == kSend) + (s.code == kSend);
            _sendPrefix.push_back(covered_sends);
            ++_dispatches;
            i += 2;
        } else if (run == 2) {
            Op head = lowered[i];
            head.code = static_cast<uint8_t>(kRunBase + code);
            head.run = 2;
            _ops.push_back(head);
            _instrPrefix.push_back(++covered);
            covered_sends += code == kSend;
            _sendPrefix.push_back(covered_sends);
            _ops.push_back(lowered[i + 1]);
            _instrPrefix.push_back(++covered);
            covered_sends += code == kSend;
            _sendPrefix.push_back(covered_sends);
            ++_dispatches;
            i += 2;
        } else {
            _ops.push_back(lowered[i]);
            _instrPrefix.push_back(++covered);
            covered_sends += code == kSend;
            _sendPrefix.push_back(covered_sends);
            ++_dispatches;
            ++i;
        }
    }

    ProcRange range;
    range.begin = static_cast<uint32_t>(range_begin);
    range.end = static_cast<uint32_t>(_ops.size());
    range.pid = pid;
    range.instrs = covered;
    range.sends = covered_sends;
    _ranges.push_back(range);
}

namespace {

/** CustomFunction::apply, restated over precomputed minterm masks:
 *  out bit i must be lut[i] >> idx_i where idx_i packs the lane's
 *  four input bits.  Exactly one minterm selector has bit i set per
 *  lane, and it is gated by mask[idx] bit i = lut[i] bit idx. */
inline uint16_t
applyCfuMasks(const uint16_t *mask, uint16_t a, uint16_t b, uint16_t c,
              uint16_t d)
{
    uint32_t na = ~static_cast<uint32_t>(a);
    uint32_t nb = ~static_cast<uint32_t>(b);
    uint32_t nc = ~static_cast<uint32_t>(c);
    uint32_t nd = ~static_cast<uint32_t>(d);
    uint32_t out = 0;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 16
#endif
    for (unsigned idx = 0; idx < 16; ++idx)
        out |= ((idx & 1 ? a : na) & (idx & 2 ? b : nb) &
                (idx & 4 ? c : nc) & (idx & 8 ? d : nd)) &
               mask[idx];
    return static_cast<uint16_t>(out);
}

} // namespace

// ---------------------------------------------------------------------------
// Executor.  Handler bodies are defined once per opcode as EXEC_<Op>(S)
// where S selects the first ("") or second ("2") field set, and the
// single / pair / run dispatch cases are generated from them.
// ---------------------------------------------------------------------------

#define EXEC_Set(S) regs[op->dst##S] = op->imm##S;
#define EXEC_Mov(S) regs[op->dst##S] = ex::value(regs[op->a##S]);
#define EXEC_Add(S) \
    regs[op->dst##S] = ex::addCarry(ex::value(regs[op->a##S]), \
                                    ex::value(regs[op->b##S]), 0);
#define EXEC_Addc(S) \
    regs[op->dst##S] = \
        ex::addCarry(ex::value(regs[op->a##S]), \
                     ex::value(regs[op->b##S]), \
                     ex::carryIn(regs[op->c##S]));
#define EXEC_Sub(S) \
    regs[op->dst##S] = ex::subBorrow(ex::value(regs[op->a##S]), \
                                     ex::value(regs[op->b##S]), 0);
#define EXEC_Subb(S) \
    regs[op->dst##S] = \
        ex::subBorrow(ex::value(regs[op->a##S]), \
                      ex::value(regs[op->b##S]), \
                      ex::carryIn(regs[op->c##S]));
#define EXEC_Mul(S) \
    regs[op->dst##S] = ex::mulLow(ex::value(regs[op->a##S]), \
                                  ex::value(regs[op->b##S]));
#define EXEC_Mulh(S) \
    regs[op->dst##S] = ex::mulHigh(ex::value(regs[op->a##S]), \
                                   ex::value(regs[op->b##S]));
#define EXEC_And(S) \
    regs[op->dst##S] = static_cast<uint16_t>( \
        ex::value(regs[op->a##S]) & ex::value(regs[op->b##S]));
#define EXEC_Or(S) \
    regs[op->dst##S] = static_cast<uint16_t>( \
        ex::value(regs[op->a##S]) | ex::value(regs[op->b##S]));
#define EXEC_Xor(S) \
    regs[op->dst##S] = static_cast<uint16_t>( \
        ex::value(regs[op->a##S]) ^ ex::value(regs[op->b##S]));
#define EXEC_Sll(S) \
    regs[op->dst##S] = ex::shiftLeft(ex::value(regs[op->a##S]), \
                                     ex::value(regs[op->b##S]));
#define EXEC_Srl(S) \
    regs[op->dst##S] = ex::shiftRight(ex::value(regs[op->a##S]), \
                                      ex::value(regs[op->b##S]));
#define EXEC_Seq(S) \
    regs[op->dst##S] = \
        ex::value(regs[op->a##S]) == ex::value(regs[op->b##S]) ? 1 : 0;
#define EXEC_Sltu(S) \
    regs[op->dst##S] = \
        ex::value(regs[op->a##S]) < ex::value(regs[op->b##S]) ? 1 : 0;
#define EXEC_Slts(S) \
    regs[op->dst##S] = ex::lessSigned(ex::value(regs[op->a##S]), \
                                      ex::value(regs[op->b##S])) \
                           ? 1 \
                           : 0;
#define EXEC_Mux(S) \
    regs[op->dst##S] = ex::predicate(regs[op->a##S]) \
                           ? ex::value(regs[op->b##S]) \
                           : ex::value(regs[op->c##S]);
#define EXEC_Slice(S) \
    regs[op->dst##S] = ex::sliceExtract(ex::value(regs[op->a##S]), \
                                        op->shift##S, op->mask##S);
#define EXEC_Cust(S) \
    regs[op->dst##S] = applyCfuMasks( \
        cfu_masks + op->aux##S, ex::value(regs[op->a##S]), \
        ex::value(regs[op->b##S]), ex::value(regs[op->c##S]), \
        ex::value(regs[op->d##S]));
#define EXEC_Lld(S) \
    { \
        uint32_t addr_ = ex::scratchAddress( \
            ex::value(regs[op->a##S]), op->imm##S, scratch_size); \
        regs[op->dst##S] = scratch[op->aux##S + addr_]; \
    }
#define EXEC_Lst(S) \
    if (pred) { \
        uint32_t addr_ = ex::scratchAddress( \
            ex::value(regs[op->a##S]), op->imm##S, scratch_size); \
        scratch[op->aux##S + addr_] = ex::value(regs[op->b##S]); \
    }
#define EXEC_Gld(S) \
    { \
        uint64_t addr_ = \
            ex::globalAddress(ex::value(regs[op->a##S]), \
                              ex::value(regs[op->b##S]), op->imm##S); \
        regs[op->dst##S] = _global.read(addr_); \
    }
#define EXEC_Gst(S) \
    if (pred) { \
        uint64_t addr_ = \
            ex::globalAddress(ex::value(regs[op->a##S]), \
                              ex::value(regs[op->b##S]), op->imm##S); \
        _global.write(addr_, ex::value(regs[op->c##S])); \
    }
#define EXEC_Pred(S) pred = ex::predicate(regs[op->a##S]);
#define EXEC_Send(S) \
    ++_sends; \
    send_values[op->aux##S] = ex::value(regs[op->a##S]);

/// Every base opcode except EXPECT (custom-cased: it can abort).
#define MANTICORE_BASE_LIST(X) \
    X(Set) X(Mov) X(Add) X(Addc) X(Sub) X(Subb) X(Mul) X(Mulh) \
    X(And) X(Or) X(Xor) X(Sll) X(Srl) X(Seq) X(Sltu) X(Slts) \
    X(Mux) X(Slice) X(Cust) X(Lld) X(Lst) X(Gld) X(Gst) X(Pred) \
    X(Send)

/// The pairable subset, with its pair-table index (== kPairIdx).
/// Two copies because the preprocessor will not re-enter a macro.
#define MANTICORE_PAIR_LIST_A(X) \
    X(Set, 0) X(Mov, 1) X(Add, 2) X(Addc, 3) X(Mul, 4) X(Mulh, 5) \
    X(And, 6) X(Xor, 7) X(Seq, 8) X(Mux, 9) X(Slice, 10) X(Cust, 11) \
    X(Sll, 12) X(Send, 13)
#define MANTICORE_PAIR_LIST_B(X, A, IA) \
    X(Set, 0, A, IA) X(Mov, 1, A, IA) X(Add, 2, A, IA) \
    X(Addc, 3, A, IA) X(Mul, 4, A, IA) X(Mulh, 5, A, IA) \
    X(And, 6, A, IA) X(Xor, 7, A, IA) X(Seq, 8, A, IA) \
    X(Mux, 9, A, IA) X(Slice, 10, A, IA) X(Cust, 11, A, IA) \
    X(Sll, 12, A, IA) X(Send, 13, A, IA)

// The dispatch tables are only correct if both pair lists agree with
// kPairIdx — enforce it at compile time (a mismatch miswires 14 case
// bodies at once, the nastiest kind of silent corruption).
#define MANTICORE_PAIR_CHECK_A(NAME, IDX) \
    static_assert(kPairIdx[k##NAME] == IDX, \
                  "pair list A / kPairIdx mismatch: " #NAME);
MANTICORE_PAIR_LIST_A(MANTICORE_PAIR_CHECK_A)
#undef MANTICORE_PAIR_CHECK_A
#define MANTICORE_PAIR_CHECK_B(NAME, IDX, A, IA) \
    static_assert(kPairIdx[k##NAME] == IDX, \
                  "pair list B / kPairIdx mismatch: " #NAME);
MANTICORE_PAIR_LIST_B(MANTICORE_PAIR_CHECK_B, unused, 0)
#undef MANTICORE_PAIR_CHECK_B

#define MANTICORE_SINGLE_CASE(NAME) \
    case k##NAME: { \
        EXEC_##NAME() \
        ++op; \
        break; \
    }

#define MANTICORE_RUN_CASE(NAME) \
    case kRunBase + k##NAME: { \
        const Op *e_ = op + op->run; \
        do { \
            EXEC_##NAME() \
        } while (++op != e_); \
        break; \
    }

#define MANTICORE_PAIR_CASE(B, IB, A, IA) \
    case kPairBase + IA *static_cast<int>(kNumPairable) + IB: { \
        EXEC_##A() \
        EXEC_##B(2) \
        ++op; \
        break; \
    }

#define MANTICORE_PAIR_ROW(A, IA) \
    MANTICORE_PAIR_LIST_B(MANTICORE_PAIR_CASE, A, IA)

RunStatus
TapeInterpreter::stepVcycle()
{
    if (_padded > 1)
        return runLaned(1);
    return runBatch(1);
}

RunStatus
TapeInterpreter::run(uint64_t max_vcycles)
{
    if (_padded > 1)
        return runLaned(max_vcycles);
    if (_status != RunStatus::Running)
        return _status;
    return runBatch(max_vcycles);
}

/** Execute up to max_vcycles Vcycles in one call: the register /
 *  scratch / epilogue base pointers are hoisted out of the per-Vcycle
 *  loop and the whole batch runs without re-entering the interpreter
 *  — one dispatch per batch instead of one virtual call plus prologue
 *  per Vcycle.  Bit-identical to a stepVcycle() loop (the engine
 *  differential suite pins this); the first Vcycle of a batch runs
 *  even when the status is already Finished, preserving stepVcycle's
 *  single-call semantics. */
RunStatus
TapeInterpreter::runBatch(uint64_t max_vcycles)
{
    if (_status == RunStatus::Failed || max_vcycles == 0)
        return _status;

    uint32_t *const regs = _regs.data();
    uint16_t *const scratch = _scratch.data();
    uint16_t *const send_values = _epilogue.values.data();
    const uint16_t *const cfu_masks = _cfuMasks.data();
    const uint32_t scratch_size = _config.scratchSize;

    for (uint64_t v = 0; v < max_vcycles; ++v) {
    RunStatus entry_status = _status;

    for (const ProcRange &pr : _ranges) {
        bool pred = _pred[pr.pid] != 0;
        const Op *op = _ops.data() + pr.begin;
        const Op *const end = _ops.data() + pr.end;

        while (op != end) {
            switch (op->code) {
              MANTICORE_BASE_LIST(MANTICORE_SINGLE_CASE)
              MANTICORE_PAIR_LIST_A(MANTICORE_PAIR_ROW)
              MANTICORE_BASE_LIST(MANTICORE_RUN_CASE)
              case kExpect: {
                if (ex::value(regs[op->a]) != ex::value(regs[op->b])) {
                    HostAction action = HostAction::Finish;
                    if (onException)
                        action = onException(op->aux, op->imm);
                    if (action == HostAction::Finish &&
                        _status == RunStatus::Running) {
                        _status = RunStatus::Finished;
                    } else if (action == HostAction::Fail) {
                        // Abort exactly like the reference: the
                        // failing EXPECT counts toward instret,
                        // nothing after it runs, no epilogue, no
                        // Vcycle increment.
                        _pred[pr.pid] = pred;
                        _instretNonNop +=
                            _instrPrefix[op - _ops.data()];
                        _status = RunStatus::Failed;
                        return _status;
                    }
                }
                ++op;
                break;
              }
              default:
                MANTICORE_PANIC("corrupt tape code ", op->code);
            }
        }

        _pred[pr.pid] = pred ? 1 : 0;
        _instretNonNop += pr.instrs;
    }

    // Vcycle epilogue: apply the buffered messages as SETs, in the
    // same (process, program-order) sequence the reference buffers.
    const uint32_t *slots = _epilogue.slots.data();
    for (size_t i = 0; i < _epilogue.slots.size(); ++i)
        regs[slots[i]] = send_values[i];

    ++_vcycle;
    if (entry_status == RunStatus::Finished)
        _status = RunStatus::Finished;
    if (_status != RunStatus::Running)
        return _status;
    } // per-Vcycle batch loop
    return _status;
}

// ---------------------------------------------------------------------------
// Laned executor.  Same tape, same dispatch structure; every handler
// is a fixed-trip lane loop over all P (padded) lanes of its
// lane-strided operands, so the compiler turns the ALU ops into
// straight vector code (see tools/check_vectorized).  Freezing is a
// per-lane blend mask: act[l] is all-ones while lane l runs and zero
// once it finished / failed / is padding, and every architectural
// write blends through it — d[l] = (r & act[l]) | (d[l] & ~act[l]) —
// so a frozen lane recomputes harmlessly and never changes state.
// Value-dependent addressing (scratch, global memory) stays scalar
// per lane behind an explicit act test; EXPECT is custom-cased like
// the scalar executor, servicing per lane through onExceptionLane.
// ---------------------------------------------------------------------------

#define EXECL_LOOP \
    MANTICORE_LANED \
    for (unsigned l = 0; l < P; ++l)
#define EXECL_R(X) (regs + static_cast<size_t>(X) * P)
#define EXECL_BLEND(D, R) \
    (D) = ((R) & act[l]) | ((D) & ~act[l])

#define EXECL_Set(S) \
    { \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        const uint32_t imm_ = op->imm##S; \
        EXECL_LOOP EXECL_BLEND(d_[l], imm_); \
    }
#define EXECL_Mov(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND(d_[l], ex::value(a_[l])); \
    }
#define EXECL_Add(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], \
            ex::addCarry(ex::value(a_[l]), ex::value(b_[l]), 0)); \
    }
#define EXECL_Addc(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        const uint32_t *c_ = EXECL_R(op->c##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::addCarry(ex::value(a_[l]), ex::value(b_[l]), \
                                ex::carryIn(c_[l]))); \
    }
#define EXECL_Sub(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], \
            ex::subBorrow(ex::value(a_[l]), ex::value(b_[l]), 0)); \
    }
#define EXECL_Subb(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        const uint32_t *c_ = EXECL_R(op->c##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::subBorrow(ex::value(a_[l]), ex::value(b_[l]), \
                                 ex::carryIn(c_[l]))); \
    }
#define EXECL_Mul(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::mulLow(ex::value(a_[l]), ex::value(b_[l]))); \
    }
#define EXECL_Mulh(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::mulHigh(ex::value(a_[l]), ex::value(b_[l]))); \
    }
#define EXECL_And(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], static_cast<uint32_t>(ex::value(a_[l]) & \
                                         ex::value(b_[l]))); \
    }
#define EXECL_Or(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], static_cast<uint32_t>(ex::value(a_[l]) | \
                                         ex::value(b_[l]))); \
    }
#define EXECL_Xor(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], static_cast<uint32_t>(ex::value(a_[l]) ^ \
                                         ex::value(b_[l]))); \
    }
#define EXECL_Sll(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], \
            ex::shiftLeft(ex::value(a_[l]), ex::value(b_[l]))); \
    }
#define EXECL_Srl(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], \
            ex::shiftRight(ex::value(a_[l]), ex::value(b_[l]))); \
    }
#define EXECL_Seq(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], \
            ex::value(a_[l]) == ex::value(b_[l]) ? 1u : 0u); \
    }
#define EXECL_Sltu(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::value(a_[l]) < ex::value(b_[l]) ? 1u : 0u); \
    }
#define EXECL_Slts(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::lessSigned(ex::value(a_[l]), \
                                  ex::value(b_[l])) \
                       ? 1u \
                       : 0u); \
    }
#define EXECL_Mux(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        const uint32_t *c_ = EXECL_R(op->c##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        EXECL_LOOP EXECL_BLEND(d_[l], \
                               ex::predicate(a_[l]) \
                                   ? ex::value(b_[l]) \
                                   : ex::value(c_[l])); \
    }
#define EXECL_Slice(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        const unsigned sh_ = op->shift##S; \
        const uint16_t m_ = op->mask##S; \
        EXECL_LOOP EXECL_BLEND( \
            d_[l], ex::sliceExtract(ex::value(a_[l]), sh_, m_)); \
    }
#define EXECL_Cust(S) \
    { \
        const uint16_t *m_ = cfu_masks + op->aux##S; \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        const uint32_t *c_ = EXECL_R(op->c##S); \
        const uint32_t *e_ = EXECL_R(op->d##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        for (unsigned l = 0; l < P; ++l) \
            EXECL_BLEND(d_[l], \
                        applyCfuMasks(m_, ex::value(a_[l]), \
                                      ex::value(b_[l]), \
                                      ex::value(c_[l]), \
                                      ex::value(e_[l]))); \
    }
#define EXECL_Lld(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        for (unsigned l = 0; l < P; ++l) { \
            if (!act[l]) \
                continue; \
            uint32_t addr_ = ex::scratchAddress( \
                ex::value(a_[l]), op->imm##S, scratch_size); \
            d_[l] = scratch[(static_cast<size_t>(op->aux##S) + \
                             addr_) * \
                                P + \
                            l]; \
        } \
    }
#define EXECL_Lst(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        for (unsigned l = 0; l < P; ++l) { \
            if (!(act[l] & predv[l])) \
                continue; \
            uint32_t addr_ = ex::scratchAddress( \
                ex::value(a_[l]), op->imm##S, scratch_size); \
            scratch[(static_cast<size_t>(op->aux##S) + addr_) * P + \
                    l] = ex::value(b_[l]); \
        } \
    }
#define EXECL_Gld(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        uint32_t *d_ = EXECL_R(op->dst##S); \
        for (unsigned l = 0; l < P; ++l) { \
            if (!act[l]) \
                continue; \
            uint64_t addr_ = ex::globalAddress(ex::value(a_[l]), \
                                               ex::value(b_[l]), \
                                               op->imm##S); \
            d_[l] = globals[l]->read(addr_); \
        } \
    }
#define EXECL_Gst(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        const uint32_t *b_ = EXECL_R(op->b##S); \
        const uint32_t *c_ = EXECL_R(op->c##S); \
        for (unsigned l = 0; l < P; ++l) { \
            if (!(act[l] & predv[l])) \
                continue; \
            uint64_t addr_ = ex::globalAddress(ex::value(a_[l]), \
                                               ex::value(b_[l]), \
                                               op->imm##S); \
            globals[l]->write(addr_, ex::value(c_[l])); \
        } \
    }
#define EXECL_Pred(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        EXECL_LOOP EXECL_BLEND(predv[l], \
                               ex::predicate(a_[l]) ? ~0u : 0u); \
    }
#define EXECL_Send(S) \
    { \
        const uint32_t *a_ = EXECL_R(op->a##S); \
        uint16_t *sv_ = \
            send_values + static_cast<size_t>(op->aux##S) * P; \
        EXECL_LOOP sv_[l] = ex::value(a_[l]); \
    }

#define MANTICORE_SINGLE_CASE_L(NAME) \
    case k##NAME: { \
        EXECL_##NAME() \
        ++op; \
        break; \
    }

#define MANTICORE_RUN_CASE_L(NAME) \
    case kRunBase + k##NAME: { \
        const Op *e2_ = op + op->run; \
        do { \
            EXECL_##NAME() \
        } while (++op != e2_); \
        break; \
    }

#define MANTICORE_PAIR_CASE_L(B, IB, A, IA) \
    case kPairBase + IA *static_cast<int>(kNumPairable) + IB: { \
        EXECL_##A() \
        EXECL_##B(2) \
        ++op; \
        break; \
    }

#define MANTICORE_PAIR_ROW_L(A, IA) \
    MANTICORE_PAIR_LIST_B(MANTICORE_PAIR_CASE_L, A, IA)

template <unsigned P>
RunStatus
TapeInterpreter::runBatchLaned(uint64_t max_vcycles)
{
    uint32_t *const regs = _regs.data();
    uint16_t *const scratch = _scratch.data();
    uint16_t *const send_values = _epilogue.values.data();
    const uint16_t *const cfu_masks = _cfuMasks.data();
    const uint32_t scratch_size = _config.scratchSize;

    GlobalMemory *globals[P];
    for (unsigned l = 0; l < P; ++l)
        globals[l] = &_laneGlobal[l];

    uint32_t act[P]; ///< all-ones = lane runs, 0 = frozen / padding
    unsigned active = 0;
    for (unsigned l = 0; l < P; ++l) {
        act[l] = _laneStatus[l] == RunStatus::Running ? ~0u : 0u;
        active += act[l] != 0;
    }
    uint8_t fin[P]; ///< Finish-pending: freeze AFTER this Vcycle

    for (uint64_t v = 0; v < max_vcycles && active; ++v) {
        for (unsigned l = 0; l < P; ++l)
            fin[l] = 0;

        for (const ProcRange &pr : _ranges) {
            uint32_t predv[P];
            for (unsigned l = 0; l < P; ++l)
                predv[l] =
                    _pred[static_cast<size_t>(pr.pid) * P + l] ? ~0u
                                                               : 0u;
            const Op *op = _ops.data() + pr.begin;
            const Op *const end = _ops.data() + pr.end;

            while (op != end) {
                switch (op->code) {
                  MANTICORE_BASE_LIST(MANTICORE_SINGLE_CASE_L)
                  MANTICORE_PAIR_LIST_A(MANTICORE_PAIR_ROW_L)
                  MANTICORE_BASE_LIST(MANTICORE_RUN_CASE_L)
                  case kExpect: {
                    const uint32_t *a_ = EXECL_R(op->a);
                    const uint32_t *b_ = EXECL_R(op->b);
                    for (unsigned l = 0; l < P; ++l) {
                        if (!act[l] ||
                            ex::value(a_[l]) == ex::value(b_[l]))
                            continue;
                        HostAction action = HostAction::Finish;
                        if (onExceptionLane)
                            action =
                                onExceptionLane(l, op->aux, op->imm);
                        else if (onException)
                            action = onException(op->aux, op->imm);
                        if (action == HostAction::Finish) {
                            fin[l] = 1;
                        } else if (action == HostAction::Fail) {
                            // Per-lane abort, exactly the scalar
                            // rules: the failing EXPECT counts toward
                            // the lane's instret, nothing after it
                            // runs for the lane, no epilogue, no
                            // Vcycle increment.
                            size_t idx_ = op - _ops.data();
                            act[l] = 0;
                            fin[l] = 0;
                            _laneStatus[l] = RunStatus::Failed;
                            _laneInstret[l] += _instrPrefix[idx_];
                            _laneSends[l] += _sendPrefix[idx_];
                            --active;
                        }
                    }
                    ++op;
                    break;
                  }
                  default:
                    MANTICORE_PANIC("corrupt tape code ", op->code);
                }
            }

            for (unsigned l = 0; l < P; ++l)
                _pred[static_cast<size_t>(pr.pid) * P + l] =
                    predv[l] ? 1 : 0;
            for (unsigned l = 0; l < P; ++l) {
                if (act[l]) {
                    _laneInstret[l] += pr.instrs;
                    _laneSends[l] += pr.sends;
                }
            }
        }

        // Vcycle epilogue: buffered messages applied as SETs, masked
        // so a lane that failed mid-Vcycle keeps its abort-point
        // state (Finish-pending lanes still apply — they complete
        // the Vcycle before freezing).
        const uint32_t *slots = _epilogue.slots.data();
        for (size_t i = 0; i < _epilogue.slots.size(); ++i) {
            uint32_t *d_ = regs + static_cast<size_t>(slots[i]) * P;
            const uint16_t *sv_ = send_values + i * P;
            MANTICORE_LANED
            for (unsigned l = 0; l < P; ++l)
                d_[l] = (sv_[l] & act[l]) | (d_[l] & ~act[l]);
        }

        for (unsigned l = 0; l < P; ++l) {
            if (!act[l])
                continue;
            ++_laneVcycle[l];
            if (fin[l]) {
                _laneStatus[l] = RunStatus::Finished;
                act[l] = 0;
                --active;
            }
        }
    }
    return status();
}

RunStatus
TapeInterpreter::runLaned(uint64_t max_vcycles)
{
    if (max_vcycles == 0)
        return status();
    switch (_padded) {
      case 2: return runBatchLaned<2>(max_vcycles);
      case 4: return runBatchLaned<4>(max_vcycles);
      case 8: return runBatchLaned<8>(max_vcycles);
      case 16: return runBatchLaned<16>(max_vcycles);
    }
    MANTICORE_PANIC("bad padded lane count ", _padded);
}

uint64_t
TapeInterpreter::vcycle() const
{
    if (_padded == 1)
        return _vcycle;
    uint64_t most = 0;
    for (unsigned l = 0; l < _lanes; ++l)
        most = std::max(most, _laneVcycle[l]);
    return most;
}

uint64_t
TapeInterpreter::instructionsExecuted() const
{
    if (_padded == 1)
        return _instretNonNop;
    uint64_t sum = 0;
    for (unsigned l = 0; l < _lanes; ++l)
        sum += _laneInstret[l];
    return sum;
}

uint64_t
TapeInterpreter::sendsExecuted() const
{
    if (_padded == 1)
        return _sends;
    uint64_t sum = 0;
    for (unsigned l = 0; l < _lanes; ++l)
        sum += _laneSends[l];
    return sum;
}

uint16_t
TapeInterpreter::regValue(uint32_t pid, Reg reg) const
{
    return regValueLane(0, pid, reg);
}

bool
TapeInterpreter::regCarry(uint32_t pid, Reg reg) const
{
    return regCarryLane(0, pid, reg);
}

uint16_t
TapeInterpreter::scratchValue(uint32_t pid, uint32_t addr) const
{
    return scratchValueLane(0, pid, addr);
}

#define MANTICORE_LANE_CHECK(lane) \
    MANTICORE_ASSERT((lane) < _lanes, "lane ", lane, \
                     " out of range (", _lanes, " lanes)")

RunStatus
TapeInterpreter::laneStatus(unsigned lane) const
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _status : _laneStatus[lane];
}

uint64_t
TapeInterpreter::laneVcycle(unsigned lane) const
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _vcycle : _laneVcycle[lane];
}

uint16_t
TapeInterpreter::regValueLane(unsigned lane, uint32_t pid,
                              Reg reg) const
{
    MANTICORE_LANE_CHECK(lane);
    MANTICORE_ASSERT(pid < _regBase.size(), "bad pid ", pid);
    return reg < _regCount[pid]
               ? ex::value(
                     _regs[static_cast<size_t>(_regBase[pid] + reg) *
                               _padded +
                           lane])
               : 0;
}

bool
TapeInterpreter::regCarryLane(unsigned lane, uint32_t pid,
                              Reg reg) const
{
    MANTICORE_LANE_CHECK(lane);
    MANTICORE_ASSERT(pid < _regBase.size(), "bad pid ", pid);
    return reg < _regCount[pid] &&
           (_regs[static_cast<size_t>(_regBase[pid] + reg) * _padded +
                  lane] &
            ex::kCarryBit);
}

uint16_t
TapeInterpreter::scratchValueLane(unsigned lane, uint32_t pid,
                                  uint32_t addr) const
{
    MANTICORE_LANE_CHECK(lane);
    MANTICORE_ASSERT(pid < _regBase.size() &&
                         addr < _config.scratchSize,
                     "bad scratch access p", pid, "[", addr, "]");
    return _scratch[(static_cast<size_t>(pid) * _config.scratchSize +
                     addr) *
                        _padded +
                    lane];
}

GlobalMemory &
TapeInterpreter::globalMemoryLane(unsigned lane)
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _global : _laneGlobal[lane];
}

const GlobalMemory &
TapeInterpreter::globalMemoryLane(unsigned lane) const
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _global : _laneGlobal[lane];
}

uint64_t
TapeInterpreter::laneInstructionsExecuted(unsigned lane) const
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _instretNonNop : _laneInstret[lane];
}

uint64_t
TapeInterpreter::laneSendsExecuted(unsigned lane) const
{
    MANTICORE_LANE_CHECK(lane);
    return _padded == 1 ? _sends : _laneSends[lane];
}

// The canonical ISA snapshot format (see InterpreterBase): one
// per-lane section in the exact byte layout the scalar engines write,
// so a lane section gathered out of the strided arrays restores on a
// 1-lane engine of either family and vice versa.  saveState is the
// requested lanes' sections concatenated in lane order (one section —
// the historical stream — when scalar).
void
TapeInterpreter::saveLaneState(unsigned lane,
                               support::ByteWriter &w) const
{
    MANTICORE_LANE_CHECK(lane);
    const size_t P = _padded;
    w.u32(static_cast<uint32_t>(_regCount.size()));
    std::vector<uint32_t> rtmp;
    std::vector<uint16_t> stmp(_config.scratchSize);
    for (size_t p = 0; p < _regCount.size(); ++p) {
        w.u32(_regCount[p]);
        rtmp.resize(_regCount[p]);
        for (size_t i = 0; i < rtmp.size(); ++i)
            rtmp[i] = _regs[(_regBase[p] + i) * P + lane];
        w.bytes(rtmp.data(), rtmp.size() * sizeof(uint32_t));
        w.u32(_config.scratchSize);
        for (size_t a = 0; a < stmp.size(); ++a)
            stmp[a] =
                _scratch[(p * _config.scratchSize + a) * P + lane];
        w.bytes(stmp.data(), stmp.size() * sizeof(uint16_t));
        w.u8(_pred[p * P + lane]);
    }
    w.u32(0); // pending messages (always empty between Vcycles)
    (P == 1 ? _global : _laneGlobal[lane]).save(w);
    w.u64(P == 1 ? _vcycle : _laneVcycle[lane]);
    w.u8(static_cast<uint8_t>(P == 1 ? _status : _laneStatus[lane]));
    w.u64(P == 1 ? _instretNonNop : _laneInstret[lane]);
    w.u64(P == 1 ? _sends : _laneSends[lane]);
}

void
TapeInterpreter::restoreLaneState(unsigned lane, support::ByteReader &r)
{
    MANTICORE_LANE_CHECK(lane);
    const size_t P = _padded;
    uint32_t nprocs = r.u32();
    if (nprocs != _regCount.size())
        MANTICORE_FATAL("snapshot/program mismatch: snapshot has ",
                        nprocs, " process(es), program has ",
                        _regCount.size(), " — refusing to restore");
    std::vector<uint32_t> rtmp;
    std::vector<uint16_t> stmp(_config.scratchSize);
    for (size_t p = 0; p < _regCount.size(); ++p) {
        uint32_t nregs = r.u32();
        if (nregs != _regCount[p])
            MANTICORE_FATAL("snapshot/program mismatch: register-file "
                            "size ", nregs, " vs ", _regCount[p],
                            " — refusing to restore");
        rtmp.resize(nregs);
        r.bytes(rtmp.data(), rtmp.size() * sizeof(uint32_t));
        for (size_t i = 0; i < rtmp.size(); ++i)
            _regs[(_regBase[p] + i) * P + lane] = rtmp[i];
        uint32_t nscratch = r.u32();
        if (nscratch != _config.scratchSize)
            MANTICORE_FATAL("snapshot/program mismatch: scratch size ",
                            nscratch, " vs ", _config.scratchSize,
                            " — refusing to restore");
        r.bytes(stmp.data(), stmp.size() * sizeof(uint16_t));
        for (size_t a = 0; a < stmp.size(); ++a)
            _scratch[(p * _config.scratchSize + a) * P + lane] =
                stmp[a];
        _pred[p * P + lane] = r.u8();
    }
    uint32_t pending = r.u32();
    if (pending != 0)
        MANTICORE_FATAL("snapshot carries ", pending, " mid-Vcycle "
                        "message(s); only Vcycle-boundary snapshots "
                        "can be restored");
    if (P == 1) {
        _global.load(r);
        _vcycle = r.u64();
        _status = static_cast<RunStatus>(r.u8());
        _instretNonNop = r.u64();
        _sends = r.u64();
    } else {
        _laneGlobal[lane].load(r);
        _laneVcycle[lane] = r.u64();
        _laneStatus[lane] = static_cast<RunStatus>(r.u8());
        _laneInstret[lane] = r.u64();
        _laneSends[lane] = r.u64();
    }
}

void
TapeInterpreter::saveState(support::ByteWriter &w) const
{
    for (unsigned l = 0; l < _lanes; ++l)
        saveLaneState(l, w);
}

void
TapeInterpreter::restoreState(support::ByteReader &r)
{
    for (unsigned l = 0; l < _lanes; ++l)
        restoreLaneState(l, r);
}

} // namespace manticore::isa
