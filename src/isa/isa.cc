#include "isa/isa.hh"

#include <sstream>

#include "support/logging.hh"

namespace manticore::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "NOP";
      case Opcode::Set: return "SET";
      case Opcode::Mov: return "MOV";
      case Opcode::Add: return "ADD";
      case Opcode::Addc: return "ADDC";
      case Opcode::Sub: return "SUB";
      case Opcode::Subb: return "SUBB";
      case Opcode::Mul: return "MUL";
      case Opcode::Mulh: return "MULH";
      case Opcode::And: return "AND";
      case Opcode::Or: return "OR";
      case Opcode::Xor: return "XOR";
      case Opcode::Sll: return "SLL";
      case Opcode::Srl: return "SRL";
      case Opcode::Seq: return "SEQ";
      case Opcode::Sltu: return "SLTU";
      case Opcode::Slts: return "SLTS";
      case Opcode::Mux: return "MUX";
      case Opcode::Slice: return "SLICE";
      case Opcode::Cust: return "CUST";
      case Opcode::Lld: return "LLD";
      case Opcode::Lst: return "LST";
      case Opcode::Gld: return "GLD";
      case Opcode::Gst: return "GST";
      case Opcode::Pred: return "PRED";
      case Opcode::Send: return "SEND";
      case Opcode::Expect: return "EXPECT";
      case Opcode::NumOpcodes: break;
    }
    return "?";
}

std::vector<Reg>
Instruction::sources() const
{
    std::vector<Reg> srcs;
    auto push = [&](Reg r) {
        if (r != kNoReg)
            srcs.push_back(r);
    };
    switch (opcode) {
      case Opcode::Nop:
      case Opcode::Set:
        break;
      case Opcode::Mov:
      case Opcode::Pred:
      case Opcode::Send:
        push(rs1);
        break;
      case Opcode::Slice:
      case Opcode::Lld:
        push(rs1);
        break;
      case Opcode::Lst:
        push(rs1);
        push(rs2);
        break;
      case Opcode::Addc:
      case Opcode::Subb:
      case Opcode::Mux:
      case Opcode::Gst:
        push(rs1);
        push(rs2);
        push(rs3);
        break;
      case Opcode::Cust:
        push(rs1);
        push(rs2);
        push(rs3);
        push(rs4);
        break;
      default:
        push(rs1);
        push(rs2);
        break;
    }
    return srcs;
}

Reg
Instruction::destination() const
{
    switch (opcode) {
      case Opcode::Nop:
      case Opcode::Lst:
      case Opcode::Gst:
      case Opcode::Pred:
      case Opcode::Send:
      case Opcode::Expect:
        return kNoReg;
      default:
        return rd;
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(opcode);
    auto r = [](Reg reg) { return "$r" + std::to_string(reg); };
    switch (opcode) {
      case Opcode::Nop:
        break;
      case Opcode::Set:
        os << " " << r(rd) << ", " << imm;
        break;
      case Opcode::Mov:
        os << " " << r(rd) << ", " << r(rs1);
        break;
      case Opcode::Slice:
        os << " " << r(rd) << ", " << r(rs1) << "[" << sliceLo() << " +: "
           << sliceLen() << "]";
        break;
      case Opcode::Cust:
        os << " " << r(rd) << ", f" << imm << "(" << r(rs1) << ", "
           << r(rs2) << ", " << r(rs3) << ", " << r(rs4) << ")";
        break;
      case Opcode::Lld:
        os << " " << r(rd) << ", [" << r(rs1) << " + " << imm << "]";
        break;
      case Opcode::Lst:
        os << " [" << r(rs1) << " + " << imm << "], " << r(rs2);
        break;
      case Opcode::Gld:
        os << " " << r(rd) << ", [" << r(rs1) << ":" << r(rs2) << "]";
        break;
      case Opcode::Gst:
        os << " [" << r(rs1) << ":" << r(rs2) << "], " << r(rs3);
        break;
      case Opcode::Pred:
        os << " " << r(rs1);
        break;
      case Opcode::Send:
        os << " p" << target << "." << r(rd) << ", " << r(rs1);
        break;
      case Opcode::Expect:
        os << " " << r(rs1) << ", " << r(rs2) << ", eid=" << imm;
        break;
      case Opcode::Addc:
      case Opcode::Subb:
      case Opcode::Mux:
        os << " " << r(rd) << ", " << r(rs1) << ", " << r(rs2) << ", "
           << r(rs3);
        break;
      default:
        os << " " << r(rd) << ", " << r(rs1) << ", " << r(rs2);
        break;
    }
    return os.str();
}

std::string
Program::toString() const
{
    std::ostringstream os;
    for (const Process &p : processes) {
        os << ".p" << p.id << (p.privileged ? " (privileged)" : "");
        if (p.id < placement.size())
            os << " @(" << placement[p.id].first << ","
               << placement[p.id].second << ")";
        os << "\n";
        for (const auto &[reg, val] : p.init)
            os << "  init $r" << reg << " = " << val << "\n";
        for (size_t i = 0; i < p.body.size(); ++i)
            os << "  0x" << std::hex << i << std::dec << ": "
               << p.body[i].toString() << "\n";
    }
    return os.str();
}

void
validate(const Program &program, const MachineConfig &config)
{
    size_t num_priv = 0;
    for (const Process &p : program.processes) {
        if (p.privileged)
            ++num_priv;
        for (const auto &[reg, v] : p.init)
            if (reg >= config.regFileSize)
                MANTICORE_FATAL("init register $r", reg,
                                " exceeds the ", config.regFileSize,
                                "-entry register file in process ",
                                p.id);
        for (const Instruction &inst : p.body) {
            bool priv_inst = inst.opcode == Opcode::Gld ||
                             inst.opcode == Opcode::Gst ||
                             inst.opcode == Opcode::Expect;
            if (priv_inst && !p.privileged)
                MANTICORE_FATAL("privileged instruction ",
                                inst.toString(), " in process ", p.id);
            bool writes = inst.opcode != Opcode::Nop &&
                          inst.opcode != Opcode::Lst &&
                          inst.opcode != Opcode::Gst &&
                          inst.opcode != Opcode::Pred &&
                          inst.opcode != Opcode::Send &&
                          inst.opcode != Opcode::Expect;
            if (writes && inst.rd == kNoReg)
                MANTICORE_FATAL("instruction without a destination "
                                "register in process ",
                                p.id, ": ", inst.toString());
            // Register-file capacity: every named register — including
            // a SEND's rd, which lives in the *target* process — must
            // fit the configured hardware file.  The engines size
            // their files from actual usage and assert instead of
            // resizing, so this is the one place capacity is policed.
            auto check_reg = [&](Reg r) {
                if (r != kNoReg && r >= config.regFileSize)
                    MANTICORE_FATAL("register $r", r, " exceeds the ",
                                    config.regFileSize,
                                    "-entry register file in process ",
                                    p.id, ": ", inst.toString());
            };
            check_reg(inst.destination());
            if (inst.opcode == Opcode::Send)
                check_reg(inst.rd);
            for (Reg s : inst.sources())
                check_reg(s);
            if (inst.opcode == Opcode::Cust &&
                inst.imm >= p.functions.size())
                MANTICORE_FATAL("CUST references missing function ",
                                inst.imm, " in process ", p.id);
            if (inst.opcode == Opcode::Send &&
                inst.target >= program.processes.size())
                MANTICORE_FATAL("SEND to unknown process ", inst.target);
            if (inst.opcode == Opcode::Send && inst.rd == kNoReg)
                MANTICORE_FATAL("SEND without a target register in "
                                "process ",
                                p.id, ": ", inst.toString());
            if (inst.opcode == Opcode::Slice &&
                (inst.sliceLo() >= 16 || inst.sliceLen() == 0 ||
                 inst.sliceLo() + inst.sliceLen() > 16))
                MANTICORE_FATAL("bad SLICE range in process ", p.id);
        }
        if (p.functions.size() > config.custSlots)
            MANTICORE_FATAL("process ", p.id, " uses ",
                            p.functions.size(), " CFU slots (max ",
                            config.custSlots, ")");
        if (p.scratchInit.size() > config.scratchSize)
            MANTICORE_FATAL("process ", p.id, " scratchInit has ",
                            p.scratchInit.size(),
                            " words but the scratchpad holds only ",
                            config.scratchSize,
                            " — the image would overflow the scratch "
                            "vector");
    }
    if (num_priv > 1)
        MANTICORE_FATAL("multiple privileged processes");
    if (!program.placement.empty()) {
        if (program.placement.size() != program.processes.size())
            MANTICORE_FATAL("placement size mismatch");
        for (auto [x, y] : program.placement)
            if (x >= config.gridX || y >= config.gridY)
                MANTICORE_FATAL("placement outside grid");
    }
}

} // namespace manticore::isa
