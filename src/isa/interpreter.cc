#include "isa/interpreter.hh"

#include "support/logging.hh"

namespace manticore::isa {

namespace {

constexpr uint32_t kCarryBit = 1u << 16;

uint16_t val(uint32_t r) { return static_cast<uint16_t>(r); }
uint32_t carry(uint32_t r) { return (r & kCarryBit) ? 1 : 0; }

} // namespace

Interpreter::Interpreter(const Program &program, const MachineConfig &config)
    : _program(program), _config(config)
{
    validate(program, config);
    _procs.resize(program.processes.size());
    for (size_t i = 0; i < program.processes.size(); ++i) {
        const Process &p = program.processes[i];
        Reg max_reg = 0;
        for (const Instruction &inst : p.body) {
            if (inst.destination() != kNoReg)
                max_reg = std::max(max_reg, inst.destination());
            for (Reg s : inst.sources())
                max_reg = std::max(max_reg, s);
            if (inst.opcode == Opcode::Send) {
                // rd names a register in the *target* process; handled
                // when the message is applied.
            }
        }
        for (const auto &[reg, v] : p.init)
            max_reg = std::max(max_reg, reg);
        _procs[i].regs.assign(static_cast<size_t>(max_reg) + 1, 0);
        for (const auto &[reg, v] : p.init)
            _procs[i].regs[reg] = v;
        _procs[i].scratch.assign(_config.scratchSize, 0);
        for (size_t a = 0; a < p.scratchInit.size(); ++a)
            _procs[i].scratch[a] = p.scratchInit[a];
    }
    for (const auto &[addr, value] : program.globalInit)
        _global.write(addr, value);
}

uint32_t &
Interpreter::regRef(uint32_t pid, Reg reg)
{
    auto &regs = _procs[pid].regs;
    if (reg >= regs.size())
        regs.resize(reg + 1, 0);
    return regs[reg];
}

uint16_t
Interpreter::regValue(uint32_t pid, Reg reg) const
{
    const auto &regs = _procs.at(pid).regs;
    return reg < regs.size() ? val(regs[reg]) : 0;
}

bool
Interpreter::regCarry(uint32_t pid, Reg reg) const
{
    const auto &regs = _procs.at(pid).regs;
    return reg < regs.size() && (regs[reg] & kCarryBit);
}

uint16_t
Interpreter::scratchValue(uint32_t pid, uint32_t addr) const
{
    return _procs.at(pid).scratch.at(addr);
}

void
Interpreter::executeProcess(uint32_t pid)
{
    const Process &p = _program.processes[pid];
    ProcState &st = _procs[pid];

    for (const Instruction &inst : p.body) {
        if (_status == RunStatus::Failed)
            return;
        if (inst.opcode != Opcode::Nop)
            ++_instretNonNop;
        auto rs = [&](Reg r) -> uint32_t {
            return r < st.regs.size() ? st.regs[r] : 0;
        };
        auto wr = [&](uint16_t v, bool c = false) {
            regRef(pid, inst.rd) = v | (c ? kCarryBit : 0);
        };
        switch (inst.opcode) {
          case Opcode::Nop:
            break;
          case Opcode::Set:
            wr(inst.imm);
            break;
          case Opcode::Mov:
            wr(val(rs(inst.rs1)));
            break;
          case Opcode::Add: {
            uint32_t s = val(rs(inst.rs1)) + val(rs(inst.rs2));
            wr(static_cast<uint16_t>(s), s > 0xffff);
            break;
          }
          case Opcode::Addc: {
            uint32_t s = val(rs(inst.rs1)) + val(rs(inst.rs2)) +
                         carry(rs(inst.rs3));
            wr(static_cast<uint16_t>(s), s > 0xffff);
            break;
          }
          case Opcode::Sub: {
            uint32_t a = val(rs(inst.rs1));
            uint32_t b = val(rs(inst.rs2));
            wr(static_cast<uint16_t>(a - b), b > a);
            break;
          }
          case Opcode::Subb: {
            uint32_t a = val(rs(inst.rs1));
            uint32_t b = val(rs(inst.rs2)) + carry(rs(inst.rs3));
            wr(static_cast<uint16_t>(a - b), b > a);
            break;
          }
          case Opcode::Mul: {
            uint32_t m = static_cast<uint32_t>(val(rs(inst.rs1))) *
                         val(rs(inst.rs2));
            wr(static_cast<uint16_t>(m));
            break;
          }
          case Opcode::Mulh: {
            uint32_t m = static_cast<uint32_t>(val(rs(inst.rs1))) *
                         val(rs(inst.rs2));
            wr(static_cast<uint16_t>(m >> 16));
            break;
          }
          case Opcode::And:
            wr(val(rs(inst.rs1)) & val(rs(inst.rs2)));
            break;
          case Opcode::Or:
            wr(val(rs(inst.rs1)) | val(rs(inst.rs2)));
            break;
          case Opcode::Xor:
            wr(val(rs(inst.rs1)) ^ val(rs(inst.rs2)));
            break;
          case Opcode::Sll: {
            unsigned amt = val(rs(inst.rs2));
            wr(amt >= 16 ? 0
                         : static_cast<uint16_t>(val(rs(inst.rs1)) << amt));
            break;
          }
          case Opcode::Srl: {
            unsigned amt = val(rs(inst.rs2));
            wr(amt >= 16 ? 0
                         : static_cast<uint16_t>(val(rs(inst.rs1)) >> amt));
            break;
          }
          case Opcode::Seq:
            wr(val(rs(inst.rs1)) == val(rs(inst.rs2)) ? 1 : 0);
            break;
          case Opcode::Sltu:
            wr(val(rs(inst.rs1)) < val(rs(inst.rs2)) ? 1 : 0);
            break;
          case Opcode::Slts:
            wr(static_cast<int16_t>(val(rs(inst.rs1))) <
                       static_cast<int16_t>(val(rs(inst.rs2)))
                   ? 1
                   : 0);
            break;
          case Opcode::Mux:
            wr((rs(inst.rs1) & 1) ? val(rs(inst.rs2))
                                  : val(rs(inst.rs3)));
            break;
          case Opcode::Slice: {
            unsigned lo = inst.sliceLo();
            unsigned len = inst.sliceLen();
            uint16_t mask =
                len >= 16 ? 0xffff
                          : static_cast<uint16_t>((1u << len) - 1);
            wr(static_cast<uint16_t>((val(rs(inst.rs1)) >> lo) & mask));
            break;
          }
          case Opcode::Cust: {
            const CustomFunction &f = p.functions[inst.imm];
            wr(f.apply(val(rs(inst.rs1)), val(rs(inst.rs2)),
                       val(rs(inst.rs3)), val(rs(inst.rs4))));
            break;
          }
          case Opcode::Lld: {
            uint32_t addr =
                (val(rs(inst.rs1)) + inst.imm) % _config.scratchSize;
            wr(st.scratch[addr]);
            break;
          }
          case Opcode::Lst: {
            if (st.pred) {
                uint32_t addr =
                    (val(rs(inst.rs1)) + inst.imm) % _config.scratchSize;
                st.scratch[addr] = val(rs(inst.rs2));
            }
            break;
          }
          case Opcode::Gld: {
            uint64_t addr = (val(rs(inst.rs1)) |
                             (static_cast<uint64_t>(val(rs(inst.rs2)))
                              << 16)) +
                            inst.imm;
            wr(_global.read(addr));
            break;
          }
          case Opcode::Gst: {
            if (st.pred) {
                uint64_t addr =
                    (val(rs(inst.rs1)) |
                     (static_cast<uint64_t>(val(rs(inst.rs2))) << 16)) +
                    inst.imm;
                _global.write(addr, val(rs(inst.rs3)));
            }
            break;
          }
          case Opcode::Pred:
            st.pred = rs(inst.rs1) & 1;
            break;
          case Opcode::Send:
            ++_sends;
            _pendingSends.push_back(
                {inst.target, inst.rd, val(rs(inst.rs1))});
            break;
          case Opcode::Expect: {
            if (val(rs(inst.rs1)) != val(rs(inst.rs2))) {
                HostAction action = HostAction::Finish;
                if (onException)
                    action = onException(pid, inst.imm);
                if (action == HostAction::Finish &&
                    _status == RunStatus::Running) {
                    _status = RunStatus::Finished;
                } else if (action == HostAction::Fail) {
                    _status = RunStatus::Failed;
                }
            }
            break;
          }
          case Opcode::NumOpcodes:
            MANTICORE_PANIC("bad opcode");
        }
    }
}

RunStatus
Interpreter::stepVcycle()
{
    if (_status == RunStatus::Failed)
        return _status;
    RunStatus entry_status = _status;

    for (uint32_t pid = 0; pid < _program.processes.size(); ++pid) {
        executeProcess(pid);
        if (_status == RunStatus::Failed)
            return _status;
    }

    // Vcycle epilogue: apply all buffered messages as SETs.
    for (const Message &m : _pendingSends)
        regRef(m.targetPid, m.targetReg) = m.value;
    _pendingSends.clear();

    ++_vcycle;
    // A Finish raised before this Vcycle keeps the program finished;
    // one raised during it takes effect now (the Vcycle completes).
    if (entry_status == RunStatus::Finished)
        _status = RunStatus::Finished;
    return _status;
}

RunStatus
Interpreter::run(uint64_t max_vcycles)
{
    for (uint64_t i = 0; i < max_vcycles && _status == RunStatus::Running;
         ++i)
        stepVcycle();
    return _status;
}

} // namespace manticore::isa
