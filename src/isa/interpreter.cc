#include "isa/interpreter.hh"

#include <algorithm>

#include "isa/exec_semantics.hh"
#include "support/bytestream.hh"
#include "support/logging.hh"

namespace manticore::isa {

namespace ex = exec;

// ---- checkpoint/restore ----------------------------------------------

void
GlobalMemory::save(support::ByteWriter &w) const
{
    std::vector<uint64_t> keys;
    keys.reserve(_pages.size());
    for (const auto &[page, _] : _pages)
        keys.push_back(page);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (uint64_t key : keys) {
        const Page &p = _pages.at(key);
        w.u64(key);
        // Raw 16-bit words + written bitmap; little-endian hosts only
        // (as is the rest of the byte format).
        w.bytes(p.words.data(), p.words.size() * sizeof(uint16_t));
        w.bytes(p.written.data(), p.written.size() * sizeof(uint64_t));
    }
    w.u64(_footprint);
}

void
GlobalMemory::load(support::ByteReader &r)
{
    _pages.clear();
    uint64_t npages = r.u64();
    for (uint64_t i = 0; i < npages; ++i) {
        uint64_t key = r.u64();
        Page &p = _pages[key];
        r.bytes(p.words.data(), p.words.size() * sizeof(uint16_t));
        r.bytes(p.written.data(), p.written.size() * sizeof(uint64_t));
    }
    _footprint = r.u64();
}

void
InterpreterBase::saveState(support::ByteWriter &) const
{
    MANTICORE_PANIC("saveState() called on an interpreter without "
                    "snapshot support");
}

void
InterpreterBase::restoreState(support::ByteReader &)
{
    MANTICORE_PANIC("restoreState() called on an interpreter without "
                    "snapshot support");
}

// ---- ensemble-view defaults: the 1-lane degenerate case --------------

#define MANTICORE_LANE0(lane) \
    MANTICORE_ASSERT((lane) == 0, "lane ", lane, \
                     " out of range on a scalar interpreter")

RunStatus
InterpreterBase::laneStatus(unsigned lane) const
{
    MANTICORE_LANE0(lane);
    return status();
}

uint64_t
InterpreterBase::laneVcycle(unsigned lane) const
{
    MANTICORE_LANE0(lane);
    return vcycle();
}

uint16_t
InterpreterBase::regValueLane(unsigned lane, uint32_t pid, Reg reg) const
{
    MANTICORE_LANE0(lane);
    return regValue(pid, reg);
}

bool
InterpreterBase::regCarryLane(unsigned lane, uint32_t pid, Reg reg) const
{
    MANTICORE_LANE0(lane);
    return regCarry(pid, reg);
}

uint16_t
InterpreterBase::scratchValueLane(unsigned lane, uint32_t pid,
                                  uint32_t addr) const
{
    MANTICORE_LANE0(lane);
    return scratchValue(pid, addr);
}

GlobalMemory &
InterpreterBase::globalMemoryLane(unsigned lane)
{
    MANTICORE_LANE0(lane);
    return globalMemory();
}

const GlobalMemory &
InterpreterBase::globalMemoryLane(unsigned lane) const
{
    MANTICORE_LANE0(lane);
    return globalMemory();
}

uint64_t
InterpreterBase::laneInstructionsExecuted(unsigned lane) const
{
    MANTICORE_LANE0(lane);
    return instructionsExecuted();
}

uint64_t
InterpreterBase::laneSendsExecuted(unsigned lane) const
{
    MANTICORE_LANE0(lane);
    return sendsExecuted();
}

void
InterpreterBase::saveLaneState(unsigned lane,
                               support::ByteWriter &w) const
{
    MANTICORE_LANE0(lane);
    saveState(w);
}

void
InterpreterBase::restoreLaneState(unsigned lane, support::ByteReader &r)
{
    MANTICORE_LANE0(lane);
    restoreState(r);
}

#undef MANTICORE_LANE0

void
Interpreter::saveState(support::ByteWriter &w) const
{
    MANTICORE_ASSERT(_pendingSends.empty(),
                     "snapshot mid-Vcycle: the message buffer must be "
                     "empty at a Vcycle boundary");
    w.u32(static_cast<uint32_t>(_procs.size()));
    for (const ProcState &p : _procs) {
        w.u32(static_cast<uint32_t>(p.regs.size()));
        w.bytes(p.regs.data(), p.regs.size() * sizeof(uint32_t));
        w.u32(static_cast<uint32_t>(p.scratch.size()));
        w.bytes(p.scratch.data(), p.scratch.size() * sizeof(uint16_t));
        w.u8(p.pred ? 1 : 0);
    }
    w.u32(0); // pending messages (always empty between Vcycles)
    _global.save(w);
    w.u64(_vcycle);
    w.u8(static_cast<uint8_t>(_status));
    w.u64(_instretNonNop);
    w.u64(_sends);
}

void
Interpreter::restoreState(support::ByteReader &r)
{
    uint32_t nprocs = r.u32();
    if (nprocs != _procs.size())
        MANTICORE_FATAL("snapshot/program mismatch: snapshot has ",
                        nprocs, " process(es), program has ",
                        _procs.size(), " — refusing to restore");
    for (ProcState &p : _procs) {
        uint32_t nregs = r.u32();
        if (nregs != p.regs.size())
            MANTICORE_FATAL("snapshot/program mismatch: register-file "
                            "size ", nregs, " vs ", p.regs.size(),
                            " — refusing to restore");
        r.bytes(p.regs.data(), p.regs.size() * sizeof(uint32_t));
        uint32_t nscratch = r.u32();
        if (nscratch != p.scratch.size())
            MANTICORE_FATAL("snapshot/program mismatch: scratch size ",
                            nscratch, " vs ", p.scratch.size(),
                            " — refusing to restore");
        r.bytes(p.scratch.data(), p.scratch.size() * sizeof(uint16_t));
        p.pred = r.u8() != 0;
    }
    uint32_t pending = r.u32();
    if (pending != 0)
        MANTICORE_FATAL("snapshot carries ", pending, " mid-Vcycle "
                        "message(s); only Vcycle-boundary snapshots "
                        "can be restored");
    _pendingSends.clear();
    _global.load(r);
    _vcycle = r.u64();
    _status = static_cast<RunStatus>(r.u8());
    _instretNonNop = r.u64();
    _sends = r.u64();
}

Interpreter::Interpreter(const Program &program, const MachineConfig &config)
    : _program(program), _config(config)
{
    validate(program, config);
    // Exactly-sized register files: a process's own uses PLUS the
    // registers incoming SENDs deliver into (a SEND's rd names a
    // register of the *target* process).  regRef asserts instead of
    // resizing, so an unsized register is a bug, not a silent grow.
    std::vector<uint32_t> reg_sizes = ex::registerFileSizes(program);
    _procs.resize(program.processes.size());
    for (size_t i = 0; i < program.processes.size(); ++i) {
        const Process &p = program.processes[i];
        _procs[i].regs.assign(reg_sizes[i], 0);
        for (const auto &[reg, v] : p.init)
            _procs[i].regs[reg] = v;
        _procs[i].scratch.assign(_config.scratchSize, 0);
        for (size_t a = 0; a < p.scratchInit.size(); ++a)
            _procs[i].scratch[a] = p.scratchInit[a];
    }
    for (const auto &[addr, value] : program.globalInit)
        _global.write(addr, value);
}

uint32_t &
Interpreter::regRef(uint32_t pid, Reg reg)
{
    auto &regs = _procs[pid].regs;
    MANTICORE_ASSERT(reg < regs.size(), "register $r", reg,
                     " of process ", pid,
                     " was not sized at boot (file has ", regs.size(),
                     " entries) — registerFileSizes missed a writer");
    return regs[reg];
}

uint16_t
Interpreter::regValue(uint32_t pid, Reg reg) const
{
    const auto &regs = _procs.at(pid).regs;
    return reg < regs.size() ? ex::value(regs[reg]) : 0;
}

bool
Interpreter::regCarry(uint32_t pid, Reg reg) const
{
    const auto &regs = _procs.at(pid).regs;
    return reg < regs.size() && (regs[reg] & ex::kCarryBit);
}

uint16_t
Interpreter::scratchValue(uint32_t pid, uint32_t addr) const
{
    return _procs.at(pid).scratch.at(addr);
}

void
Interpreter::executeProcess(uint32_t pid)
{
    const Process &p = _program.processes[pid];
    ProcState &st = _procs[pid];

    for (const Instruction &inst : p.body) {
        if (_status == RunStatus::Failed)
            return;
        if (inst.opcode != Opcode::Nop)
            ++_instretNonNop;
        auto rs = [&](Reg r) -> uint32_t {
            return r < st.regs.size() ? st.regs[r] : 0;
        };
        auto rsv = [&](Reg r) -> uint16_t { return ex::value(rs(r)); };
        auto wr = [&](uint32_t raw) { regRef(pid, inst.rd) = raw; };
        switch (inst.opcode) {
          case Opcode::Nop:
            break;
          case Opcode::Set:
            wr(inst.imm);
            break;
          case Opcode::Mov:
            wr(rsv(inst.rs1));
            break;
          case Opcode::Add:
            wr(ex::addCarry(rsv(inst.rs1), rsv(inst.rs2), 0));
            break;
          case Opcode::Addc:
            wr(ex::addCarry(rsv(inst.rs1), rsv(inst.rs2),
                            ex::carryIn(rs(inst.rs3))));
            break;
          case Opcode::Sub:
            wr(ex::subBorrow(rsv(inst.rs1), rsv(inst.rs2), 0));
            break;
          case Opcode::Subb:
            wr(ex::subBorrow(rsv(inst.rs1), rsv(inst.rs2),
                             ex::carryIn(rs(inst.rs3))));
            break;
          case Opcode::Mul:
            wr(ex::mulLow(rsv(inst.rs1), rsv(inst.rs2)));
            break;
          case Opcode::Mulh:
            wr(ex::mulHigh(rsv(inst.rs1), rsv(inst.rs2)));
            break;
          case Opcode::And:
            wr(rsv(inst.rs1) & rsv(inst.rs2));
            break;
          case Opcode::Or:
            wr(rsv(inst.rs1) | rsv(inst.rs2));
            break;
          case Opcode::Xor:
            wr(rsv(inst.rs1) ^ rsv(inst.rs2));
            break;
          case Opcode::Sll:
            wr(ex::shiftLeft(rsv(inst.rs1), rsv(inst.rs2)));
            break;
          case Opcode::Srl:
            wr(ex::shiftRight(rsv(inst.rs1), rsv(inst.rs2)));
            break;
          case Opcode::Seq:
            wr(rsv(inst.rs1) == rsv(inst.rs2) ? 1 : 0);
            break;
          case Opcode::Sltu:
            wr(rsv(inst.rs1) < rsv(inst.rs2) ? 1 : 0);
            break;
          case Opcode::Slts:
            wr(ex::lessSigned(rsv(inst.rs1), rsv(inst.rs2)) ? 1 : 0);
            break;
          case Opcode::Mux:
            wr(ex::predicate(rs(inst.rs1)) ? rsv(inst.rs2)
                                           : rsv(inst.rs3));
            break;
          case Opcode::Slice:
            wr(ex::sliceExtract(rsv(inst.rs1), inst.sliceLo(),
                                ex::sliceMask(inst.sliceLen())));
            break;
          case Opcode::Cust: {
            const CustomFunction &f = p.functions[inst.imm];
            wr(f.apply(rsv(inst.rs1), rsv(inst.rs2), rsv(inst.rs3),
                       rsv(inst.rs4)));
            break;
          }
          case Opcode::Lld: {
            uint32_t addr = ex::scratchAddress(rsv(inst.rs1), inst.imm,
                                               _config.scratchSize);
            wr(st.scratch[addr]);
            break;
          }
          case Opcode::Lst: {
            if (st.pred) {
                uint32_t addr = ex::scratchAddress(
                    rsv(inst.rs1), inst.imm, _config.scratchSize);
                st.scratch[addr] = rsv(inst.rs2);
            }
            break;
          }
          case Opcode::Gld: {
            uint64_t addr = ex::globalAddress(rsv(inst.rs1),
                                              rsv(inst.rs2), inst.imm);
            wr(_global.read(addr));
            break;
          }
          case Opcode::Gst: {
            if (st.pred) {
                uint64_t addr = ex::globalAddress(
                    rsv(inst.rs1), rsv(inst.rs2), inst.imm);
                _global.write(addr, rsv(inst.rs3));
            }
            break;
          }
          case Opcode::Pred:
            st.pred = ex::predicate(rs(inst.rs1));
            break;
          case Opcode::Send:
            ++_sends;
            _pendingSends.push_back(
                {inst.target, inst.rd, rsv(inst.rs1)});
            break;
          case Opcode::Expect: {
            if (rsv(inst.rs1) != rsv(inst.rs2)) {
                HostAction action = HostAction::Finish;
                if (onException)
                    action = onException(pid, inst.imm);
                if (action == HostAction::Finish &&
                    _status == RunStatus::Running) {
                    _status = RunStatus::Finished;
                } else if (action == HostAction::Fail) {
                    _status = RunStatus::Failed;
                }
            }
            break;
          }
          case Opcode::NumOpcodes:
            MANTICORE_PANIC("bad opcode");
        }
    }
}

RunStatus
Interpreter::stepVcycle()
{
    if (_status == RunStatus::Failed)
        return _status;
    RunStatus entry_status = _status;

    for (uint32_t pid = 0; pid < _program.processes.size(); ++pid) {
        executeProcess(pid);
        if (_status == RunStatus::Failed)
            return _status;
    }

    // Vcycle epilogue: apply all buffered messages as SETs.
    for (const Message &m : _pendingSends)
        regRef(m.targetPid, m.targetReg) = m.value;
    _pendingSends.clear();

    ++_vcycle;
    // A Finish raised before this Vcycle keeps the program finished;
    // one raised during it takes effect now (the Vcycle completes).
    if (entry_status == RunStatus::Finished)
        _status = RunStatus::Finished;
    return _status;
}

} // namespace manticore::isa
