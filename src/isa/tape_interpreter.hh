/**
 * @file
 * Flat-tape functional ISA interpreter: the lower-once / flat-dispatch
 * treatment PR 1 gave the netlist IR, applied to isa::Program.
 *
 * The constructor lowers every process body once into a single
 * contiguous array of pre-decoded ops:
 *
 *  - NOP schedule padding is elided from the tape entirely (the
 *    functional engines are untimed; instret bookkeeping still counts
 *    real instructions only, exactly like the reference),
 *  - register operands are resolved to indices into one flat dense
 *    register array (exactly sized per process via
 *    exec::registerFileSizes, with slot 0 a shared constant zero for
 *    absent operands),
 *  - SLICE lo/len are pre-expanded to a shift amount and a mask,
 *  - CUST slots are resolved at lowering into per-slot precomputed
 *    Shannon minterm masks (a branchless word-wide restatement of the
 *    per-lane LUTs),
 *  - LLD/LST carry their process's precomputed scratch base,
 *  - SENDs write into a statically-allocated message buffer whose
 *    target slots were resolved at lowering time (every SEND executes
 *    unconditionally once per Vcycle, so the dynamic message list is
 *    the static one, in the same order).
 *
 * The dominant cost of interpreting branch-free scheduled code is the
 * indirect dispatch branch, which mispredicts heavily on the long
 * repeating op sequences these programs are.  The executor therefore
 * pays one dispatch for as many instructions as it can:
 *
 *  - maximal same-opcode runs (chunked wide operations come out of
 *    the compiler as ADD ADD ADD / SEND SEND SEND bursts) execute in
 *    one dispatch that loops over the run, and
 *  - every ordered pair over the 14 hottest opcodes has a dedicated
 *    fused code (26 + 14x14 + 26 run variants = 248 < 256) whose
 *    handler executes both instructions back to back; in-pair
 *    execution is strictly sequential, so dependent pairs (ADD
 *    feeding ADDC its carry, MOV chains) need no special casing.
 *    Length-2 runs prefer a pair when the opcode is pairable and fall
 *    back to a run head otherwise.
 *
 * The Vcycle epilogue (buffered Sends applied as SETs, EXPECT
 * servicing through the host callback, the Finished/Failed status
 * protocol) is kept bit-identical to the reference Interpreter; the
 * randomized three-way differential suite enforces it.  See
 * src/isa/README.md for the layout and measured speedups.
 */

#ifndef MANTICORE_ISA_TAPE_INTERPRETER_HH
#define MANTICORE_ISA_TAPE_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "isa/interpreter.hh"
#include "isa/isa.hh"

namespace manticore::isa {

class TapeInterpreter : public InterpreterBase
{
  public:
    /** lanes > 1 builds an N-lane ensemble: N decoupled simulations
     *  over ONE shared tape, every architectural array lane-strided
     *  (element i of lane l at i * padded + l) so the executor's
     *  per-op lane loops vectorise.  The requested width is padded up
     *  to the instantiated kernel width (exec/padding.hh, capped at
     *  16); padded lanes are born frozen and invisible.  lanes == 1
     *  is bit- and codegen-identical to the pre-ensemble engine. */
    TapeInterpreter(const Program &program, const MachineConfig &config,
                    unsigned lanes = 1);

    RunStatus stepVcycle() override;
    /** Natively batched: up to max_vcycles Vcycles per call, hot-loop
     *  pointers hoisted out of the per-Vcycle loop (see runBatch). */
    RunStatus run(uint64_t max_vcycles) override;

    /** Most-advanced lane's Vcycle count (== lane 0 when scalar). */
    uint64_t vcycle() const override;
    RunStatus status() const override
    {
        return _padded == 1 ? _status : _laneStatus[0];
    }

    uint16_t regValue(uint32_t pid, Reg reg) const override;
    bool regCarry(uint32_t pid, Reg reg) const override;
    uint16_t scratchValue(uint32_t pid, uint32_t addr) const override;

    GlobalMemory &globalMemory() override
    {
        return _padded == 1 ? _global : _laneGlobal[0];
    }
    const GlobalMemory &globalMemory() const override
    {
        return _padded == 1 ? _global : _laneGlobal[0];
    }

    uint64_t instructionsExecuted() const override;
    uint64_t sendsExecuted() const override;

    // Ensemble views (lane 0 == the scalar API above).
    unsigned lanes() const override { return _lanes; }
    RunStatus laneStatus(unsigned lane) const override;
    uint64_t laneVcycle(unsigned lane) const override;
    uint16_t regValueLane(unsigned lane, uint32_t pid,
                          Reg reg) const override;
    bool regCarryLane(unsigned lane, uint32_t pid,
                      Reg reg) const override;
    uint16_t scratchValueLane(unsigned lane, uint32_t pid,
                              uint32_t addr) const override;
    GlobalMemory &globalMemoryLane(unsigned lane) override;
    const GlobalMemory &globalMemoryLane(unsigned lane) const override;
    uint64_t laneInstructionsExecuted(unsigned lane) const override;
    uint64_t laneSendsExecuted(unsigned lane) const override;

    /** Introspection for tests and benches. */
    size_t tapeLength() const { return _ops.size(); } ///< stream elems
    size_t nopsElided() const { return _nopsElided; }
    /** Dispatch events per Vcycle: single ops + fused pairs + run
     *  heads.  The whole point of the lowering is making this much
     *  smaller than the dynamic non-NOP instruction count. */
    size_t dispatches() const { return _dispatches; }

    bool snapshotSupported() const override { return true; }
    /** The requested lanes' canonical sections, in lane order (the
     *  1-lane stream is byte-identical to the reference engine's). */
    void saveState(support::ByteWriter &w) const override;
    void restoreState(support::ByteReader &r) override;
    void saveLaneState(unsigned lane,
                       support::ByteWriter &w) const override;
    void restoreLaneState(unsigned lane,
                          support::ByteReader &r) override;

  private:
    /** One pre-decoded tape element: a single instruction, a fused
     *  pair (second instruction in the *2 fields), or a same-opcode
     *  run head (run > 1; the tail elements follow in the stream and
     *  are executed by the head's loop, never dispatched). */
    struct Op
    {
        uint8_t code;
        uint8_t shift, shift2; ///< SLICE lo
        uint8_t pad = 0;
        uint16_t mask, mask2;  ///< SLICE mask
        uint16_t imm, imm2;
        uint16_t run;
        uint32_t dst, a, b, c, d, aux;
        uint32_t dst2, a2, b2, c2, d2, aux2;
    };

    struct ProcRange
    {
        uint32_t begin, end; ///< stream range in _ops
        uint32_t pid;
        uint32_t instrs; ///< non-NOP instructions covered
        uint32_t sends;  ///< static SENDs covered (laned accounting)
    };

    /// Statically-resolved SEND epilogue: message i is delivered to
    /// register slot slots[i]; the SEND op writes values[i].
    struct Epilogue
    {
        std::vector<uint32_t> slots;
        std::vector<uint16_t> values;
    };

    void lowerProcess(uint32_t pid, const Program &program);
    RunStatus runBatch(uint64_t max_vcycles);
    /** Laned executor: same dispatch structure as runBatch, every op
     *  advancing all P (padded) lanes through masked lane loops; a
     *  frozen lane's act mask blends every write back to its old
     *  value, so finish/fail freeze per lane with zero state drift. */
    template <unsigned P> RunStatus runBatchLaned(uint64_t max_vcycles);
    RunStatus runLaned(uint64_t max_vcycles); ///< dispatch on _padded

    const Program &_program;
    MachineConfig _config;

    // _lanes is the requested (API-visible) ensemble width; _padded
    // the instantiated kernel width (exec/padding.hh).  All flat
    // arrays below are lane-strided by _padded — element i of lane l
    // at i * _padded + l — which degenerates to the scalar layout at
    // width 1.  Padded lanes are broadcast-initialised, born frozen
    // (status Finished, act mask 0), and invisible to every accessor.
    unsigned _lanes = 1;
    unsigned _padded = 1;

    std::vector<uint32_t> _regs;    ///< flat 17-bit register images
    std::vector<uint32_t> _regBase; ///< per-process offset (lane 0)
    std::vector<uint32_t> _regCount;
    std::vector<uint16_t> _scratch; ///< flat, scratchSize per process
    std::vector<uint8_t> _pred;     ///< per-process predicate flag
    std::vector<Op> _ops;
    /// Per stream element: cumulative non-NOP instruction count within
    /// its process; consulted only on EXPECT-Fail aborts so instret
    /// stays exact without hot-loop bookkeeping.
    std::vector<uint32_t> _instrPrefix;
    /// Same, for SEND instructions (per-lane send accounting on
    /// mid-Vcycle aborts in the laned executor).
    std::vector<uint32_t> _sendPrefix;
    std::vector<ProcRange> _ranges;
    /// Pre-expanded CFU minterm masks, 16 per referenced slot
    /// (CUST ops carry their offset in aux).
    std::vector<uint16_t> _cfuMasks;
    Epilogue _epilogue;
    GlobalMemory _global;

    size_t _nopsElided = 0;
    size_t _dispatches = 0;

    uint64_t _vcycle = 0;
    RunStatus _status = RunStatus::Running;
    uint64_t _instretNonNop = 0;
    uint64_t _sends = 0;

    // Per-lane run state, laned mode only (sized _padded; entries
    // past _lanes belong to the frozen padding).  Scalar mode keeps
    // the flat members above untouched, preserving its codegen.
    std::vector<GlobalMemory> _laneGlobal;
    std::vector<uint64_t> _laneVcycle;
    std::vector<RunStatus> _laneStatus;
    std::vector<uint64_t> _laneInstret;
    std::vector<uint64_t> _laneSends;
};

} // namespace manticore::isa

#endif // MANTICORE_ISA_TAPE_INTERPRETER_HH
