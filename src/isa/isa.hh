/**
 * @file
 * The Manticore lower-assembly instruction set (§4.2 of the paper) and
 * its program containers.
 *
 * The datapath is 16 bits wide.  Registers are 17 bits: the low 16
 * hold the value, the 17th is an overflow/carry bit written by ADD/SUB
 * and consumed by ADDC/SUBB to build wide arithmetic (§5.1).  Programs
 * are branch-free; control flow is replaced by predication (MUX for
 * values, PRED-gated stores for memory).  Cores communicate only via
 * SEND; received messages become SET instructions executed in the
 * Vcycle epilogue.  EXPECT raises a host-serviced exception when its
 * operands differ and is the mechanism behind $display/$finish and
 * assertions.  GLD/GST (and EXPECT) are privileged: they globally
 * stall the grid and may only appear in the one privileged process.
 *
 * Before register allocation, register operands are virtual (dense
 * uint32 SSA names); afterwards they are machine registers
 * (0..regFileSize-1).  The same Instruction struct serves both.
 */

#ifndef MANTICORE_ISA_ISA_HH
#define MANTICORE_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/config.hh"

namespace manticore::isa {

using Reg = uint32_t;
constexpr Reg kNoReg = 0xffffffffu;

enum class Opcode : uint8_t
{
    Nop,
    Set,   ///< rd = imm (also the wire format of received messages)
    Mov,   ///< rd = rs1 (RTL register current<-next update)
    Add,   ///< rd = rs1 + rs2; rd.carry = carry-out
    Addc,  ///< rd = rs1 + rs2 + rs3.carry; rd.carry = carry-out
    Sub,   ///< rd = rs1 - rs2; rd.carry = borrow-out
    Subb,  ///< rd = rs1 - rs2 - rs3.carry; rd.carry = borrow-out
    Mul,   ///< rd = low16(rs1 * rs2)
    Mulh,  ///< rd = high16(rs1 * rs2)
    And,
    Or,
    Xor,
    Sll,   ///< rd = rs1 << rs2 (>=16 yields 0)
    Srl,   ///< rd = rs1 >> rs2 (>=16 yields 0)
    Seq,   ///< rd = (rs1 == rs2)
    Sltu,  ///< rd = (rs1 < rs2), unsigned
    Slts,  ///< rd = (rs1 < rs2), signed 16-bit
    Mux,   ///< rd = (rs1 & 1) ? rs2 : rs3
    Slice, ///< rd = (rs1 >> sliceLo()) & ((1 << sliceLen()) - 1)
    Cust,  ///< rd = CFU[imm](rs1, rs2, rs3, rs4), per-bit-lane LUTs
    Lld,   ///< rd = scratch[rs1 + imm]
    Lst,   ///< if (pred) scratch[rs1 + imm] = rs2
    Gld,   ///< privileged: rd = global[(rs1 | rs2 << 16) + imm]
    Gst,   ///< privileged: if (pred) global[(rs1 | rs2 << 16) + imm] = rs3
    Pred,  ///< pred = rs1 & 1
    Send,  ///< send value rs1 to register rd of process 'target'
    Expect,///< privileged: raise exception imm when rs1 != rs2
    NumOpcodes,
};

const char *opcodeName(Opcode op);

struct Instruction
{
    Opcode opcode = Opcode::Nop;
    Reg rd = kNoReg;
    Reg rs1 = kNoReg;
    Reg rs2 = kNoReg;
    Reg rs3 = kNoReg;
    Reg rs4 = kNoReg;
    /// SET immediate / EXPECT exception id / CUST slot / LLD-LST
    /// offset / packed SLICE (lo | len << 8).
    uint16_t imm = 0;
    /// SEND target process id.
    uint32_t target = 0;

    unsigned sliceLo() const { return imm & 0xff; }
    unsigned sliceLen() const { return imm >> 8; }
    static uint16_t packSlice(unsigned lo, unsigned len)
    {
        return static_cast<uint16_t>((lo & 0xff) | (len << 8));
    }

    /// Registers read by this instruction (in rs order).
    std::vector<Reg> sources() const;
    /// Register written, or kNoReg.  SEND writes no local register.
    Reg destination() const;
    /// True for instructions that read the rs3 carry bit.
    bool readsCarry() const
    {
        return opcode == Opcode::Addc || opcode == Opcode::Subb;
    }

    std::string toString() const;
};

/** Kinds of host services reachable through EXPECT exceptions. */
enum class ExceptionKind : uint8_t
{
    Display,    ///< $display: format against args in global memory
    Finish,     ///< $finish: stop simulation after this Vcycle
    AssertFail, ///< failed assertion: stop with an error
};

struct ExceptionInfo
{
    ExceptionKind kind = ExceptionKind::Finish;
    std::string format;  ///< Display format / assert message
    /// Global-memory word addresses of the display argument chunks,
    /// low-to-high per argument.
    std::vector<std::vector<uint64_t>> argChunkAddrs;
    std::vector<unsigned> argWidths;
};

class ExceptionTable
{
  public:
    uint16_t add(ExceptionInfo info)
    {
        _infos.push_back(std::move(info));
        return static_cast<uint16_t>(_infos.size() - 1);
    }
    const ExceptionInfo &info(uint16_t eid) const { return _infos.at(eid); }
    size_t size() const { return _infos.size(); }

  private:
    std::vector<ExceptionInfo> _infos;
};

/** One CFU slot: 16 per-bit-lane truth tables.  Output bit i is
 *  lut[i] indexed by {rs4_i, rs3_i, rs2_i, rs1_i} (rs1 is the LSB of
 *  the index), giving 16 x 16 = 256 configuration bits (§5.1). */
struct CustomFunction
{
    std::array<uint16_t, 16> lut{};

    uint16_t
    apply(uint16_t a, uint16_t b, uint16_t c, uint16_t d) const
    {
        uint16_t out = 0;
        for (unsigned i = 0; i < 16; ++i) {
            unsigned idx = ((a >> i) & 1) | (((b >> i) & 1) << 1) |
                           (((c >> i) & 1) << 2) | (((d >> i) & 1) << 3);
            out |= static_cast<uint16_t>((lut[i] >> idx) & 1) << i;
        }
        return out;
    }

    bool operator==(const CustomFunction &o) const { return lut == o.lut; }
};

/** A process: the unit of parallelism, mapped 1:1 onto a core. */
struct Process
{
    uint32_t id = 0;
    bool privileged = false;
    std::vector<Instruction> body;
    /// Boot-time register constants (constants + RTL register inits).
    std::unordered_map<Reg, uint16_t> init;
    /// CFU configurations, indexed by CUST imm.
    std::vector<CustomFunction> functions;
    /// Initial scratchpad contents (prefix; rest is zero).
    std::vector<uint16_t> scratchInit;
    /// Number of messages this process receives per Vcycle
    /// (EPILOGUE_LENGTH, filled by the scheduler).
    unsigned epilogueLength = 0;
};

/** A compiled program: processes, placement, exception metadata. */
struct Program
{
    std::vector<Process> processes;
    ExceptionTable exceptions;
    /// Core coordinates (x, y) per process id; filled at placement.
    std::vector<std::pair<unsigned, unsigned>> placement;
    /// Highest global-memory word address used by lowering (the
    /// display-argument buffer and DRAM-resident design memories).
    uint64_t globalWordsReserved = 0;
    /// DRAM boot image: initial contents of DRAM-resident memories,
    /// copied in by the runtime before execution starts (§A.3).
    std::vector<std::pair<uint64_t, uint16_t>> globalInit;
    /// Virtual critical-path length in machine cycles, filled by the
    /// scheduler: the Vcycle length every core obeys.
    unsigned vcpl = 0;

    std::string toString() const;
};

/** Structural checks: operand presence, privileged placement, imm
 *  ranges, CFU indices; fatal() on violation. */
void validate(const Program &program, const MachineConfig &config);

} // namespace manticore::isa

#endif // MANTICORE_ISA_ISA_HH
